//! The scheme zoo: every worked example of the paper plus the synthetic
//! families, classified against the full taxonomy — an executable version
//! of the paper's class-inclusion picture
//! (independent ⊂ ctm ⊂ algebraic-maintainable; independent ∪ γ-acyclic
//! BCNF ⊂ independence-reducible).
//!
//! Run with: `cargo run --example scheme_zoo`

use independence_reducible::prelude::*;
use independence_reducible::workload::{generators, paper_examples};

fn flag(b: bool) -> &'static str {
    if b {
        "✓"
    } else {
        "·"
    }
}

fn opt(o: Option<bool>) -> &'static str {
    match o {
        Some(true) => "✓",
        Some(false) => "·",
        None => "?",
    }
}

fn main() {
    let mut rows: Vec<(String, DatabaseScheme)> = paper_examples()
        .into_iter()
        .map(|f| (f.name.to_string(), f.scheme))
        .collect();
    rows.push(("chain(8)".into(), generators::chain_scheme(8)));
    rows.push(("cycle(6)".into(), generators::cycle_scheme(6)));
    rows.push(("split(4)".into(), generators::split_scheme(4)));
    rows.push(("star(5)".into(), generators::star_scheme(5)));
    rows.push(("blocks(3×3)".into(), generators::block_chain_scheme(3, 3)));

    println!(
        "{:<14} {:>7} {:>5} {:>5} {:>6} {:>7} {:>6} {:>4} {:>6} {:>6} {:>7}",
        "scheme", "schemes", "bcnf", "indep", "γ-acy", "key-eq", "ind-rd", "ctm", "bound", "algmt", "blocks"
    );
    let mut counts = (0usize, 0usize, 0usize, 0usize); // indep, γ-bcnf, accepted, ctm
    for (name, db) in &rows {
        let c = classify(db);
        let blocks = c
            .independence_reducible
            .as_ref()
            .map(|ir| ir.len().to_string())
            .unwrap_or_else(|| "-".into());
        println!(
            "{:<14} {:>7} {:>5} {:>5} {:>6} {:>7} {:>6} {:>4} {:>6} {:>6} {:>7}",
            name,
            db.len(),
            flag(c.bcnf),
            flag(c.independent),
            flag(c.gamma_acyclic),
            flag(c.key_equivalent),
            flag(c.independence_reducible.is_some()),
            opt(c.ctm),
            opt(c.bounded),
            opt(c.algebraic_maintainable),
            blocks
        );
        if c.independent {
            counts.0 += 1;
        }
        if c.gamma_acyclic && c.bcnf {
            counts.1 += 1;
        }
        if c.independence_reducible.is_some() {
            counts.2 += 1;
        }
        if c.ctm == Some(true) {
            counts.3 += 1;
        }

        // Theorems 5.2/5.3 as runtime assertions over the zoo.
        if c.independent || (c.gamma_acyclic && c.bcnf) {
            assert!(
                c.independence_reducible.is_some(),
                "{name}: baseline class member rejected — Theorem 5.2/5.3 violated"
            );
        }
    }
    println!();
    println!(
        "inclusions over the zoo: independent = {}, γ-acyclic BCNF = {}, independence-reducible = {}, ctm = {}",
        counts.0, counts.1, counts.2, counts.3
    );
    println!("every independent / γ-acyclic BCNF scheme was accepted (Theorems 5.2, 5.3) ✓");
}
