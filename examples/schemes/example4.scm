# Examples 4/5/7: key-equivalent but split (key B C) — not ctm.
universe: A B C D E
scheme R1: A B    keys A
scheme R2: A C    keys A
scheme R3: A E    keys A | E
scheme R4: E B    keys E
scheme R5: E C    keys E
scheme R6: B C D  keys B C | D
scheme R7: D A    keys D | A
