# Example 1 of Chan & Hernández (PODS 1988): the university database.
# C = course, T = teacher, H = hour, R = room, S = student, G = grade.
universe: C T H R S G
scheme R1: H R C  keys H R
scheme R2: H T R  keys H T | H R
scheme R3: H T C  keys H T
scheme R4: C S G  keys C S
scheme R5: H S R  keys H S
