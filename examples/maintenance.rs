//! Constraint enforcement, three ways — the traces of Examples 5, 6, 7
//! and 10, plus the Example 2 lower bound.
//!
//! 1. A *split-free* scheme: Algorithm 5 answers each insert with a
//!    constant number of index lookups (Example 10).
//! 2. A *split* key-equivalent scheme: still algebraic-maintainable via
//!    Algorithm 2 over the representative instance (Examples 5/6/7), but
//!    no constant-time algorithm exists (Theorem 3.4).
//! 3. A scheme *outside* the class (Example 2): even deciding consistency
//!    of an insert inherently touches a number of tuples that grows with
//!    the state — shown by timing the only sound decision procedure, a
//!    chase.
//!
//! Run with: `cargo run --release --example maintenance`

use independence_reducible::core::maintain::{algorithm5, StateIndex};
use independence_reducible::prelude::*;
use independence_reducible::workload::generators;

fn main() {
    example10_trace();
    example7_trace();
    example2_lower_bound();
}

/// Example 10: S = {S1(AB), S2(BC), S3(AC)}, all singleton keys;
/// s1 = {<a,b>}, s2 = {<b,c>}; inserting <a,c'> into s3 must be rejected.
fn example10_trace() {
    println!("== Example 10: Algorithm 5 on a split-free scheme ==");
    let db = SchemeBuilder::new("ABC")
        .scheme("S1", "AB", ["A", "B"])
        .scheme("S2", "BC", ["B", "C"])
        .scheme("S3", "AC", ["A", "C"])
        .build()
        .unwrap();
    let mut sym = SymbolTable::new();
    let state = state_of(
        &db,
        &mut sym,
        &[
            ("S1", &[("A", "a"), ("B", "b")]),
            ("S2", &[("B", "b"), ("C", "c")]),
        ],
    )
    .unwrap();
    let idx = StateIndex::build(&db, &[0, 1, 2], &state).unwrap();
    let u = db.universe();
    let bad = Tuple::from_pairs([
        (u.attr_of("A"), sym.intern("a")),
        (u.attr_of("C"), sym.intern("c'")),
    ]);
    println!("  state: s1={{<a,b>}}, s2={{<b,c>}}, s3=∅");
    println!("  insert <a, c'> into S3:");
    println!("    key A extends to <a,b,c> via S1 then S2 (Algorithm 4)");
    let g = Guard::unlimited();
    let (outcome, stats) =
        algorithm5(&db, &idx, 2, &bad, &g, &RetryPolicy::none()).unwrap();
    println!(
        "    <a,c'> ⋈ <a,b,c> = ∅  →  {} ({} lookups, {} keys)",
        if outcome.is_consistent() { "yes" } else { "no" },
        stats.lookups,
        stats.keys_processed
    );
    assert!(!outcome.is_consistent());
    println!();
}

/// Example 7: the split key-equivalent scheme. Algorithm 2 rejects the
/// insert <a, e> into r3 by joining against the representative-instance
/// tuple <a, b, c, e1>.
fn example7_trace() {
    println!("== Example 7: Algorithm 2 on a split (non-ctm) scheme ==");
    let db = SchemeBuilder::new("ABCDE")
        .scheme("R1", "AB", ["A"])
        .scheme("R2", "AC", ["A"])
        .scheme("R3", "AE", ["A", "E"])
        .scheme("R4", "EB", ["E"])
        .scheme("R5", "EC", ["E"])
        .scheme("R6", "BCD", ["BC", "D"])
        .scheme("R7", "DA", ["D", "A"])
        .build()
        .unwrap();
    let c = classify(&db);
    println!("  {}", c.summary());
    let ir = c.independence_reducible.clone().unwrap();
    let mut sym = SymbolTable::new();
    // r1 = {<a,b>}, r2 = {<a,c>}, r4 = {<e1,b>, <e2,b>, ..., <en,b>},
    // r5 = {<e1,c>} — the state of Example 7 (n = 3 here).
    let state = state_of(
        &db,
        &mut sym,
        &[
            ("R1", &[("A", "a"), ("B", "b")]),
            ("R2", &[("A", "a"), ("C", "c")]),
            ("R4", &[("E", "e1"), ("B", "b")]),
            ("R4", &[("E", "e2"), ("B", "b")]),
            ("R4", &[("E", "e3"), ("B", "b")]),
            ("R5", &[("E", "e1"), ("C", "c")]),
        ],
    )
    .unwrap();
    let g = Guard::unlimited();
    let mut m = IrMaintainer::new(&db, &ir, &state, &g).expect("consistent");
    println!("  representative instance (Algorithm 1):");
    for t in m.reps()[0].iter() {
        println!("    {}", t.render(db.universe(), &sym));
    }
    let u = db.universe();
    let bad = Tuple::from_pairs([
        (u.attr_of("A"), sym.intern("a")),
        (u.attr_of("E"), sym.intern("e")),
    ]);
    println!("  insert <a, e> into R3 (keys A and E of R3 processed):");
    let (outcome, stats) = m.insert(2, bad, &g, &RetryPolicy::none()).unwrap();
    println!(
        "    σ_A=a over the lossless joins returns <a,b,c,e1>; <a,e> ⋈ <a,b,c,e1> = ∅ → {}",
        if outcome.is_consistent() { "yes" } else { "no" }
    );
    println!("    ({} single-tuple lookups)", stats.lookups);
    assert!(!outcome.is_consistent());
    println!();
}

/// Example 2: {AB, BC, AC} with F = {A→C, B→C}. The scheme is rejected by
/// Algorithm 6 and is provably not algebraic-maintainable: the
/// inconsistency of one insert may depend on a chain of tuples of
/// unbounded length, so the only sound decision procedure examines a
/// state-size-dependent number of tuples.
fn example2_lower_bound() {
    println!("== Example 2: outside the class, maintenance work grows with |state| ==");
    let db = generators::example2_scheme();
    let kd = KeyDeps::of(&db);
    assert!(recognize(&db, &kd).accepted().is_none());
    println!("  Algorithm 6 rejects the scheme.");
    println!("  chase work to refute the insert <a_n, c1> into r3:");
    for n in [4usize, 8, 16, 32] {
        let mut sym = SymbolTable::new();
        let (state, bad) =
            generators::example2_adversarial_state(&db, &mut sym, n);
        let mut updated = state.clone();
        updated.insert(2, bad).unwrap();
        // The chase is the decision procedure of record here; count its
        // fd-rule applications on the *refuting* run.
        let mut t = independence_reducible::chase::Tableau::of_state(&db, &updated);
        let g = Guard::unlimited();
        let err = independence_reducible::chase::chase(&mut t, kd.full(), &g);
        assert!(err.is_err(), "the insert is inconsistent");
        // Count rule applications up to failure by re-running on the
        // consistent base state (all of it must be propagated).
        let mut t2 = independence_reducible::chase::Tableau::of_state(&db, &state);
        let stats = independence_reducible::chase::chase(&mut t2, kd.full(), &g).unwrap();
        println!(
            "    chain length n = {:>2}: state tuples = {:>3}, fd-rule applications on the base state = {:>3}",
            n,
            state.total_tuples(),
            stats.rule_applications
        );
    }
    println!("  — the refutation inherently traverses the whole chain (Theorem 3.4's argument).");
}
