//! Example 1 in depth: the university database R versus its merged
//! variant S.
//!
//! The paper's opening observation: R and S embed the *same* key
//! dependencies, S is independent while R is not — yet R inherits all of
//! S's good behaviour because R is *independence-reducible*: its block
//! {R1, R2, R3} plays the role of S1(HRCT), with each R-relation a
//! null-free fragment of S1.
//!
//! Run with: `cargo run --example university`

use independence_reducible::prelude::*;

fn classify_and_print(name: &str, db: &DatabaseScheme) {
    let c = classify(db);
    println!("{name}: {}", c.summary());
}

fn main() {
    let r = SchemeBuilder::new("CTHRSG")
        .scheme("R1", "HRC", ["HR"])
        .scheme("R2", "HTR", ["HT", "HR"])
        .scheme("R3", "HTC", ["HT"])
        .scheme("R4", "CSG", ["CS"])
        .scheme("R5", "HSR", ["HS"])
        .build()
        .unwrap();
    let s = SchemeBuilder::new("CTHRSG")
        .scheme("S1", "HRCT", ["HR", "HT"])
        .scheme("S2", "CSG", ["CS"])
        .scheme("S3", "HSR", ["HS"])
        .build()
        .unwrap();

    println!("== The two schemes of Example 1 ==");
    classify_and_print("R", &r);
    classify_and_print("S", &s);
    println!();

    // The recognition witness: R's partition merges {R1, R2, R3}, whose
    // union HRCT is exactly S1. The induced scheme D *is* S.
    let kd_r = KeyDeps::of(&r);
    let ir = recognize(&r, &kd_r).accepted().expect("R is accepted");
    let d = independence_reducible::core::recognition::induced_scheme(&r, &ir);
    println!("induced scheme D of R:");
    for ds in d.schemes() {
        let keys: Vec<String> = ds
            .keys()
            .iter()
            .map(|&k| d.universe().render(k))
            .collect();
        println!(
            "  {}({})  keys {{{}}}",
            ds.name(),
            d.universe().render(ds.attrs()),
            keys.join(", ")
        );
    }
    let kd_d = KeyDeps::of(&d);
    assert!(independence_reducible::core::baselines::is_independent(
        &d, &kd_d
    ));
    println!("D is independent — R reduces to Example 1's S.\n");

    // A term's worth of data.
    let mut sym = SymbolTable::new();
    let state = state_of(
        &r,
        &mut sym,
        &[
            // Two teachers sharing course "db" at different hours.
            ("R1", &[("H", "mon9"), ("R", "r101"), ("C", "db")]),
            ("R2", &[("H", "mon9"), ("T", "chan"), ("R", "r101")]),
            ("R1", &[("H", "tue2"), ("R", "r204"), ("C", "db")]),
            ("R2", &[("H", "tue2"), ("T", "hdez"), ("R", "r204")]),
            // Grades and attendance.
            ("R4", &[("C", "db"), ("S", "sue"), ("G", "A")]),
            ("R4", &[("C", "os"), ("S", "sue"), ("G", "B")]),
            ("R5", &[("H", "mon9"), ("S", "sue"), ("R", "r101")]),
        ],
    )
    .unwrap();
    let g = Guard::unlimited();
    let mut m = IrMaintainer::new(&r, &ir, &state, &g).expect("consistent");

    println!("== Incremental maintenance on R ==");
    let u = r.universe();
    let inserts: Vec<(&str, Vec<(&str, &str)>)> = vec![
        // New fact, consistent: chan also teaches at tue2? No - tue2 is
        // hdez's slot in r204; HT is free, HR must agree.
        ("R3", vec![("H", "mon9"), ("T", "chan"), ("C", "db")]),
        // Key violation: hour mon9 room r101 already hosts "db".
        ("R1", vec![("H", "mon9"), ("R", "r101"), ("C", "os")]),
        // Fine: a different room at the same hour.
        ("R1", vec![("H", "mon9"), ("R", "r305"), ("C", "os")]),
        // Student key violation: sue is in r101 at mon9 already.
        ("R5", vec![("H", "mon9"), ("S", "sue"), ("R", "r305")]),
    ];
    for (scheme_name, pairs) in inserts {
        let i = r.index_of(scheme_name).unwrap();
        let t = Tuple::from_pairs(
            pairs
                .iter()
                .map(|&(a, v)| (u.attr_of(a), sym.intern(v))),
        );
        let shown = t.render(u, &sym);
        let (outcome, stats) = m.insert(i, t, &g, &RetryPolicy::none()).unwrap();
        println!(
            "  insert {shown} into {scheme_name}: {} ({} lookups)",
            if outcome.is_consistent() { "accepted" } else { "REJECTED" },
            stats.lookups
        );
    }

    println!("\n== Bounded query answering ==");
    for target in ["TC", "TR", "CSG", "HSC"] {
        let x = u.set_of(target);
        match ir_total_projection_expr(&r, &kd_r, &ir, x, &g).unwrap() {
            Some(expr) => {
                let rel = expr.eval(&r, &state).unwrap();
                println!("[{}] = {}", target, expr.render(&r));
                for t in rel.iter() {
                    println!("    {}", t.render(u, &sym));
                }
            }
            None => println!("[{target}] is empty on every consistent state"),
        }
    }
}
