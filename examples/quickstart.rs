//! Quickstart: build the paper's university scheme (Example 1), classify
//! it, enforce constraints incrementally, and answer a query without ever
//! chasing.
//!
//! Run with: `cargo run --example quickstart`

use independence_reducible::prelude::*;

fn main() {
    // Example 1: a course may be taught by several teachers.
    //   C = course, T = teacher, H = hour, R = room, S = student, G = grade
    let db = SchemeBuilder::new("CTHRSG")
        .scheme("R1", "HRC", &["HR"])
        .scheme("R2", "HTR", &["HT", "HR"])
        .scheme("R3", "HTC", &["HT"])
        .scheme("R4", "CSG", &["CS"])
        .scheme("R5", "HSR", &["HS"])
        .build()
        .expect("valid scheme");
    let kd = KeyDeps::of(&db);

    // 1. Classify: the scheme is neither independent nor γ-acyclic, yet
    //    Algorithm 6 accepts it.
    let c = classify(&db);
    println!("classification: {}", c.summary());
    let ir = c.independence_reducible.clone().expect("accepted");
    println!("independence-reducible partition:");
    for (b, block) in ir.partition.iter().enumerate() {
        let names: Vec<&str> = block.iter().map(|&i| db.scheme(i).name()).collect();
        println!(
            "  T{} = {{{}}}  (∪T{} = {})",
            b + 1,
            names.join(", "),
            b + 1,
            db.universe().render(ir.block_attrs[b])
        );
    }

    // 2. Incremental constraint enforcement (Algorithm 2 per block).
    let mut sym = SymbolTable::new();
    let state = state_of(
        &db,
        &mut sym,
        &[
            ("R1", &[("H", "mon9"), ("R", "rm101"), ("C", "db")]),
            ("R2", &[("H", "mon9"), ("T", "chan"), ("R", "rm101")]),
            ("R4", &[("C", "db"), ("S", "sue"), ("G", "A")]),
        ],
    )
    .expect("state builds");
    let mut m = IrMaintainer::new(&db, &ir, &state).expect("state is consistent");

    // A consistent insert: the same hour/teacher teaching the same course.
    let u = db.universe();
    let ok = Tuple::from_pairs([
        (u.attr_of("H"), sym.intern("mon9")),
        (u.attr_of("T"), sym.intern("chan")),
        (u.attr_of("C"), sym.intern("db")),
    ]);
    let (outcome, stats) = m.insert(db.index_of("R3").unwrap(), ok);
    println!(
        "insert <mon9, chan, db> into R3: {} ({} index lookups)",
        if outcome.is_consistent() { "accepted" } else { "rejected" },
        stats.lookups
    );

    // An inconsistent insert: hour mon9 + teacher chan now teach a
    // different course — violates HT → C.
    let bad = Tuple::from_pairs([
        (u.attr_of("H"), sym.intern("mon9")),
        (u.attr_of("T"), sym.intern("chan")),
        (u.attr_of("C"), sym.intern("os")),
    ]);
    let (outcome, stats) = m.insert(db.index_of("R3").unwrap(), bad);
    println!(
        "insert <mon9, chan, os> into R3: {} ({} index lookups)",
        if outcome.is_consistent() { "accepted" } else { "rejected" },
        stats.lookups
    );

    // 3. Bounded query answering: which (teacher, course) pairs are known?
    //    Theorem 4.1 gives a predetermined relational expression — no chase.
    let x = u.set_of("TC");
    let expr = ir_total_projection_expr(&db, &kd, &ir, x).expect("TC is coverable");
    println!("[TC] expression: {}", expr.render(&db));
    let answer = ir_total_projection(&db, &kd, &ir, &state, x).expect("evaluates");
    for t in answer.iter() {
        println!("  {}", t.render(u, &sym));
    }

    // The chase agrees (it always does — see the differential tests).
    let oracle = total_projection(&db, &state, kd.full(), x).expect("consistent");
    assert_eq!(answer.sorted_tuples(), oracle);
    println!("chase oracle agrees: {} tuple(s)", oracle.len());
}
