//! Quickstart: build the paper's university scheme (Example 1), classify
//! it, enforce constraints incrementally, and answer a query without ever
//! chasing — all through the [`Engine`] facade.
//!
//! Run with: `cargo run --example quickstart`

use independence_reducible::prelude::*;

fn main() {
    // Example 1: a course may be taught by several teachers.
    //   C = course, T = teacher, H = hour, R = room, S = student, G = grade
    let db = SchemeBuilder::new("CTHRSG")
        .scheme("R1", "HRC", ["HR"])
        .scheme("R2", "HTR", ["HT", "HR"])
        .scheme("R3", "HTC", ["HT"])
        .scheme("R4", "CSG", ["CS"])
        .scheme("R5", "HSR", ["HS"])
        .build()
        .expect("valid scheme");

    // 1. Build the engine once: Algorithm 6 runs at construction, the
    //    classification and query expressions are cached behind it.
    let engine = Engine::new(db);
    let db = engine.scheme();
    let c = engine.classification();
    println!("classification: {}", c.summary());
    let ir = engine.ir().expect("accepted");
    println!("independence-reducible partition:");
    for (b, block) in ir.partition.iter().enumerate() {
        let names: Vec<&str> = block.iter().map(|&i| db.scheme(i).name()).collect();
        println!(
            "  T{} = {{{}}}  (∪T{} = {})",
            b + 1,
            names.join(", "),
            b + 1,
            db.universe().render(ir.block_attrs[b])
        );
    }

    // 2. Bind a state: each block is chased separately (in parallel), and
    //    the hub then serves consistency reads and incremental updates
    //    through its split ReadView/WriteHandle API.
    let mut sym = SymbolTable::new();
    let state = state_of(
        db,
        &mut sym,
        &[
            ("R1", &[("H", "mon9"), ("R", "rm101"), ("C", "db")]),
            ("R2", &[("H", "mon9"), ("T", "chan"), ("R", "rm101")]),
            ("R4", &[("C", "db"), ("S", "sue"), ("G", "A")]),
        ],
    )
    .expect("state builds");
    let guard = Guard::unlimited();
    let hub = engine.hub(&state, &guard).expect("chase completes");
    let writer = hub.write_handle();
    println!("state consistent: {}", hub.is_consistent());

    // A consistent insert: the same hour/teacher teaching the same course.
    let u = db.universe();
    let r3 = db.index_of("R3").unwrap();
    let ok = Tuple::from_pairs([
        (u.attr_of("H"), sym.intern("mon9")),
        (u.attr_of("T"), sym.intern("chan")),
        (u.attr_of("C"), sym.intern("db")),
    ]);
    let accepted = writer.insert(r3, ok, &guard).expect("within budget");
    println!(
        "insert <mon9, chan, db> into R3: {}",
        if accepted { "accepted" } else { "rejected" }
    );

    // An inconsistent insert: hour mon9 + teacher chan now teach a
    // different course — violates HT → C. The writer rejects it and the
    // state is untouched.
    let bad = Tuple::from_pairs([
        (u.attr_of("H"), sym.intern("mon9")),
        (u.attr_of("T"), sym.intern("chan")),
        (u.attr_of("C"), sym.intern("os")),
    ]);
    let accepted = writer.insert(r3, bad, &guard).expect("within budget");
    println!(
        "insert <mon9, chan, os> into R3: {}",
        if accepted { "accepted" } else { "rejected" }
    );
    assert!(hub.is_consistent());

    // 3. Bounded query answering: which (teacher, course) pairs are known?
    //    Theorem 4.1 gives a predetermined relational expression — the
    //    engine caches it and an epoch-stamped read view evaluates it
    //    chase-free over its immutable snapshot.
    let x = u.set_of("TC");
    let expr = engine
        .total_projection_expr(x, &guard)
        .expect("within budget")
        .expect("TC is coverable");
    println!("[TC] expression: {}", expr.render(db));
    let view = hub.read_view();
    let answer = view
        .total_projection(x, &guard)
        .expect("within budget")
        .expect("state is consistent");
    for t in &answer {
        println!("  {}", t.render(u, &sym));
    }

    // The chase agrees (it always does — see the differential tests).
    let kd = engine.key_deps();
    let oracle = total_projection(db, view.state(), kd.full(), x, &guard)
        .expect("within budget")
        .expect("consistent");
    assert_eq!(answer, oracle);
    println!("chase oracle agrees: {} tuple(s)", oracle.len());
}
