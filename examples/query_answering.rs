//! Bounded query answering — the expressions of Examples 4 and 12.
//!
//! For an independence-reducible scheme, the X-total projection `[X]` of
//! the representative instance is computed by a *predetermined* relational
//! expression (a union of projections of joins over base relations), so a
//! query processor never needs to chase. This example prints the paper's
//! two worked expressions and verifies them against the chase.
//!
//! Run with: `cargo run --example query_answering`

use independence_reducible::prelude::*;

fn main() {
    example4_ae();
    example12_acg();
}

/// Example 4: [AE] = R3 ∪ π_AE(AB ⋈ AC ⋈ (BE ⋈ CE)).
fn example4_ae() {
    println!("== Example 4: [AE] over the key-equivalent 7-scheme R ==");
    let db = SchemeBuilder::new("ABCDE")
        .scheme("R1", "AB", ["A"])
        .scheme("R2", "AC", ["A"])
        .scheme("R3", "AE", ["A", "E"])
        .scheme("R4", "EB", ["E"])
        .scheme("R5", "EC", ["E"])
        .scheme("R6", "BCD", ["BC", "D"])
        .scheme("R7", "DA", ["D", "A"])
        .build()
        .unwrap();
    let engine = Engine::new(db);
    let db = engine.scheme();
    let g = Guard::unlimited();
    let u = db.universe();
    let x = u.set_of("AE");
    let expr = engine
        .total_projection_expr(x, &g)
        .unwrap()
        .expect("AE is coverable");
    println!("  [AE] = {}", expr.render(db));

    // A state where the answer is only derivable through the second
    // disjunct (the four fragment relations).
    let mut sym = SymbolTable::new();
    let state = state_of(
        db,
        &mut sym,
        &[
            ("R1", &[("A", "a"), ("B", "b")]),
            ("R2", &[("A", "a"), ("C", "c")]),
            ("R4", &[("E", "e"), ("B", "b")]),
            ("R5", &[("E", "e"), ("C", "c")]),
        ],
    )
    .unwrap();
    let fast = expr.eval(db, &state).unwrap();
    println!("  on r = fragments only (no R3 tuple):");
    for t in fast.iter() {
        println!("    {}", t.render(u, &sym));
    }
    let oracle = total_projection(db, &state, engine.key_deps().full(), x, &g)
        .unwrap()
        .expect("consistent");
    assert_eq!(fast.sorted_tuples(), oracle);
    println!("  chase agrees ({} tuple).\n", oracle.len());
}

/// Example 12: [ACG] = π_ACG((π_ACD(R1⋈R2⋈R4) ∪ π_ACD(R3⋈R4)) ⋈ π_DG(R6)).
fn example12_acg() {
    println!("== Example 12: [ACG] over the two-block scheme ==");
    let db = SchemeBuilder::new("ABCDEFG")
        .scheme("R1", "AB", ["A", "B"])
        .scheme("R2", "BC", ["B", "C"])
        .scheme("R3", "AC", ["A", "C"])
        .scheme("R4", "AD", ["A"])
        .scheme("R5", "DEF", ["D"])
        .scheme("R6", "DEG", ["D"])
        .build()
        .unwrap();
    let engine = Engine::new(db);
    let db = engine.scheme();
    let g = Guard::unlimited();
    let ir = engine.ir().unwrap();
    let u = db.universe();
    println!(
        "  blocks: D1 = {}, D2 = {}",
        u.render(ir.block_attrs[0]),
        u.render(ir.block_attrs[1])
    );
    let x = u.set_of("ACG");
    let expr = engine
        .total_projection_expr(x, &g)
        .unwrap()
        .expect("ACG is coverable");
    println!("  [ACG] = {}", expr.render(db));
    println!("  (paper: π_ACG((π_ACD(R1⋈R2⋈R4) ∪ π_ACD(R3⋈R4)) ⋈ π_DG(R6)))");

    // The answer <a, c, g> needs both blocks: A determines D in block 1,
    // D determines G in block 2.
    let mut sym = SymbolTable::new();
    let state = state_of(
        db,
        &mut sym,
        &[
            ("R1", &[("A", "a"), ("B", "b")]),
            ("R2", &[("B", "b"), ("C", "c")]),
            ("R4", &[("A", "a"), ("D", "d")]),
            ("R6", &[("D", "d"), ("E", "e"), ("G", "g")]),
        ],
    )
    .unwrap();
    let fast = expr.eval(db, &state).unwrap();
    for t in fast.iter() {
        println!("    {}", t.render(u, &sym));
    }
    let oracle = total_projection(db, &state, engine.key_deps().full(), x, &g)
        .unwrap()
        .expect("consistent");
    assert_eq!(fast.sorted_tuples(), oracle);
    println!("  chase agrees ({} tuple).", oracle.len());

    // Expression sizes stay fixed as the state grows — that is what
    // boundedness buys.
    println!(
        "  expression size: {} base-relation references, independent of |r|",
        expr.rel_refs()
    );
}
