//! An end-to-end load simulation on the university scheme of Example 1:
//! build a term's worth of data, drive thousands of maintained inserts
//! (mixed valid/invalid), and answer queries from the maintained
//! representative instances — the workflow a registrar system built on
//! this library would run.
//!
//! Run with: `cargo run --release --example registrar_load`

use std::time::Instant;

use independence_reducible::prelude::*;
use independence_reducible::workload::states::{generate, WorkloadConfig};

fn main() {
    let db = SchemeBuilder::new("CTHRSG")
        .scheme("R1", "HRC", ["HR"])
        .scheme("R2", "HTR", ["HT", "HR"])
        .scheme("R3", "HTC", ["HT"])
        .scheme("R4", "CSG", ["CS"])
        .scheme("R5", "HSR", ["HS"])
        .build()
        .expect("scheme");
    let kd = KeyDeps::of(&db);
    let ir = recognize(&db, &kd).accepted().expect("accepted");
    let g = Guard::unlimited();
    let rp = RetryPolicy::none();
    println!(
        "scheme: {} relations, {} blocks, ctm = {}",
        db.len(),
        ir.len(),
        classify(&db).ctm == Some(true)
    );

    // Base load: 20k entities scattered across the five relations, plus a
    // stream of 5k mixed inserts.
    let mut sym = SymbolTable::new();
    let t0 = Instant::now();
    let w = generate(
        &db,
        &mut sym,
        WorkloadConfig {
            entities: 20_000,
            fragment_pct: 55,
            inserts: 5_000,
            corrupt_pct: 35,
            seed: 0xACAD,
        },
    );
    println!(
        "generated {} base tuples + {} inserts in {:?}",
        w.state.total_tuples(),
        w.inserts.len(),
        t0.elapsed()
    );

    // Build the maintainer (Algorithm 1 per block = initial consistency
    // check + representative instances).
    let t0 = Instant::now();
    let mut m =
        IrMaintainer::new(&db, &ir, &w.state, &g).expect("base state consistent");
    println!(
        "representative instances built in {:?} ({} merged tuples)",
        t0.elapsed(),
        m.reps().iter().map(|r| r.len()).sum::<usize>()
    );

    // Drive the insert stream through Algorithm 2.
    let t0 = Instant::now();
    let mut accepted = 0usize;
    let mut rejected = 0usize;
    let mut lookups = 0usize;
    for (i, t) in &w.inserts {
        let (outcome, stats) = m.insert(*i, t.clone(), &g, &rp).unwrap();
        lookups += stats.lookups;
        if outcome.is_consistent() {
            accepted += 1;
        } else {
            rejected += 1;
        }
    }
    let dt = t0.elapsed();
    println!(
        "maintained {} inserts in {:?} ({:.1} µs/insert, {:.2} lookups/insert): {} accepted, {} rejected",
        w.inserts.len(),
        dt,
        dt.as_micros() as f64 / w.inserts.len() as f64,
        lookups as f64 / w.inserts.len() as f64,
        accepted,
        rejected
    );

    // Query phase: total projections straight off the maintained reps.
    let u = db.universe();
    let t0 = Instant::now();
    let queries = ["TC", "HSC", "CSG", "TR"];
    for q in queries {
        let x = u.set_of(q);
        let rows = m.total_projection(&kd, x, &g).unwrap();
        println!("  [{q}] → {} rows", rows.len());
    }
    println!("4 total projections answered in {:?}", t0.elapsed());

    // Spot-check one query against the chase (on a small substate — the
    // full chase at this scale is exactly what boundedness avoids).
    let mut small_sym = SymbolTable::new();
    let small = generate(
        &db,
        &mut small_sym,
        WorkloadConfig {
            entities: 50,
            fragment_pct: 55,
            inserts: 0,
            corrupt_pct: 0,
            seed: 0xACAD,
        },
    );
    let m_small = IrMaintainer::new(&db, &ir, &small.state, &g).unwrap();
    let x = u.set_of("TC");
    let fast = m_small.total_projection(&kd, x, &g).unwrap();
    let oracle = total_projection(&db, &small.state, kd.full(), x, &g)
        .unwrap()
        .expect("consistent");
    assert_eq!(fast, oracle, "rep-based answer must match the chase");
    println!("chase spot-check on a 50-entity substate: OK");
}
