//! Seed-deterministic case generation.
//!
//! Everything derives from one `u64` through the vendored SplitMix64, so
//! a case is fully reproduced by its seed alone. Schemes are drawn from
//! the workload families the paper's claims cover — key-equivalent
//! chains/cycles/stars, split schemes, independence-reducible block
//! chains, γ-acyclic-adjacent random covers-embedded schemes — plus two
//! adversarial biases: Example 2 (rejected by Algorithm 6, exercising the
//! whole-state backend) and *near-miss* mutants of the structured
//! families ([`mutate_one_key`]), which sit on the class boundary where
//! classifier and oracle disagreements are most likely.
//!
//! States are entity projections (consistent by construction) with an
//! optional corrupt tuple mixing two entities across a key, and op
//! streams interleave inserts/deletes/queries/explains with budget-
//! tripped variants, expression-cache poisoning and `FaultInjector`
//! faults — every session-atomicity edge the engine has.

use idr_relation::exec::FaultKind;
use idr_relation::rng::SplitMix64;
use idr_relation::{AttrSet, DatabaseScheme, DatabaseState, SymbolTable, Tuple};
use idr_workload::generators::{
    block_chain_scheme, chain_scheme, cycle_scheme, example2_scheme, mutate_one_key,
    random_scheme, split_scheme, star_scheme,
};

use crate::ops::{Case, Op};

/// One of the structured families (everything but `random_scheme`), used
/// both directly and as near-miss mutation bases.
fn structured_scheme(rng: &mut SplitMix64) -> DatabaseScheme {
    match rng.gen_range(0, 5) {
        0 => chain_scheme(rng.gen_range_inclusive(2, 5)),
        1 => cycle_scheme(rng.gen_range_inclusive(3, 5)),
        2 => split_scheme(rng.gen_range_inclusive(2, 3)),
        3 => star_scheme(rng.gen_range_inclusive(2, 4)),
        _ => block_chain_scheme(rng.gen_range_inclusive(2, 3), 3),
    }
}

/// Draws a scheme: structured families, the non-IR Example 2, random
/// covers-embedded schemes, and near-miss single-fd mutants.
fn gen_scheme(rng: &mut SplitMix64) -> DatabaseScheme {
    loop {
        match rng.gen_range(0, 10) {
            // 0–4: the structured families themselves.
            0..=4 => return structured_scheme(rng),
            // 5: Example 2 — rejected by Algorithm 6, whole-state backend.
            5 => return example2_scheme(),
            // 6–7: random covers-embedded schemes.
            6 | 7 => {
                let width = rng.gen_range_inclusive(4, 6);
                let n = rng.gen_range_inclusive(3, 5);
                if let Some(db) = random_scheme(rng, width, n) {
                    return db;
                }
            }
            // 8–9: near-miss mutants (fall back to the base on failure).
            _ => {
                let base = structured_scheme(rng);
                return mutate_one_key(&base, rng).unwrap_or(base);
            }
        }
    }
}

/// The corpus-safe universal tuple of entity `id`: values are
/// `<attr>_<id>` (no `#`, which starts a comment in the fixture format).
fn entity_tuple(
    db: &DatabaseScheme,
    symbols: &mut SymbolTable,
    id: usize,
) -> Tuple {
    let u = db.universe();
    Tuple::from_pairs(
        u.iter()
            .map(|a| (a, symbols.intern(&format!("{}_{id}", u.name(a))))),
    )
}

/// A corrupt tuple for relation `i`: key values from entity `id_a`,
/// non-key values from entity `id_b` — inconsistent whenever `id_a`'s
/// fragments elsewhere pin the corrupted attributes.
fn corrupt_tuple(
    db: &DatabaseScheme,
    symbols: &mut SymbolTable,
    i: usize,
    id_a: usize,
    id_b: usize,
) -> Tuple {
    let ta = entity_tuple(db, symbols, id_a);
    let tb = entity_tuple(db, symbols, id_b);
    let key = db.scheme(i).keys()[0];
    Tuple::from_pairs(db.scheme(i).attrs().iter().map(|a| {
        (a, if key.contains(a) { ta.value(a) } else { tb.value(a) })
    }))
}

/// Projects `entities` entities onto random schemes; with `corrupt`, one
/// extra mixed tuple lands in the state (often making it inconsistent).
fn gen_state(
    db: &DatabaseScheme,
    symbols: &mut SymbolTable,
    rng: &mut SplitMix64,
    entities: usize,
    fragment_pct: u32,
    corrupt: bool,
) -> DatabaseState {
    let mut state = DatabaseState::empty(db);
    for id in 0..entities {
        let universal = entity_tuple(db, symbols, id);
        let mut placed = false;
        for i in 0..db.len() {
            if rng.gen_pct(fragment_pct) {
                let _ = state.insert(i, universal.project(db.scheme(i).attrs()));
                placed = true;
            }
        }
        if !placed {
            let _ = state.insert(0, universal.project(db.scheme(0).attrs()));
        }
    }
    if corrupt && entities >= 2 {
        let i = rng.gen_range(0, db.len());
        let a = rng.gen_range(0, entities);
        let b = (a + 1 + rng.gen_range(0, entities - 1)) % entities;
        let _ = state.insert(i, corrupt_tuple(db, symbols, i, a, b));
    }
    state
}

/// A tuple for an op: a fragment of an existing or fresh entity, a
/// corrupt two-entity mix, or a replay of a tuple already in the pool.
fn gen_tuple(
    db: &DatabaseScheme,
    symbols: &mut SymbolTable,
    rng: &mut SplitMix64,
    entities: usize,
    pool: &[(usize, Tuple)],
) -> (usize, Tuple) {
    if !pool.is_empty() && rng.gen_pct(40) {
        return pool[rng.gen_range(0, pool.len())].clone();
    }
    let i = rng.gen_range(0, db.len());
    let t = if entities >= 2 && rng.gen_pct(35) {
        let a = rng.gen_range(0, entities);
        let b = (a + 1 + rng.gen_range(0, entities - 1)) % entities;
        corrupt_tuple(db, symbols, i, a, b)
    } else {
        // Mostly existing entities (interesting chases), sometimes fresh.
        let id = rng.gen_range(0, entities + 2);
        entity_tuple(db, symbols, id).project(db.scheme(i).attrs())
    };
    (i, t)
}

/// A projection attribute set: a relation's own attributes (always
/// expressible) or a random 1–3 attribute subset (exercises extension
/// joins and the `None`-expression fallback).
fn gen_attrs(db: &DatabaseScheme, rng: &mut SplitMix64) -> AttrSet {
    if rng.gen_pct(50) {
        return db.scheme(rng.gen_range(0, db.len())).attrs();
    }
    let all: Vec<_> = db.universe().iter().collect();
    let k = rng.gen_range_inclusive(1, 3.min(all.len()));
    let mut x = AttrSet::empty();
    while x.len() < k {
        x.insert(all[rng.gen_range(0, all.len())]);
    }
    x
}

/// Generates the complete case for `seed`. Deterministic: the same seed
/// always produces the same case.
pub fn gen_case(seed: u64) -> Case {
    let mut rng = SplitMix64::new(seed);
    let db = gen_scheme(&mut rng);
    let mut symbols = SymbolTable::new();
    let entities = rng.gen_range_inclusive(2, 6);
    let fragment_pct = 40 + 10 * rng.gen_range(0, 6) as u32;
    let corrupt = rng.gen_pct(30);
    let state = gen_state(&db, &mut symbols, &mut rng, entities, fragment_pct, corrupt);

    // Pool of deletable/replayable tuples, fed by the state and by
    // generated inserts.
    let mut pool: Vec<(usize, Tuple)> =
        state.iter_all().map(|(i, t)| (i, t.clone())).collect();
    let nops = rng.gen_range_inclusive(3, 10);
    let mut ops = Vec::with_capacity(nops);
    for _ in 0..nops {
        let op = match rng.gen_range(0, 100) {
            0..=24 => {
                let (rel, t) = gen_tuple(&db, &mut symbols, &mut rng, entities, &pool);
                pool.push((rel, t.clone()));
                Op::Insert { rel, t }
            }
            25..=39 => {
                let (rel, t) = gen_tuple(&db, &mut symbols, &mut rng, entities, &pool);
                Op::Delete { rel, t }
            }
            40..=59 => Op::Query { x: gen_attrs(&db, &mut rng) },
            60..=69 => {
                let (rel, t) = gen_tuple(&db, &mut symbols, &mut rng, entities, &pool);
                pool.push((rel, t.clone()));
                Op::BudgetInsert { steps: rng.gen_range(0, 3) as u64, rel, t }
            }
            70..=77 => {
                let (rel, t) = gen_tuple(&db, &mut symbols, &mut rng, entities, &pool);
                Op::BudgetDelete { steps: rng.gen_range(0, 3) as u64, rel, t }
            }
            78..=83 => Op::BudgetQuery {
                steps: rng.gen_range(0, 3) as u64,
                x: gen_attrs(&db, &mut rng),
            },
            84..=89 => Op::Explain { x: gen_attrs(&db, &mut rng) },
            90..=94 => Op::Poison,
            _ => {
                let (rel, t) = gen_tuple(&db, &mut symbols, &mut rng, entities, &pool);
                Op::FaultInsert {
                    nth: 1 + rng.gen_range(0, 4) as u64,
                    kind: if rng.gen_pct(50) {
                        FaultKind::Transient
                    } else {
                        FaultKind::Permanent
                    },
                    rel,
                    t,
                }
            }
        };
        ops.push(op);
    }
    Case {
        seed,
        db,
        symbols,
        state,
        ops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_seed_deterministic() {
        for seed in [0u64, 1, 42, 0xDEAD_BEEF] {
            let a = gen_case(seed);
            let b = gen_case(seed);
            assert_eq!(a.render(), b.render(), "seed {seed}");
        }
    }

    #[test]
    fn generated_cases_round_trip_through_the_fixture_format() {
        for seed in 0..50u64 {
            let case = gen_case(seed);
            let text = case.render();
            let back = Case::parse(&text).unwrap_or_else(|e| {
                panic!("seed {seed}: fixture does not parse: {e}\n{text}")
            });
            assert_eq!(back.render(), text, "seed {seed}");
        }
    }

    #[test]
    fn generation_covers_the_op_and_scheme_space() {
        let mut kinds = [false; 9];
        let mut non_ir = false;
        for seed in 0..300u64 {
            let case = gen_case(seed);
            non_ir |= !idr_core::recognition::recognize(
                &case.db,
                &idr_fd::KeyDeps::of(&case.db),
            )
            .is_accepted();
            for op in &case.ops {
                let k = match op {
                    Op::Insert { .. } => 0,
                    Op::Delete { .. } => 1,
                    Op::Query { .. } => 2,
                    Op::Explain { .. } => 3,
                    Op::BudgetInsert { .. } => 4,
                    Op::BudgetDelete { .. } => 5,
                    Op::BudgetQuery { .. } => 6,
                    Op::Poison => 7,
                    Op::FaultInsert { .. } => 8,
                };
                kinds[k] = true;
            }
        }
        assert!(kinds.iter().all(|&k| k), "unexercised op kind: {kinds:?}");
        assert!(non_ir, "no non-IR scheme in 300 seeds");
    }
}
