//! Fuzz cases and the replayable corpus text format.
//!
//! A [`Case`] is one self-contained differential-fuzzing input: a scheme,
//! an initial state, and an operation sequence, all derived from one
//! seed. Cases render to (and parse from) a plain-text fixture so a
//! shrunken failure can be checked into `tests/corpus/` and replayed by
//! `idr fuzz --replay` and the `corpus_replay` test forever.
//!
//! ## Fixture format
//!
//! ```text
//! # free-form comments
//! seed: 42
//! scheme:
//! universe: K A0 A1 A2
//! scheme R0: K A0 keys K
//! state:
//! R0: K=k A0=x0
//! ops:
//! insert R1: K=k A1=y
//! bdelete steps=0 R0: K=k A0=x0
//! query K A0
//! poison
//! finsert nth=1 kind=permanent R1: K=k A1=z
//! ```
//!
//! The `scheme:` and `state:` sections reuse the `idr` CLI's file
//! formats verbatim ([`idr_relation::parse`]); the `ops:` section is one
//! operation per line, with tuples written as quoted-free state lines.

use idr_relation::exec::FaultKind;
use idr_relation::parse::{
    parse_scheme, parse_tuple_line, render_scheme_file, render_tuple_line,
};
use idr_relation::{AttrSet, DatabaseScheme, DatabaseState, SymbolTable, Tuple};

/// One step of a fuzz case, interpreted in lockstep against every oracle.
#[derive(Clone, Debug, PartialEq)]
pub enum Op {
    /// Unbudgeted insert of `t` into relation `rel`.
    Insert {
        /// Target relation index.
        rel: usize,
        /// The tuple (total on the relation's attributes).
        t: Tuple,
    },
    /// Unbudgeted delete of `t` from relation `rel`.
    Delete {
        /// Target relation index.
        rel: usize,
        /// The tuple to remove.
        t: Tuple,
    },
    /// X-total projection, compared across all four oracles.
    Query {
        /// The projection attributes.
        x: AttrSet,
    },
    /// Provenance probe: every answer tuple must have a chase witness.
    Explain {
        /// The projection attributes.
        x: AttrSet,
    },
    /// Insert under a chase-step budget — exercises guard trips at the
    /// step boundary (the sessions must stay atomic).
    BudgetInsert {
        /// `max_chase_steps` for this op's guard.
        steps: u64,
        /// Target relation index.
        rel: usize,
        /// The tuple.
        t: Tuple,
    },
    /// Delete under a chase-step budget.
    BudgetDelete {
        /// `max_chase_steps` for this op's guard.
        steps: u64,
        /// Target relation index.
        rel: usize,
        /// The tuple.
        t: Tuple,
    },
    /// Query under a chase-step budget.
    BudgetQuery {
        /// `max_chase_steps` for this op's guard.
        steps: u64,
        /// The projection attributes.
        x: AttrSet,
    },
    /// Poisons both engines' expression caches the way a panicked
    /// evaluation thread would; the interpreter then asserts the next
    /// query surfaces a typed error and the one after recovers.
    Poison,
    /// Runs Algorithm 2 maintenance for `(rel, t)` under a
    /// [`FaultInjector`](idr_core::exec::FaultInjector) firing on the
    /// `nth` selection, and checks the fault contract against the
    /// fault-free baseline. Does not modify the state.
    FaultInsert {
        /// 1-based selection call that faults.
        nth: u64,
        /// Transient (retried) or permanent (surfaces immediately).
        kind: FaultKind,
        /// Target relation index.
        rel: usize,
        /// The tuple.
        t: Tuple,
    },
}

impl Op {
    /// The relation index this op targets, when it targets one.
    pub fn rel(&self) -> Option<usize> {
        match self {
            Op::Insert { rel, .. }
            | Op::Delete { rel, .. }
            | Op::BudgetInsert { rel, .. }
            | Op::BudgetDelete { rel, .. }
            | Op::FaultInsert { rel, .. } => Some(*rel),
            _ => None,
        }
    }
}

/// A complete fuzz case: everything needed to replay one differential
/// run. The symbol table is part of the case so tuples render back to
/// the values they were generated from.
#[derive(Clone, Debug)]
pub struct Case {
    /// The generator seed this case was derived from (0 for hand-written
    /// fixtures).
    pub seed: u64,
    /// The scheme under test.
    pub db: DatabaseScheme,
    /// Interned constants for `state` and the op tuples.
    pub symbols: SymbolTable,
    /// The initial state.
    pub state: DatabaseState,
    /// The op sequence.
    pub ops: Vec<Op>,
}

fn render_attrs(db: &DatabaseScheme, x: AttrSet) -> String {
    let u = db.universe();
    x.iter().map(|a| u.name(a)).collect::<Vec<_>>().join(" ")
}

fn parse_attrs(db: &DatabaseScheme, toks: &str) -> Result<AttrSet, String> {
    let mut x = AttrSet::empty();
    for tok in toks.split_whitespace() {
        let a = db
            .universe()
            .attr(tok)
            .ok_or_else(|| format!("unknown attribute {tok:?}"))?;
        x.insert(a);
    }
    if x.is_empty() {
        return Err("empty attribute list".to_string());
    }
    Ok(x)
}

/// Strips one `key=value` prefix token (e.g. `steps=0`) off `rest`.
fn take_kv<'a>(rest: &'a str, key: &str) -> Result<(&'a str, &'a str), String> {
    let rest = rest.trim_start();
    let (tok, tail) = rest.split_once(char::is_whitespace).unwrap_or((rest, ""));
    let value = tok
        .strip_prefix(key)
        .and_then(|t| t.strip_prefix('='))
        .ok_or_else(|| format!("expected {key}=..., got {tok:?}"))?;
    Ok((value, tail))
}

impl Op {
    /// Renders the op as one `ops:`-section line.
    pub fn render(&self, db: &DatabaseScheme, symbols: &SymbolTable) -> String {
        let tl = |rel: &usize, t: &Tuple| render_tuple_line(db, symbols, *rel, t);
        match self {
            Op::Insert { rel, t } => format!("insert {}", tl(rel, t)),
            Op::Delete { rel, t } => format!("delete {}", tl(rel, t)),
            Op::Query { x } => format!("query {}", render_attrs(db, *x)),
            Op::Explain { x } => format!("explain {}", render_attrs(db, *x)),
            Op::BudgetInsert { steps, rel, t } => {
                format!("binsert steps={steps} {}", tl(rel, t))
            }
            Op::BudgetDelete { steps, rel, t } => {
                format!("bdelete steps={steps} {}", tl(rel, t))
            }
            Op::BudgetQuery { steps, x } => {
                format!("bquery steps={steps} {}", render_attrs(db, *x))
            }
            Op::Poison => "poison".to_string(),
            Op::FaultInsert { nth, kind, rel, t } => {
                let kind = match kind {
                    FaultKind::Transient => "transient",
                    FaultKind::Permanent => "permanent",
                };
                format!("finsert nth={nth} kind={kind} {}", tl(rel, t))
            }
        }
    }

    /// Parses one `ops:`-section line.
    pub fn parse(
        line: &str,
        db: &DatabaseScheme,
        symbols: &mut SymbolTable,
    ) -> Result<Op, String> {
        let (verb, rest) = line
            .trim()
            .split_once(char::is_whitespace)
            .unwrap_or((line.trim(), ""));
        let tuple = |rest: &str, symbols: &mut SymbolTable| parse_tuple_line(rest, db, symbols);
        match verb {
            "insert" => tuple(rest, symbols).map(|(rel, t)| Op::Insert { rel, t }),
            "delete" => tuple(rest, symbols).map(|(rel, t)| Op::Delete { rel, t }),
            "query" => parse_attrs(db, rest).map(|x| Op::Query { x }),
            "explain" => parse_attrs(db, rest).map(|x| Op::Explain { x }),
            "binsert" | "bdelete" => {
                let (steps, tail) = take_kv(rest, "steps")?;
                let steps = steps
                    .parse::<u64>()
                    .map_err(|_| format!("steps needs an unsigned integer, got {steps:?}"))?;
                let (rel, t) = tuple(tail, symbols)?;
                Ok(if verb == "binsert" {
                    Op::BudgetInsert { steps, rel, t }
                } else {
                    Op::BudgetDelete { steps, rel, t }
                })
            }
            "bquery" => {
                let (steps, tail) = take_kv(rest, "steps")?;
                let steps = steps
                    .parse::<u64>()
                    .map_err(|_| format!("steps needs an unsigned integer, got {steps:?}"))?;
                parse_attrs(db, tail).map(|x| Op::BudgetQuery { steps, x })
            }
            "poison" => Ok(Op::Poison),
            "finsert" => {
                let (nth, tail) = take_kv(rest, "nth")?;
                let nth = nth
                    .parse::<u64>()
                    .map_err(|_| format!("nth needs an unsigned integer, got {nth:?}"))?;
                let (kind, tail) = take_kv(tail, "kind")?;
                let kind = match kind {
                    "transient" => FaultKind::Transient,
                    "permanent" => FaultKind::Permanent,
                    other => return Err(format!("unknown fault kind {other:?}")),
                };
                let (rel, t) = tuple(tail, symbols)?;
                Ok(Op::FaultInsert { nth, kind, rel, t })
            }
            other => Err(format!("unknown op {other:?}")),
        }
    }
}

impl Case {
    /// Renders the case as a replayable corpus fixture.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("# idr-oracle corpus fixture — replay with `idr fuzz --replay <file>`\n");
        out.push_str(&format!("seed: {}\n", self.seed));
        out.push_str("scheme:\n");
        out.push_str(&render_scheme_file(&self.db));
        out.push_str("state:\n");
        for (i, t) in self.state.iter_all() {
            out.push_str(&render_tuple_line(&self.db, &self.symbols, i, t));
            out.push('\n');
        }
        out.push_str("ops:\n");
        for op in &self.ops {
            out.push_str(&op.render(&self.db, &self.symbols));
            out.push('\n');
        }
        out
    }

    /// Parses a corpus fixture back into a case.
    pub fn parse(text: &str) -> Result<Case, String> {
        #[derive(PartialEq)]
        enum Section {
            Preamble,
            Scheme,
            State,
            Ops,
        }
        let mut section = Section::Preamble;
        let mut seed = 0u64;
        let mut scheme_lines = String::new();
        let mut state_lines: Vec<(usize, String)> = Vec::new();
        let mut op_lines: Vec<(usize, String)> = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let at = |msg: String| format!("line {}: {msg}", lineno + 1);
            match line {
                "scheme:" => section = Section::Scheme,
                "state:" => section = Section::State,
                "ops:" => section = Section::Ops,
                _ => match section {
                    Section::Preamble => {
                        let rest = line
                            .strip_prefix("seed:")
                            .ok_or_else(|| at(format!("expected 'seed: N', got {line:?}")))?;
                        seed = rest.trim().parse::<u64>().map_err(|_| {
                            at(format!("seed needs an unsigned integer, got {:?}", rest.trim()))
                        })?;
                    }
                    Section::Scheme => {
                        scheme_lines.push_str(line);
                        scheme_lines.push('\n');
                    }
                    Section::State => state_lines.push((lineno, line.to_string())),
                    Section::Ops => op_lines.push((lineno, line.to_string())),
                },
            }
        }
        let db = parse_scheme(&scheme_lines)?;
        let mut symbols = SymbolTable::new();
        let mut state = DatabaseState::empty(&db);
        for (lineno, line) in &state_lines {
            let (i, t) = parse_tuple_line(line, &db, &mut symbols)
                .map_err(|e| format!("line {}: {e}", lineno + 1))?;
            state
                .insert(i, t)
                .map_err(|e| format!("line {}: {e}", lineno + 1))?;
        }
        let mut ops = Vec::with_capacity(op_lines.len());
        for (lineno, line) in &op_lines {
            ops.push(
                Op::parse(line, &db, &mut symbols)
                    .map_err(|e| format!("line {}: {e}", lineno + 1))?,
            );
        }
        if ops.is_empty() && state_lines.is_empty() {
            return Err("fixture has neither state nor ops".to_string());
        }
        Ok(Case {
            seed,
            db,
            symbols,
            state,
            ops,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_case() -> Case {
        let db = idr_workload::generators::star_scheme(2);
        let u = db.universe().clone();
        let mut symbols = SymbolTable::new();
        let mut state = DatabaseState::empty(&db);
        let k = symbols.intern("k0");
        let t0 = Tuple::from_pairs([(u.attr_of("K"), k), (u.attr_of("A0"), symbols.intern("x"))]);
        state.insert(0, t0.clone()).unwrap();
        let t1 = Tuple::from_pairs([(u.attr_of("K"), k), (u.attr_of("A1"), symbols.intern("y"))]);
        let x = AttrSet::from_iter([u.attr_of("K"), u.attr_of("A1")]);
        let ops = vec![
            Op::Insert { rel: 1, t: t1.clone() },
            Op::Query { x },
            Op::BudgetDelete { steps: 0, rel: 0, t: t0 },
            Op::BudgetQuery { steps: 1, x },
            Op::Explain { x },
            Op::Poison,
            Op::FaultInsert {
                nth: 1,
                kind: FaultKind::Permanent,
                rel: 1,
                t: t1,
            },
        ];
        Case {
            seed: 7,
            db,
            symbols,
            state,
            ops,
        }
    }

    #[test]
    fn fixtures_round_trip() {
        let case = sample_case();
        let text = case.render();
        let back = Case::parse(&text).unwrap();
        assert_eq!(back.seed, case.seed);
        assert_eq!(back.db.len(), case.db.len());
        assert_eq!(back.state.total_tuples(), case.state.total_tuples());
        assert_eq!(back.ops, case.ops);
        // Idempotent: render(parse(render(c))) == render(c).
        assert_eq!(back.render(), text);
    }

    #[test]
    fn parse_rejects_garbage() {
        for (text, needle) in [
            ("seed: x\nscheme:\nuniverse: A\nscheme R: A keys A\n", "unsigned"),
            ("seed: 1\nscheme:\nuniverse: A\nscheme R: A keys A\nops:\nfly R: A=a\n", "unknown op"),
            ("seed: 1\nscheme:\nuniverse: A\nscheme R: A keys A\nops:\nbinsert R: A=a\n", "steps"),
            ("seed: 1\nscheme:\nuniverse: A\nscheme R: A keys A\n", "neither"),
            (
                "seed: 1\nscheme:\nuniverse: A\nscheme R: A keys A\nops:\nfinsert nth=1 kind=flaky R: A=a\n",
                "fault kind",
            ),
        ] {
            let err = Case::parse(text).unwrap_err();
            assert!(err.contains(needle), "{text:?} gave {err:?}");
        }
    }
}
