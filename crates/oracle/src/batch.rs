//! Batch-vs-serial differential fuzzing for the batch write pipeline.
//!
//! The eighth oracle arm (`idr fuzz --batch`). The batch path's whole
//! contract is *observational equivalence*: applying a framed op group
//! through [`WriteHandle::apply_batch`](idr_core::WriteHandle) must be
//! indistinguishable from applying its ops one by one — same per-op
//! verdicts, same final state, same consistency verdict, same query
//! answers. The chase makes that a theorem (Church–Rosser confluence
//! for pure-insert groups, explicit per-op replay for the rest), and
//! this arm checks it differentially:
//!
//! * the same generated op stream as the crash arm (accepted and
//!   rejected inserts, deletes of present and absent tuples) is cut
//!   into random frames — single ops, small mixed groups, and one big
//!   pure-insert prefix now and then — and applied through
//!   `apply_batch` over a **real durable store**;
//! * a second, purely in-memory hub applies the identical stream per
//!   op; verdicts are compared position by position, then state lines,
//!   verdict, and a probe projection;
//! * finally the batch run's data dir is recovered and its replayed
//!   state is diffed again — a logged batch must replay to exactly the
//!   state it applied (the batch WAL protocol logs *after* verdicts and
//!   *before* memory mutation, so log == memory is the invariant under
//!   test).
//!
//! Ops run under unlimited guards: a typed error from either side is
//! itself a failure, not a skip.

use std::sync::Arc;

use idr_core::serving::BatchOp;
use idr_core::Engine;
use idr_relation::exec::Guard;
use idr_relation::rng::SplitMix64;
use idr_relation::{DatabaseState, SymbolTable};
use idr_store::tempdir::TempDir;
use idr_store::{recover, SharedStore, Store};

use crate::crash::{answer_lines, gen_ops, gen_scheme, state_lines, CrashOp};

/// One case where the batch application diverged from per-op serial
/// application (or from its own recovery).
#[derive(Clone, Debug)]
pub struct BatchFailure {
    /// The per-case seed (reproduces the whole case).
    pub seed: u64,
    /// What disagreed (`verdict`, `state`, `consistency`, `answer`,
    /// `recovery`, `batch_error`, `setup`).
    pub kind: String,
    /// Human-readable detail.
    pub detail: String,
}

impl std::fmt::Display for BatchFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "seed {} [{}]: {}", self.seed, self.kind, self.detail)
    }
}

/// Outcome of a batch-fuzzing run.
#[derive(Clone, Debug, Default)]
pub struct BatchFuzzSummary {
    /// Cases (op streams × framings) executed.
    pub cases: usize,
    /// Total ops applied through the batch side.
    pub ops_run: usize,
    /// Total framed groups committed.
    pub groups: usize,
    /// Disagreements, in discovery order.
    pub failures: Vec<BatchFailure>,
}

impl BatchFuzzSummary {
    /// Whether every batch application matched serial application.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Cuts `n` ops into frame sizes. Mostly small mixed frames (1–4 ops);
/// one case in four opens with a single large frame so the pure-insert
/// fast path sees group sizes the small frames never produce.
fn gen_frames(n: usize, rng: &mut SplitMix64) -> Vec<usize> {
    let mut frames = Vec::new();
    let mut left = n;
    if rng.gen_pct(25) && n > 4 {
        let big = rng.gen_range_inclusive(4, n);
        frames.push(big);
        left -= big;
    }
    while left > 0 {
        let sz = rng.gen_range_inclusive(1, left.min(4));
        frames.push(sz);
        left -= sz;
    }
    frames
}

fn run_case(seed: u64, summary: &mut BatchFuzzSummary) {
    let mut rng = SplitMix64::new(seed);
    let db = gen_scheme(&mut rng);
    let mut case_symbols = SymbolTable::new();
    let ops = gen_ops(&db, &mut case_symbols, &mut rng);
    let probe = db.scheme(rng.gen_range(0, db.len())).attrs();
    let frames = gen_frames(ops.len(), &mut rng);
    let mut fail = |kind: &str, detail: String| {
        summary.failures.push(BatchFailure {
            seed,
            kind: kind.to_string(),
            detail,
        });
    };
    let guard = Guard::unlimited();

    // --- Batch side: framed groups over a real durable store -------------
    let live_dir = TempDir::new("batch-live");
    let store = match Store::init(live_dir.path(), &db) {
        Ok(s) => s.with_sync(false),
        Err(e) => return fail("setup", format!("init: {e}")),
    };
    let store = Arc::new(SharedStore::new(store));
    {
        let shared = store.symbols();
        shared
            .lock()
            .expect("fresh store symbol lock")
            .clone_from(&case_symbols);
    }
    let engine = Engine::new(db.clone());
    let mut batch_verdicts: Vec<bool> = Vec::with_capacity(ops.len());
    let batch_final;
    let batch_consistent;
    let batch_answer;
    {
        let base = DatabaseState::empty(&db);
        let hub = match engine.hub_with(&base, &guard, store.clone()) {
            Ok(h) => h,
            Err(e) => return fail("setup", format!("batch hub: {e}")),
        };
        let writer = hub.write_handle();
        let mut next = 0usize;
        for &sz in &frames {
            let group: Vec<BatchOp> = ops[next..next + sz]
                .iter()
                .map(|(is_insert, rel, t): &CrashOp| {
                    if *is_insert {
                        BatchOp::Insert {
                            rel: *rel,
                            t: t.clone(),
                        }
                    } else {
                        BatchOp::Delete {
                            rel: *rel,
                            t: t.clone(),
                        }
                    }
                })
                .collect();
            next += sz;
            match writer.apply_batch(&group, &guard) {
                Ok(vs) => batch_verdicts.extend(vs),
                Err(e) => return fail("batch_error", format!("group of {sz}: {e}")),
            }
            summary.groups += 1;
            summary.ops_run += sz;
        }
        let view = hub.read_view();
        batch_final = state_lines(&db, view.state(), &case_symbols);
        batch_consistent = view.is_consistent();
        batch_answer = match view.total_projection(probe, &guard) {
            Ok(a) => a.map(|ts| answer_lines(&db, &ts, &case_symbols)),
            Err(e) => return fail("batch_error", format!("batch probe: {e}")),
        };
    }
    drop(store);

    // --- Serial side: the same stream, one op at a time, in memory -------
    let serial_engine = Engine::new(db.clone());
    let hub = match serial_engine.hub(&DatabaseState::empty(&db), &guard) {
        Ok(h) => h,
        Err(e) => return fail("setup", format!("serial hub: {e}")),
    };
    let writer = hub.write_handle();
    let mut serial_verdicts: Vec<bool> = Vec::with_capacity(ops.len());
    for (k, (is_insert, rel, t)) in ops.iter().enumerate() {
        let r = if *is_insert {
            writer.insert(*rel, t.clone(), &guard)
        } else {
            writer.delete(*rel, t, &guard)
        };
        match r {
            Ok(v) => serial_verdicts.push(v),
            Err(e) => return fail("setup", format!("serial op {k}: {e}")),
        }
    }
    let view = hub.read_view();

    // --- Differential checks ----------------------------------------------
    if batch_verdicts != serial_verdicts {
        return fail(
            "verdict",
            format!("batch {batch_verdicts:?} != serial {serial_verdicts:?} (frames {frames:?})"),
        );
    }
    let serial_final = state_lines(&db, view.state(), &case_symbols);
    if batch_final != serial_final {
        return fail(
            "state",
            format!(
                "batch [{}] != serial [{}] (frames {frames:?})",
                batch_final.join("; "),
                serial_final.join("; ")
            ),
        );
    }
    if batch_consistent != view.is_consistent() {
        return fail(
            "consistency",
            format!(
                "batch consistent={batch_consistent} serial={}",
                view.is_consistent()
            ),
        );
    }
    let serial_answer = match view.total_projection(probe, &guard) {
        Ok(a) => a.map(|ts| answer_lines(&db, &ts, &case_symbols)),
        Err(e) => return fail("setup", format!("serial probe: {e}")),
    };
    if batch_answer != serial_answer {
        return fail(
            "answer",
            format!("batch {batch_answer:?} != serial {serial_answer:?}"),
        );
    }

    // --- Recovery: the logged batches must replay to the applied state ---
    let recovered = match recover::recover(live_dir.path()) {
        Ok(r) => r,
        Err(e) => return fail("recovery", format!("recover: {e}")),
    };
    let rec_symbols = recovered.store.symbols();
    let rec_symbols = rec_symbols.lock().expect("recovered symbol lock");
    let rec_lines = state_lines(&db, &recovered.state, &rec_symbols);
    if rec_lines != batch_final {
        return fail(
            "recovery",
            format!(
                "recovered [{}] != applied [{}] (frames {frames:?})",
                rec_lines.join("; "),
                batch_final.join("; ")
            ),
        );
    }
    if recovered.consistent != batch_consistent {
        fail(
            "recovery",
            format!(
                "recovered consistent={} applied={batch_consistent}",
                recovered.consistent
            ),
        );
    }
}

/// Runs `cases` batch-equivalence cases from master seed `seed`;
/// per-case seeds are drawn from the master stream (same convention as
/// [`crate::fuzz`]). `progress` is called after each case with
/// `(index, failures so far)`.
pub fn batch_fuzz(
    seed: u64,
    cases: usize,
    mut progress: Option<&mut dyn FnMut(usize, usize)>,
) -> BatchFuzzSummary {
    let mut master = SplitMix64::new(seed);
    let mut summary = BatchFuzzSummary::default();
    for k in 0..cases {
        let case_seed = master.next_u64();
        summary.cases += 1;
        run_case(case_seed, &mut summary);
        if let Some(p) = progress.as_mut() {
            p(k + 1, summary.failures.len());
        }
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_fuzz_smoke_is_clean() {
        let summary = batch_fuzz(0xBA7C4, 25, None);
        assert_eq!(summary.cases, 25);
        assert!(summary.groups > 0 && summary.ops_run > 0);
        assert!(
            summary.is_clean(),
            "batch != serial: {:?}",
            summary.failures
        );
    }

    #[test]
    fn frames_partition_exactly() {
        let mut rng = SplitMix64::new(7);
        for n in 1..40 {
            let frames = gen_frames(n, &mut rng);
            assert_eq!(frames.iter().sum::<usize>(), n);
            assert!(frames.iter().all(|&f| f > 0));
        }
    }
}
