//! Greedy minimisation of failing cases.
//!
//! A raw divergence from the fuzzer usually carries a lot of freight:
//! ops that never ran, state tuples the failing chase never touched,
//! whole relations nothing references. The shrinker runs a greedy
//! fixpoint over three reduction passes — drop an op, drop a state
//! tuple, drop an unreferenced relation scheme — keeping a candidate
//! only when it still diverges *with the same kind* (so a shrink cannot
//! silently slide from one bug onto a different one). Relation drops
//! revalidate the invariants generation guarantees: the remaining
//! schemes must still cover the universe and satisfy the standing
//! assumption (declared keys = candidate keys under the induced fds).
//!
//! Each pass is deterministic, so a shrunken fixture is as replayable
//! as the seed that produced it.

use idr_fd::keys::candidate_keys;
use idr_fd::KeyDeps;
use idr_relation::{DatabaseScheme, DatabaseState};

use crate::interp::Divergence;
use crate::ops::{Case, Op};
use crate::run_case_guarded;

/// Whether `case` still fails with the same divergence kind.
fn still_fails(case: &Case, kind: &str) -> bool {
    matches!(run_case_guarded(case), Err(d) if d.kind == kind)
}

/// Candidate with op `i` removed.
fn drop_op(case: &Case, i: usize) -> Case {
    let mut c = case.clone();
    c.ops.remove(i);
    c
}

/// Candidate with the `j`-th tuple of relation `rel` removed from the
/// initial state.
fn drop_state_tuple(case: &Case, rel: usize, j: usize) -> Case {
    let mut c = case.clone();
    let t = c.state.relation(rel).sorted_tuples()[j].clone();
    let _ = c.state.remove(rel, &t);
    c
}

/// Candidate with relation scheme `i` dropped entirely (state rebuilt,
/// op indices remapped). `None` when an op references it, the remaining
/// schemes no longer cover the universe, or the standing assumption
/// breaks.
fn drop_relation(case: &Case, i: usize) -> Option<Case> {
    if case.db.len() <= 1 || case.ops.iter().any(|op| op.rel() == Some(i)) {
        return None;
    }
    let schemes = case
        .db
        .schemes()
        .iter()
        .enumerate()
        .filter(|&(j, _)| j != i)
        .map(|(_, s)| s.clone())
        .collect();
    let db = DatabaseScheme::new(case.db.universe().clone(), schemes).ok()?;
    let kd = KeyDeps::of(&db);
    for j in 0..db.len() {
        if candidate_keys(kd.full(), db.scheme(j).attrs()) != db.scheme(j).keys() {
            return None;
        }
    }
    let mut state = DatabaseState::empty(&db);
    for (j, t) in case.state.iter_all() {
        if j != i {
            let _ = state.insert(if j > i { j - 1 } else { j }, t.clone());
        }
    }
    let remap = |r: usize| if r > i { r - 1 } else { r };
    let ops = case
        .ops
        .iter()
        .map(|op| match op.clone() {
            Op::Insert { rel, t } => Op::Insert { rel: remap(rel), t },
            Op::Delete { rel, t } => Op::Delete { rel: remap(rel), t },
            Op::BudgetInsert { steps, rel, t } => {
                Op::BudgetInsert { steps, rel: remap(rel), t }
            }
            Op::BudgetDelete { steps, rel, t } => {
                Op::BudgetDelete { steps, rel: remap(rel), t }
            }
            Op::FaultInsert { nth, kind, rel, t } => {
                Op::FaultInsert { nth, kind, rel: remap(rel), t }
            }
            other => other,
        })
        .collect();
    Some(Case {
        seed: case.seed,
        db,
        symbols: case.symbols.clone(),
        state,
        ops,
    })
}

/// Greedily minimises `case`, preserving the divergence `kind` of the
/// original failure. Returns the smallest case found and the divergence
/// it still produces.
pub fn shrink(case: &Case, original: &Divergence) -> (Case, Divergence) {
    let kind = original.kind.clone();
    let mut best = case.clone();
    loop {
        let mut improved = false;

        // Pass 1: drop ops, scanning from the end so indices stay valid.
        let mut i = best.ops.len();
        while i > 0 {
            i -= 1;
            let cand = drop_op(&best, i);
            if still_fails(&cand, &kind) {
                best = cand;
                improved = true;
            }
        }

        // Pass 2: drop initial-state tuples.
        for rel in 0..best.db.len() {
            let mut j = best.state.relation(rel).len();
            while j > 0 {
                j -= 1;
                let cand = drop_state_tuple(&best, rel, j);
                if still_fails(&cand, &kind) {
                    best = cand;
                    improved = true;
                }
            }
        }

        // Pass 3: drop unreferenced relation schemes.
        let mut rel = best.db.len();
        while rel > 0 {
            rel -= 1;
            if let Some(cand) = drop_relation(&best, rel) {
                if still_fails(&cand, &kind) {
                    best = cand;
                    improved = true;
                }
            }
        }

        if !improved {
            break;
        }
    }
    let d = run_case_guarded(&best)
        .expect_err("shrink invariant: the minimised case still diverges");
    (best, d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::gen_case;

    #[test]
    fn op_and_tuple_drops_strictly_reduce() {
        let case = gen_case(3);
        assert!(!case.ops.is_empty());
        assert_eq!(drop_op(&case, 0).ops.len(), case.ops.len() - 1);
        let rel = (0..case.db.len())
            .find(|&i| !case.state.relation(i).is_empty())
            .expect("generated states are nonempty");
        let cand = drop_state_tuple(&case, rel, 0);
        assert_eq!(
            cand.state.relation(rel).len(),
            case.state.relation(rel).len() - 1
        );
    }

    /// `drop_relation` must remap op indices into range and keep the
    /// reduced scheme valid (universe cover + standing assumption); the
    /// reduced case must still be runnable by the interpreter.
    #[test]
    fn relation_drops_remap_and_revalidate() {
        let mut dropped = 0;
        for seed in 0..120u64 {
            let case = gen_case(seed);
            for i in 0..case.db.len() {
                let Some(cand) = drop_relation(&case, i) else {
                    continue;
                };
                dropped += 1;
                assert_eq!(cand.db.len(), case.db.len() - 1, "seed {seed}");
                assert_eq!(cand.ops.len(), case.ops.len(), "seed {seed}");
                for op in &cand.ops {
                    if let Some(r) = op.rel() {
                        assert!(r < cand.db.len(), "seed {seed}: op out of range");
                    }
                }
                let kd = KeyDeps::of(&cand.db);
                for j in 0..cand.db.len() {
                    assert_eq!(
                        candidate_keys(kd.full(), cand.db.scheme(j).attrs()),
                        cand.db.scheme(j).keys().to_vec(),
                        "seed {seed}: standing assumption broken"
                    );
                }
                // The reduced case must replay without harness errors
                // (divergence-free, since the engine under test is sound).
                assert!(run_case_guarded(&cand).is_ok(), "seed {seed}");
            }
            if dropped >= 3 {
                return;
            }
        }
        panic!("no droppable relation in 120 seeds");
    }
}
