//! `idr-oracle` — seed-deterministic differential fuzzing for the
//! independence-reducible engine.
//!
//! The paper proves that on independence-reducible schemes three very
//! different evaluation strategies must agree: Theorem 4.1's chase-free
//! projection expressions, Theorem 4.2's block-parallel evaluation, and
//! the naive from-scratch chase they both shortcut. That redundancy is a
//! free test oracle, and this crate weaponises it:
//!
//! * [`gen::gen_case`] derives a complete `(scheme, state, ops)` case
//!   from a single `u64` seed through the vendored SplitMix64 — no
//!   external randomness, no flaky reruns;
//! * [`interp::run_case`] replays the ops against four oracles in
//!   lockstep (parallel session, serial session, naive chase, Theorem
//!   4.1 expressions) and checks verdict/answer/trace agreement plus
//!   post-`Err` atomicity invariants after budget trips and injected
//!   faults;
//! * [`shrink::shrink`] greedily minimises a failing case while
//!   preserving its divergence kind;
//! * [`ops::Case`] renders to/parses from a line-oriented fixture format
//!   so every failure is a replayable file under `tests/corpus/`.
//!
//! The top-level [`fuzz`] driver ties these together for the `idr fuzz`
//! CLI subcommand and the CI smoke run.
//!
//! A fifth oracle arrived with the durability layer:
//! [`crash::crash_fuzz`] runs durable op streams against a real data
//! dir, kills the write-ahead log at every byte boundary, recovers, and
//! checks the recovered session against the in-memory session that
//! never crashed (`idr fuzz --crash`).
//!
//! A sixth arm covers replication: [`sync_fuzz::sync_fuzz`] partitions
//! random op streams across simulated replicas under random fault
//! plans (drop, delay, duplication, partition, crash mid-sync) and
//! asserts that after quiescence every replica's rendered state,
//! verdict, and query answers match a never-partitioned baseline
//! (`idr fuzz --sync`), shrinking failures to replayable scenario
//! files.
//!
//! The seventh arm targets the concurrent serving layer:
//! [`concurrent::concurrent_fuzz`] races client threads over one hub,
//! records the committed op order through the durability sink, and
//! asserts that a serial replay of that order reproduces the
//! concurrent final state byte for byte — Theorem 4.2's commutation
//! claim under real threads (`idr fuzz --concurrent`). Its crash-side
//! twin, [`crash::concurrent_crash_fuzz`], cuts a group-commit WAL at
//! every byte, mid-batch included (`idr fuzz --crash --concurrent`).
//!
//! The eighth arm pins the batch write pipeline:
//! [`batch::batch_fuzz`] cuts generated op streams into framed groups,
//! applies them through `WriteHandle::apply_batch` over a real durable
//! store, and diffs per-op verdicts, state, verdict and probe answers
//! against per-op serial application — then recovers the data dir and
//! diffs again (`idr fuzz --batch`).

#![warn(missing_docs)]
pub mod batch;
pub mod concurrent;
pub mod crash;
pub mod gen;
pub mod interp;
pub mod ops;
pub mod shrink;
pub mod sync_fuzz;

use std::panic::{catch_unwind, AssertUnwindSafe};

pub use batch::{batch_fuzz, BatchFailure, BatchFuzzSummary};
pub use concurrent::{
    concurrent_fuzz, concurrent_fuzz_with, ConcurrentFailure, ConcurrentFuzzSummary,
};
pub use crash::{concurrent_crash_fuzz, crash_fuzz, CrashFailure, CrashFuzzSummary};
pub use interp::{CaseReport, Divergence};
pub use ops::Case;
pub use sync_fuzz::{sync_fuzz, SyncFailure, SyncFuzzSummary};

/// [`interp::run_case`] with a panic shield: an oracle (or the engine
/// under test) panicking is itself a reportable divergence, not a fuzzer
/// crash. Used by both the driver and the shrinker.
pub fn run_case_guarded(case: &Case) -> Result<CaseReport, Divergence> {
    match catch_unwind(AssertUnwindSafe(|| interp::run_case(case))) {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            Err(Divergence {
                step: None,
                op: None,
                kind: "panic".to_string(),
                detail: format!("case panicked: {msg}"),
            })
        }
    }
}

/// One failing case: the divergence, the case that produced it, and (if
/// shrinking was requested) its minimised form.
#[derive(Clone, Debug)]
pub struct Failure {
    /// Seed of the generated case.
    pub seed: u64,
    /// What disagreed.
    pub divergence: Divergence,
    /// The original generated case.
    pub case: Case,
    /// The shrunken case and its (same-kind) divergence, when requested.
    pub shrunk: Option<(Case, Divergence)>,
}

/// Outcome of a fuzzing run.
#[derive(Clone, Debug, Default)]
pub struct FuzzSummary {
    /// Cases generated and executed.
    pub cases: usize,
    /// Total ops executed across clean cases.
    pub ops_run: usize,
    /// Cases whose final state was consistent.
    pub consistent: usize,
    /// Divergent cases, in discovery order.
    pub failures: Vec<Failure>,
}

impl FuzzSummary {
    /// Whether every case agreed across all four oracles.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Runs `cases` generated cases starting from master seed `seed`; each
/// case's own seed is drawn from the master SplitMix64 stream, so a
/// failure is reproducible from its per-case seed alone. With `shrink`,
/// failing cases are greedily minimised. `progress` (if given) is called
/// after every case with `(index, failures so far)`.
pub fn fuzz(
    seed: u64,
    cases: usize,
    shrink_failures: bool,
    mut progress: Option<&mut dyn FnMut(usize, usize)>,
) -> FuzzSummary {
    let mut master = idr_relation::rng::SplitMix64::new(seed);
    let mut summary = FuzzSummary::default();
    for k in 0..cases {
        let case_seed = master.next_u64();
        let case = gen::gen_case(case_seed);
        summary.cases += 1;
        match run_case_guarded(&case) {
            Ok(report) => {
                summary.ops_run += report.ops_run;
                summary.consistent += usize::from(report.final_consistent);
            }
            Err(divergence) => {
                let shrunk = shrink_failures
                    .then(|| shrink::shrink(&case, &divergence));
                summary.failures.push(Failure {
                    seed: case_seed,
                    divergence,
                    case,
                    shrunk,
                });
            }
        }
        if let Some(p) = progress.as_deref_mut() {
            p(k + 1, summary.failures.len());
        }
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A bounded end-to-end run over the real engine must be divergence
    /// free — this is the in-process version of the CI smoke run.
    #[test]
    fn bounded_fuzz_run_is_clean() {
        let summary = fuzz(42, 60, false, None);
        assert_eq!(summary.cases, 60);
        assert!(
            summary.is_clean(),
            "divergences: {}",
            summary
                .failures
                .iter()
                .map(|f| format!("seed {}: {}", f.seed, f.divergence))
                .collect::<Vec<_>>()
                .join("; ")
        );
        assert!(summary.ops_run > 0);
    }

    /// Same master seed, same run — byte-for-byte. (The shrinker's
    /// behaviour on real failures is pinned by the corpus fixtures in
    /// tests/corpus_replay.rs, which were produced by it.)
    #[test]
    fn fuzz_is_deterministic() {
        let a = fuzz(7, 25, false, None);
        let b = fuzz(7, 25, false, None);
        assert_eq!(a.cases, b.cases);
        assert_eq!(a.ops_run, b.ops_run);
        assert_eq!(a.consistent, b.consistent);
        assert_eq!(a.failures.len(), b.failures.len());
    }
}
