//! The lockstep interpreter: one case, four oracles, per-step invariants.
//!
//! Every case runs against:
//!
//! 1. **Hub (parallel)** — the production path: block-parallel
//!    evaluation, incremental inserts through a [`WriteHandle`], cached
//!    Theorem 4.1 expressions, snapshot queries through a `ReadView`.
//! 2. **Hub (serial)** — the same engine with parallelism off;
//!    must be *indistinguishable* from (1), including error classes.
//! 3. **Naive chase, from scratch** — a mirror of the base state is
//!    maintained by the interpreter and re-chased per step with
//!    [`idr_chase::is_consistent`]/[`idr_chase::total_projection`];
//!    verdicts and
//!    answers are ground truth.
//! 4. **Theorem 4.1 expressions vs. chase answers** — on IR schemes the
//!    hubs answer queries through cached expressions over the base
//!    state while oracle (3) chases; their agreement *is* the paper's
//!    boundedness claim. Explain probes cross-check the trace class: a
//!    tuple is in the answer iff some chased tableau row witnesses it.
//!
//! After any `Err` the interpreter additionally asserts the post-fault
//! invariants: the base state equals the mirror (failed ops are atomic)
//! and the witness probe still matches answer membership (no speculative
//! tableau rows keep answering).

use std::panic::{catch_unwind, AssertUnwindSafe};

use idr_core::engine::Engine;
use idr_core::serving::{Hub, WriteHandle};
use idr_core::exec::{FaultInjector, FaultPlan};
use idr_core::maintain::algorithm2;
use idr_core::maintain::IrMaintainer;
use idr_fd::KeyDeps;
use idr_relation::exec::{Budget, ExecError, FaultKind, Guard, RetryPolicy};
use idr_relation::{AttrSet, DatabaseScheme, DatabaseState, Tuple};

use crate::ops::{Case, Op};

/// A confirmed disagreement between oracles (or a broken invariant).
#[derive(Clone, Debug)]
pub struct Divergence {
    /// 0-based index of the op that diverged; `None` for the initial
    /// hub build.
    pub step: Option<usize>,
    /// Rendering of the offending op.
    pub op: Option<String>,
    /// Stable classification (`"answer"`, `"verdict"`, `"state"`,
    /// `"class"`, `"probe"`, `"explain"`, `"poison"`, `"maintain"`,
    /// `"panic"`, `"internal"`); the shrinker only accepts reductions
    /// that reproduce the same kind.
    pub kind: String,
    /// Human-readable description of what disagreed.
    pub detail: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match (&self.step, &self.op) {
            (Some(k), Some(op)) => {
                write!(f, "[{}] step {k} ({op}): {}", self.kind, self.detail)
            }
            _ => write!(f, "[{}] hub build: {}", self.kind, self.detail),
        }
    }
}

/// Summary of a clean (divergence-free) run.
#[derive(Clone, Copy, Debug)]
pub struct CaseReport {
    /// Ops executed.
    pub ops_run: usize,
    /// Final consistency verdict.
    pub final_consistent: bool,
}

fn diverge(
    step: Option<usize>,
    op: Option<&str>,
    kind: &str,
    detail: String,
) -> Divergence {
    Divergence {
        step,
        op: op.map(str::to_string),
        kind: kind.to_string(),
        detail,
    }
}

/// Canonical, comparable image of a state (DatabaseState has set
/// semantics but no `PartialEq`).
fn fingerprint(state: &DatabaseState) -> Vec<Vec<Tuple>> {
    state.relations().iter().map(|r| r.sorted_tuples()).collect()
}

fn err_class(e: &ExecError) -> &'static str {
    match e {
        ExecError::BudgetExceeded { .. } => "budget",
        ExecError::TimedOut { .. } => "timeout",
        ExecError::Cancelled => "cancelled",
        ExecError::Faulted { .. } => "fault",
        ExecError::Inconsistent { .. } => "inconsistent",
        ExecError::CapacityExceeded { .. } => "capacity",
    }
}

fn class_of<T: std::fmt::Debug>(r: &Result<T, ExecError>) -> String {
    match r {
        Ok(v) => format!("ok({v:?})"),
        Err(e) => format!("err({})", err_class(e)),
    }
}

fn naive_consistent(db: &DatabaseScheme, kd: &KeyDeps, state: &DatabaseState) -> bool {
    idr_chase::is_consistent(db, state, kd.full(), &Guard::unlimited())
        .expect("unlimited naive chase cannot trip")
}

fn naive_projection(
    db: &DatabaseScheme,
    kd: &KeyDeps,
    state: &DatabaseState,
    x: AttrSet,
) -> Option<Vec<Tuple>> {
    idr_chase::total_projection(db, state, kd.full(), x, &Guard::unlimited())
        .expect("unlimited naive chase cannot trip")
}

/// Budget allowing `steps` chase steps and nothing-else-limited.
fn step_guard(steps: u64) -> Guard {
    Guard::new(Budget::unlimited().with_max_chase_steps(steps))
}

/// Runs one case against all four oracles in lockstep.
pub fn run_case(case: &Case) -> Result<CaseReport, Divergence> {
    let db = &case.db;
    let kd = KeyDeps::of(db);
    let engine_par = Engine::new(db.clone()).with_parallel(true);
    let engine_ser = Engine::new(db.clone()).with_parallel(false);
    let unl = Guard::unlimited();
    let sp = engine_par
        .hub(&case.state, &unl)
        .map_err(|e| diverge(None, None, "internal", format!("parallel build: {e}")))?;
    let ss = engine_ser
        .hub(&case.state, &unl)
        .map_err(|e| diverge(None, None, "internal", format!("serial build: {e}")))?;
    let (wp, ws) = (sp.write_handle(), ss.write_handle());
    let mut mirror = case.state.clone();
    check_sync(None, None, &sp, &ss, &mirror, db, &kd)?;

    for (step, op) in case.ops.iter().enumerate() {
        let op_str = op.render(db, &case.symbols);
        let ctx = (Some(step), Some(op_str.as_str()));
        match op {
            Op::Insert { rel, t } => {
                apply_insert(ctx, (&sp, &wp), (&ss, &ws), &mut mirror, db, &kd, *rel, t, None)?;
            }
            Op::BudgetInsert { steps, rel, t } => {
                apply_insert(ctx, (&sp, &wp), (&ss, &ws), &mut mirror, db, &kd, *rel, t, Some(*steps))?;
            }
            Op::Delete { rel, t } => {
                apply_delete(ctx, (&sp, &wp), (&ss, &ws), &mut mirror, *rel, t, None)?;
            }
            Op::BudgetDelete { steps, rel, t } => {
                apply_delete(ctx, (&sp, &wp), (&ss, &ws), &mut mirror, *rel, t, Some(*steps))?;
            }
            Op::Query { x } => {
                run_query(ctx, &sp, &ss, &mirror, db, &kd, *x, None)?;
            }
            Op::BudgetQuery { steps, x } => {
                run_query(ctx, &sp, &ss, &mirror, db, &kd, *x, Some(*steps))?;
            }
            Op::Explain { x } => {
                run_explain(ctx, &sp, &ss, *x)?;
            }
            Op::Poison => {
                run_poison(ctx, &engine_par, &engine_ser, &sp, &ss, &mirror, db, &kd)?;
            }
            Op::FaultInsert { nth, kind, rel, t } => {
                run_fault_insert(ctx, &engine_par, &sp, &mirror, db, &kd, *nth, *kind, *rel, t)?;
            }
        }
        check_sync(Some(step), Some(&op_str), &sp, &ss, &mirror, db, &kd)?;
    }
    Ok(CaseReport {
        ops_run: case.ops.len(),
        final_consistent: sp.is_consistent(),
    })
}

/// After every op: both hubs' published snapshot states equal the
/// mirror, and all three oracles agree on the consistency verdict.
fn check_sync(
    step: Option<usize>,
    op: Option<&str>,
    sp: &Hub<'_>,
    ss: &Hub<'_>,
    mirror: &DatabaseState,
    db: &DatabaseScheme,
    kd: &KeyDeps,
) -> Result<(), Divergence> {
    let want = fingerprint(mirror);
    for (label, s) in [("parallel", sp), ("serial", ss)] {
        let view = s.read_view();
        if fingerprint(view.state()) != want {
            return Err(diverge(
                step,
                op,
                "state",
                format!("{label} hub snapshot state differs from the interpreter mirror"),
            ));
        }
    }
    let naive = naive_consistent(db, kd, mirror);
    for (label, s) in [("parallel", sp), ("serial", ss)] {
        if s.is_consistent() != naive {
            return Err(diverge(
                step,
                op,
                "verdict",
                format!(
                    "{label} hub says consistent={}, naive chase says {}",
                    s.is_consistent(),
                    naive
                ),
            ));
        }
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn apply_insert(
    (step, op): (Option<usize>, Option<&str>),
    (sp, wp): (&Hub<'_>, &WriteHandle<'_>),
    (ss, ws): (&Hub<'_>, &WriteHandle<'_>),
    mirror: &mut DatabaseState,
    db: &DatabaseScheme,
    kd: &KeyDeps,
    rel: usize,
    t: &Tuple,
    steps: Option<u64>,
) -> Result<(), Divergence> {
    let pre_consistent = naive_consistent(db, kd, mirror);
    let guard = || steps.map_or_else(Guard::unlimited, step_guard);
    let rp = wp.insert(rel, t.clone(), &guard());
    let rs = ws.insert(rel, t.clone(), &guard());
    if class_of(&rp) != class_of(&rs) {
        return Err(diverge(
            step,
            op,
            "class",
            format!("parallel {} vs serial {}", class_of(&rp), class_of(&rs)),
        ));
    }
    match &rp {
        Ok(accepted) => {
            if pre_consistent {
                // Oracle 3: the session verdict must match a from-scratch
                // chase of mirror ∪ {t}.
                let mut cand = mirror.clone();
                let _ = cand.insert(rel, t.clone()).map_err(|e| {
                    diverge(step, op, "internal", format!("mirror insert: {e}"))
                })?;
                let expected = naive_consistent(db, kd, &cand);
                if *accepted != expected {
                    return Err(diverge(
                        step,
                        op,
                        "verdict",
                        format!(
                            "sessions {} the insert, naive chase says consistent={expected}",
                            if *accepted { "accepted" } else { "rejected" }
                        ),
                    ));
                }
                if *accepted {
                    *mirror = cand;
                }
            } else if *accepted {
                let _ = mirror.insert(rel, t.clone());
            }
        }
        Err(_) => {
            // Failed inserts must be atomic; the explain-probe invariant
            // additionally pins the tableau to the base state.
            probe_after_err((step, op), sp, "parallel", t)?;
            probe_after_err((step, op), ss, "serial", t)?;
        }
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn apply_delete(
    (step, op): (Option<usize>, Option<&str>),
    (sp, wp): (&Hub<'_>, &WriteHandle<'_>),
    (ss, ws): (&Hub<'_>, &WriteHandle<'_>),
    mirror: &mut DatabaseState,
    rel: usize,
    t: &Tuple,
    steps: Option<u64>,
) -> Result<(), Divergence> {
    let present = mirror.relation(rel).contains(t);
    let guard = || steps.map_or_else(Guard::unlimited, step_guard);
    let rp = wp.delete(rel, t, &guard());
    let rs = ws.delete(rel, t, &guard());
    if class_of(&rp) != class_of(&rs) {
        return Err(diverge(
            step,
            op,
            "class",
            format!("parallel {} vs serial {}", class_of(&rp), class_of(&rs)),
        ));
    }
    match &rp {
        Ok(removed) => {
            if *removed != present {
                return Err(diverge(
                    step,
                    op,
                    "verdict",
                    format!("delete returned {removed} but mirror presence was {present}"),
                ));
            }
            if *removed {
                let _ = mirror.remove(rel, t);
            }
        }
        Err(_) => {
            // Atomicity is asserted by check_sync (state == mirror); the
            // probe pins the tableau as well.
            probe_after_err((step, op), sp, "parallel", t)?;
            probe_after_err((step, op), ss, "serial", t)?;
        }
    }
    Ok(())
}

/// After a failed insert/delete: a tuple is witnessed by the chased
/// tableau iff it is in the answer of its own-attribute projection. A
/// speculative row left behind by a non-atomic op breaks this in one
/// direction; a dropped base tuple breaks it in the other.
fn probe_after_err(
    (step, op): (Option<usize>, Option<&str>),
    s: &Hub<'_>,
    label: &str,
    t: &Tuple,
) -> Result<(), Divergence> {
    if !s.is_consistent() {
        return Ok(());
    }
    let x = t.attrs();
    let Ok(Some(answer)) = s.read_view().total_projection(x, &Guard::unlimited()) else {
        return Ok(());
    };
    let member = answer.contains(t);
    let witnessed = s.explain(x, t).is_some();
    if member != witnessed {
        return Err(diverge(
            step,
            op,
            "probe",
            format!(
                "{label} hub after Err: answer membership {member} but tableau witness {witnessed}"
            ),
        ));
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn run_query(
    (step, op): (Option<usize>, Option<&str>),
    sp: &Hub<'_>,
    ss: &Hub<'_>,
    mirror: &DatabaseState,
    db: &DatabaseScheme,
    kd: &KeyDeps,
    x: AttrSet,
    steps: Option<u64>,
) -> Result<(), Divergence> {
    let guard = || steps.map_or_else(Guard::unlimited, step_guard);
    let rp = sp.read_view().total_projection(x, &guard());
    let rs = ss.read_view().total_projection(x, &guard());
    if class_of(&rp) != class_of(&rs) {
        return Err(diverge(
            step,
            op,
            "class",
            format!("parallel {} vs serial {}", class_of(&rp), class_of(&rs)),
        ));
    }
    if let (Ok(ap), Ok(as_)) = (&rp, &rs) {
        if ap != as_ {
            return Err(diverge(
                step,
                op,
                "answer",
                format!(
                    "parallel and serial answers differ ({:?} vs {:?} tuples)",
                    ap.as_ref().map(Vec::len),
                    as_.as_ref().map(Vec::len)
                ),
            ));
        }
        // Oracles 3+4: the (possibly expression-computed) session answer
        // must equal a from-scratch naive chase of the mirror.
        let naive = naive_projection(db, kd, mirror, x);
        if *ap != naive {
            return Err(diverge(
                step,
                op,
                "answer",
                format!(
                    "hub answer {:?} tuples vs naive chase {:?} tuples",
                    ap.as_ref().map(Vec::len),
                    naive.as_ref().map(Vec::len)
                ),
            ));
        }
    }
    Ok(())
}

fn run_explain(
    (step, op): (Option<usize>, Option<&str>),
    sp: &Hub<'_>,
    ss: &Hub<'_>,
    x: AttrSet,
) -> Result<(), Divergence> {
    if !sp.is_consistent() {
        return Ok(());
    }
    let Ok(Some(answer)) = sp.read_view().total_projection(x, &Guard::unlimited()) else {
        return Ok(());
    };
    for t in &answer {
        let wp = sp.explain(x, t).is_some();
        let ws = ss.explain(x, t).is_some();
        if wp != ws {
            return Err(diverge(
                step,
                op,
                "explain",
                format!("witness presence differs: parallel {wp} vs serial {ws}"),
            ));
        }
    }
    Ok(())
}

/// Poisons both engines' expression caches, then asserts the documented
/// recovery contract: the next query surfaces `Err(Faulted)` (not a
/// panic), and the one after answers exactly like the naive chase.
#[allow(clippy::too_many_arguments)]
fn run_poison(
    (step, op): (Option<usize>, Option<&str>),
    engine_par: &Engine,
    engine_ser: &Engine,
    sp: &Hub<'_>,
    ss: &Hub<'_>,
    mirror: &DatabaseState,
    db: &DatabaseScheme,
    kd: &KeyDeps,
) -> Result<(), Divergence> {
    // Non-IR schemes answer through the whole-state tableau and never
    // touch the expression cache; an inconsistent state short-circuits
    // before the cache. Both make the op a no-op.
    if engine_par.ir().is_none() || !sp.is_consistent() {
        return Ok(());
    }
    let x = db.scheme(0).attrs();
    engine_par.inject_expr_cache_panic();
    engine_ser.inject_expr_cache_panic();
    for (label, s) in [("parallel", sp), ("serial", ss)] {
        let probed = catch_unwind(AssertUnwindSafe(|| {
            s.read_view().total_projection(x, &Guard::unlimited())
        }));
        match probed {
            Err(_) => {
                return Err(diverge(
                    step,
                    op,
                    "panic",
                    format!("{label} hub panicked on the first query after poisoning"),
                ));
            }
            Ok(Err(ExecError::Faulted { .. })) => {}
            Ok(other) => {
                return Err(diverge(
                    step,
                    op,
                    "poison",
                    format!(
                        "{label} hub returned {} instead of a typed fault",
                        class_of(&other)
                    ),
                ));
            }
        }
        // Recovery: the cache was cleared, the next query recomputes and
        // must agree with the naive chase.
        let recovered = s.read_view().total_projection(x, &Guard::unlimited()).map_err(|e| {
            diverge(
                step,
                op,
                "poison",
                format!("{label} hub still failing after recovery: {e}"),
            )
        })?;
        let naive = naive_projection(db, kd, mirror, x);
        if recovered != naive {
            return Err(diverge(
                step,
                op,
                "poison",
                format!(
                    "{label} recovered answer {:?} tuples vs naive {:?} tuples",
                    recovered.as_ref().map(Vec::len),
                    naive.as_ref().map(Vec::len)
                ),
            ));
        }
    }
    Ok(())
}

/// Runs Algorithm 2 for `(rel, t)` fault-free and under a
/// [`FaultInjector`], checking the maintenance verdict against the naive
/// chase and the fault contract against the baseline. Read-only.
#[allow(clippy::too_many_arguments)]
fn run_fault_insert(
    (step, op): (Option<usize>, Option<&str>),
    engine: &Engine,
    sp: &Hub<'_>,
    mirror: &DatabaseState,
    db: &DatabaseScheme,
    kd: &KeyDeps,
    nth: u64,
    kind: FaultKind,
    rel: usize,
    t: &Tuple,
) -> Result<(), Divergence> {
    let Some(ir) = engine.ir() else {
        return Ok(());
    };
    if !sp.is_consistent() {
        return Ok(());
    }
    let unl = Guard::unlimited();
    let m = IrMaintainer::new(db, ir, mirror, &unl).map_err(|e| {
        diverge(step, op, "internal", format!("maintainer build on a consistent state: {e}"))
    })?;
    let rep = &m.reps()[ir.block_of[rel]];
    let (baseline, _) = algorithm2(db, rep, rel, t, &unl, &RetryPolicy::none())
        .map_err(|e| diverge(step, op, "internal", format!("fault-free algorithm2: {e}")))?;

    // Oracle 3: maintenance verdict vs from-scratch chase.
    let mut cand = mirror.clone();
    let _ = cand.insert(rel, t.clone());
    let expected = naive_consistent(db, kd, &cand);
    if baseline.is_consistent() != expected {
        return Err(diverge(
            step,
            op,
            "maintain",
            format!(
                "algorithm2 verdict consistent={} vs naive chase consistent={expected}",
                baseline.is_consistent()
            ),
        ));
    }

    // Fault contract: transient faults are retried to the fault-free
    // outcome; permanent faults surface as Err(Faulted) iff one fired.
    let inj = FaultInjector::new(rep, FaultPlan::nth(nth, kind));
    let injected = algorithm2(db, &inj, rel, t, &unl, &RetryPolicy::retries(3));
    let fired = inj.faults_injected() > 0;
    match (&injected, kind, fired) {
        (Ok((outcome, _)), _, _) if *outcome == baseline => Ok(()),
        (Err(ExecError::Faulted { kind: FaultKind::Permanent, .. }), FaultKind::Permanent, true) => {
            Ok(())
        }
        _ => Err(diverge(
            step,
            op,
            "maintain",
            format!(
                "injected run (fired={fired}, kind={kind:?}) returned {} vs baseline {:?}",
                class_of(&injected),
                baseline
            ),
        )),
    }
}
