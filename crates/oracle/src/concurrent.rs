//! Concurrent differential fuzzing for the serving layer — the
//! oracle's seventh arm.
//!
//! Theorem 4.2 makes a sharp concurrency claim: on an
//! independence-reducible scheme, per-block write serialization plus
//! cross-block commutativity mean that **a serial replay of the
//! committed op order reproduces the concurrent final state**. This arm
//! tests exactly that. Each seeded case spawns 2–4 client threads over
//! one [`Hub`](idr_core::serving::Hub) wired to a `RecordingSink`
//! (an in-memory [`DurabilitySink`] that captures the committed op
//! order — the same order a group-commit WAL would persist). After the
//! threads join, a fresh single-threaded hub replays the recorded order
//! and the rendered final state, the consistency verdict, and a
//! probe-query answer are compared byte for byte.
//!
//! The interleaving — and therefore the committed order and the final
//! state — varies run to run; what must *never* vary is the
//! serial==concurrent equivalence. A divergence is shrunk greedily
//! against the captured concurrent state (which is plain data, so the
//! shrink is deterministic even though the run was not) and written out
//! as a self-describing fixture: the scheme, the committed op lines,
//! and the concurrent state they failed to replay to.
//!
//! Crash-point coverage for the same concurrent shape (group-commit
//! WAL cut mid-batch) lives in [`crate::crash::concurrent_crash_fuzz`].

use std::sync::{Arc, Mutex};

use idr_core::durability::{DurabilitySink, DurableOp};
use idr_core::{Engine, Observability};
use idr_obs::{MetricsRegistry, OpTimeline, Phase};
use idr_relation::exec::{ExecError, Guard};
use idr_relation::parse::{render_scheme_file, render_tuple_line};
use idr_relation::rng::SplitMix64;
use idr_relation::{AttrSet, DatabaseScheme, DatabaseState, SymbolTable};

use crate::crash::{answer_lines, gen_ops, gen_scheme, state_lines, CrashOp};

/// One case whose serial replay of the committed order disagreed with
/// the concurrent run (or whose setup failed).
#[derive(Clone, Debug)]
pub struct ConcurrentFailure {
    /// The per-case seed (regenerates the scheme and op streams; the
    /// interleaving itself is not replayable, which is why the fixture
    /// captures the committed order and the observed state).
    pub seed: u64,
    /// What disagreed (`state`, `verdict`, `answer`, `client_error`,
    /// `setup`).
    pub kind: String,
    /// Human-readable detail.
    pub detail: String,
    /// A self-describing repro: scheme, (shrunk) committed op order,
    /// and the concurrent state it fails to replay to.
    pub fixture: String,
}

impl std::fmt::Display for ConcurrentFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "seed {} [{}]: {}", self.seed, self.kind, self.detail)
    }
}

/// Outcome of a concurrent-fuzzing run.
#[derive(Clone, Debug, Default)]
pub struct ConcurrentFuzzSummary {
    /// Cases executed.
    pub cases: usize,
    /// Client threads spawned across all cases.
    pub clients: usize,
    /// Ops committed across all cases.
    pub ops_run: usize,
    /// Serial/concurrent disagreements, in discovery order.
    pub failures: Vec<ConcurrentFailure>,
}

impl ConcurrentFuzzSummary {
    /// Whether every case's serial replay matched its concurrent run.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }
}

/// An in-memory [`DurabilitySink`] that records the committed op order:
/// each `log_op` renders the op as the canonical replay line (`insert
/// R1: A=a B=b`) under the sink's internal lock, so the recorded order
/// is exactly the order a WAL would have persisted. Values are resolved
/// against the case's pre-interned symbol table (clients never intern
/// during the run).
#[derive(Debug)]
struct RecordingSink {
    db: DatabaseScheme,
    symbols: SymbolTable,
    committed: Mutex<Vec<String>>,
    aborts: Mutex<usize>,
}

impl RecordingSink {
    fn new(db: DatabaseScheme, symbols: SymbolTable) -> Self {
        RecordingSink {
            db,
            symbols,
            committed: Mutex::new(Vec::new()),
            aborts: Mutex::new(0),
        }
    }
}

impl DurabilitySink for RecordingSink {
    fn log_op(&self, op: DurableOp<'_>) -> Result<(), ExecError> {
        let (verb, rel, t) = match op {
            DurableOp::Insert { rel, t } => ("insert", rel, t),
            DurableOp::Delete { rel, t } => ("delete", rel, t),
        };
        let line = format!("{verb} {}", render_tuple_line(&self.db, &self.symbols, rel, t));
        self.committed
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(line);
        Ok(())
    }

    fn log_abort(&self) -> Result<(), ExecError> {
        // Ops run under unlimited guards, so an abort is a case anomaly
        // — counted and flagged by the driver, never silently dropped.
        *self
            .aborts
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) += 1;
        Ok(())
    }

    fn op_finished(&self) -> Result<bool, ExecError> {
        Ok(false)
    }

    fn write_snapshot(&self, _state: &DatabaseState) -> Result<(), ExecError> {
        Ok(())
    }
}

/// What the concurrent run left behind: the committed order and the
/// rendered observation the serial replay must reproduce.
struct Observed {
    committed: Vec<String>,
    state_lines: Vec<String>,
    consistent: bool,
    answer: Option<Vec<String>>,
}

/// The serial replay's rendering of one run: state lines, verdict,
/// probe answer — the triple compared against [`Observed`].
type Replayed = (Vec<String>, bool, Option<Vec<String>>);

/// Serially replays `lines` through a fresh hub and renders the same
/// three observations the concurrent run produced.
fn serial_replay(db: &DatabaseScheme, lines: &[String], probe: AttrSet) -> Result<Replayed, String> {
    let engine = Engine::new(db.clone());
    let guard = Guard::unlimited();
    let mut symbols = SymbolTable::new();
    let hub = engine
        .hub(&DatabaseState::empty(db), &guard)
        .map_err(|e| format!("serial hub: {e}"))?;
    let writer = hub.write_handle();
    for line in lines {
        writer
            .replay_op(line, &mut symbols, &guard)
            .map_err(|e| format!("serial replay of {line:?}: {e}"))?;
    }
    let view = hub.read_view();
    let answer = view
        .total_projection(probe, &guard)
        .map_err(|e| format!("serial query: {e}"))?
        .map(|ts| answer_lines(db, &ts, &symbols));
    Ok((
        state_lines(db, view.state(), &symbols),
        view.is_consistent(),
        answer,
    ))
}

/// Classifies the serial-vs-concurrent disagreement for `lines`
/// (`None` when they agree) — the predicate the shrinker preserves.
fn divergence_kind(
    db: &DatabaseScheme,
    lines: &[String],
    probe: AttrSet,
    observed: &Observed,
) -> Option<(&'static str, String)> {
    let (got_lines, got_consistent, got_answer) = match serial_replay(db, lines, probe) {
        Ok(r) => r,
        Err(e) => return Some(("setup", e)),
    };
    if got_lines != observed.state_lines {
        return Some((
            "state",
            format!(
                "serial [{}] != concurrent [{}]",
                got_lines.join("; "),
                observed.state_lines.join("; ")
            ),
        ));
    }
    if got_consistent != observed.consistent {
        return Some((
            "verdict",
            format!(
                "serial consistent={got_consistent} concurrent={}",
                observed.consistent
            ),
        ));
    }
    if got_answer != observed.answer {
        return Some((
            "answer",
            format!("serial {:?} != concurrent {:?}", got_answer, observed.answer),
        ));
    }
    None
}

/// Greedily drops committed op lines while the same-kind divergence
/// against the captured concurrent observation persists. Deterministic:
/// the concurrent side is fixed data by the time shrinking starts.
fn shrink_committed(
    db: &DatabaseScheme,
    lines: &[String],
    probe: AttrSet,
    observed: &Observed,
    kind: &str,
) -> Vec<String> {
    let mut kept: Vec<String> = lines.to_vec();
    let mut k = 0;
    while k < kept.len() {
        let mut candidate = kept.clone();
        candidate.remove(k);
        match divergence_kind(db, &candidate, probe, observed) {
            Some((ck, _)) if ck == kind => kept = candidate,
            _ => k += 1,
        }
    }
    kept
}

/// Renders the self-describing repro fixture a failure carries.
fn render_fixture(
    seed: u64,
    db: &DatabaseScheme,
    lines: &[String],
    observed: &Observed,
    kind: &str,
) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "# idr concurrent-fuzz repro (seed {seed}, kind {kind})\n\
         # A serial replay of the committed op order below must reproduce\n\
         # the concurrent final state — it does not.\n"
    ));
    out.push_str("scheme:\n");
    out.push_str(&render_scheme_file(db));
    out.push_str("committed ops (serial replay order):\n");
    for line in lines {
        out.push_str(line);
        out.push('\n');
    }
    out.push_str(&format!(
        "concurrent final state (consistent={}):\n",
        observed.consistent
    ));
    for line in &observed.state_lines {
        out.push_str(line);
        out.push('\n');
    }
    out
}

/// Runs one case: generate per-client op streams, run them from
/// concurrent threads over one hub + recording sink, then serially
/// replay the committed order and compare.
fn run_case(seed: u64, summary: &mut ConcurrentFuzzSummary, metrics: Option<Arc<MetricsRegistry>>) {
    let mut rng = SplitMix64::new(seed);
    let db = gen_scheme(&mut rng);
    let mut symbols = SymbolTable::new();
    let clients = rng.gen_range_inclusive(2, 4);
    let client_ops: Vec<Vec<CrashOp>> = (0..clients)
        .map(|_| gen_ops(&db, &mut symbols, &mut rng))
        .collect();
    let probe = db.scheme(rng.gen_range(0, db.len())).attrs();
    summary.clients += clients;

    // --- Concurrent run ---------------------------------------------------
    // Only the concurrent arm feeds the registry: the serial replay
    // below re-runs the same ops, and double-counting would make the
    // dumped snapshot lie about how much work the fuzz run drove.
    let engine = Engine::new(db.clone()).with_observability(Observability {
        metrics,
        ..Observability::default()
    });
    let guard = Guard::unlimited();
    let sink = Arc::new(RecordingSink::new(db.clone(), symbols.clone()));
    let base = DatabaseState::empty(&db);
    let mut fail = |kind: &str, detail: String, fixture: String| {
        summary.failures.push(ConcurrentFailure {
            seed,
            kind: kind.to_string(),
            detail,
            fixture,
        });
    };
    let hub = match engine.hub_with(&base, &guard, sink.clone()) {
        Ok(h) => h,
        Err(e) => return fail("setup", format!("hub: {e}"), String::new()),
    };
    let errors = Mutex::new(Vec::<String>::new());
    std::thread::scope(|s| {
        for (c, ops) in client_ops.iter().enumerate() {
            let writer = hub.write_handle();
            let errors = &errors;
            let guard = &guard;
            s.spawn(move || {
                for (k, (is_insert, rel, t)) in ops.iter().enumerate() {
                    // Drive the timed pipeline so every completed op
                    // carries a timeline we can assert invariants on.
                    let tl = Arc::new(OpTimeline::new());
                    tl.stamp(Phase::Enqueue);
                    let r = if *is_insert {
                        writer.insert_timed(*rel, t.clone(), guard, &tl).map(|_| ())
                    } else {
                        writer.delete_timed(*rel, t, guard, &tl).map(|_| ())
                    };
                    if let Err(e) = r {
                        errors
                            .lock()
                            .expect("error list lock")
                            .push(format!("client {c} op {k}: {e}"));
                        return;
                    }
                    // Completed ops must have stamped every phase the
                    // in-memory pipeline reaches (the recording sink has
                    // no group commit, so batch-wait/fsync may be unset)
                    // and the stamps must never run backwards.
                    if !tl.is_monotone() {
                        errors.lock().expect("error list lock").push(format!(
                            "client {c} op {k}: timeline not monotone: {:?}",
                            tl.phase_durations()
                        ));
                        return;
                    }
                    let required = [
                        Phase::Enqueue,
                        Phase::LaneAcquire,
                        Phase::WalAppend,
                        Phase::Apply,
                        Phase::Publish,
                    ];
                    if !tl.covers(&required) {
                        errors.lock().expect("error list lock").push(format!(
                            "client {c} op {k}: timeline missing phases, got {:?}",
                            tl.phase_durations()
                        ));
                        return;
                    }
                }
            });
        }
    });
    let errors = errors.into_inner().expect("error list lock");
    if !errors.is_empty() {
        return fail("client_error", errors.join("; "), String::new());
    }
    let aborts = *sink
        .aborts
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if aborts > 0 {
        return fail(
            "setup",
            format!("{aborts} abort(s) under unlimited guards"),
            String::new(),
        );
    }
    let view = hub.read_view();
    let observed = Observed {
        committed: sink
            .committed
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone(),
        state_lines: state_lines(&db, view.state(), &symbols),
        consistent: view.is_consistent(),
        answer: view
            .total_projection(probe, &guard)
            .ok()
            .flatten()
            .map(|ts| answer_lines(&db, &ts, &symbols)),
    };
    summary.ops_run += observed.committed.len();
    let total_ops: usize = client_ops.iter().map(Vec::len).sum();
    if observed.committed.len() != total_ops {
        let fixture = render_fixture(seed, &db, &observed.committed, &observed, "setup");
        return fail(
            "setup",
            format!(
                "{} op(s) ran but {} were committed",
                total_ops,
                observed.committed.len()
            ),
            fixture,
        );
    }

    // --- Serial replay of the committed order -----------------------------
    if let Some((kind, detail)) = divergence_kind(&db, &observed.committed, probe, &observed) {
        let shrunk = shrink_committed(&db, &observed.committed, probe, &observed, kind);
        let fixture = render_fixture(seed, &db, &shrunk, &observed, kind);
        fail(kind, detail, fixture);
    }
}

/// Runs `cases` concurrent cases from master seed `seed`; per-case
/// seeds are drawn from the master stream (same convention as
/// [`crate::fuzz`]). `progress` is called after each case with
/// `(index, failures so far)`.
pub fn concurrent_fuzz(
    seed: u64,
    cases: usize,
    progress: Option<&mut dyn FnMut(usize, usize)>,
) -> ConcurrentFuzzSummary {
    concurrent_fuzz_with(seed, cases, progress, None)
}

/// [`concurrent_fuzz`] with an optional metrics registry: every
/// concurrent hub feeds it (session verdicts, per-block lane ops,
/// pipeline-phase latencies), so a CI run can dump one snapshot
/// covering the whole campaign alongside any failure fixtures.
pub fn concurrent_fuzz_with(
    seed: u64,
    cases: usize,
    mut progress: Option<&mut dyn FnMut(usize, usize)>,
    metrics: Option<Arc<MetricsRegistry>>,
) -> ConcurrentFuzzSummary {
    let mut master = SplitMix64::new(seed);
    let mut summary = ConcurrentFuzzSummary::default();
    for k in 0..cases {
        let case_seed = master.next_u64();
        summary.cases += 1;
        run_case(case_seed, &mut summary, metrics.clone());
        if let Some(p) = progress.as_deref_mut() {
            p(k + 1, summary.failures.len());
        }
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The in-process equivalent of the CI concurrent-fuzz smoke step:
    /// serial replay of the committed order always reproduces the
    /// concurrent run.
    #[test]
    fn bounded_concurrent_fuzz_is_clean() {
        let summary = concurrent_fuzz(42, 24, None);
        assert_eq!(summary.cases, 24);
        assert!(summary.clients >= 48, "{}", summary.clients);
        assert!(summary.ops_run > 0);
        assert!(
            summary.is_clean(),
            "failures: {}",
            summary
                .failures
                .iter()
                .map(|f| format!("{f}\n{}", f.fixture))
                .collect::<Vec<_>>()
                .join("; ")
        );
    }

    /// Case structure (not interleavings) is seed-deterministic: the
    /// same master seed always runs the same schemes and op counts.
    #[test]
    fn concurrent_fuzz_case_structure_is_deterministic() {
        let a = concurrent_fuzz(7, 8, None);
        let b = concurrent_fuzz(7, 8, None);
        assert_eq!(a.cases, b.cases);
        assert_eq!(a.clients, b.clients);
        assert_eq!(a.ops_run, b.ops_run);
    }

    /// The shrinker drops ops that do not matter to a (synthetic)
    /// state divergence and keeps the divergence kind.
    #[test]
    fn shrink_preserves_the_divergence() {
        let db = idr_workload::generators::chain_scheme(2);
        let mut symbols = SymbolTable::new();
        let t0 = crate::crash::entity_tuple(&db, &mut symbols, 0).project(db.scheme(0).attrs());
        let t1 = crate::crash::entity_tuple(&db, &mut symbols, 1).project(db.scheme(1).attrs());
        let lines = vec![
            format!("insert {}", render_tuple_line(&db, &symbols, 0, &t0)),
            format!("insert {}", render_tuple_line(&db, &symbols, 1, &t1)),
        ];
        let probe = db.scheme(0).attrs();
        // Pretend the concurrent run finished empty: both inserts now
        // "diverge", but only dropping both keeps the state divergence
        // minimal — the shrinker must land on a single op.
        let observed = Observed {
            committed: lines.clone(),
            state_lines: Vec::new(),
            consistent: true,
            answer: Some(Vec::new()),
        };
        let (kind, _) = divergence_kind(&db, &lines, probe, &observed).expect("diverges");
        assert_eq!(kind, "state");
        let shrunk = shrink_committed(&db, &lines, probe, &observed, kind);
        assert_eq!(shrunk.len(), 1, "shrunk to one op: {shrunk:?}");
        assert!(divergence_kind(&db, &shrunk, probe, &observed).is_some());
    }
}
