//! Crash-point differential fuzzing for the durability layer.
//!
//! For each seeded case the fuzzer runs a stream of durable write ops
//! against a real data dir, then simulates a crash at **every byte
//! boundary of the write-ahead log**: the WAL is truncated to each
//! prefix length in turn, [`idr_store::recover()`] rebuilds the state
//! from the surviving bytes, and the recovered state, consistency
//! verdict and a query answer are differentially checked against an
//! in-memory oracle that replayed exactly the ops whose records
//! survived the cut. A torn final record must be tolerated (truncated),
//! never misread — any byte offset that recovers to the wrong state is
//! a reported failure.
//!
//! Cases vary the scheme family (the same IR/non-IR spread as
//! [`gen`](crate::gen)), the op mix (accepted inserts, rejected
//! inserts, deletes of present and absent tuples) and the snapshot
//! cadence, so cuts land both in a fresh epoch-0 log and in a log tail
//! after snapshot rotation + compaction.
//!
//! Ops run under unlimited guards, so every op is exactly one WAL
//! record and `k` surviving records ⇔ the first `k` ops — the mapping
//! the differential check relies on. (Abort markers from guard-tripped
//! ops are covered by targeted tests in `tests/durability.rs`.)

use std::path::Path;
use std::sync::Arc;

use idr_core::Engine;
use idr_relation::exec::Guard;
use idr_relation::parse::render_tuple_line;
use idr_relation::rng::SplitMix64;
use idr_relation::{AttrSet, DatabaseScheme, DatabaseState, SymbolTable, Tuple};
use idr_store::tempdir::TempDir;
use idr_store::{recover, snapshot, wal, SharedStore, Store};
use idr_workload::generators::{
    block_chain_scheme, chain_scheme, cycle_scheme, example2_scheme, split_scheme, star_scheme,
};

/// One crash point whose recovery disagreed with the in-memory oracle
/// (or failed when it should have succeeded).
#[derive(Clone, Debug)]
pub struct CrashFailure {
    /// The per-case seed (reproduces the whole case).
    pub seed: u64,
    /// The WAL byte length the crash truncated to.
    pub crash_point: u64,
    /// What disagreed (`state`, `verdict`, `answer`, `recovery_error`).
    pub kind: String,
    /// Human-readable detail.
    pub detail: String,
}

impl std::fmt::Display for CrashFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "seed {} crash@{} [{}]: {}",
            self.seed, self.crash_point, self.kind, self.detail
        )
    }
}

/// Outcome of a crash-fuzzing run.
#[derive(Clone, Debug, Default)]
pub struct CrashFuzzSummary {
    /// Cases (op streams × data dirs) executed.
    pub cases: usize,
    /// Total crash points (byte boundaries) recovered from.
    pub crash_points: usize,
    /// Total ops executed across the live (never-crashed) runs.
    pub ops_run: usize,
    /// Disagreements, in discovery order.
    pub failures: Vec<CrashFailure>,
}

impl CrashFuzzSummary {
    /// Whether every crash point recovered to the oracle's state.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }
}

/// The per-prefix expectation computed by the in-memory oracle: the
/// state after the first `k` ops, rendered; its verdict; the rendered
/// probe-query answer.
struct MirrorPoint {
    state_lines: Vec<String>,
    consistent: bool,
    answer: Option<Vec<String>>,
}

/// A scheme drawn from the same families the main fuzzer covers,
/// including the non-IR Example 2 (whole-state backend). Shared with
/// the sync arm ([`crate::sync_fuzz`]).
pub(crate) fn gen_scheme(rng: &mut SplitMix64) -> DatabaseScheme {
    match rng.gen_range(0, 6) {
        0 => chain_scheme(rng.gen_range_inclusive(2, 4)),
        1 => cycle_scheme(rng.gen_range_inclusive(3, 4)),
        2 => split_scheme(2),
        3 => star_scheme(rng.gen_range_inclusive(2, 3)),
        4 => block_chain_scheme(2, 3),
        _ => example2_scheme(),
    }
}

/// The universal tuple of entity `id` (values `<attr>_<id>`).
pub(crate) fn entity_tuple(db: &DatabaseScheme, symbols: &mut SymbolTable, id: usize) -> Tuple {
    let u = db.universe();
    Tuple::from_pairs(
        u.iter()
            .map(|a| (a, symbols.intern(&format!("{}_{id}", u.name(a))))),
    )
}

/// A key-violating mix of two entities on relation `i` (key from `a`,
/// non-key from `b`) — the op stream's source of rejected inserts.
pub(crate) fn corrupt_tuple(
    db: &DatabaseScheme,
    symbols: &mut SymbolTable,
    i: usize,
    a: usize,
    b: usize,
) -> Tuple {
    let ta = entity_tuple(db, symbols, a);
    let tb = entity_tuple(db, symbols, b);
    let key = db.scheme(i).keys()[0];
    Tuple::from_pairs(db.scheme(i).attrs().iter().map(|at| {
        (at, if key.contains(at) { ta.value(at) } else { tb.value(at) })
    }))
}

/// One durable op: `(is_insert, relation, tuple)`. Shared with the
/// concurrent arm ([`crate::concurrent`]).
pub(crate) type CrashOp = (bool, usize, Tuple);

/// Generates the op stream for one case. Inserts dominate (they grow
/// the WAL and the state); deletes hit both present and absent tuples;
/// corrupt inserts produce in-log *rejected* records whose replay must
/// re-reject.
pub(crate) fn gen_ops(
    db: &DatabaseScheme,
    symbols: &mut SymbolTable,
    rng: &mut SplitMix64,
) -> Vec<CrashOp> {
    let entities = rng.gen_range_inclusive(2, 3);
    let nops = rng.gen_range_inclusive(4, 8);
    let mut pool: Vec<(usize, Tuple)> = Vec::new();
    let mut ops = Vec::with_capacity(nops);
    for _ in 0..nops {
        let i = rng.gen_range(0, db.len());
        let op: CrashOp = match rng.gen_range(0, 100) {
            // Delete a previously inserted tuple (or an absent one).
            0..=19 if !pool.is_empty() => {
                let (rel, t) = pool[rng.gen_range(0, pool.len())].clone();
                (false, rel, t)
            }
            0..=24 => {
                let id = rng.gen_range(0, entities);
                (false, i, entity_tuple(db, symbols, id).project(db.scheme(i).attrs()))
            }
            // A key-violating insert: logged, rejected, replay re-rejects.
            25..=39 => (true, i, corrupt_tuple(db, symbols, i, 0, 1)),
            // A fragment of an entity (usually accepted).
            _ => {
                let id = rng.gen_range(0, entities + 1);
                let t = entity_tuple(db, symbols, id).project(db.scheme(i).attrs());
                pool.push((i, t.clone()));
                (true, i, t)
            }
        };
        ops.push(op);
    }
    ops
}

/// Renders a state as sorted fixture lines — the cross-symbol-table
/// fingerprint (recovery re-interns values in its own order, so raw
/// `Value` comparisons would be meaningless).
pub(crate) fn state_lines(db: &DatabaseScheme, state: &DatabaseState, symbols: &SymbolTable) -> Vec<String> {
    let mut lines: Vec<String> = state
        .iter_all()
        .map(|(i, t)| render_tuple_line(db, symbols, i, t))
        .collect();
    lines.sort();
    lines
}

/// Renders a query answer's tuples as sorted `attr=value` lines.
pub(crate) fn answer_lines(
    db: &DatabaseScheme,
    tuples: &[Tuple],
    symbols: &SymbolTable,
) -> Vec<String> {
    let u = db.universe();
    let mut lines: Vec<String> = tuples
        .iter()
        .map(|t| {
            t.iter()
                .map(|(a, v)| format!("{}={}", u.name(a), symbols.resolve(v)))
                .collect::<Vec<_>>()
                .join(" ")
        })
        .collect();
    lines.sort();
    lines.dedup();
    lines
}

/// Replays `ops` prefixes through a purely in-memory hub, recording
/// the expected state/verdict/answer after every prefix length.
fn build_mirror(
    db: &DatabaseScheme,
    ops: &[CrashOp],
    probe: AttrSet,
    symbols: &SymbolTable,
) -> Result<Vec<MirrorPoint>, String> {
    let engine = Engine::new(db.clone());
    let guard = Guard::unlimited();
    let hub = engine
        .hub(&DatabaseState::empty(db), &guard)
        .map_err(|e| format!("mirror hub: {e}"))?;
    let writer = hub.write_handle();
    let point = |h: &idr_core::serving::Hub<'_>| -> Result<MirrorPoint, String> {
        let view = h.read_view();
        let answer = view
            .total_projection(probe, &guard)
            .map_err(|e| format!("mirror query: {e}"))?
            .map(|ts| answer_lines(db, &ts, symbols));
        Ok(MirrorPoint {
            state_lines: state_lines(db, view.state(), symbols),
            consistent: view.is_consistent(),
            answer,
        })
    };
    let mut mirror = vec![point(&hub)?];
    for (is_insert, rel, t) in ops {
        if *is_insert {
            writer
                .insert(*rel, t.clone(), &guard)
                .map_err(|e| format!("mirror insert: {e}"))?;
        } else {
            writer
                .delete(*rel, t, &guard)
                .map_err(|e| format!("mirror delete: {e}"))?;
        }
        mirror.push(point(&hub)?);
    }
    Ok(mirror)
}

/// Copies the live data dir's immutable files into the crash-scratch
/// dir once per case (the per-cut loop rewrites only the WAL).
fn stage_scratch(live: &Path, scratch: &Path, epoch: u64) -> std::io::Result<()> {
    for name in [snapshot::SCHEME_FILE, snapshot::SNAPSHOT_FILE] {
        std::fs::copy(live.join(name), scratch.join(name))?;
    }
    // Make sure no stale WAL from a previous case lingers.
    let _ = std::fs::remove_file(snapshot::wal_path(scratch, epoch));
    Ok(())
}

/// Runs one case: live durable run, then a recovery + differential
/// check at every WAL byte boundary. Returns the crash points checked
/// and any failures.
fn run_case(seed: u64, summary: &mut CrashFuzzSummary) {
    let mut rng = SplitMix64::new(seed);
    let db = gen_scheme(&mut rng);
    let mut case_symbols = SymbolTable::new();
    let ops = gen_ops(&db, &mut case_symbols, &mut rng);
    let probe = db.scheme(rng.gen_range(0, db.len())).attrs();
    let snapshot_every = if rng.gen_pct(35) {
        Some(rng.gen_range_inclusive(2, 3) as u64)
    } else {
        None
    };
    let mut fail = |crash_point: u64, kind: &str, detail: String| {
        summary.failures.push(CrashFailure {
            seed,
            crash_point,
            kind: kind.to_string(),
            detail,
        });
    };

    // --- Live durable run -------------------------------------------------
    let live_dir = TempDir::new("crash-live");
    let store = match Store::init(live_dir.path(), &db) {
        Ok(s) => s.with_sync(false).with_snapshot_every(snapshot_every),
        Err(e) => return fail(0, "setup", format!("init: {e}")),
    };
    let store = Arc::new(SharedStore::new(store));
    {
        let shared = store.symbols();
        shared
            .lock()
            .expect("fresh store symbol lock")
            .clone_from(&case_symbols);
    }
    // `ops_before_epoch[..]` tracks, for the epoch open *after* op k,
    // how many ops predate its WAL — the offset that maps surviving
    // records back to op counts after a snapshot rotation.
    let engine = Engine::new(db.clone());
    let guard = Guard::unlimited();
    let mut ops_at_epoch_start = 0usize;
    {
        let base = DatabaseState::empty(&db);
        let hub = match engine.hub_with(&base, &guard, store.clone()) {
            Ok(h) => h,
            Err(e) => return fail(0, "setup", format!("live hub: {e}")),
        };
        let writer = hub.write_handle();
        for (k, (is_insert, rel, t)) in ops.iter().enumerate() {
            let r = if *is_insert {
                writer.insert(*rel, t.clone(), &guard).map(|_| ())
            } else {
                writer.delete(*rel, t, &guard).map(|_| ())
            };
            if let Err(e) = r {
                return fail(0, "setup", format!("live op {k}: {e}"));
            }
            summary.ops_run += 1;
        }
    }
    let final_epoch = store.lock().epoch();
    if snapshot_every.is_some() {
        // Ops predating the open epoch's WAL are exactly those not
        // reflected as records in it.
        ops_at_epoch_start = ops.len() - store.lock().wal_records() as usize;
    }
    drop(store); // "kill -9": nothing flushed beyond what each op wrote

    // --- The in-memory oracle --------------------------------------------
    let mirror = match build_mirror(&db, &ops, probe, &case_symbols) {
        Ok(m) => m,
        Err(e) => return fail(0, "setup", e),
    };

    // --- Crash at every WAL byte boundary ---------------------------------
    check_all_cuts(
        seed,
        &db,
        probe,
        &mirror,
        ops_at_epoch_start,
        live_dir.path(),
        final_epoch,
        summary,
    );
}

/// The cut loop shared by the sequential and concurrent crash arms:
/// truncates the live WAL at every byte boundary, recovers each prefix
/// in a scratch dir, and differentially checks state, verdict and a
/// probe-query answer against `mirror[ops_at_epoch_start + survivors]`.
#[allow(clippy::too_many_arguments)]
fn check_all_cuts(
    seed: u64,
    db: &DatabaseScheme,
    probe: AttrSet,
    mirror: &[MirrorPoint],
    ops_at_epoch_start: usize,
    live_dir: &Path,
    final_epoch: u64,
    summary: &mut CrashFuzzSummary,
) {
    let guard = Guard::unlimited();
    let mut fail = |crash_point: u64, kind: &str, detail: String| {
        summary.failures.push(CrashFailure {
            seed,
            crash_point,
            kind: kind.to_string(),
            detail,
        });
    };
    let wal_path_live = snapshot::wal_path(live_dir, final_epoch);
    let wal_bytes = match std::fs::read(&wal_path_live) {
        Ok(b) => b,
        Err(e) => return fail(0, "setup", format!("read live wal: {e}")),
    };
    let scratch = TempDir::new("crash-cut");
    if let Err(e) = stage_scratch(live_dir, scratch.path(), final_epoch) {
        return fail(0, "setup", format!("stage scratch dir: {e}"));
    }
    let scratch_wal = snapshot::wal_path(scratch.path(), final_epoch);
    for cut in 0..=wal_bytes.len() {
        summary.crash_points += 1;
        if std::fs::write(&scratch_wal, &wal_bytes[..cut]).is_err() {
            fail(cut as u64, "setup", "cannot write truncated wal".to_string());
            continue;
        }
        let survivors = match wal::scan_bytes(&wal_bytes[..cut], &scratch_wal) {
            Ok(scan) => scan.records.len(),
            Err(e) => {
                fail(cut as u64, "setup", format!("prefix scan: {e}"));
                continue;
            }
        };
        let expected = &mirror[ops_at_epoch_start + survivors];
        let recovered = match recover::recover(scratch.path()) {
            Ok(r) => r,
            Err(e) => {
                fail(cut as u64, "recovery_error", e.to_string());
                continue;
            }
        };
        let rec_symbols = recovered.store.symbols();
        let rec_symbols = rec_symbols.lock().expect("recovered symbol lock");
        let got_lines = state_lines(db, &recovered.state, &rec_symbols);
        if got_lines != expected.state_lines {
            fail(
                cut as u64,
                "state",
                format!(
                    "recovered [{}] != oracle [{}] after {} surviving ops",
                    got_lines.join("; "),
                    expected.state_lines.join("; "),
                    ops_at_epoch_start + survivors
                ),
            );
            continue;
        }
        if recovered.consistent != expected.consistent {
            fail(
                cut as u64,
                "verdict",
                format!(
                    "recovered consistent={} oracle={}",
                    recovered.consistent, expected.consistent
                ),
            );
            continue;
        }
        // Differential query answer through a fresh hub over the
        // recovered state.
        let rec_engine = Engine::new(db.clone());
        let got_answer = rec_engine
            .hub(&recovered.state, &guard)
            .and_then(|h| h.read_view().total_projection(probe, &guard))
            .map(|o| o.map(|ts| answer_lines(db, &ts, &rec_symbols)));
        match got_answer {
            Ok(got) => {
                if got != expected.answer {
                    fail(
                        cut as u64,
                        "answer",
                        format!("recovered {:?} != oracle {:?}", got, expected.answer),
                    );
                }
            }
            Err(e) => fail(cut as u64, "answer", format!("recovered query failed: {e}")),
        }
    }
}

/// Runs `cases` crash cases from master seed `seed`; per-case seeds are
/// drawn from the master stream (same convention as [`crate::fuzz`]).
/// `progress` is called after each case with `(index, failures so
/// far)`.
pub fn crash_fuzz(
    seed: u64,
    cases: usize,
    mut progress: Option<&mut dyn FnMut(usize, usize)>,
) -> CrashFuzzSummary {
    let mut master = SplitMix64::new(seed);
    let mut summary = CrashFuzzSummary::default();
    for k in 0..cases {
        let case_seed = master.next_u64();
        summary.cases += 1;
        run_case(case_seed, &mut summary);
        if let Some(p) = progress.as_deref_mut() {
            p(k + 1, summary.failures.len());
        }
    }
    summary
}

/// Replays already-rendered op lines (the committed WAL order of a
/// concurrent run) through a purely in-memory hub, recording the
/// expected state/verdict/answer after every prefix length — the mirror
/// the concurrent crash arm cuts against.
fn build_mirror_from_lines(
    db: &DatabaseScheme,
    lines: &[String],
    probe: AttrSet,
) -> Result<Vec<MirrorPoint>, String> {
    let engine = Engine::new(db.clone());
    let guard = Guard::unlimited();
    let mut symbols = SymbolTable::new();
    let hub = engine
        .hub(&DatabaseState::empty(db), &guard)
        .map_err(|e| format!("mirror hub: {e}"))?;
    let writer = hub.write_handle();
    let mut mirror = Vec::with_capacity(lines.len() + 1);
    for k in 0..=lines.len() {
        if k > 0 {
            writer
                .replay_op(&lines[k - 1], &mut symbols, &guard)
                .map_err(|e| format!("mirror replay of {:?}: {e}", lines[k - 1]))?;
        }
        let view = hub.read_view();
        let answer = view
            .total_projection(probe, &guard)
            .map_err(|e| format!("mirror query: {e}"))?
            .map(|ts| answer_lines(db, &ts, &symbols));
        mirror.push(MirrorPoint {
            state_lines: state_lines(db, view.state(), &symbols),
            consistent: view.is_consistent(),
            answer,
        });
    }
    Ok(mirror)
}

/// One concurrent crash case: several writer threads drive a
/// group-commit [`SharedStore`] (non-zero window, so appends coalesce
/// into multi-record batches), then the WAL is cut at every byte —
/// including mid-batch — and each prefix's recovery is checked against
/// a serial replay of the surviving committed order. The full-length
/// cut is additionally checked against the live concurrent final state,
/// closing the serial==concurrent loop end to end.
fn run_concurrent_case(seed: u64, summary: &mut CrashFuzzSummary) {
    let mut rng = SplitMix64::new(seed);
    let db = gen_scheme(&mut rng);
    let mut case_symbols = SymbolTable::new();
    let clients = rng.gen_range_inclusive(2, 3);
    let client_ops: Vec<Vec<CrashOp>> = (0..clients)
        .map(|_| gen_ops(&db, &mut case_symbols, &mut rng))
        .collect();
    let probe = db.scheme(rng.gen_range(0, db.len())).attrs();
    let mut fail = |crash_point: u64, kind: &str, detail: String| {
        summary.failures.push(CrashFailure {
            seed,
            crash_point,
            kind: kind.to_string(),
            detail,
        });
    };

    // --- Live concurrent run over a group-commit store --------------------
    let live_dir = TempDir::new("crash-conc-live");
    let store = match Store::init(live_dir.path(), &db) {
        Ok(s) => s.with_sync(false),
        Err(e) => return fail(0, "setup", format!("init: {e}")),
    };
    let store = Arc::new(
        SharedStore::new(store).with_group_window(std::time::Duration::from_micros(300)),
    );
    {
        let shared = store.symbols();
        shared
            .lock()
            .expect("fresh store symbol lock")
            .clone_from(&case_symbols);
    }
    let engine = Engine::new(db.clone());
    let guard = Guard::unlimited();
    let (conc_lines, conc_consistent) = {
        let base = DatabaseState::empty(&db);
        let hub = match engine.hub_with(&base, &guard, store.clone()) {
            Ok(h) => h,
            Err(e) => return fail(0, "setup", format!("live hub: {e}")),
        };
        let errors = std::sync::Mutex::new(Vec::<String>::new());
        std::thread::scope(|s| {
            for (c, ops) in client_ops.iter().enumerate() {
                let writer = hub.write_handle();
                let errors = &errors;
                let guard = &guard;
                s.spawn(move || {
                    for (k, (is_insert, rel, t)) in ops.iter().enumerate() {
                        let r = if *is_insert {
                            writer.insert(*rel, t.clone(), guard).map(|_| ())
                        } else {
                            writer.delete(*rel, t, guard).map(|_| ())
                        };
                        if let Err(e) = r {
                            errors
                                .lock()
                                .expect("error list lock")
                                .push(format!("client {c} op {k}: {e}"));
                            return;
                        }
                    }
                });
            }
        });
        let errors = errors.into_inner().expect("error list lock");
        if !errors.is_empty() {
            return fail(0, "setup", format!("live ops failed: {}", errors.join("; ")));
        }
        summary.ops_run += client_ops.iter().map(Vec::len).sum::<usize>();
        let view = hub.read_view();
        (
            state_lines(&db, view.state(), &case_symbols),
            view.is_consistent(),
        )
    };
    let final_epoch = store.lock().epoch();
    drop(store); // "kill -9"

    // --- Mirror: serial replay of the committed (WAL) order ---------------
    let wal_path_live = snapshot::wal_path(live_dir.path(), final_epoch);
    let wal_bytes = match std::fs::read(&wal_path_live) {
        Ok(b) => b,
        Err(e) => return fail(0, "setup", format!("read live wal: {e}")),
    };
    let committed: Vec<String> = match wal::scan_bytes(&wal_bytes, &wal_path_live) {
        Ok(scan) => scan.records,
        Err(e) => return fail(0, "setup", format!("scan live wal: {e}")),
    };
    if committed.iter().any(|r| r == idr_store::store::ABORT_PAYLOAD) {
        // Unlimited guards never trip, so no op should have aborted.
        return fail(0, "setup", "unexpected abort marker in live wal".to_string());
    }
    let mirror = match build_mirror_from_lines(&db, &committed, probe) {
        Ok(m) => m,
        Err(e) => return fail(0, "setup", e),
    };
    // Theorem 4.2 end to end: a serial replay of the full committed
    // order must reproduce the concurrent final state and verdict.
    let last = mirror.last().expect("mirror has a point per prefix");
    if last.state_lines != conc_lines || last.consistent != conc_consistent {
        fail(
            wal_bytes.len() as u64,
            "serial_vs_concurrent",
            format!(
                "serial replay of {} committed op(s) gives [{}] consistent={} \
                 but the concurrent run finished at [{}] consistent={}",
                committed.len(),
                last.state_lines.join("; "),
                last.consistent,
                conc_lines.join("; "),
                conc_consistent
            ),
        );
    }

    // --- Crash at every WAL byte boundary (mid-batch cuts included) -------
    check_all_cuts(
        seed,
        &db,
        probe,
        &mirror,
        0,
        live_dir.path(),
        final_epoch,
        summary,
    );
}

/// Runs `cases` **concurrent** crash cases from master seed `seed`:
/// multi-writer group-commit runs whose WAL is cut at every byte,
/// including mid-batch. Same summary shape and seeding convention as
/// [`crash_fuzz`] (`idr fuzz --crash --concurrent`).
pub fn concurrent_crash_fuzz(
    seed: u64,
    cases: usize,
    mut progress: Option<&mut dyn FnMut(usize, usize)>,
) -> CrashFuzzSummary {
    let mut master = SplitMix64::new(seed);
    let mut summary = CrashFuzzSummary::default();
    for k in 0..cases {
        let case_seed = master.next_u64();
        summary.cases += 1;
        run_concurrent_case(case_seed, &mut summary);
        if let Some(p) = progress.as_deref_mut() {
            p(k + 1, summary.failures.len());
        }
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The in-process equivalent of the CI crash-fuzz smoke step.
    #[test]
    fn bounded_crash_fuzz_is_clean() {
        let summary = crash_fuzz(42, 12, None);
        assert_eq!(summary.cases, 12);
        assert!(summary.crash_points > 100, "{}", summary.crash_points);
        assert!(
            summary.is_clean(),
            "failures: {}",
            summary
                .failures
                .iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join("; ")
        );
    }

    /// Group-commit WALs cut mid-batch must recover to the serial
    /// replay of the surviving committed prefix, and the full log must
    /// replay to the concurrent final state.
    #[test]
    fn bounded_concurrent_crash_fuzz_is_clean() {
        let summary = concurrent_crash_fuzz(42, 6, None);
        assert_eq!(summary.cases, 6);
        assert!(summary.crash_points > 100, "{}", summary.crash_points);
        assert!(
            summary.is_clean(),
            "failures: {}",
            summary
                .failures
                .iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join("; ")
        );
    }

    #[test]
    fn crash_fuzz_is_deterministic() {
        let a = crash_fuzz(7, 4, None);
        let b = crash_fuzz(7, 4, None);
        assert_eq!(a.crash_points, b.crash_points);
        assert_eq!(a.ops_run, b.ops_run);
        assert_eq!(a.failures.len(), b.failures.len());
    }
}
