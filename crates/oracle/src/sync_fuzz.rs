//! Convergence differential fuzzing for the replication layer — the
//! oracle's sixth arm.
//!
//! Each seeded case draws a scheme (the same IR/non-IR family spread as
//! the other arms), partitions a random op stream across 2–4 replicas
//! at random rounds, and runs the deterministic sync simulator under a
//! random fault plan (drop, delay/reorder, duplication, partition with
//! heal, crash mid-sync at a random protocol step) and a random
//! retry/backoff policy. After quiescence it asserts, for **every**
//! replica, that the rendered state, the consistency verdict, and a
//! probe-query answer are byte-identical to a **never-partitioned
//! baseline**: one replica that held every op at its true origin from
//! the start, so canonical-order replay yields the group's obligation.
//!
//! Failures carry a full scenario file (see [`idr_sync::scenario`])
//! shrunk greedily — ops, then crashes, then partitions, then the
//! probabilistic knobs — so every red case replays standalone under
//! `idr sync <fixture>`.

use idr_relation::exec::Guard;
use idr_relation::parse::render_tuple_line;
use idr_relation::rng::SplitMix64;
use idr_relation::{AttrSet, SymbolTable};
use idr_sync::{
    render_scenario, FaultPlan, Replica, Scenario, ScriptedOp, SyncPolicy, Transport,
};

use crate::crash::{corrupt_tuple, entity_tuple, gen_scheme};

/// One case whose replicas failed to converge to the baseline (or
/// diverged, or timed out).
#[derive(Clone, Debug)]
pub struct SyncFailure {
    /// The per-case seed (reproduces the whole case).
    pub seed: u64,
    /// What failed (`diverged`, `liveness`, `state`, `verdict`,
    /// `answer`, `setup`).
    pub kind: String,
    /// Human-readable detail.
    pub detail: String,
    /// The shrunk scenario, replayable with `idr sync`.
    pub scenario: String,
}

impl std::fmt::Display for SyncFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "seed {} [{}]: {}", self.seed, self.kind, self.detail)
    }
}

/// Outcome of a sync-fuzzing run.
#[derive(Clone, Debug, Default)]
pub struct SyncFuzzSummary {
    /// Cases executed.
    pub cases: usize,
    /// Rounds simulated across all cases.
    pub rounds: usize,
    /// Ops shipped in ranges across all cases (retransmissions count).
    pub ops_shipped: usize,
    /// Crashes fired across all cases.
    pub crashes: usize,
    /// Convergence failures, in discovery order.
    pub failures: Vec<SyncFailure>,
}

impl SyncFuzzSummary {
    /// Whether every case converged to its baseline.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Draws one scenario: scheme, replica count, partitioned op stream,
/// fault plan, policy.
fn gen_scenario(seed: u64) -> Scenario {
    let mut rng = SplitMix64::new(seed);
    let db = gen_scheme(&mut rng);
    let mut symbols = SymbolTable::new();
    let replicas = rng.gen_range_inclusive(2, 4);
    let op_horizon = rng.gen_range_inclusive(1, 6);
    let nops = rng.gen_range_inclusive(3, 8);
    let entities = rng.gen_range_inclusive(2, 3);

    let mut pool: Vec<String> = Vec::new();
    let mut ops = Vec::with_capacity(nops);
    for _ in 0..nops {
        let i = rng.gen_range(0, db.len());
        let line = match rng.gen_range(0, 100) {
            // Delete something previously inserted (contended when the
            // replicas that issued the two ops differ).
            0..=19 if !pool.is_empty() => {
                let rendered = pool[rng.gen_range(0, pool.len())].clone();
                format!("delete {rendered}")
            }
            // A key-violating insert: the canonical order decides its
            // verdict identically everywhere.
            20..=39 => {
                let t = corrupt_tuple(&db, &mut symbols, i, 0, 1);
                format!("insert {}", render_tuple_line(&db, &symbols, i, &t))
            }
            _ => {
                let id = rng.gen_range(0, entities + 1);
                let t = entity_tuple(&db, &mut symbols, id).project(db.scheme(i).attrs());
                let rendered = render_tuple_line(&db, &symbols, i, &t);
                pool.push(rendered.clone());
                format!("insert {rendered}")
            }
        };
        ops.push(ScriptedOp {
            round: rng.gen_range(0, op_horizon),
            replica: rng.gen_range(0, replicas),
            line,
        });
    }

    Scenario {
        db,
        replicas,
        seed: rng.next_u64(),
        max_rounds: 96,
        policy: SyncPolicy {
            max_retries: rng.gen_range_inclusive(1, 4) as u32,
            backoff_rounds: rng.gen_range_inclusive(0, 3) as u32,
            round_timeout: rng.gen_range_inclusive(1, 4) as u32,
        },
        plan: FaultPlan::random(&mut rng, replicas, 8),
        ops,
        transport: Transport::Sim,
    }
}

/// The baseline the group must converge to: one replica holding every
/// op at its true origin, in the sim's application order (round, then
/// script order).
fn baseline(s: &Scenario, guard: &Guard) -> Result<Replica, String> {
    let mut base = Replica::new(0, s.replicas, &s.db);
    let last = s.ops.iter().map(|o| o.round).max().unwrap_or(0);
    for round in 0..=last {
        for op in s.ops.iter().filter(|o| o.round == round) {
            base.adopt_op(op.replica, &op.line, guard)
                .map_err(|e| format!("baseline op: {e}"))?;
        }
    }
    Ok(base)
}

/// Runs a scenario and checks every replica against the baseline.
/// `Ok(stats)` on convergence; `Err((kind, detail))` otherwise.
/// Dispatches on the scenario's transport: the in-process simulator
/// (with per-replica probe checks) or the real-socket wire runner.
fn check_scenario(s: &Scenario) -> Result<(usize, usize, usize), (String, String)> {
    match s.transport {
        Transport::Sim => check_sim_scenario(s),
        Transport::Wire => check_wire_scenario(s),
    }
}

/// The wire arm's check: the same scripted faults executed over real
/// loopback sockets with journal files, then the report's converged
/// state (every replica byte-checked against replica 0 by the runner)
/// diffed against the never-partitioned baseline.
fn check_wire_scenario(s: &Scenario) -> Result<(usize, usize, usize), (String, String)> {
    let guard = Guard::unlimited();
    let setup = |e: String| ("setup".to_string(), e);
    let base = baseline(s, &guard).map_err(setup)?;
    let report = idr_sync::run_wire_scenario(s, idr_obs::TraceHandle::none(), None)
        .map_err(|e| setup(format!("wire: {e}")))?;
    let stats = (report.rounds, report.ops_shipped, report.crashes);
    if let Some(d) = &report.diverged {
        return Err(("diverged".to_string(), d.clone()));
    }
    if !report.converged {
        return Err((
            "liveness".to_string(),
            format!(
                "no convergence within {} rounds; last: {}",
                s.max_rounds,
                report.trace.last().cloned().unwrap_or_default()
            ),
        ));
    }
    if report.state_lines != base.state_lines() {
        return Err((
            "state".to_string(),
            format!(
                "wire group [{}] != baseline [{}]",
                report.state_lines.join("; "),
                base.state_lines().join("; ")
            ),
        ));
    }
    if report.consistent != base.is_consistent() {
        return Err((
            "verdict".to_string(),
            format!(
                "wire group consistent={} baseline={}",
                report.consistent,
                base.is_consistent()
            ),
        ));
    }
    Ok(stats)
}

fn check_sim_scenario(s: &Scenario) -> Result<(usize, usize, usize), (String, String)> {
    let guard = Guard::unlimited();
    let setup = |e: String| ("setup".to_string(), e);
    let base = baseline(s, &guard).map_err(setup)?;
    let probe: AttrSet = {
        // Derived from the scenario seed so shrinking preserves it.
        let mut rng = SplitMix64::new(s.seed);
        s.db.scheme(rng.gen_range(0, s.db.len())).attrs()
    };
    let base_answer = base
        .answer(probe, &guard)
        .map_err(|e| setup(format!("baseline query: {e}")))?;

    let mut sim = idr_sync::Simulator::new(
        &s.db,
        s.replicas,
        s.ops.clone(),
        s.plan.clone(),
        s.policy,
        s.seed,
    );
    let report = sim
        .run(s.max_rounds)
        .map_err(|e| setup(format!("sim: {e}")))?;
    let stats = (report.rounds, report.ops_shipped, report.crashes);
    if let Some(d) = &report.diverged {
        return Err(("diverged".to_string(), d.clone()));
    }
    if !report.converged {
        return Err((
            "liveness".to_string(),
            format!(
                "no convergence within {} rounds; last: {}",
                s.max_rounds,
                report.trace.last().cloned().unwrap_or_default()
            ),
        ));
    }
    for r in sim.replicas() {
        if r.state_lines() != base.state_lines() {
            return Err((
                "state".to_string(),
                format!(
                    "replica {} [{}] != baseline [{}]",
                    r.id(),
                    r.state_lines().join("; "),
                    base.state_lines().join("; ")
                ),
            ));
        }
        if r.is_consistent() != base.is_consistent() {
            return Err((
                "verdict".to_string(),
                format!(
                    "replica {} consistent={} baseline={}",
                    r.id(),
                    r.is_consistent(),
                    base.is_consistent()
                ),
            ));
        }
        let got = r
            .answer(probe, &guard)
            .map_err(|e| setup(format!("replica {} query: {e}", r.id())))?;
        if got != base_answer {
            return Err((
                "answer".to_string(),
                format!("replica {} {:?} != baseline {:?}", r.id(), got, base_answer),
            ));
        }
    }
    Ok(stats)
}

/// Greedy shrink: drop ops, then crashes, then partitions, then zero
/// the probabilistic knobs — keeping each removal only if the scenario
/// still fails with the **same kind**.
fn shrink(mut s: Scenario, kind: &str) -> Scenario {
    let still_fails = |s: &Scenario| matches!(&check_scenario(s), Err((k, _)) if k == kind);
    let mut progress = true;
    while progress {
        progress = false;
        let mut i = 0;
        while i < s.ops.len() {
            let mut candidate = s.clone();
            candidate.ops.remove(i);
            if still_fails(&candidate) {
                s = candidate;
                progress = true;
            } else {
                i += 1;
            }
        }
    }
    let mut i = 0;
    while i < s.plan.crashes.len() {
        let mut candidate = s.clone();
        candidate.plan.crashes.remove(i);
        if still_fails(&candidate) {
            s = candidate;
        } else {
            i += 1;
        }
    }
    let mut i = 0;
    while i < s.plan.partitions.len() {
        let mut candidate = s.clone();
        candidate.plan.partitions.remove(i);
        if still_fails(&candidate) {
            s = candidate;
        } else {
            i += 1;
        }
    }
    for knob in 0..3 {
        let mut candidate = s.clone();
        match knob {
            0 => candidate.plan.drop_pct = 0,
            1 => candidate.plan.dup_pct = 0,
            _ => candidate.plan.delay_pct = 0,
        }
        if still_fails(&candidate) {
            s = candidate;
        }
    }
    s
}

/// Runs one case end to end, recording stats and (shrunk) failures.
fn run_case(seed: u64, transport: Transport, summary: &mut SyncFuzzSummary) {
    let mut scenario = gen_scenario(seed);
    scenario.transport = transport;
    match check_scenario(&scenario) {
        Ok((rounds, shipped, crashes)) => {
            summary.rounds += rounds;
            summary.ops_shipped += shipped;
            summary.crashes += crashes;
        }
        Err((kind, detail)) => {
            let shrunk = shrink(scenario, &kind);
            summary.failures.push(SyncFailure {
                seed,
                kind,
                detail,
                scenario: render_scenario(&shrunk),
            });
        }
    }
}

/// Runs `cases` convergence cases from master seed `seed`; per-case
/// seeds are drawn from the master stream (the same convention as the
/// other arms). `transport` selects the runner under test: the
/// in-process simulator (the model) or real loopback sockets with
/// durable journals (`idr fuzz --sync --wire`). `progress` is called
/// after each case with `(index, failures so far)`.
pub fn sync_fuzz(
    seed: u64,
    cases: usize,
    transport: Transport,
    mut progress: Option<&mut dyn FnMut(usize, usize)>,
) -> SyncFuzzSummary {
    let mut master = SplitMix64::new(seed);
    let mut summary = SyncFuzzSummary::default();
    for k in 0..cases {
        let case_seed = master.next_u64();
        summary.cases += 1;
        run_case(case_seed, transport, &mut summary);
        if let Some(p) = progress.as_deref_mut() {
            p(k + 1, summary.failures.len());
        }
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The in-process equivalent of the CI sync-fuzz smoke step.
    #[test]
    fn bounded_sync_fuzz_is_clean() {
        let summary = sync_fuzz(42, 25, Transport::Sim, None);
        assert_eq!(summary.cases, 25);
        assert!(summary.rounds > 0);
        assert!(
            summary.is_clean(),
            "failures: {}",
            summary
                .failures
                .iter()
                .map(|f| format!("{f}\n--- scenario ---\n{}", f.scenario))
                .collect::<Vec<_>>()
                .join("\n")
        );
    }

    /// The wire arm: the same scripted fault plans replayed over real
    /// loopback sockets against durable journals (bounded here; CI runs
    /// 50 cases via `idr fuzz --sync --wire`).
    #[test]
    fn bounded_wire_fuzz_is_clean() {
        let summary = sync_fuzz(42, 8, Transport::Wire, None);
        assert_eq!(summary.cases, 8);
        assert!(summary.rounds > 0);
        assert!(
            summary.is_clean(),
            "failures: {}",
            summary
                .failures
                .iter()
                .map(|f| format!("{f}\n--- scenario ---\n{}", f.scenario))
                .collect::<Vec<_>>()
                .join("\n")
        );
    }

    #[test]
    fn sync_fuzz_is_deterministic() {
        let a = sync_fuzz(7, 6, Transport::Sim, None);
        let b = sync_fuzz(7, 6, Transport::Sim, None);
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.ops_shipped, b.ops_shipped);
        assert_eq!(a.crashes, b.crashes);
        assert_eq!(a.failures.len(), b.failures.len());
    }

    /// A scripted liveness failure (a partition that never heals within
    /// the round budget) is caught, and the shrinker keeps it failing.
    #[test]
    fn eternal_partition_is_a_liveness_failure() {
        let mut s = gen_scenario(3);
        s.plan = FaultPlan::clean();
        s.plan.partitions.push(idr_sync::Partition {
            from_round: 0,
            to_round: usize::MAX,
            groups: (0..s.replicas).map(|r| vec![r]).collect(),
        });
        // Ops on at least two replicas so isolation actually matters.
        s.ops = vec![
            ScriptedOp {
                round: 0,
                replica: 0,
                line: s.ops[0].line.clone(),
            },
            ScriptedOp {
                round: 0,
                replica: 1,
                line: s.ops[s.ops.len() - 1].line.clone(),
            },
        ];
        match check_scenario(&s) {
            Err((kind, _)) => assert_eq!(kind, "liveness"),
            Ok(_) => panic!("an eternally partitioned group cannot converge"),
        }
    }
}
