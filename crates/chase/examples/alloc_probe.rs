//! Counts heap allocations on the incremental-chase hot paths.
//!
//! Builds two synthetic workloads over a 4-attribute universe —
//! `fresh` (every row claims new index slots) and `merge` (rows share
//! keys, so probes hit existing entries and classes merge) — then counts
//! allocations separately for the *push* phase (row appends into the
//! arenas) and the *run* phase (worklist-driven chase). The numbers
//! attribute two optimisations: the borrowed-slice `keyidx` probe (run
//! phase: a `Box<[u32]>` per lookup before, only first-time slot claims
//! after) and the flat cell/membership arenas (push phase: a `Vec` per
//! row plus per-class membership vecs before, amortised flat pushes
//! after).
//!
//! Run with `cargo run --release -p idr-chase --example alloc_probe`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use idr_chase::incremental::IncrementalChase;
use idr_fd::FdSet;
use idr_relation::exec::Guard;
use idr_relation::{SymbolTable, Tuple, Universe};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn make_tuple(i: usize, shared_keys: bool, u: &Universe, sym: &mut SymbolTable) -> Tuple {
    let a = u.attr_of("A");
    let b = u.attr_of("B");
    let c = u.attr_of("C");
    let d = u.attr_of("D");
    if shared_keys {
        // Every 4 rows share an A value and leave B/C undefined, so
        // their fresh ndv classes merge under A→B / A→C and the
        // dirtied rows re-probe the index (no constants clash).
        let ak = i / 4;
        Tuple::from_pairs([
            (a, sym.intern(&format!("a{ak}"))),
            (d, sym.intern(&format!("d{ak}"))),
        ])
    } else {
        Tuple::from_pairs([
            (a, sym.intern(&format!("a{i}"))),
            (b, sym.intern(&format!("b{i}"))),
            (c, sym.intern(&format!("c{i}"))),
            (d, sym.intern(&format!("d{i}"))),
        ])
    }
}

fn probe(name: &str, rows: usize, shared_keys: bool) {
    let u = Universe::of_chars("ABCD");
    let fds = FdSet::parse(&u, "A->B, A->C, B->D");
    let mut sym = SymbolTable::new();
    let mut engine = IncrementalChase::new(u.len(), &fds);
    // Materialise the tuples first so interning noise stays out of the
    // counted windows.
    let tuples: Vec<Tuple> = (0..rows)
        .map(|i| make_tuple(i, shared_keys, &u, &mut sym))
        .collect();
    let before_push = ALLOCS.load(Ordering::Relaxed);
    for t in &tuples {
        engine.push_tuple(t, Some(0)).expect("within capacity");
    }
    let push = ALLOCS.load(Ordering::Relaxed) - before_push;
    let before_run = ALLOCS.load(Ordering::Relaxed);
    let stats = engine.run(&Guard::unlimited()).err();
    let run = ALLOCS.load(Ordering::Relaxed) - before_run;
    println!(
        "{name}: {rows} rows, {push} allocation(s) during push, {run} during run(){}",
        match stats {
            None => String::new(),
            Some(e) => format!(" (chase ended early: {e})"),
        }
    );
}

fn main() {
    probe("fresh", 100_000, false);
    probe("merge", 100_000, true);
}
