//! The incremental chase engine: union-find over symbols, per-fd LHS
//! hash indexes, and a dirty-row worklist.
//!
//! [`crate::chase`] re-scans the whole tableau after every fd-rule
//! application and renames symbols by scanning columns; [`crate::fast`]
//! indexes the scan but still rewrites symbol occurrences eagerly. This
//! module replaces symbol rewriting altogether: every tableau cell holds a
//! *node* of a union-find structure, and an fd-rule application is a
//! single `union` of two equivalence classes. The canonical symbol of a
//! class is maintained under the chase's renaming precedence (a constant
//! beats any variable, the distinguished variable beats a
//! nondistinguished one, and the lower-indexed ndv wins), so the
//! materialised tableau is *identical* — not merely equivalent — to the
//! reference chase's output (the chase is Church–Rosser, and both engines
//! pick the same class representative).
//!
//! Three structures drive the evaluation:
//!
//! * **Union-find nodes** ([`IncrementalChase::union`]): merging two
//!   classes costs near-constant time plus one worklist push per row
//!   whose visible symbol actually changed — exactly the semantic cost of
//!   a rename, without scanning anything.
//! * **Per-fd LHS indexes**: a hash map from the *canonical node vector*
//!   of an fd's left-hand side to a representative row, so rule partners
//!   are found by lookup. Entries go stale as classes merge and are
//!   validated lazily, as in [`crate::fast`]; the rows whose keys changed
//!   were enqueued by the very union that changed them.
//! * **Dirty-row worklist** (semi-naive evaluation): only rows whose
//!   symbols changed since they were last examined are re-probed, so a
//!   [`push_tuple`](IncrementalChase::push_tuple) after a completed run
//!   re-examines just the new row and whatever it transitively touches —
//!   the incremental maintenance path of the `Engine` facade.
//!
//! The engine is *resumable*: a budget or deadline trip leaves the
//! worklist intact, and a later [`run`](IncrementalChase::run) with a
//! fresh guard picks up where it stopped. An inconsistency, by contrast,
//! poisons the engine permanently (the chase result is the empty tableau;
//! callers rebuild from the state).

use std::collections::HashMap;

use idr_fd::{Fd, FdSet};
use idr_relation::exec::{ExecError, Guard};
use idr_relation::{AttrSet, Attribute, DatabaseScheme, DatabaseState, Tuple, Value};

use crate::chase_engine::{ChaseStats, Inconsistent};
use crate::tableau::{ChaseSym, Row, Tableau};

/// The incremental chase engine. See the module docs for the design.
#[derive(Clone, Debug)]
pub struct IncrementalChase {
    width: usize,
    fds: FdSet,
    /// Union-find parent links; `parent[n] == n` marks a root.
    parent: Vec<u32>,
    /// Canonical symbol per class (valid at roots).
    sym: Vec<ChaseSym>,
    /// Rows whose cell canonicalises into this class (valid at roots).
    /// Classes never span columns, so a row appears at most once.
    members: Vec<Vec<u32>>,
    /// Per row, per column: the node held by that cell.
    cells: Vec<Vec<u32>>,
    /// Origin tags, parallel to `cells`.
    tags: Vec<Option<usize>>,
    /// Per-column interner for constant nodes: a constant's node is
    /// allocated once, so a later insert of a matching constant lands in
    /// the same class automatically.
    const_nodes: Vec<HashMap<Value, u32>>,
    /// Per-column node for the distinguished variable, allocated lazily.
    dv_nodes: Vec<Option<u32>>,
    next_ndv: u32,
    /// Per-fd index: canonical LHS node vector → representative row.
    keyidx: Vec<HashMap<Box<[u32]>, u32>>,
    work: Vec<u32>,
    queued: Vec<bool>,
    stats: ChaseStats,
    failure: Option<Inconsistent>,
}

impl IncrementalChase {
    /// An empty engine over a universe of `width` attributes, chasing with
    /// `fds`. The fd set is fixed for the engine's lifetime — the per-fd
    /// indexes are built against it.
    pub fn new(width: usize, fds: &FdSet) -> Self {
        IncrementalChase {
            width,
            keyidx: vec![HashMap::new(); fds.fds().len()],
            fds: fds.clone(),
            parent: Vec::new(),
            sym: Vec::new(),
            members: Vec::new(),
            cells: Vec::new(),
            tags: Vec::new(),
            const_nodes: vec![HashMap::new(); width],
            dv_nodes: vec![None; width],
            next_ndv: 0,
            work: Vec::new(),
            queued: Vec::new(),
            stats: ChaseStats::default(),
            failure: None,
        }
    }

    /// The engine over the state tableau `T_r` (§2.2): one row per tuple,
    /// constants on the origin scheme, fresh ndvs elsewhere. Call
    /// [`run`](IncrementalChase::run) to chase.
    pub fn of_state(scheme: &DatabaseScheme, state: &DatabaseState, fds: &FdSet) -> Self {
        let mut e = IncrementalChase::new(scheme.universe().len(), fds);
        for (i, t) in state.iter_all() {
            e.push_tuple(t, Some(i));
        }
        e
    }

    /// The engine over an existing tableau (any mix of constants, dvs and
    /// ndvs); symbols equal within a column start in the same class.
    pub fn of_tableau(t: &Tableau, fds: &FdSet) -> Self {
        let mut e = IncrementalChase::new(t.width(), fds);
        // Per-column interner for the initial build: rows of a tableau may
        // legitimately share ndvs within a column.
        let mut interned: Vec<HashMap<ChaseSym, u32>> = vec![HashMap::new(); t.width()];
        for row in t.rows() {
            let r = e.cells.len() as u32;
            let mut cells = Vec::with_capacity(e.width);
            for (col, intern) in interned.iter_mut().enumerate() {
                let s = row.sym(Attribute::from_index(col));
                if let ChaseSym::Ndv(i) = s {
                    e.next_ndv = e.next_ndv.max(i + 1);
                }
                let node = *intern.entry(s).or_insert_with(|| {
                    let id = e.parent.len() as u32;
                    e.parent.push(id);
                    e.sym.push(s);
                    e.members.push(Vec::new());
                    id
                });
                e.members[node as usize].push(r);
                cells.push(node);
            }
            e.cells.push(cells);
            e.tags.push(row.tag);
            e.queued.push(true);
            e.work.push(r);
        }
        // Keep the persistent interners consistent for later inserts.
        for (col, m) in interned.into_iter().enumerate() {
            for (s, node) in m {
                match s {
                    ChaseSym::Const(v) => {
                        e.const_nodes[col].insert(v, node);
                    }
                    ChaseSym::Dv => e.dv_nodes[col] = Some(node),
                    ChaseSym::Ndv(_) => {}
                }
            }
        }
        e
    }

    /// Appends a row for a (possibly partial) tuple — constants where the
    /// tuple is defined, fresh ndvs elsewhere — and marks it dirty.
    /// Returns the row index.
    ///
    /// After a completed [`run`](IncrementalChase::run), pushing a tuple
    /// and running again is the *incremental insert* path: only the new
    /// row and the rows it transitively merges with are re-examined.
    pub fn push_tuple(&mut self, tuple: &Tuple, tag: Option<usize>) -> usize {
        let r = self.cells.len() as u32;
        let mut cells = Vec::with_capacity(self.width);
        for col in 0..self.width {
            let node = match tuple.get(Attribute::from_index(col)) {
                Some(v) => self.const_node(col, v),
                None => {
                    let s = ChaseSym::Ndv(self.next_ndv);
                    self.next_ndv += 1;
                    self.fresh_node(s)
                }
            };
            let root = self.find(node);
            self.members[root as usize].push(r);
            cells.push(node);
        }
        self.cells.push(cells);
        self.tags.push(tag);
        self.queued.push(true);
        self.work.push(r);
        r as usize
    }

    /// Chases to fixpoint (or resumes a budget-interrupted chase),
    /// charging one chase step per class merge against `guard` and
    /// honouring its deadline/cancellation on every worklist pop.
    ///
    /// On an inconsistency the engine is poisoned: every later call
    /// returns the same [`ExecError::Inconsistent`]. On a resource trip
    /// the worklist is preserved, so a later call with a fresh guard
    /// resumes the chase.
    pub fn run(&mut self, guard: &Guard) -> Result<ChaseStats, ExecError> {
        if let Some(f) = &self.failure {
            return Err(f.clone().into());
        }
        while let Some(r) = self.work.pop() {
            self.queued[r as usize] = false;
            self.stats.passes += 1;
            if let Err(e) = self.step_row(r, guard) {
                // Keep the row pending so a fresh guard can resume.
                self.enqueue(r);
                return Err(e);
            }
        }
        Ok(self.stats)
    }

    /// Probes one dirty row against every fd.
    fn step_row(&mut self, r: u32, guard: &Guard) -> Result<(), ExecError> {
        guard.checkpoint()?;
        for fi in 0..self.fds.fds().len() {
            let key = self.key_of(fi, r);
            match self.keyidx[fi].get(&key).copied() {
                None => {
                    self.keyidx[fi].insert(key, r);
                }
                Some(rep) if rep == r => {}
                Some(rep) => {
                    // Validate lazily: the stored representative's key may
                    // have changed since it was indexed. If so, this slot
                    // now belongs to `r`; the old representative was
                    // enqueued by the union that changed its key.
                    let rep_key = self.key_of(fi, rep);
                    if rep_key != key {
                        self.keyidx[fi].insert(key, r);
                        continue;
                    }
                    let fd = self.fds.fds()[fi];
                    let mut any = false;
                    for a in fd.rhs.iter() {
                        let na = self.cells[rep as usize][a.index()];
                        let nb = self.cells[r as usize][a.index()];
                        if self.union(na, nb, fd, a, guard)? {
                            any = true;
                        }
                    }
                    if any {
                        // `r`'s keys may have changed; restart its sweep.
                        self.enqueue(r);
                        break;
                    }
                }
            }
        }
        Ok(())
    }

    /// Merges the classes of nodes `a` and `b` under the renaming
    /// precedence of §2.3. Returns whether the classes were distinct.
    /// Every row of the losing class is enqueued — those are exactly the
    /// rows whose visible symbol changed.
    fn union(
        &mut self,
        a: u32,
        b: u32,
        fd: Fd,
        column: Attribute,
        guard: &Guard,
    ) -> Result<bool, ExecError> {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return Ok(false);
        }
        let (win, lose) = match (self.sym[ra as usize], self.sym[rb as usize]) {
            (ChaseSym::Const(_), ChaseSym::Const(_)) => {
                let e = Inconsistent { fd, column };
                self.failure = Some(e.clone());
                return Err(e.into());
            }
            (ChaseSym::Const(_), _) => (ra, rb),
            (_, ChaseSym::Const(_)) => (rb, ra),
            (ChaseSym::Dv, _) => (ra, rb),
            (_, ChaseSym::Dv) => (rb, ra),
            (ChaseSym::Ndv(x), ChaseSym::Ndv(y)) => {
                if x < y {
                    (ra, rb)
                } else {
                    (rb, ra)
                }
            }
        };
        guard.chase_step()?;
        self.stats.rule_applications += 1;
        self.parent[lose as usize] = win;
        let moved = std::mem::take(&mut self.members[lose as usize]);
        for &row in &moved {
            self.enqueue(row);
        }
        self.members[win as usize].extend(moved);
        Ok(true)
    }

    fn enqueue(&mut self, r: u32) {
        if !self.queued[r as usize] {
            self.queued[r as usize] = true;
            self.work.push(r);
        }
    }

    /// The canonical LHS node vector of row `r` for fd `fi`.
    fn key_of(&mut self, fi: usize, r: u32) -> Box<[u32]> {
        let lhs = self.fds.fds()[fi].lhs;
        let mut key = Vec::with_capacity(lhs.len());
        for a in lhs.iter() {
            let n = self.cells[r as usize][a.index()];
            key.push(self.find(n));
        }
        key.into_boxed_slice()
    }

    /// Root of `x` with path compression.
    fn find(&mut self, mut x: u32) -> u32 {
        let mut root = x;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        while self.parent[x as usize] != root {
            let next = self.parent[x as usize];
            self.parent[x as usize] = root;
            x = next;
        }
        root
    }

    /// Root of `x` without compression, for read-only accessors.
    fn find_ro(&self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            x = self.parent[x as usize];
        }
        x
    }

    fn const_node(&mut self, col: usize, v: Value) -> u32 {
        if let Some(&n) = self.const_nodes[col].get(&v) {
            return n;
        }
        let n = self.fresh_node(ChaseSym::Const(v));
        self.const_nodes[col].insert(v, n);
        n
    }

    fn fresh_node(&mut self, s: ChaseSym) -> u32 {
        let id = self.parent.len() as u32;
        self.parent.push(id);
        self.sym.push(s);
        self.members.push(Vec::new());
        id
    }

    /// The inconsistency that poisoned the engine, if any.
    pub fn failure(&self) -> Option<&Inconsistent> {
        self.failure.as_ref()
    }

    /// Accumulated work counters across all runs.
    pub fn stats(&self) -> ChaseStats {
        self.stats
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the engine holds no rows.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Number of columns (universe size).
    pub fn width(&self) -> usize {
        self.width
    }

    /// The restricted projection `πt_X` over the current (chased) rows:
    /// rows all-constant on `x`, projected and deduplicated.
    pub fn total_projection(&self, x: AttrSet) -> Vec<Tuple> {
        let mut out = Vec::new();
        'rows: for cells in &self.cells {
            let mut pairs = Vec::with_capacity(x.len());
            for a in x.iter() {
                match self.sym[self.find_ro(cells[a.index()]) as usize] {
                    ChaseSym::Const(v) => pairs.push((a, v)),
                    _ => continue 'rows,
                }
            }
            out.push(Tuple::from_pairs(pairs));
        }
        out.sort();
        out.dedup();
        out
    }

    /// Materialises the current rows with their canonical symbols.
    pub fn to_tableau(&self) -> Tableau {
        Tableau::from_raw(self.width, self.materialize_rows(), self.next_ndv)
    }

    fn materialize_rows(&self) -> Vec<Row> {
        self.cells
            .iter()
            .zip(&self.tags)
            .map(|(cells, &tag)| Row {
                syms: cells
                    .iter()
                    .map(|&n| self.sym[self.find_ro(n) as usize])
                    .collect(),
                tag,
            })
            .collect()
    }
}

/// `CHASE_F(T)` through the incremental engine — a drop-in replacement
/// for [`chase`](crate::chase)/[`chase_fast`](crate::chase_fast) with the
/// same contract: the tableau is chased in place, one chase step is
/// charged per rule application, and on success the result is identical
/// to the reference engine's.
pub fn chase_incremental(
    t: &mut Tableau,
    fds: &FdSet,
    guard: &Guard,
) -> Result<ChaseStats, ExecError> {
    let mut engine = IncrementalChase::of_tableau(t, fds);
    let stats = engine.run(guard)?;
    *t.rows_mut() = engine.materialize_rows();
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chase_engine::chase;
    use idr_fd::KeyDeps;
    use idr_relation::exec::Budget;
    use idr_relation::{state_of, SchemeBuilder, SymbolTable};

    fn merging_fixture() -> (idr_relation::DatabaseScheme, DatabaseState) {
        let scheme = SchemeBuilder::new("ABC")
            .scheme("R1", "AB", ["A"])
            .scheme("R2", "AC", ["A"])
            .build()
            .unwrap();
        let mut sym = SymbolTable::new();
        let state = state_of(
            &scheme,
            &mut sym,
            &[
                ("R1", &[("A", "a"), ("B", "b")]),
                ("R2", &[("A", "a"), ("C", "c")]),
            ],
        )
        .unwrap();
        (scheme, state)
    }

    #[test]
    fn identical_to_reference_on_merging_state() {
        let (scheme, state) = merging_fixture();
        let kd = KeyDeps::of(&scheme);
        let mut t1 = Tableau::of_state(&scheme, &state);
        let mut t2 = t1.clone();
        chase(&mut t1, kd.full(), &Guard::unlimited()).unwrap();
        chase_incremental(&mut t2, kd.full(), &Guard::unlimited()).unwrap();
        // Not just equivalent: identical rows, symbols and tags.
        assert_eq!(t1, t2);
    }

    #[test]
    fn detects_inconsistency_and_poisons() {
        let scheme = SchemeBuilder::new("AB")
            .scheme("R1", "AB", ["A"])
            .build()
            .unwrap();
        let kd = KeyDeps::of(&scheme);
        let mut sym = SymbolTable::new();
        let state = state_of(
            &scheme,
            &mut sym,
            &[
                ("R1", &[("A", "a"), ("B", "b1")]),
                ("R1", &[("A", "a"), ("B", "b2")]),
            ],
        )
        .unwrap();
        let mut e = IncrementalChase::of_state(&scheme, &state, kd.full());
        let err = e.run(&Guard::unlimited()).unwrap_err();
        assert!(matches!(err, ExecError::Inconsistent { .. }));
        assert!(e.failure().is_some());
        // Poisoned: later runs keep failing.
        assert!(e.run(&Guard::unlimited()).is_err());
    }

    #[test]
    fn transitive_merges_propagate() {
        let scheme = SchemeBuilder::new("ABC")
            .scheme("R1", "AB", ["AB"])
            .scheme("R2", "BC", ["B"])
            .scheme("R3", "AC", ["A"])
            .build()
            .unwrap();
        let kd = KeyDeps::of(&scheme);
        let mut sym = SymbolTable::new();
        let state = state_of(
            &scheme,
            &mut sym,
            &[
                ("R3", &[("A", "a0"), ("C", "c0")]),
                ("R1", &[("A", "a0"), ("B", "b0")]),
                ("R1", &[("A", "a1"), ("B", "b0")]),
                ("R1", &[("A", "a1"), ("B", "b1")]),
                ("R1", &[("A", "a2"), ("B", "b1")]),
            ],
        )
        .unwrap();
        let mut t1 = Tableau::of_state(&scheme, &state);
        let mut t2 = t1.clone();
        chase(&mut t1, kd.full(), &Guard::unlimited()).unwrap();
        chase_incremental(&mut t2, kd.full(), &Guard::unlimited()).unwrap();
        let ac = scheme.universe().set_of("AC");
        assert_eq!(t1.total_projection(ac).len(), 3);
        assert_eq!(t1, t2);
    }

    #[test]
    fn empty_inputs() {
        let mut t = Tableau::new(3);
        assert!(chase_incremental(&mut t, &FdSet::new(), &Guard::unlimited()).is_ok());
        let mut e = IncrementalChase::new(3, &FdSet::new());
        assert!(e.is_empty());
        assert!(e.run(&Guard::unlimited()).is_ok());
    }

    #[test]
    fn incremental_insert_matches_batch_chase() {
        let (scheme, state) = merging_fixture();
        let kd = KeyDeps::of(&scheme);
        let u = scheme.universe();
        let mut sym = SymbolTable::new();

        // Batch: chase the state plus the extra tuple from scratch.
        let extra = Tuple::from_pairs([
            (u.attr_of("A"), sym.intern("a2")),
            (u.attr_of("B"), sym.intern("b2")),
        ]);
        let mut batched = state.clone();
        batched.insert(0, extra.clone()).unwrap();
        let mut t_batch = Tableau::of_state(&scheme, &batched);
        chase(&mut t_batch, kd.full(), &Guard::unlimited()).unwrap();

        // Incremental: run, then push the tuple, then run again.
        let mut e = IncrementalChase::of_state(&scheme, &state, kd.full());
        e.run(&Guard::unlimited()).unwrap();
        e.push_tuple(&extra, Some(0));
        e.run(&Guard::unlimited()).unwrap();

        let all = u.all();
        assert_eq!(e.total_projection(all), t_batch.total_projection(all));
        let ab = u.set_of("AB");
        assert_eq!(e.total_projection(ab), t_batch.total_projection(ab));
    }

    #[test]
    fn incremental_insert_reuses_constant_classes() {
        // Inserting a tuple that shares constants with merged rows must
        // pick up the merged class, not a fresh node.
        let (scheme, state) = merging_fixture();
        let kd = KeyDeps::of(&scheme);
        let u = scheme.universe();
        let mut e = IncrementalChase::of_state(&scheme, &state, kd.full());
        e.run(&Guard::unlimited()).unwrap();
        // Insert R2(a, c2): conflicts with the existing R2(a, c) under
        // key A → inconsistency must be detected incrementally.
        // Replicate the fixture's interning order so "a" maps to the same
        // value and "c2" to a fresh one.
        let mut sym = SymbolTable::new();
        let (av, _, _) = (sym.intern("a"), sym.intern("b"), sym.intern("c"));
        let c2 = sym.intern("c2");
        let bad = Tuple::from_pairs([(u.attr_of("A"), av), (u.attr_of("C"), c2)]);
        e.push_tuple(&bad, Some(1));
        let err = e.run(&Guard::unlimited()).unwrap_err();
        assert!(matches!(err, ExecError::Inconsistent { .. }));
    }

    #[test]
    fn budget_trip_is_resumable() {
        let scheme = SchemeBuilder::new("ABC")
            .scheme("R1", "AB", ["AB"])
            .scheme("R2", "BC", ["B"])
            .scheme("R3", "AC", ["A"])
            .build()
            .unwrap();
        let kd = KeyDeps::of(&scheme);
        let mut sym = SymbolTable::new();
        let state = state_of(
            &scheme,
            &mut sym,
            &[
                ("R3", &[("A", "a0"), ("C", "c0")]),
                ("R1", &[("A", "a0"), ("B", "b0")]),
                ("R1", &[("A", "a1"), ("B", "b0")]),
                ("R1", &[("A", "a1"), ("B", "b1")]),
                ("R1", &[("A", "a2"), ("B", "b1")]),
            ],
        )
        .unwrap();
        let mut e = IncrementalChase::of_state(&scheme, &state, kd.full());
        let tight = Guard::new(Budget::unlimited().with_max_chase_steps(1));
        assert!(matches!(
            e.run(&tight),
            Err(ExecError::BudgetExceeded { .. })
        ));
        // Resume with a fresh guard: reaches the same fixpoint.
        e.run(&Guard::unlimited()).unwrap();
        let mut oracle = Tableau::of_state(&scheme, &state);
        chase(&mut oracle, kd.full(), &Guard::unlimited()).unwrap();
        let all = scheme.universe().all();
        assert_eq!(e.total_projection(all), oracle.total_projection(all));
    }

    #[test]
    fn scheme_tableau_with_dvs_chases_identically() {
        let u = idr_relation::Universe::of_chars("ABCD");
        let f = FdSet::parse(&u, "A->B, B->C");
        let schemes = [u.set_of("AB"), u.set_of("BC"), u.set_of("CD")];
        let mut t1 = Tableau::of_scheme(&schemes, 4);
        let mut t2 = t1.clone();
        chase(&mut t1, &f, &Guard::unlimited()).unwrap();
        chase_incremental(&mut t2, &f, &Guard::unlimited()).unwrap();
        assert_eq!(t1, t2);
    }
}
