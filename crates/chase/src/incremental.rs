//! The incremental chase engine: union-find over symbols, per-fd LHS
//! hash indexes, and a dirty-row worklist.
//!
//! [`crate::chase`] re-scans the whole tableau after every fd-rule
//! application and renames symbols by scanning columns; [`crate::fast`]
//! indexes the scan but still rewrites symbol occurrences eagerly. This
//! module replaces symbol rewriting altogether: every tableau cell holds a
//! *node* of a union-find structure, and an fd-rule application is a
//! single `union` of two equivalence classes. The canonical symbol of a
//! class is maintained under the chase's renaming precedence (a constant
//! beats any variable, the distinguished variable beats a
//! nondistinguished one, and the lower-indexed ndv wins), so the
//! materialised tableau is *identical* — not merely equivalent — to the
//! reference chase's output (the chase is Church–Rosser, and both engines
//! pick the same class representative).
//!
//! Three structures drive the evaluation:
//!
//! * **Union-find nodes** (`IncrementalChase::union`): merging two
//!   classes costs near-constant time plus one worklist push per row
//!   whose visible symbol actually changed — exactly the semantic cost of
//!   a rename, without scanning anything.
//! * **Per-fd LHS indexes**: a hash map from the *canonical node vector*
//!   of an fd's left-hand side to a representative row, so rule partners
//!   are found by lookup. Entries go stale as classes merge and are
//!   validated lazily, as in [`crate::fast`]; the rows whose keys changed
//!   were enqueued by the very union that changed them.
//! * **Dirty-row worklist** (semi-naive evaluation): only rows whose
//!   symbols changed since they were last examined are re-probed, so a
//!   [`push_tuple`](IncrementalChase::push_tuple) after a completed run
//!   re-examines just the new row and whatever it transitively touches —
//!   the incremental maintenance path of the `Engine` facade.
//!
//! The engine is *resumable*: a budget or deadline trip leaves the
//! worklist intact, and a later [`run`](IncrementalChase::run) with a
//! fresh guard picks up where it stopped. An inconsistency, by contrast,
//! poisons the engine permanently (the chase result is the empty tableau;
//! callers rebuild from the state).
//!
//! ## Observability and provenance
//!
//! The engine optionally carries an [`idr_obs::TraceHandle`]
//! ([`with_observability`](IncrementalChase::with_observability)): it
//! then emits one `FdRuleFired` event per class merge, a `ChaseStarted`
//! / `RowsDirtied` pair per [`run`](IncrementalChase::run), and
//! `StateRejected` / `BudgetTrip` on the failure paths. Event labels
//! (fd and column renderings) are pre-computed when the tracer is
//! attached, so an emission clones two `Arc<str>`s; with the default
//! no-op handle every site is a single branch.
//!
//! With [`with_provenance`](IncrementalChase::with_provenance) the
//! engine additionally records, per class merge, *which* fd fired on
//! *which* two rows — an uncompressed merge forest beside the
//! path-compressed union-find. [`explain_cell`](IncrementalChase::explain_cell)
//! walks a cell's chain of merges (the exact fd-firing sequence that
//! gave the cell its canonical symbol, i.e. a Lemma 3.8-style witness),
//! [`explain_tuple`](IncrementalChase::explain_tuple) assembles the
//! per-column chains justifying a derived total tuple, and
//! [`explain_rejection`](IncrementalChase::explain_rejection)
//! reconstructs, for an inconsistency, the violated fd, the two witness
//! rows, and the firing chains under which their left-hand sides came
//! to agree.

use std::collections::HashMap;
use std::sync::Arc;

use idr_fd::{Fd, FdSet};
use idr_obs::{TraceEvent, TraceHandle};
use idr_relation::exec::{ExecError, Guard};
use idr_relation::{AttrSet, Attribute, DatabaseScheme, DatabaseState, Tuple, Universe, Value};

use crate::chase_engine::{ChaseStats, Inconsistent};
use crate::tableau::{ChaseSym, Row, Tableau};

/// Null link of the intrusive membership lists.
const NIL: u32 = u32::MAX;

/// One recorded fd-rule firing: fd index, merge column, and the two
/// rows (representative, probed) the rule was applied to.
#[derive(Clone, Copy, Debug)]
struct Firing {
    fd: u32,
    column: Attribute,
    rows: (u32, u32),
}

/// A link of the uncompressed merge forest: this (erstwhile root) class
/// was merged into `winner` by firing `firing`.
#[derive(Clone, Copy, Debug)]
struct MergeLink {
    winner: u32,
    firing: u32,
}

/// One fd-rule firing in a provenance chain, resolved for callers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FiringInfo {
    /// The dependency that fired.
    pub fd: Fd,
    /// The column whose classes merged.
    pub column: Attribute,
    /// The two rows the rule was applied to (representative, probed).
    pub rows: (usize, usize),
    /// Origin tags of those rows (relation index, when from a state).
    pub tags: (Option<usize>, Option<usize>),
}

/// The merge chain that gave one cell its canonical symbol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CellTrace {
    /// The cell's column.
    pub column: Attribute,
    /// Firings from the cell's original class to its current class,
    /// oldest first. Empty when the cell was born with its symbol.
    pub chain: Vec<FiringInfo>,
}

/// Provenance for a derived total tuple: the witnessing row and the
/// per-column firing chains.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TupleExplanation {
    /// The witnessing tableau row.
    pub row: usize,
    /// Its origin tag.
    pub tag: Option<usize>,
    /// One trace per requested column.
    pub cells: Vec<CellTrace>,
}

/// Provenance for an inconsistency: the violated dependency, the two
/// witness rows, and the chains under which their left-hand sides came
/// to agree (plus the chains of the two clashing cells themselves).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RejectionExplanation {
    /// The violated dependency.
    pub fd: Fd,
    /// The column on which two distinct constants clashed.
    pub column: Attribute,
    /// The two witness rows (representative, probed).
    pub rows: (usize, usize),
    /// Origin tags of the witness rows.
    pub tags: (Option<usize>, Option<usize>),
    /// Per LHS column: the two rows' merge chains (they end in the same
    /// class — that is *why* the fd applied).
    pub lhs: Vec<(Attribute, Vec<FiringInfo>, Vec<FiringInfo>)>,
    /// Merge chains of the two clashing cells (usually empty: base
    /// constants).
    pub clash: (Vec<FiringInfo>, Vec<FiringInfo>),
}

/// The incremental chase engine. See the module docs for the design.
#[derive(Clone, Debug)]
pub struct IncrementalChase {
    width: usize,
    fds: FdSet,
    /// Union-find parent links; `parent[n] == n` marks a root.
    parent: Vec<u32>,
    /// Canonical symbol per class (valid at roots).
    sym: Vec<ChaseSym>,
    /// Intrusive membership lists, replacing the old per-class
    /// `Vec<Vec<u32>>`: per class root, head/tail of a singly-linked
    /// list of *cell entries* (entry id = `row * width + col`, [`NIL`]
    /// when empty). Classes never span columns and a row has one cell
    /// per column, so a row appears at most once per class — and a
    /// union splices the loser's list onto the winner's in O(1) with
    /// zero allocation, where the nested-vec shape reallocated the
    /// winner on almost every merge.
    member_head: Vec<u32>,
    /// Tail of each class's membership list (valid at roots).
    member_tail: Vec<u32>,
    /// Next links of the membership lists, parallel to `cells`.
    member_next: Vec<u32>,
    /// The node held by each cell, as one flat arena: row `r`'s cells
    /// occupy `r*width .. (r+1)*width`. One allocation for the whole
    /// tableau instead of one `Vec<u32>` per row.
    cells: Vec<u32>,
    /// Origin tags, parallel to `cells`.
    tags: Vec<Option<usize>>,
    /// Per-column interner for constant nodes: a constant's node is
    /// allocated once, so a later insert of a matching constant lands in
    /// the same class automatically.
    const_nodes: Vec<HashMap<Value, u32>>,
    /// Per-column node for the distinguished variable, allocated lazily.
    dv_nodes: Vec<Option<u32>>,
    next_ndv: u32,
    /// Hard ceiling on the `u32` id spaces (nodes, rows, cell entries);
    /// `u32::MAX` by default, shrinkable via
    /// [`with_node_capacity`](IncrementalChase::with_node_capacity) so
    /// unit tests can exercise the guard. Hitting the ceiling is a
    /// typed [`ExecError::CapacityExceeded`], never a silent `as u32`
    /// wrap (which would alias node 2^32 with node 0 and corrupt the
    /// union-find).
    node_cap: u32,
    /// Per-fd index: canonical LHS node vector → representative row.
    keyidx: Vec<HashMap<Box<[u32]>, u32>>,
    /// Reusable probe buffers: [`step_row`](IncrementalChase::step_row)
    /// canonicalises LHS keys into these and probes the index with the
    /// borrowed slice (`Box<[u32]>: Borrow<[u32]>`), so a lookup
    /// allocates nothing — only a first-time slot claim boxes its key.
    key_scratch: Vec<u32>,
    rep_scratch: Vec<u32>,
    work: Vec<u32>,
    queued: Vec<bool>,
    stats: ChaseStats,
    failure: Option<Inconsistent>,
    /// Trace sink; disabled by default (one branch per site).
    trace: TraceHandle,
    /// Scope label for `ChaseStarted`/`RowsDirtied` events.
    scope: Arc<str>,
    /// Pre-rendered fd labels, parallel to `fds` (built when tracing).
    fd_labels: Vec<Arc<str>>,
    /// Pre-rendered column labels (built when tracing).
    col_labels: Vec<Arc<str>>,
    /// Whether the merge forest and firing log are maintained.
    provenance: bool,
    /// Firing log (provenance mode).
    firings: Vec<Firing>,
    /// Uncompressed merge forest, parallel to `parent` (provenance
    /// mode). Unlike `parent`, never rewritten by path compression.
    link: Vec<Option<MergeLink>>,
    /// The firing that found the inconsistency, if any.
    rejection: Option<Firing>,
    /// Rows enqueued by class merges since the current run started.
    dirtied_in_run: usize,
}

impl IncrementalChase {
    /// An empty engine over a universe of `width` attributes, chasing with
    /// `fds`. The fd set is fixed for the engine's lifetime — the per-fd
    /// indexes are built against it.
    pub fn new(width: usize, fds: &FdSet) -> Self {
        IncrementalChase {
            width,
            keyidx: vec![HashMap::new(); fds.fds().len()],
            fds: fds.clone(),
            parent: Vec::new(),
            sym: Vec::new(),
            member_head: Vec::new(),
            member_tail: Vec::new(),
            member_next: Vec::new(),
            cells: Vec::new(),
            tags: Vec::new(),
            const_nodes: vec![HashMap::new(); width],
            dv_nodes: vec![None; width],
            next_ndv: 0,
            node_cap: u32::MAX,
            key_scratch: Vec::new(),
            rep_scratch: Vec::new(),
            work: Vec::new(),
            queued: Vec::new(),
            stats: ChaseStats::default(),
            failure: None,
            trace: TraceHandle::none(),
            scope: Arc::from("chase"),
            fd_labels: Vec::new(),
            col_labels: Vec::new(),
            provenance: false,
            firings: Vec::new(),
            link: Vec::new(),
            rejection: None,
            dirtied_in_run: 0,
        }
    }

    /// Attaches a trace sink. `scope` labels this engine's
    /// `ChaseStarted`/`RowsDirtied` events (e.g. `whole` or `T2`);
    /// `universe`, when given, renders fd and column labels by attribute
    /// name (`HR→C`), otherwise by debug form. All labels are rendered
    /// here, once — emitting an event afterwards clones `Arc`s.
    pub fn with_observability(
        mut self,
        trace: TraceHandle,
        universe: Option<&Universe>,
        scope: &str,
    ) -> Self {
        if trace.enabled() {
            self.scope = Arc::from(scope);
            self.fd_labels = self
                .fds
                .fds()
                .iter()
                .map(|fd| match universe {
                    Some(u) => Arc::from(fd.render(u).as_str()),
                    None => Arc::from(format!("{fd:?}").as_str()),
                })
                .collect();
            self.col_labels = (0..self.width)
                .map(|c| match universe {
                    Some(u) => Arc::from(u.name(Attribute::from_index(c))),
                    None => Arc::from(format!("col{c}").as_str()),
                })
                .collect();
        }
        self.trace = trace;
        self
    }

    /// Enables provenance recording: every class merge logs the firing
    /// responsible (fd, column, witness rows) and the merge forest is
    /// retained beside the union-find, so
    /// [`explain_cell`](IncrementalChase::explain_cell),
    /// [`explain_tuple`](IncrementalChase::explain_tuple) and
    /// [`explain_rejection`](IncrementalChase::explain_rejection) can
    /// reconstruct full derivations. Off by default; the chase result is
    /// unaffected either way.
    pub fn with_provenance(mut self, on: bool) -> Self {
        self.provenance = on;
        self
    }

    /// Whether provenance recording is on.
    pub fn provenance_enabled(&self) -> bool {
        self.provenance
    }

    /// Caps the engine's `u32` id spaces (default `u32::MAX`). Exceeding
    /// the cap trips a typed [`ExecError::CapacityExceeded`] from
    /// [`push_tuple`](IncrementalChase::push_tuple); unit tests use a
    /// tiny cap to exercise the guard without allocating 2^32 nodes.
    pub fn with_node_capacity(mut self, cap: u32) -> Self {
        self.node_cap = cap;
        self
    }

    /// Rejects a row append that could exhaust a `u32` id space — node
    /// ids (a row allocates at most `width` fresh nodes), the row id
    /// itself, or the cell-entry ids of the membership lists. Checked
    /// *before* any mutation so a refused push leaves no half-linked
    /// row behind.
    fn ensure_row_headroom(&self) -> Result<(), ExecError> {
        let cap = self.node_cap as usize;
        if self.parent.len() + self.width > cap
            || self.tags.len() >= cap
            || self.cells.len() + self.width > cap
        {
            return Err(ExecError::CapacityExceeded {
                what: "chase node ids",
                limit: self.node_cap as u64,
            });
        }
        Ok(())
    }

    /// Swaps the trace sink, keeping the labels rendered when
    /// observability was attached. The block-parallel engine uses this at
    /// its join barrier: blocks chase into private per-block shards, then
    /// retarget to the session's sink so later incremental work (inserts,
    /// rebuilds) emits directly into it.
    pub fn retarget_trace(&mut self, trace: TraceHandle) {
        self.trace = trace;
    }

    /// The engine over the state tableau `T_r` (§2.2): one row per tuple,
    /// constants on the origin scheme, fresh ndvs elsewhere. Call
    /// [`run`](IncrementalChase::run) to chase. Fails with a typed
    /// [`ExecError::CapacityExceeded`] if the state overflows the `u32`
    /// id spaces.
    pub fn of_state(
        scheme: &DatabaseScheme,
        state: &DatabaseState,
        fds: &FdSet,
    ) -> Result<Self, ExecError> {
        let mut e = IncrementalChase::new(scheme.universe().len(), fds);
        for (i, t) in state.iter_all() {
            e.push_tuple(t, Some(i))?;
        }
        Ok(e)
    }

    /// The engine over an existing tableau (any mix of constants, dvs and
    /// ndvs); symbols equal within a column start in the same class.
    pub fn of_tableau(t: &Tableau, fds: &FdSet) -> Result<Self, ExecError> {
        let mut e = IncrementalChase::new(t.width(), fds);
        // Per-column interner for the initial build: rows of a tableau may
        // legitimately share ndvs within a column.
        let mut interned: Vec<HashMap<ChaseSym, u32>> = vec![HashMap::new(); t.width()];
        for row in t.rows() {
            e.ensure_row_headroom()?;
            let r = e.tags.len() as u32;
            for (col, intern) in interned.iter_mut().enumerate() {
                let s = row.sym(Attribute::from_index(col));
                if let ChaseSym::Ndv(i) = s {
                    e.next_ndv = e.next_ndv.max(i + 1);
                }
                let node = match intern.get(&s) {
                    Some(&n) => n,
                    None => {
                        let id = e.fresh_node(s);
                        intern.insert(s, id);
                        id
                    }
                };
                let entry = e.cells.len() as u32;
                e.cells.push(node);
                e.member_next.push(NIL);
                e.push_member(node, entry);
            }
            e.tags.push(row.tag);
            e.queued.push(true);
            e.work.push(r);
        }
        // Keep the persistent interners consistent for later inserts.
        for (col, m) in interned.into_iter().enumerate() {
            for (s, node) in m {
                match s {
                    ChaseSym::Const(v) => {
                        e.const_nodes[col].insert(v, node);
                    }
                    ChaseSym::Dv => e.dv_nodes[col] = Some(node),
                    ChaseSym::Ndv(_) => {}
                }
            }
        }
        Ok(e)
    }

    /// Appends a row for a (possibly partial) tuple — constants where the
    /// tuple is defined, fresh ndvs elsewhere — and marks it dirty.
    /// Returns the row index, or a typed
    /// [`ExecError::CapacityExceeded`] (before any mutation) when the
    /// row would exhaust a `u32` id space.
    ///
    /// After a completed [`run`](IncrementalChase::run), pushing a tuple
    /// and running again is the *incremental insert* path: only the new
    /// row and the rows it transitively merges with are re-examined.
    pub fn push_tuple(&mut self, tuple: &Tuple, tag: Option<usize>) -> Result<usize, ExecError> {
        self.ensure_row_headroom()?;
        let r = self.tags.len() as u32;
        for col in 0..self.width {
            let node = match tuple.get(Attribute::from_index(col)) {
                Some(v) => self.const_node(col, v),
                None => {
                    let s = ChaseSym::Ndv(self.next_ndv);
                    self.next_ndv += 1;
                    self.fresh_node(s)
                }
            };
            let root = self.find(node);
            let entry = self.cells.len() as u32;
            self.cells.push(node);
            self.member_next.push(NIL);
            self.push_member(root, entry);
        }
        self.tags.push(tag);
        self.queued.push(true);
        self.work.push(r);
        Ok(r as usize)
    }

    /// Applies a batch of inserts as one unit: rows are appended and
    /// swept to fixpoint in cache-sized chunks under one guard charge
    /// stream and one `ChaseStarted`/`RowsDirtied` event pair for the
    /// whole batch instead of one per tuple. Returns the accumulated
    /// stats on success.
    ///
    /// The chase is Church–Rosser, so a batch that chases to a fixpoint
    /// yields a tableau *identical* to pushing and running each tuple
    /// serially. The batch has a **single rollback point**: on any error
    /// — inconsistency (which does not attribute a culprit tuple) or a
    /// resource trip (which leaves every batch row speculative) — the
    /// caller must discard this engine and rebuild from the pre-batch
    /// state. `core::serving` pairs that contract with the PR4
    /// abort-marker discipline so log == memory still holds; see
    /// DESIGN.md §16.
    pub fn insert_batch<'a, I>(&mut self, tuples: I, guard: &Guard) -> Result<ChaseStats, ExecError>
    where
        I: IntoIterator<Item = (&'a Tuple, Option<usize>)>,
    {
        if let Some(f) = &self.failure {
            return Err(f.clone().into());
        }
        self.trace.emit_with(|| TraceEvent::ChaseStarted {
            scope: self.scope.clone(),
            rows: self.tags.len(),
            fds: self.fds.fds().len(),
        });
        self.dirtied_in_run = 0;
        // Seed-and-sweep in bounded chunks rather than all at once: a
        // freshly pushed row is still in cache when its chunk is swept,
        // whereas seeding 10^6 rows first forces the sweep to re-fault
        // every one of them (measured ~2x slower at that scale). Within
        // a chunk, the worklist stack would pop rows in reverse
        // insertion order — entity fragments probing the indexes before
        // their earlier siblings have registered, every late merge
        // re-dirtying rows already swept — so each seeded suffix is
        // reversed to sweep in insertion order; cascade re-enqueues
        // still go on top of the stack and are processed eagerly.
        // Confluence makes the fixpoint independent of this schedule.
        const SEED_CHUNK: usize = 4096;
        let mut it = tuples.into_iter();
        loop {
            let first = self.work.len();
            let mut pushed = 0usize;
            for (t, tag) in it.by_ref().take(SEED_CHUNK) {
                self.push_tuple(t, tag)?;
                pushed += 1;
            }
            if pushed == 0 {
                break;
            }
            self.work[first..].reverse();
            self.drain(guard)?;
        }
        let count = self.dirtied_in_run;
        self.trace.emit_with(|| TraceEvent::RowsDirtied {
            scope: self.scope.clone(),
            count,
        });
        Ok(self.stats)
    }

    /// Applies a batch of deletes. The union-find cannot unmerge, so a
    /// delete is inherently a rebuild — but a batch costs **one**
    /// rebuild from the post-delete state instead of one per op: the
    /// caller removes the tuples from `state` first and hands the
    /// result here. The engine is replaced wholesale (fd set, trace
    /// sink, rendered labels, provenance flag and capacity cap are
    /// kept; poisoning is discarded — the post-delete state is chased
    /// fresh) and run to fixpoint under `guard`. On error the engine
    /// holds the *unchased* post-delete rows; the caller rebuilds, as
    /// with [`insert_batch`](IncrementalChase::insert_batch).
    pub fn delete_batch(
        &mut self,
        scheme: &DatabaseScheme,
        state: &DatabaseState,
        guard: &Guard,
    ) -> Result<ChaseStats, ExecError> {
        let mut fresh = IncrementalChase::new(scheme.universe().len(), &self.fds);
        fresh.trace = self.trace.clone();
        fresh.scope = self.scope.clone();
        fresh.fd_labels = self.fd_labels.clone();
        fresh.col_labels = self.col_labels.clone();
        fresh.provenance = self.provenance;
        fresh.node_cap = self.node_cap;
        for (i, t) in state.iter_all() {
            fresh.push_tuple(t, Some(i))?;
        }
        *self = fresh;
        self.run(guard)
    }

    /// Chases to fixpoint (or resumes a budget-interrupted chase),
    /// charging one chase step per class merge against `guard` and
    /// honouring its deadline/cancellation on every worklist pop.
    ///
    /// On an inconsistency the engine is poisoned: every later call
    /// returns the same [`ExecError::Inconsistent`]. On a resource trip
    /// the worklist is preserved, so a later call with a fresh guard
    /// resumes the chase.
    pub fn run(&mut self, guard: &Guard) -> Result<ChaseStats, ExecError> {
        if let Some(f) = &self.failure {
            return Err(f.clone().into());
        }
        self.trace.emit_with(|| TraceEvent::ChaseStarted {
            scope: self.scope.clone(),
            rows: self.tags.len(),
            fds: self.fds.fds().len(),
        });
        self.dirtied_in_run = 0;
        self.drain(guard)?;
        let count = self.dirtied_in_run;
        self.trace.emit_with(|| TraceEvent::RowsDirtied {
            scope: self.scope.clone(),
            count,
        });
        Ok(self.stats)
    }

    /// Pops dirty rows until the worklist is empty, without bracketing
    /// trace events — the shared sweep loop behind
    /// [`run`](IncrementalChase::run) and the chunked
    /// [`insert_batch`](IncrementalChase::insert_batch).
    fn drain(&mut self, guard: &Guard) -> Result<(), ExecError> {
        while let Some(r) = self.work.pop() {
            self.queued[r as usize] = false;
            self.stats.passes += 1;
            if let Err(e) = self.step_row(r, guard) {
                // Keep the row pending so a fresh guard can resume.
                self.enqueue(r);
                if e.is_resource_exhaustion() {
                    self.trace.emit_with(|| TraceEvent::BudgetTrip {
                        detail: Arc::from(e.to_string().as_str()),
                    });
                }
                return Err(e);
            }
        }
        Ok(())
    }

    /// Probes one dirty row against every fd. Key canonicalisation goes
    /// through the reusable scratch buffers (swapped out of `self` for
    /// the duration so the borrows stay disjoint): probing the index
    /// never allocates, only a first-time slot claim boxes its key.
    fn step_row(&mut self, r: u32, guard: &Guard) -> Result<(), ExecError> {
        guard.checkpoint()?;
        let mut key = std::mem::take(&mut self.key_scratch);
        let mut rep_key = std::mem::take(&mut self.rep_scratch);
        let result = self.step_row_with(r, guard, &mut key, &mut rep_key);
        self.key_scratch = key;
        self.rep_scratch = rep_key;
        result
    }

    fn step_row_with(
        &mut self,
        r: u32,
        guard: &Guard,
        key: &mut Vec<u32>,
        rep_key: &mut Vec<u32>,
    ) -> Result<(), ExecError> {
        for fi in 0..self.fds.fds().len() {
            self.fill_key(fi, r, key);
            match self.keyidx[fi].get(key.as_slice()).copied() {
                None => {
                    self.keyidx[fi].insert(key.as_slice().into(), r);
                }
                Some(rep) if rep == r => {}
                Some(rep) => {
                    // Validate lazily: the stored representative's key may
                    // have changed since it was indexed. If so, this slot
                    // now belongs to `r`; the old representative was
                    // enqueued by the union that changed its key.
                    self.fill_key(fi, rep, rep_key);
                    if rep_key != key {
                        self.keyidx[fi].insert(key.as_slice().into(), r);
                        continue;
                    }
                    let fd = self.fds.fds()[fi];
                    let mut any = false;
                    for a in fd.rhs.iter() {
                        let na = self.cell(rep, a.index());
                        let nb = self.cell(r, a.index());
                        if self.union(na, nb, fi, a, (rep, r), guard)? {
                            any = true;
                        }
                    }
                    if any {
                        // `r`'s keys may have changed; restart its sweep.
                        self.enqueue(r);
                        break;
                    }
                }
            }
        }
        Ok(())
    }

    /// Merges the classes of nodes `a` and `b` under the renaming
    /// precedence of §2.3, applying fd `fi` to the row pair `rows`
    /// (representative, probed). Returns whether the classes were
    /// distinct. Every row of the losing class is enqueued — those are
    /// exactly the rows whose visible symbol changed.
    fn union(
        &mut self,
        a: u32,
        b: u32,
        fi: usize,
        column: Attribute,
        rows: (u32, u32),
        guard: &Guard,
    ) -> Result<bool, ExecError> {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return Ok(false);
        }
        let (win, lose) = match (self.sym[ra as usize], self.sym[rb as usize]) {
            (ChaseSym::Const(_), ChaseSym::Const(_)) => {
                let e = Inconsistent {
                    fd: self.fds.fds()[fi],
                    column,
                };
                self.failure = Some(e.clone());
                // Always record the violating firing: explain_rejection
                // names the fd and witnesses even without provenance
                // (the justification *chains* need provenance).
                self.rejection = Some(Firing {
                    fd: fi as u32,
                    column,
                    rows,
                });
                self.trace.emit_with(|| TraceEvent::StateRejected {
                    violating_fd: self.fd_labels[fi].clone(),
                    column: self.col_labels[column.index()].clone(),
                    witness_rows: rows,
                });
                return Err(e.into());
            }
            (ChaseSym::Const(_), _) => (ra, rb),
            (_, ChaseSym::Const(_)) => (rb, ra),
            (ChaseSym::Dv, _) => (ra, rb),
            (_, ChaseSym::Dv) => (rb, ra),
            (ChaseSym::Ndv(x), ChaseSym::Ndv(y)) => {
                if x < y {
                    (ra, rb)
                } else {
                    (rb, ra)
                }
            }
        };
        guard.chase_step()?;
        self.stats.rule_applications += 1;
        self.parent[lose as usize] = win;
        if self.provenance {
            let firing = self.firings.len() as u32;
            self.firings.push(Firing {
                fd: fi as u32,
                column,
                rows,
            });
            self.link[lose as usize] = Some(MergeLink { winner: win, firing });
        }
        // Walk the losing class once to enqueue its rows — exactly the
        // rows whose visible symbol changed — then splice the whole list
        // onto the winner in O(1). No allocation on either step.
        let width = self.width as u32;
        let mut entry = self.member_head[lose as usize];
        let mut dirtied = 0;
        while entry != NIL {
            self.enqueue(entry / width);
            dirtied += 1;
            entry = self.member_next[entry as usize];
        }
        self.dirtied_in_run += dirtied;
        let lose_head = self.member_head[lose as usize];
        if lose_head != NIL {
            let win_tail = self.member_tail[win as usize];
            if win_tail == NIL {
                self.member_head[win as usize] = lose_head;
            } else {
                self.member_next[win_tail as usize] = lose_head;
            }
            self.member_tail[win as usize] = self.member_tail[lose as usize];
            self.member_head[lose as usize] = NIL;
            self.member_tail[lose as usize] = NIL;
        }
        self.trace.emit_with(|| TraceEvent::FdRuleFired {
            fd: self.fd_labels[fi].clone(),
            column: self.col_labels[column.index()].clone(),
            rows,
            dirtied,
        });
        Ok(true)
    }

    fn enqueue(&mut self, r: u32) {
        if !self.queued[r as usize] {
            self.queued[r as usize] = true;
            self.work.push(r);
        }
    }

    /// Canonicalises the LHS node vector of row `r` for fd `fi` into
    /// `out` (cleared first) — no allocation once `out` has warmed up to
    /// the widest LHS.
    fn fill_key(&mut self, fi: usize, r: u32, out: &mut Vec<u32>) {
        let lhs = self.fds.fds()[fi].lhs;
        out.clear();
        for a in lhs.iter() {
            let n = self.cell(r, a.index());
            out.push(self.find(n));
        }
    }

    /// Root of `x` with path compression.
    fn find(&mut self, mut x: u32) -> u32 {
        let mut root = x;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        while self.parent[x as usize] != root {
            let next = self.parent[x as usize];
            self.parent[x as usize] = root;
            x = next;
        }
        root
    }

    /// Root of `x` without compression, for read-only accessors.
    fn find_ro(&self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            x = self.parent[x as usize];
        }
        x
    }

    fn const_node(&mut self, col: usize, v: Value) -> u32 {
        if let Some(&n) = self.const_nodes[col].get(&v) {
            return n;
        }
        let n = self.fresh_node(ChaseSym::Const(v));
        self.const_nodes[col].insert(v, n);
        n
    }

    /// Allocates a fresh union-find node. Infallible by construction:
    /// every row-append path checks
    /// [`ensure_row_headroom`](IncrementalChase::ensure_row_headroom)
    /// before allocating, so `parent.len()` here never reaches the cap
    /// and the `as u32` cannot wrap.
    fn fresh_node(&mut self, s: ChaseSym) -> u32 {
        debug_assert!(self.parent.len() < self.node_cap as usize);
        let id = self.parent.len() as u32;
        self.parent.push(id);
        self.sym.push(s);
        self.member_head.push(NIL);
        self.member_tail.push(NIL);
        self.link.push(None);
        id
    }

    /// Appends cell `entry` to class `root`'s membership list.
    fn push_member(&mut self, root: u32, entry: u32) {
        self.member_next[entry as usize] = NIL;
        let tail = self.member_tail[root as usize];
        if tail == NIL {
            self.member_head[root as usize] = entry;
        } else {
            self.member_next[tail as usize] = entry;
        }
        self.member_tail[root as usize] = entry;
    }

    /// The node held by cell `(r, col)` in the flat arena.
    #[inline]
    fn cell(&self, r: u32, col: usize) -> u32 {
        self.cells[r as usize * self.width + col]
    }

    /// Row `r`'s cell slice in the flat arena.
    #[inline]
    fn row_cells(&self, r: usize) -> &[u32] {
        &self.cells[r * self.width..(r + 1) * self.width]
    }

    /// The inconsistency that poisoned the engine, if any.
    pub fn failure(&self) -> Option<&Inconsistent> {
        self.failure.as_ref()
    }

    fn firing_info(&self, i: u32) -> FiringInfo {
        let f = self.firings[i as usize];
        FiringInfo {
            fd: self.fds.fds()[f.fd as usize],
            column: f.column,
            rows: (f.rows.0 as usize, f.rows.1 as usize),
            tags: (self.tags[f.rows.0 as usize], self.tags[f.rows.1 as usize]),
        }
    }

    /// Walks `node`'s merge-forest chain, oldest firing first. Path
    /// compression only rewrites `parent`, so the chain survives intact.
    fn chain_of(&self, mut node: u32) -> Vec<FiringInfo> {
        let mut out = Vec::new();
        while let Some(l) = self.link[node as usize] {
            out.push(self.firing_info(l.firing));
            node = l.winner;
        }
        out
    }

    /// The fd-firing chain that gave cell `(row, column)` its canonical
    /// symbol, oldest first — a Lemma 3.8-style derivation witness.
    /// Empty when the cell was born with its symbol, or when provenance
    /// recording ([`with_provenance`](IncrementalChase::with_provenance))
    /// is off.
    pub fn explain_cell(&self, row: usize, column: Attribute) -> Vec<FiringInfo> {
        self.chain_of(self.cells[row * self.width + column.index()])
    }

    /// Provenance for the derived total tuple `t` on `x`: the first row
    /// whose canonical symbols are total on `x` and equal `t`, with its
    /// per-column firing chains. `None` when no chased row witnesses
    /// `t`.
    pub fn explain_tuple(&self, x: AttrSet, t: &Tuple) -> Option<TupleExplanation> {
        'rows: for r in 0..self.len() {
            let cells = self.row_cells(r);
            for a in x.iter() {
                match self.sym[self.find_ro(cells[a.index()]) as usize] {
                    ChaseSym::Const(v) if t.get(a) == Some(v) => {}
                    _ => continue 'rows,
                }
            }
            return Some(TupleExplanation {
                row: r,
                tag: self.tags[r],
                cells: x
                    .iter()
                    .map(|a| CellTrace {
                        column: a,
                        chain: self.explain_cell(r, a),
                    })
                    .collect(),
            });
        }
        None
    }

    /// Provenance for the inconsistency that poisoned the engine: the
    /// violated fd, the column of the constant clash, the two witness
    /// rows with their origin tags, and (in provenance mode) the firing
    /// chains under which the rows' left-hand sides came to agree.
    /// `None` while the engine is healthy.
    pub fn explain_rejection(&self) -> Option<RejectionExplanation> {
        let f = self.rejection?;
        let fd = self.fds.fds()[f.fd as usize];
        let (r0, r1) = (f.rows.0 as usize, f.rows.1 as usize);
        Some(RejectionExplanation {
            fd,
            column: f.column,
            rows: (r0, r1),
            tags: (self.tags[r0], self.tags[r1]),
            lhs: fd
                .lhs
                .iter()
                .map(|a| (a, self.explain_cell(r0, a), self.explain_cell(r1, a)))
                .collect(),
            clash: (
                self.explain_cell(r0, f.column),
                self.explain_cell(r1, f.column),
            ),
        })
    }

    /// Accumulated work counters across all runs.
    pub fn stats(&self) -> ChaseStats {
        self.stats
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.tags.len()
    }

    /// Whether the engine holds no rows.
    pub fn is_empty(&self) -> bool {
        self.tags.is_empty()
    }

    /// Number of columns (universe size).
    pub fn width(&self) -> usize {
        self.width
    }

    /// The restricted projection `πt_X` over the current (chased) rows:
    /// rows all-constant on `x`, projected and deduplicated.
    pub fn total_projection(&self, x: AttrSet) -> Vec<Tuple> {
        let mut out = Vec::new();
        'rows: for r in 0..self.len() {
            let cells = self.row_cells(r);
            let mut pairs = Vec::with_capacity(x.len());
            for a in x.iter() {
                match self.sym[self.find_ro(cells[a.index()]) as usize] {
                    ChaseSym::Const(v) => pairs.push((a, v)),
                    _ => continue 'rows,
                }
            }
            out.push(Tuple::from_pairs(pairs));
        }
        out.sort();
        out.dedup();
        out
    }

    /// Materialises the current rows with their canonical symbols.
    pub fn to_tableau(&self) -> Tableau {
        Tableau::from_raw(self.width, self.materialize_rows(), self.next_ndv)
    }

    fn materialize_rows(&self) -> Vec<Row> {
        (0..self.len())
            .map(|r| Row {
                syms: self
                    .row_cells(r)
                    .iter()
                    .map(|&n| self.sym[self.find_ro(n) as usize])
                    .collect(),
                tag: self.tags[r],
            })
            .collect()
    }
}

/// `CHASE_F(T)` through the incremental engine — a drop-in replacement
/// for [`chase`](crate::chase)/[`chase_fast`](crate::chase_fast) with the
/// same contract: the tableau is chased in place, one chase step is
/// charged per rule application, and on success the result is identical
/// to the reference engine's.
pub fn chase_incremental(
    t: &mut Tableau,
    fds: &FdSet,
    guard: &Guard,
) -> Result<ChaseStats, ExecError> {
    let mut engine = IncrementalChase::of_tableau(t, fds)?;
    let stats = engine.run(guard)?;
    *t.rows_mut() = engine.materialize_rows();
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chase_engine::chase;
    use idr_fd::KeyDeps;
    use idr_relation::exec::Budget;
    use idr_relation::{state_of, SchemeBuilder, SymbolTable};

    fn merging_fixture() -> (idr_relation::DatabaseScheme, DatabaseState) {
        let scheme = SchemeBuilder::new("ABC")
            .scheme("R1", "AB", ["A"])
            .scheme("R2", "AC", ["A"])
            .build()
            .unwrap();
        let mut sym = SymbolTable::new();
        let state = state_of(
            &scheme,
            &mut sym,
            &[
                ("R1", &[("A", "a"), ("B", "b")]),
                ("R2", &[("A", "a"), ("C", "c")]),
            ],
        )
        .unwrap();
        (scheme, state)
    }

    #[test]
    fn identical_to_reference_on_merging_state() {
        let (scheme, state) = merging_fixture();
        let kd = KeyDeps::of(&scheme);
        let mut t1 = Tableau::of_state(&scheme, &state);
        let mut t2 = t1.clone();
        chase(&mut t1, kd.full(), &Guard::unlimited()).unwrap();
        chase_incremental(&mut t2, kd.full(), &Guard::unlimited()).unwrap();
        // Not just equivalent: identical rows, symbols and tags.
        assert_eq!(t1, t2);
    }

    #[test]
    fn detects_inconsistency_and_poisons() {
        let scheme = SchemeBuilder::new("AB")
            .scheme("R1", "AB", ["A"])
            .build()
            .unwrap();
        let kd = KeyDeps::of(&scheme);
        let mut sym = SymbolTable::new();
        let state = state_of(
            &scheme,
            &mut sym,
            &[
                ("R1", &[("A", "a"), ("B", "b1")]),
                ("R1", &[("A", "a"), ("B", "b2")]),
            ],
        )
        .unwrap();
        let mut e = IncrementalChase::of_state(&scheme, &state, kd.full()).unwrap();
        let err = e.run(&Guard::unlimited()).unwrap_err();
        assert!(matches!(err, ExecError::Inconsistent { .. }));
        assert!(e.failure().is_some());
        // Poisoned: later runs keep failing.
        assert!(e.run(&Guard::unlimited()).is_err());
    }

    #[test]
    fn transitive_merges_propagate() {
        let scheme = SchemeBuilder::new("ABC")
            .scheme("R1", "AB", ["AB"])
            .scheme("R2", "BC", ["B"])
            .scheme("R3", "AC", ["A"])
            .build()
            .unwrap();
        let kd = KeyDeps::of(&scheme);
        let mut sym = SymbolTable::new();
        let state = state_of(
            &scheme,
            &mut sym,
            &[
                ("R3", &[("A", "a0"), ("C", "c0")]),
                ("R1", &[("A", "a0"), ("B", "b0")]),
                ("R1", &[("A", "a1"), ("B", "b0")]),
                ("R1", &[("A", "a1"), ("B", "b1")]),
                ("R1", &[("A", "a2"), ("B", "b1")]),
            ],
        )
        .unwrap();
        let mut t1 = Tableau::of_state(&scheme, &state);
        let mut t2 = t1.clone();
        chase(&mut t1, kd.full(), &Guard::unlimited()).unwrap();
        chase_incremental(&mut t2, kd.full(), &Guard::unlimited()).unwrap();
        let ac = scheme.universe().set_of("AC");
        assert_eq!(t1.total_projection(ac).len(), 3);
        assert_eq!(t1, t2);
    }

    #[test]
    fn empty_inputs() {
        let mut t = Tableau::new(3);
        assert!(chase_incremental(&mut t, &FdSet::new(), &Guard::unlimited()).is_ok());
        let mut e = IncrementalChase::new(3, &FdSet::new());
        assert!(e.is_empty());
        assert!(e.run(&Guard::unlimited()).is_ok());
    }

    #[test]
    fn incremental_insert_matches_batch_chase() {
        let (scheme, state) = merging_fixture();
        let kd = KeyDeps::of(&scheme);
        let u = scheme.universe();
        let mut sym = SymbolTable::new();

        // Batch: chase the state plus the extra tuple from scratch.
        let extra = Tuple::from_pairs([
            (u.attr_of("A"), sym.intern("a2")),
            (u.attr_of("B"), sym.intern("b2")),
        ]);
        let mut batched = state.clone();
        batched.insert(0, extra.clone()).unwrap();
        let mut t_batch = Tableau::of_state(&scheme, &batched);
        chase(&mut t_batch, kd.full(), &Guard::unlimited()).unwrap();

        // Incremental: run, then push the tuple, then run again.
        let mut e = IncrementalChase::of_state(&scheme, &state, kd.full()).unwrap();
        e.run(&Guard::unlimited()).unwrap();
        e.push_tuple(&extra, Some(0)).unwrap();
        e.run(&Guard::unlimited()).unwrap();

        let all = u.all();
        assert_eq!(e.total_projection(all), t_batch.total_projection(all));
        let ab = u.set_of("AB");
        assert_eq!(e.total_projection(ab), t_batch.total_projection(ab));
    }

    #[test]
    fn incremental_insert_reuses_constant_classes() {
        // Inserting a tuple that shares constants with merged rows must
        // pick up the merged class, not a fresh node.
        let (scheme, state) = merging_fixture();
        let kd = KeyDeps::of(&scheme);
        let u = scheme.universe();
        let mut e = IncrementalChase::of_state(&scheme, &state, kd.full()).unwrap();
        e.run(&Guard::unlimited()).unwrap();
        // Insert R2(a, c2): conflicts with the existing R2(a, c) under
        // key A → inconsistency must be detected incrementally.
        // Replicate the fixture's interning order so "a" maps to the same
        // value and "c2" to a fresh one.
        let mut sym = SymbolTable::new();
        let (av, _, _) = (sym.intern("a"), sym.intern("b"), sym.intern("c"));
        let c2 = sym.intern("c2");
        let bad = Tuple::from_pairs([(u.attr_of("A"), av), (u.attr_of("C"), c2)]);
        e.push_tuple(&bad, Some(1)).unwrap();
        let err = e.run(&Guard::unlimited()).unwrap_err();
        assert!(matches!(err, ExecError::Inconsistent { .. }));
    }

    #[test]
    fn budget_trip_is_resumable() {
        let scheme = SchemeBuilder::new("ABC")
            .scheme("R1", "AB", ["AB"])
            .scheme("R2", "BC", ["B"])
            .scheme("R3", "AC", ["A"])
            .build()
            .unwrap();
        let kd = KeyDeps::of(&scheme);
        let mut sym = SymbolTable::new();
        let state = state_of(
            &scheme,
            &mut sym,
            &[
                ("R3", &[("A", "a0"), ("C", "c0")]),
                ("R1", &[("A", "a0"), ("B", "b0")]),
                ("R1", &[("A", "a1"), ("B", "b0")]),
                ("R1", &[("A", "a1"), ("B", "b1")]),
                ("R1", &[("A", "a2"), ("B", "b1")]),
            ],
        )
        .unwrap();
        let mut e = IncrementalChase::of_state(&scheme, &state, kd.full()).unwrap();
        let tight = Guard::new(Budget::unlimited().with_max_chase_steps(1));
        assert!(matches!(
            e.run(&tight),
            Err(ExecError::BudgetExceeded { .. })
        ));
        // Resume with a fresh guard: reaches the same fixpoint.
        e.run(&Guard::unlimited()).unwrap();
        let mut oracle = Tableau::of_state(&scheme, &state);
        chase(&mut oracle, kd.full(), &Guard::unlimited()).unwrap();
        let all = scheme.universe().all();
        assert_eq!(e.total_projection(all), oracle.total_projection(all));
    }

    #[test]
    fn tracing_emits_run_and_firing_events() {
        use idr_obs::EventLog;
        let (scheme, state) = merging_fixture();
        let kd = KeyDeps::of(&scheme);
        let log = Arc::new(EventLog::new(256));
        let mut e = IncrementalChase::of_state(&scheme, &state, kd.full())
            .unwrap()
            .with_observability(
            TraceHandle::to_log(Arc::clone(&log)),
            Some(scheme.universe()),
            "whole",
        );
        e.run(&Guard::unlimited()).unwrap();
        let events = log.drain();
        assert!(matches!(
            events.first(),
            Some(TraceEvent::ChaseStarted { rows: 2, fds: _, .. })
        ));
        assert!(matches!(
            events.last(),
            Some(TraceEvent::RowsDirtied { .. })
        ));
        let fired: Vec<_> = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::FdRuleFired { .. }))
            .collect();
        assert!(!fired.is_empty());
        // Labels are rendered with universe names, e.g. "A→B".
        if let TraceEvent::FdRuleFired { fd, .. } = fired[0] {
            assert!(fd.contains('→'), "fd label: {fd}");
        }
    }

    #[test]
    fn tracing_emits_rejection_with_witnesses() {
        use idr_obs::EventLog;
        let scheme = SchemeBuilder::new("AB")
            .scheme("R1", "AB", ["A"])
            .build()
            .unwrap();
        let kd = KeyDeps::of(&scheme);
        let mut sym = SymbolTable::new();
        let state = state_of(
            &scheme,
            &mut sym,
            &[
                ("R1", &[("A", "a"), ("B", "b1")]),
                ("R1", &[("A", "a"), ("B", "b2")]),
            ],
        )
        .unwrap();
        let log = Arc::new(EventLog::new(64));
        let mut e = IncrementalChase::of_state(&scheme, &state, kd.full())
            .unwrap()
            .with_observability(
            TraceHandle::to_log(Arc::clone(&log)),
            Some(scheme.universe()),
            "whole",
        );
        e.run(&Guard::unlimited()).unwrap_err();
        let rejected: Vec<_> = log
            .drain()
            .into_iter()
            .filter(|e| matches!(e, TraceEvent::StateRejected { .. }))
            .collect();
        assert_eq!(rejected.len(), 1);
        if let TraceEvent::StateRejected {
            violating_fd,
            column,
            witness_rows,
        } = &rejected[0]
        {
            assert_eq!(&**violating_fd, "A→B");
            assert_eq!(&**column, "B");
            assert_ne!(witness_rows.0, witness_rows.1);
        }
        // explain_rejection names the same violation without provenance.
        let why = e.explain_rejection().unwrap();
        assert_eq!(why.column.index(), 1);
        assert_eq!(why.tags, (Some(0), Some(0)));
    }

    #[test]
    fn provenance_explains_derived_tuple() {
        // R1(a,b) + R2(a,c) under A→B, A→C derive the AC-total row and
        // the BC agreement transitively; the chain must name the fds.
        let (scheme, state) = merging_fixture();
        let kd = KeyDeps::of(&scheme);
        let u = scheme.universe();
        let mut e =
            IncrementalChase::of_state(&scheme, &state, kd.full())
            .unwrap()
            .with_provenance(true);
        e.run(&Guard::unlimited()).unwrap();
        assert!(e.provenance_enabled());
        // Row 0 (R1: a,b) became total on C via A→C between rows 0 and 1.
        let mut sym = SymbolTable::new();
        let (av, bv, cv) = (sym.intern("a"), sym.intern("b"), sym.intern("c"));
        let abc = Tuple::from_pairs([
            (u.attr_of("A"), av),
            (u.attr_of("B"), bv),
            (u.attr_of("C"), cv),
        ]);
        let why = e.explain_tuple(u.all(), &abc).expect("tuple is derived");
        let c_trace = why
            .cells
            .iter()
            .find(|c| c.column == u.attr_of("C"))
            .unwrap();
        assert!(
            !c_trace.chain.is_empty(),
            "derived C cell must have a firing chain"
        );
        assert!(c_trace.chain.iter().all(|f| f.rows.0 != f.rows.1));
        // The A cell was born constant: empty chain.
        let a_trace = why
            .cells
            .iter()
            .find(|c| c.column == u.attr_of("A"))
            .unwrap();
        assert!(a_trace.chain.is_empty());
    }

    #[test]
    fn provenance_off_by_default_and_chains_empty() {
        let (scheme, state) = merging_fixture();
        let kd = KeyDeps::of(&scheme);
        let mut e = IncrementalChase::of_state(&scheme, &state, kd.full()).unwrap();
        e.run(&Guard::unlimited()).unwrap();
        assert!(!e.provenance_enabled());
        for r in 0..e.len() {
            for c in 0..e.width() {
                assert!(e.explain_cell(r, Attribute::from_index(c)).is_empty());
            }
        }
    }

    #[test]
    fn provenance_rejection_chains_justify_lhs_agreement() {
        // A transitive inconsistency: the violating rows' LHS cells agree
        // only through earlier firings, and the chains must show them.
        let scheme = SchemeBuilder::new("ABC")
            .scheme("R1", "AB", ["A"])
            .scheme("R2", "BC", ["B"])
            .build()
            .unwrap();
        let kd = KeyDeps::of(&scheme);
        let mut sym = SymbolTable::new();
        let state = state_of(
            &scheme,
            &mut sym,
            &[
                ("R2", &[("B", "b"), ("C", "c1")]),
                ("R1", &[("A", "a"), ("B", "b")]),
                ("R2", &[("B", "b"), ("C", "c2")]),
            ],
        )
        .unwrap();
        let mut e =
            IncrementalChase::of_state(&scheme, &state, kd.full())
            .unwrap()
            .with_provenance(true);
        e.run(&Guard::unlimited()).unwrap_err();
        let why = e.explain_rejection().expect("engine is poisoned");
        assert_eq!(why.fd.render(scheme.universe()), "B→C");
        assert_eq!(scheme.universe().name(why.column), "C");
        assert_ne!(why.rows.0, why.rows.1);
        // Both witness rows are R2 rows (tag 1).
        assert_eq!(why.tags, (Some(1), Some(1)));
    }

    #[test]
    fn tracing_does_not_change_chase_result() {
        use idr_obs::EventLog;
        let (scheme, state) = merging_fixture();
        let kd = KeyDeps::of(&scheme);
        let mut plain = IncrementalChase::of_state(&scheme, &state, kd.full()).unwrap();
        plain.run(&Guard::unlimited()).unwrap();
        let log = Arc::new(EventLog::new(256));
        let mut traced = IncrementalChase::of_state(&scheme, &state, kd.full())
            .unwrap()
            .with_observability(
                TraceHandle::to_log(Arc::clone(&log)),
                Some(scheme.universe()),
                "whole",
            )
            .with_provenance(true);
        traced.run(&Guard::unlimited()).unwrap();
        assert_eq!(plain.to_tableau(), traced.to_tableau());
        assert_eq!(plain.stats(), traced.stats());
    }

    #[test]
    fn scheme_tableau_with_dvs_chases_identically() {
        let u = idr_relation::Universe::of_chars("ABCD");
        let f = FdSet::parse(&u, "A->B, B->C");
        let schemes = [u.set_of("AB"), u.set_of("BC"), u.set_of("CD")];
        let mut t1 = Tableau::of_scheme(&schemes, 4);
        let mut t2 = t1.clone();
        chase(&mut t1, &f, &Guard::unlimited()).unwrap();
        chase_incremental(&mut t2, &f, &Guard::unlimited()).unwrap();
        assert_eq!(t1, t2);
    }

    #[test]
    fn capacity_guard_trips_typed_and_leaves_engine_usable() {
        let (scheme, _) = merging_fixture();
        let kd = KeyDeps::of(&scheme);
        let mut sym = SymbolTable::new();
        // Width 3; a tuple defining one column allocates 3 nodes (one
        // const + two fresh ndvs), so a cap of 8 admits two rows and
        // refuses the third before touching anything.
        let mut e = IncrementalChase::new(3, kd.full()).with_node_capacity(8);
        let a = scheme.universe().attr_of("A");
        for i in 0..2 {
            let t = Tuple::from_pairs([(a, sym.intern(&format!("a{i}")))]);
            e.push_tuple(&t, None).unwrap();
        }
        let t = Tuple::from_pairs([(a, sym.intern("a2"))]);
        let err = e.push_tuple(&t, None).unwrap_err();
        assert_eq!(
            err,
            ExecError::CapacityExceeded {
                what: "chase node ids",
                limit: 8
            }
        );
        assert!(!err.is_resource_exhaustion(), "capacity is not resumable");
        // The refused push mutated nothing: the engine still holds two
        // rows and chases them fine.
        assert_eq!(e.len(), 2);
        e.run(&Guard::unlimited()).unwrap();
        assert_eq!(e.to_tableau().rows().len(), 2);
    }

    #[test]
    fn of_state_propagates_capacity_trip() {
        let (scheme, state) = merging_fixture();
        let kd = KeyDeps::of(&scheme);
        // The same guard protects the bulk constructors: of_state builds
        // through push_tuple, so an overflowing state fails typed.
        let err = IncrementalChase::of_state(&scheme, &state, kd.full())
            .map(|e| e.with_node_capacity(0))
            .and_then(|mut e| {
                let mut s = SymbolTable::new();
                let a = scheme.universe().attr_of("A");
                e.push_tuple(&Tuple::from_pairs([(a, s.intern("x"))]), None)
                    .map(|_| ())
            })
            .unwrap_err();
        assert!(matches!(err, ExecError::CapacityExceeded { .. }));
    }

    #[test]
    fn insert_batch_equals_per_op_serial() {
        let (scheme, state) = merging_fixture();
        let kd = KeyDeps::of(&scheme);
        let mut sym = SymbolTable::new();
        let u = scheme.universe();
        let (a, b, c) = (u.attr_of("A"), u.attr_of("B"), u.attr_of("C"));
        // A mix of fresh keys and key-sharing rows so the batch both
        // claims new index slots and fires fd rules across its own rows.
        let extra: Vec<(usize, Tuple)> = (0..12)
            .map(|i| {
                if i % 3 == 0 {
                    (0, Tuple::from_pairs([(a, sym.intern(&format!("k{}", i / 3)))]))
                } else if i % 3 == 1 {
                    (
                        0,
                        Tuple::from_pairs([
                            (a, sym.intern(&format!("k{}", i / 3))),
                            (b, sym.intern(&format!("b{}", i / 3))),
                        ]),
                    )
                } else {
                    (
                        1,
                        Tuple::from_pairs([
                            (a, sym.intern(&format!("k{}", i / 3))),
                            (c, sym.intern(&format!("c{}", i / 3))),
                        ]),
                    )
                }
            })
            .collect();
        let mut serial = IncrementalChase::of_state(&scheme, &state, kd.full()).unwrap();
        serial.run(&Guard::unlimited()).unwrap();
        for (rel, t) in &extra {
            serial.push_tuple(t, Some(*rel)).unwrap();
            serial.run(&Guard::unlimited()).unwrap();
        }
        let mut batch = IncrementalChase::of_state(&scheme, &state, kd.full()).unwrap();
        batch.run(&Guard::unlimited()).unwrap();
        batch
            .insert_batch(extra.iter().map(|(rel, t)| (t, Some(*rel))), &Guard::unlimited())
            .unwrap();
        // Church–Rosser: not just equivalent — identical tableaux.
        assert_eq!(batch.to_tableau(), serial.to_tableau());
    }

    #[test]
    fn insert_batch_detects_cross_batch_inconsistency() {
        let scheme = SchemeBuilder::new("AB")
            .scheme("R1", "AB", ["A"])
            .build()
            .unwrap();
        let kd = KeyDeps::of(&scheme);
        let mut sym = SymbolTable::new();
        let t1 = Tuple::from_pairs([(
            scheme.universe().attr_of("A"),
            sym.intern("a"),
        ), (scheme.universe().attr_of("B"), sym.intern("b1"))]);
        let t2 = Tuple::from_pairs([(
            scheme.universe().attr_of("A"),
            sym.intern("a"),
        ), (scheme.universe().attr_of("B"), sym.intern("b2"))]);
        let mut e = IncrementalChase::new(2, kd.full());
        let err = e
            .insert_batch([(&t1, Some(0)), (&t2, Some(0))], &Guard::unlimited())
            .unwrap_err();
        assert!(matches!(err, ExecError::Inconsistent { .. }));
        // Single rollback point: the whole batch is poisoned, callers
        // rebuild from the pre-batch state.
        assert!(e.failure().is_some());
    }

    #[test]
    fn delete_batch_rebuilds_once_from_post_delete_state() {
        let (scheme, state) = merging_fixture();
        let kd = KeyDeps::of(&scheme);
        let mut e = IncrementalChase::of_state(&scheme, &state, kd.full()).unwrap();
        e.run(&Guard::unlimited()).unwrap();
        // Delete R2's tuple: the post-delete state has only R1's.
        let mut after = state.clone();
        let victim = state.relation(1).iter().next().unwrap().clone();
        assert!(after.remove(1, &victim).unwrap());
        e.delete_batch(&scheme, &after, &Guard::unlimited()).unwrap();
        let mut oracle = IncrementalChase::of_state(&scheme, &after, kd.full()).unwrap();
        oracle.run(&Guard::unlimited()).unwrap();
        assert_eq!(e.to_tableau(), oracle.to_tableau());
    }
}
