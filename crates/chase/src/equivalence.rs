//! Tableau equivalence up to renaming of nondistinguished variables —
//! the notion Lemma 4.2 is stated in ("T_r chases to a tableau which is
//! equivalent to T_d … identical up to renaming of ndv's").
//!
//! Full tableau equivalence (\[ASU]) is homomorphism-based and NP-hard in
//! general; the paper only ever needs the *renaming* form for chased
//! state tableaux, where every ndv occurs exactly once per tableau (all
//! ndvs distinct, Corollary 3.1(a)) — there, two tableaux are equivalent
//! iff their rows' constant parts match up row-for-row with equal constant
//! positions. A backtracking matcher handles the general small case.

use std::collections::HashMap;

use crate::tableau::{ChaseSym, Tableau};

/// Whether `a` and `b` are identical up to a bijective renaming of their
/// ndvs (per column — variables never cross columns) and reordering of
/// rows.
///
/// Exponential in the worst case (row matching with backtracking); guarded
/// to small tableaux since it is a test-support oracle.
pub fn equivalent_up_to_ndv_renaming(a: &Tableau, b: &Tableau) -> bool {
    if a.width() != b.width() || a.len() != b.len() {
        return false;
    }
    let n = a.len();
    assert!(n <= 64, "equivalence oracle: tableau too large ({n} rows)");
    let mut used = vec![false; n];
    let mut forward: HashMap<(usize, u32), (usize, u32)> = HashMap::new();
    let mut backward: HashMap<(usize, u32), (usize, u32)> = HashMap::new();
    match_rows(a, b, 0, &mut used, &mut forward, &mut backward)
}

fn match_rows(
    a: &Tableau,
    b: &Tableau,
    row: usize,
    used: &mut Vec<bool>,
    forward: &mut HashMap<(usize, u32), (usize, u32)>,
    backward: &mut HashMap<(usize, u32), (usize, u32)>,
) -> bool {
    if row == a.len() {
        return true;
    }
    for cand in 0..b.len() {
        if used[cand] {
            continue;
        }
        // Try to unify row `row` of `a` with row `cand` of `b`,
        // extending the ndv bijection; record additions for rollback.
        let mut added: Vec<(usize, u32)> = Vec::new();
        let mut ok = true;
        for col in 0..a.width() {
            let attr = idr_relation::Attribute::from_index(col);
            let (sa, sb) = (a.rows()[row].sym(attr), b.rows()[cand].sym(attr));
            match (sa, sb) {
                (ChaseSym::Const(x), ChaseSym::Const(y)) if x == y => {}
                (ChaseSym::Dv, ChaseSym::Dv) => {}
                (ChaseSym::Ndv(x), ChaseSym::Ndv(y)) => {
                    let key = (col, x);
                    let val = (col, y);
                    match (forward.get(&key), backward.get(&val)) {
                        (None, None) => {
                            forward.insert(key, val);
                            backward.insert(val, key);
                            added.push(key);
                        }
                        (Some(&v), Some(&k)) if v == val && k == key => {}
                        _ => {
                            ok = false;
                        }
                    }
                }
                _ => {
                    ok = false;
                }
            }
            if !ok {
                break;
            }
        }
        if ok {
            used[cand] = true;
            if match_rows(a, b, row + 1, used, forward, backward) {
                return true;
            }
            used[cand] = false;
        }
        for key in added {
            if let Some(val) = forward.remove(&key) {
                backward.remove(&val);
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use idr_relation::{state_of, SchemeBuilder, SymbolTable};

    #[test]
    fn identical_tableaux_are_equivalent() {
        let scheme = SchemeBuilder::new("AB")
            .scheme("R1", "AB", ["A"])
            .build()
            .unwrap();
        let mut sym = SymbolTable::new();
        let st = state_of(&scheme, &mut sym, &[("R1", &[("A", "a"), ("B", "b")])]).unwrap();
        let t1 = Tableau::of_state(&scheme, &st);
        let t2 = Tableau::of_state(&scheme, &st);
        assert!(equivalent_up_to_ndv_renaming(&t1, &t2));
    }

    #[test]
    fn ndv_numbering_is_irrelevant() {
        let scheme = SchemeBuilder::new("ABC")
            .scheme("R1", "AB", ["A"])
            .scheme("R2", "BC", ["B"])
            .build()
            .unwrap();
        let mut sym = SymbolTable::new();
        // Same tuples inserted in different orders ⇒ different ndv numbers
        // and row orders.
        let s1 = state_of(
            &scheme,
            &mut sym,
            &[
                ("R1", &[("A", "a"), ("B", "b")]),
                ("R2", &[("B", "b2"), ("C", "c")]),
            ],
        )
        .unwrap();
        let s2 = state_of(
            &scheme,
            &mut sym,
            &[
                ("R2", &[("B", "b2"), ("C", "c")]),
                ("R1", &[("A", "a"), ("B", "b")]),
            ],
        )
        .unwrap();
        let t1 = Tableau::of_state(&scheme, &s1);
        let t2 = Tableau::of_state(&scheme, &s2);
        assert!(equivalent_up_to_ndv_renaming(&t1, &t2));
    }

    #[test]
    fn different_constants_are_inequivalent() {
        let scheme = SchemeBuilder::new("AB")
            .scheme("R1", "AB", ["A"])
            .build()
            .unwrap();
        let mut sym = SymbolTable::new();
        let s1 = state_of(&scheme, &mut sym, &[("R1", &[("A", "a"), ("B", "b")])]).unwrap();
        let s2 = state_of(&scheme, &mut sym, &[("R1", &[("A", "a"), ("B", "b2")])]).unwrap();
        let t1 = Tableau::of_state(&scheme, &s1);
        let t2 = Tableau::of_state(&scheme, &s2);
        assert!(!equivalent_up_to_ndv_renaming(&t1, &t2));
    }

    #[test]
    fn ndv_sharing_patterns_matter() {
        // A tableau where two rows share an ndv is not equivalent to one
        // where they don't (the bijection cannot split a variable).
        let scheme = SchemeBuilder::new("AB")
            .scheme("R1", "A", ["A"])
            .scheme("R2", "AB", ["A"])
            .build()
            .unwrap();
        let mut sym = SymbolTable::new();
        let st = state_of(
            &scheme,
            &mut sym,
            &[("R1", &[("A", "a1")]), ("R1", &[("A", "a2")])],
        )
        .unwrap();
        let t1 = Tableau::of_state(&scheme, &st);
        let mut t2 = t1.clone();
        // Manually alias the two B-column ndvs in t2.
        let b = scheme.universe().attr_of("B");
        let s0 = t2.rows()[0].sym(b);
        t2.rows_mut()[1].syms[b.index()] = s0;
        assert!(!equivalent_up_to_ndv_renaming(&t1, &t2));
    }
}
