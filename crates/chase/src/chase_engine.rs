use std::sync::Arc;

use idr_fd::{Fd, FdSet};
use idr_obs::{TraceEvent, TraceHandle};
use idr_relation::exec::{ExecError, Guard};
use idr_relation::{Attribute, Universe};

use crate::tableau::{ChaseSym, Tableau};

/// Renders an fd label for trace events: by attribute name when a
/// universe is at hand (`HR→C`), by debug form otherwise. Trace-path
/// only — hot engines pre-render at tracer-attach time instead.
pub(crate) fn fd_label(fd: &Fd, universe: Option<&Universe>) -> Arc<str> {
    match universe {
        Some(u) => Arc::from(fd.render(u).as_str()),
        None => Arc::from(format!("{fd:?}").as_str()),
    }
}

/// Renders a column label for trace events; see [`fd_label`].
pub(crate) fn col_label(a: Attribute, universe: Option<&Universe>) -> Arc<str> {
    match universe {
        Some(u) => Arc::from(u.name(a)),
        None => Arc::from(format!("col{}", a.index()).as_str()),
    }
}

/// An inconsistency found while chasing: an fd-rule tried to equate two
/// distinct constants (§2.3).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Inconsistent {
    /// The violated dependency.
    pub fd: Fd,
    /// The column on which the constants clashed.
    pub column: Attribute,
}

impl std::fmt::Display for Inconsistent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "chase found an inconsistency in column {} applying {:?}",
            self.column.index(),
            self.fd
        )
    }
}

impl std::error::Error for Inconsistent {}

impl From<Inconsistent> for ExecError {
    fn from(e: Inconsistent) -> Self {
        ExecError::Inconsistent {
            detail: e.to_string(),
        }
    }
}

/// Statistics from a chase run — the paper's boundedness notion counts
/// fd-rule applications, so we do too.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChaseStats {
    /// Number of symbol-equating fd-rule applications.
    pub rule_applications: usize,
    /// Number of full scan passes over the fd set.
    pub passes: usize,
}

/// Outcome of a chase: the tableau was chased to a fixpoint, or the run
/// stopped — [`ExecError::Inconsistent`] for a genuine inconsistency (the
/// paper then defines the result to be the empty tableau), any other
/// [`ExecError`] for a guard trip.
pub type ChaseOutcome = Result<ChaseStats, ExecError>;

/// `CHASE_F(T)`: applies fd-rules exhaustively to the tableau (§2.3,
/// \[MMS]). On success the tableau satisfies every dependency; on
/// inconsistency the tableau contents are unspecified (callers treat the
/// state as inconsistent, per \[H2]).
///
/// Symbol precedence when equating (v1 vs v2): distinct constants are an
/// inconsistency; a constant beats any variable; the distinguished variable
/// beats a nondistinguished one; between ndvs the lower index wins — the
/// renaming rules of §2.3. Variables are column-local, so a renaming only
/// scans one column.
///
/// One [`Resource::ChaseSteps`](idr_relation::exec::Resource) unit is
/// charged per rule application against `guard`, whose deadline and
/// cancellation are honoured at every pass; pass [`Guard::unlimited`] for
/// an unbounded run. Inconsistencies surface as
/// [`ExecError::Inconsistent`], budget exhaustion as
/// [`ExecError::BudgetExceeded`] (the tableau contents are then
/// unspecified, as after an inconsistency).
pub fn chase(t: &mut Tableau, fds: &FdSet, guard: &Guard) -> ChaseOutcome {
    chase_traced(t, fds, guard, &TraceHandle::none(), None)
}

/// [`chase`] with a trace sink: emits `ChaseStarted`, one `FdRuleFired`
/// per rule application (`dirtied` = occurrences renamed), a closing
/// `RowsDirtied`, `StateRejected` on an inconsistency and `BudgetTrip`
/// on a guard trip. `universe`, when given, renders fd/column labels by
/// attribute name. [`chase`] is this function with the disabled handle —
/// each trace site then costs one branch.
pub fn chase_traced(
    t: &mut Tableau,
    fds: &FdSet,
    guard: &Guard,
    trace: &TraceHandle,
    universe: Option<&Universe>,
) -> ChaseOutcome {
    trace.emit_with(|| TraceEvent::ChaseStarted {
        scope: Arc::from("chase"),
        rows: t.len(),
        fds: fds.fds().len(),
    });
    let mut dirtied_total = 0usize;
    let result = chase_inner(t, fds, guard, trace, universe, &mut dirtied_total);
    match &result {
        Ok(_) => trace.emit_with(|| TraceEvent::RowsDirtied {
            scope: Arc::from("chase"),
            count: dirtied_total,
        }),
        Err(e) if e.is_resource_exhaustion() => trace.emit_with(|| TraceEvent::BudgetTrip {
            detail: Arc::from(e.to_string().as_str()),
        }),
        Err(_) => {}
    }
    result
}

fn chase_inner(
    t: &mut Tableau,
    fds: &FdSet,
    guard: &Guard,
    trace: &TraceHandle,
    universe: Option<&Universe>,
    dirtied_total: &mut usize,
) -> ChaseOutcome {
    let mut stats = ChaseStats::default();
    loop {
        stats.passes += 1;
        guard.checkpoint()?;
        let mut changed = false;
        for fd in fds.fds() {
            // Restart the per-fd scan after each application: equating can
            // merge or split groups.
            'rescan: loop {
                let mut groups: std::collections::HashMap<Vec<ChaseSym>, usize> =
                    std::collections::HashMap::new();
                for i in 0..t.len() {
                    let key: Vec<ChaseSym> =
                        fd.lhs.iter().map(|a| t.rows()[i].sym(a)).collect();
                    match groups.entry(key) {
                        std::collections::hash_map::Entry::Vacant(e) => {
                            e.insert(i);
                        }
                        std::collections::hash_map::Entry::Occupied(e) => {
                            let j = *e.get();
                            if apply_rule(t, *fd, j, i, &mut stats, guard, trace, universe, dirtied_total)?
                            {
                                changed = true;
                                continue 'rescan;
                            }
                        }
                    }
                }
                break;
            }
        }
        if !changed {
            return Ok(stats);
        }
    }
}

/// Applies the fd-rule for `fd` to rows `i`, `j` (which agree on `fd.lhs`);
/// returns whether anything was renamed.
#[allow(clippy::too_many_arguments)] // internal: the trace plumbing rides along
fn apply_rule(
    t: &mut Tableau,
    fd: Fd,
    i: usize,
    j: usize,
    stats: &mut ChaseStats,
    guard: &Guard,
    trace: &TraceHandle,
    universe: Option<&Universe>,
    dirtied_total: &mut usize,
) -> Result<bool, ExecError> {
    let mut any = false;
    for a in fd.rhs.iter() {
        let s1 = t.rows()[i].sym(a);
        let s2 = t.rows()[j].sym(a);
        if s1 == s2 {
            continue;
        }
        let (winner, loser) = match (s1, s2) {
            (ChaseSym::Const(_), ChaseSym::Const(_)) => {
                trace.emit_with(|| TraceEvent::StateRejected {
                    violating_fd: fd_label(&fd, universe),
                    column: col_label(a, universe),
                    witness_rows: (i as u32, j as u32),
                });
                return Err(Inconsistent { fd, column: a }.into());
            }
            (ChaseSym::Const(_), _) => (s1, s2),
            (_, ChaseSym::Const(_)) => (s2, s1),
            (ChaseSym::Dv, _) => (s1, s2),
            (_, ChaseSym::Dv) => (s2, s1),
            (ChaseSym::Ndv(x), ChaseSym::Ndv(y)) => {
                if x < y {
                    (s1, s2)
                } else {
                    (s2, s1)
                }
            }
        };
        guard.chase_step()?;
        let renamed = rename_in_column(t, a, loser, winner);
        *dirtied_total += renamed;
        stats.rule_applications += 1;
        any = true;
        trace.emit_with(|| TraceEvent::FdRuleFired {
            fd: fd_label(&fd, universe),
            column: col_label(a, universe),
            rows: (i as u32, j as u32),
            dirtied: renamed,
        });
    }
    Ok(any)
}

/// Renames every occurrence of `old` in column `a` to `new`, returning
/// the number of rows touched. Variables are column-local by
/// construction, so this renames globally.
fn rename_in_column(t: &mut Tableau, a: Attribute, old: ChaseSym, new: ChaseSym) -> usize {
    let col = a.index();
    let mut n = 0;
    for row in t.rows_mut() {
        if row.syms[col] == old {
            row.syms[col] = new;
            n += 1;
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use idr_relation::{state_of, SchemeBuilder, SymbolTable, Universe};

    #[test]
    fn chase_equates_through_fd() {
        // R1(AB), R2(AC); A→B, A→C; rows share A value → rep instance has a
        // total ABC tuple after chasing.
        let scheme = SchemeBuilder::new("ABC")
            .scheme("R1", "AB", ["A"])
            .scheme("R2", "AC", ["A"])
            .build()
            .unwrap();
        let kd = idr_fd::KeyDeps::of(&scheme);
        let mut sym = SymbolTable::new();
        let state = state_of(
            &scheme,
            &mut sym,
            &[
                ("R1", &[("A", "a"), ("B", "b")]),
                ("R2", &[("A", "a"), ("C", "c")]),
            ],
        )
        .unwrap();
        let mut t = Tableau::of_state(&scheme, &state);
        let stats = chase(&mut t, kd.full(), &Guard::unlimited()).unwrap();
        assert!(stats.rule_applications >= 2);
        let abc = scheme.universe().set_of("ABC");
        assert_eq!(t.total_projection(abc).len(), 1);
    }

    #[test]
    fn chase_detects_key_violation() {
        let scheme = SchemeBuilder::new("AB")
            .scheme("R1", "AB", ["A"])
            .build()
            .unwrap();
        let kd = idr_fd::KeyDeps::of(&scheme);
        let mut sym = SymbolTable::new();
        let state = state_of(
            &scheme,
            &mut sym,
            &[
                ("R1", &[("A", "a"), ("B", "b1")]),
                ("R1", &[("A", "a"), ("B", "b2")]),
            ],
        )
        .unwrap();
        let mut t = Tableau::of_state(&scheme, &state);
        let err = chase(&mut t, kd.full(), &Guard::unlimited()).unwrap_err();
        match err {
            ExecError::Inconsistent { detail } => {
                // Column B is index 1 in the AB universe.
                assert!(detail.contains("column 1"), "{detail}");
            }
            other => panic!("expected an inconsistency, got {other:?}"),
        }
    }

    #[test]
    fn chase_scheme_tableau_computes_closures() {
        // [BMSU]: after chasing T_R, row i's dv set is Ri⁺.
        let u = Universe::of_chars("ABCD");
        let f = FdSet::parse(&u, "A->B, B->C");
        let schemes = [u.set_of("AB"), u.set_of("BC"), u.set_of("CD")];
        let mut t = Tableau::of_scheme(&schemes, 4);
        chase(&mut t, &f, &Guard::unlimited()).unwrap();
        assert_eq!(t.rows()[0].dv_attrs(), u.set_of("ABC"));
        assert_eq!(t.rows()[1].dv_attrs(), u.set_of("BC"));
        assert_eq!(t.rows()[2].dv_attrs(), u.set_of("CD"));
    }

    #[test]
    fn chase_is_idempotent() {
        let scheme = SchemeBuilder::new("ABC")
            .scheme("R1", "AB", ["A"])
            .scheme("R2", "AC", ["A"])
            .build()
            .unwrap();
        let kd = idr_fd::KeyDeps::of(&scheme);
        let mut sym = SymbolTable::new();
        let state = state_of(
            &scheme,
            &mut sym,
            &[
                ("R1", &[("A", "a"), ("B", "b")]),
                ("R2", &[("A", "a"), ("C", "c")]),
            ],
        )
        .unwrap();
        let mut t = Tableau::of_state(&scheme, &state);
        chase(&mut t, kd.full(), &Guard::unlimited()).unwrap();
        let snapshot = t.clone();
        let stats = chase(&mut t, kd.full(), &Guard::unlimited()).unwrap();
        assert_eq!(stats.rule_applications, 0);
        assert_eq!(t, snapshot);
    }

    #[test]
    fn empty_tableau_chases_trivially() {
        let u = Universe::of_chars("AB");
        let f = FdSet::parse(&u, "A->B");
        let mut t = Tableau::new(2);
        let stats = chase(&mut t, &f, &Guard::unlimited()).unwrap();
        assert_eq!(stats.rule_applications, 0);
    }

}
