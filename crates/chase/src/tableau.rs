use std::fmt;

use idr_relation::{AttrSet, Attribute, DatabaseScheme, DatabaseState, Tuple, Universe, Value};

/// A tableau entry (§2.2): a constant, the distinguished variable of its
/// column (`a_i`), or a nondistinguished variable (`b_j`, globally
/// numbered).
///
/// Variables never travel between columns (the paper: "no variables can
/// appear in two different columns"), which the chase exploits: renaming a
/// variable only touches its own column.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ChaseSym {
    /// An interned constant.
    Const(Value),
    /// The distinguished variable of the column (one per column, so the
    /// column index is the identity).
    Dv,
    /// A nondistinguished variable, globally numbered.
    Ndv(u32),
}

impl ChaseSym {
    /// Whether the symbol is a constant.
    pub fn is_const(self) -> bool {
        matches!(self, ChaseSym::Const(_))
    }

    /// Whether the symbol is the distinguished variable.
    pub fn is_dv(self) -> bool {
        matches!(self, ChaseSym::Dv)
    }
}

impl fmt::Debug for ChaseSym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChaseSym::Const(v) => write!(f, "c{}", v.index()),
            ChaseSym::Dv => write!(f, "a"),
            ChaseSym::Ndv(i) => write!(f, "b{i}"),
        }
    }
}

/// A tableau row: one symbol per universe attribute, plus the origin tag
/// (which relation scheme the row came from — the `TAG` column in the
/// paper's examples).
#[derive(Clone, PartialEq, Eq)]
pub struct Row {
    pub(crate) syms: Vec<ChaseSym>,
    /// Index of the relation scheme this row originates from, if any.
    pub tag: Option<usize>,
}

impl Row {
    /// The symbol in column `a`.
    #[inline]
    pub fn sym(&self, a: Attribute) -> ChaseSym {
        self.syms[a.index()]
    }

    /// The set of columns holding constants — "the constant components of
    /// the row are defined on C".
    pub fn const_attrs(&self) -> AttrSet {
        AttrSet::from_iter(
            self.syms
                .iter()
                .enumerate()
                .filter(|(_, s)| s.is_const())
                .map(|(i, _)| Attribute::from_index(i)),
        )
    }

    /// The set of columns holding distinguished variables.
    pub fn dv_attrs(&self) -> AttrSet {
        AttrSet::from_iter(
            self.syms
                .iter()
                .enumerate()
                .filter(|(_, s)| s.is_dv())
                .map(|(i, _)| Attribute::from_index(i)),
        )
    }

    /// Whether the row is total (all constants) on `x`.
    pub fn total_on(&self, x: AttrSet) -> bool {
        x.iter().all(|a| self.sym(a).is_const())
    }

    /// The constant components of the row as a [`Tuple`] (over
    /// [`Row::const_attrs`]).
    pub fn const_tuple(&self) -> Tuple {
        Tuple::from_pairs(self.syms.iter().enumerate().filter_map(|(i, s)| match s {
            ChaseSym::Const(v) => Some((Attribute::from_index(i), *v)),
            _ => None,
        }))
    }

    /// The restriction `row[X]` as a tuple, defined only when the row is
    /// total on `X`.
    pub fn tuple_on(&self, x: AttrSet) -> Option<Tuple> {
        if !self.total_on(x) {
            return None;
        }
        Some(self.const_tuple().project(x))
    }
}

impl fmt::Debug for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, s) in self.syms.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{s:?}")?;
        }
        match self.tag {
            Some(t) => write!(f, " | R{t}]"),
            None => write!(f, " | -]"),
        }
    }
}

/// A tableau: a set of rows over the universe (§2.2).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Tableau {
    width: usize,
    rows: Vec<Row>,
    next_ndv: u32,
}

impl Tableau {
    /// An empty tableau over a universe of `width` attributes.
    pub fn new(width: usize) -> Self {
        Tableau {
            width,
            rows: Vec::new(),
            next_ndv: 0,
        }
    }

    /// Crate-internal: reassembles a tableau from raw rows. The incremental
    /// engine materialises through this; `next_ndv` must exceed every ndv
    /// index occurring in `rows`.
    pub(crate) fn from_raw(width: usize, rows: Vec<Row>, next_ndv: u32) -> Self {
        Tableau {
            width,
            rows,
            next_ndv,
        }
    }

    /// The tableau `T_r` for a database state (§2.2): one row per tuple,
    /// constants on the origin scheme, fresh ndvs elsewhere.
    pub fn of_state(scheme: &DatabaseScheme, state: &DatabaseState) -> Self {
        let mut t = Tableau::new(scheme.universe().len());
        for (i, tuple) in state.iter_all() {
            t.push_tuple(tuple, Some(i));
        }
        t
    }

    /// The tableau `T_R` for a database scheme (\[ABU]\[ASU]): one row per
    /// relation scheme with dvs on its attributes and ndvs elsewhere.
    pub fn of_scheme(schemes: &[AttrSet], width: usize) -> Self {
        let mut t = Tableau::new(width);
        for (i, &r) in schemes.iter().enumerate() {
            let syms = (0..width)
                .map(|col| {
                    if r.contains(Attribute::from_index(col)) {
                        ChaseSym::Dv
                    } else {
                        t.fresh_ndv()
                    }
                })
                .collect();
            t.rows.push(Row { syms, tag: Some(i) });
        }
        t
    }

    /// Appends a row for a (possibly partial) tuple: constants where the
    /// tuple is defined, fresh ndvs elsewhere. Returns the row index.
    pub fn push_tuple(&mut self, tuple: &Tuple, tag: Option<usize>) -> usize {
        let syms = (0..self.width)
            .map(|col| match tuple.get(Attribute::from_index(col)) {
                Some(v) => ChaseSym::Const(v),
                None => self.fresh_ndv(),
            })
            .collect();
        self.rows.push(Row { syms, tag });
        self.rows.len() - 1
    }

    /// Number of columns (universe size).
    pub fn width(&self) -> usize {
        self.width
    }

    /// The rows.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Mutable access for the chase engine.
    pub(crate) fn rows_mut(&mut self) -> &mut Vec<Row> {
        &mut self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the tableau has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// All rows total on `x`, projected to `x` and deduplicated — the
    /// restricted projection `πt_X` (§2.1).
    pub fn total_projection(&self, x: AttrSet) -> Vec<Tuple> {
        let mut out: Vec<Tuple> = self
            .rows
            .iter()
            .filter_map(|r| r.tuple_on(x))
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// Removes rows whose entire symbol vectors duplicate an earlier row.
    pub fn dedup_rows(&mut self) {
        let mut seen: std::collections::HashSet<Vec<ChaseSym>> = std::collections::HashSet::new();
        self.rows.retain(|r| seen.insert(r.syms.clone()));
    }

    /// Minimisation as used by Algorithm 1 step (2) and Lemma 4.2's
    /// comparison: keep one row per distinct set of constant components
    /// (rows agreeing on all constants differ only in ndvs padded around
    /// the same facts and are homomorphically redundant).
    pub fn minimize_by_constants(&mut self) {
        let mut seen: std::collections::HashSet<Tuple> = std::collections::HashSet::new();
        self.rows.retain(|r| seen.insert(r.const_tuple()));
    }

    /// Whether some row consists entirely of distinguished variables —
    /// the losslessness criterion (§2.3).
    pub fn has_all_dv_row(&self) -> bool {
        self.rows
            .iter()
            .any(|r| r.syms.iter().all(|s| s.is_dv()))
    }

    fn fresh_ndv(&mut self) -> ChaseSym {
        let s = ChaseSym::Ndv(self.next_ndv);
        self.next_ndv += 1;
        s
    }

    /// Renders the tableau in the paper's tabular style.
    pub fn render(&self, universe: &Universe) -> String {
        let mut out = String::new();
        for a in universe.iter() {
            out.push_str(universe.name(a));
            out.push('\t');
        }
        out.push_str("TAG\n");
        for r in &self.rows {
            for s in &r.syms {
                out.push_str(&format!("{s:?}\t"));
            }
            match r.tag {
                Some(t) => out.push_str(&format!("R{t}\n")),
                None => out.push_str("-\n"),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idr_relation::{state_of, SchemeBuilder, SymbolTable};

    #[test]
    fn state_tableau_shape() {
        let scheme = SchemeBuilder::new("ABC")
            .scheme("R1", "AB", ["A"])
            .scheme("R2", "BC", ["B"])
            .build()
            .unwrap();
        let mut sym = SymbolTable::new();
        let state = state_of(
            &scheme,
            &mut sym,
            &[
                ("R1", &[("A", "a"), ("B", "b")]),
                ("R2", &[("B", "b"), ("C", "c")]),
            ],
        )
        .unwrap();
        let t = Tableau::of_state(&scheme, &state);
        assert_eq!(t.len(), 2);
        assert_eq!(t.rows()[0].const_attrs(), scheme.universe().set_of("AB"));
        assert_eq!(t.rows()[0].tag, Some(0));
        // Ndvs are pairwise distinct across the whole tableau.
        let mut ndvs = std::collections::HashSet::new();
        for r in t.rows() {
            for s in &r.syms {
                if let ChaseSym::Ndv(i) = s {
                    assert!(ndvs.insert(*i));
                }
            }
        }
    }

    #[test]
    fn scheme_tableau_shape() {
        let u = Universe::of_chars("ABC");
        let t = Tableau::of_scheme(&[u.set_of("AB"), u.set_of("BC")], 3);
        assert_eq!(t.len(), 2);
        assert_eq!(t.rows()[0].dv_attrs(), u.set_of("AB"));
        assert_eq!(t.rows()[1].dv_attrs(), u.set_of("BC"));
        assert!(!t.has_all_dv_row());
    }

    #[test]
    fn total_projection_filters_partial_rows() {
        let scheme = SchemeBuilder::new("AB")
            .scheme("R1", "A", ["A"])
            .scheme("R2", "AB", ["A"])
            .build()
            .unwrap();
        let mut sym = SymbolTable::new();
        let state = state_of(
            &scheme,
            &mut sym,
            &[
                ("R1", &[("A", "a1")]),
                ("R2", &[("A", "a2"), ("B", "b")]),
            ],
        )
        .unwrap();
        let t = Tableau::of_state(&scheme, &state);
        let u = scheme.universe();
        assert_eq!(t.total_projection(u.set_of("A")).len(), 2);
        assert_eq!(t.total_projection(u.set_of("AB")).len(), 1);
    }

    #[test]
    fn dedup_rows_removes_exact_duplicates() {
        let u = Universe::of_chars("AB");
        let mut t = Tableau::new(2);
        let mut sym = SymbolTable::new();
        let tup = Tuple::from_pairs([
            (u.attr_of("A"), sym.intern("a")),
            (u.attr_of("B"), sym.intern("b")),
        ]);
        t.push_tuple(&tup, Some(0));
        t.push_tuple(&tup, Some(0));
        // Full-width constant rows are exact duplicates.
        assert_eq!(t.len(), 2);
        t.dedup_rows();
        assert_eq!(t.len(), 1);
    }
}
