//! An indexed chase engine.
//!
//! [`crate::chase`] is the reference implementation: it rescans the
//! tableau after every fd-rule application, which is simple to audit but
//! quadratic in the number of applications. This module provides
//! [`chase_fast`], a worklist engine that keeps, per dependency, a hash
//! index from left-hand-side symbol vectors to a representative row, and
//! per column an occurrence index from symbols to rows — so each
//! application touches only the rows that actually hold the renamed
//! symbol.
//!
//! Semantics are identical (same renaming precedence); the property tests
//! chase random tableaux with both engines and compare consistency
//! verdicts and final total projections. The benchmark harness uses it as
//! the third arm of the representative-instance ablation. For the engine
//! that also drops eager symbol rewriting in favour of union-find, see
//! [`crate::incremental`].

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::Arc;

use idr_fd::FdSet;
use idr_obs::{TraceEvent, TraceHandle};
use idr_relation::exec::Guard;
use idr_relation::{Attribute, Universe};

use crate::chase_engine::{col_label, fd_label, ChaseOutcome, ChaseStats, Inconsistent};
use crate::tableau::{ChaseSym, Tableau};

/// `CHASE_F(T)` with worklist indexing. Same contract as [`crate::chase`]:
/// one chase-step unit charged per rule application against `guard`,
/// deadline/cancellation checked on every worklist pop.
pub fn chase_fast(t: &mut Tableau, fds: &FdSet, guard: &Guard) -> ChaseOutcome {
    chase_fast_traced(t, fds, guard, &TraceHandle::none(), None)
}

/// [`chase_fast`] with a trace sink — the same event protocol as
/// [`crate::chase_traced`]: `ChaseStarted`, one
/// `FdRuleFired` per rule application (`dirtied` = occurrence-index
/// holders renamed), a closing `RowsDirtied`, `StateRejected` /
/// `BudgetTrip` on the failure paths.
pub fn chase_fast_traced(
    t: &mut Tableau,
    fds: &FdSet,
    guard: &Guard,
    trace: &TraceHandle,
    universe: Option<&Universe>,
) -> ChaseOutcome {
    trace.emit_with(|| TraceEvent::ChaseStarted {
        scope: Arc::from("chase_fast"),
        rows: t.len(),
        fds: fds.fds().len(),
    });
    let mut dirtied_total = 0usize;
    let result = fast_inner(t, fds, guard, trace, universe, &mut dirtied_total);
    match &result {
        Ok(_) => trace.emit_with(|| TraceEvent::RowsDirtied {
            scope: Arc::from("chase_fast"),
            count: dirtied_total,
        }),
        Err(e) if e.is_resource_exhaustion() => trace.emit_with(|| TraceEvent::BudgetTrip {
            detail: Arc::from(e.to_string().as_str()),
        }),
        Err(_) => {}
    }
    result
}

fn fast_inner(
    t: &mut Tableau,
    fds: &FdSet,
    guard: &Guard,
    trace: &TraceHandle,
    universe: Option<&Universe>,
    dirtied_total: &mut usize,
) -> ChaseOutcome {
    let mut stats = ChaseStats::default();
    let width = t.width();
    let n_fds = fds.fds().len();
    if n_fds == 0 || t.is_empty() {
        return Ok(stats);
    }

    // Column occurrence index: (column, symbol) → rows currently holding
    // that symbol in that column. Constants can repeat; variables are
    // column-local by construction.
    let mut occurs: HashMap<(u32, ChaseSym), Vec<u32>> = HashMap::new();
    for (r, row) in t.rows().iter().enumerate() {
        for col in 0..width {
            let sym = row.sym(Attribute::from_index(col));
            occurs.entry((col as u32, sym)).or_default().push(r as u32);
        }
    }

    // Per-fd key index: lhs symbol vector → representative row. Entries
    // go stale after renames; they are validated lazily when probed.
    let mut keyidx: Vec<HashMap<Vec<ChaseSym>, u32>> = vec![HashMap::new(); n_fds];

    let key_of = |t: &Tableau, fi: usize, r: usize| -> Vec<ChaseSym> {
        fds.fds()[fi]
            .lhs
            .iter()
            .map(|a| t.rows()[r].sym(a))
            .collect()
    };

    // Worklist of rows to (re-)probe against every fd.
    let mut work: Vec<u32> = (0..t.len() as u32).collect();
    let mut queued = vec![true; t.len()];

    while let Some(r) = work.pop() {
        let r = r as usize;
        queued[r] = false;
        stats.passes += 1;
        guard.checkpoint()?;
        #[allow(clippy::needless_range_loop)] // borrow of keyidx[fi] vs key_of(t, fi, ·)
        for fi in 0..n_fds {
            let key = key_of(t, fi, r);
            match keyidx[fi].entry(key) {
                Entry::Vacant(e) => {
                    e.insert(r as u32);
                }
                Entry::Occupied(mut e) => {
                    let rep = *e.get() as usize;
                    if rep == r {
                        continue;
                    }
                    // Validate: the stored representative may be stale.
                    let rep_key = key_of(t, fi, rep);
                    let my_key = key_of(t, fi, r);
                    if rep_key != my_key {
                        // Stale entry: this slot now belongs to `r`; the
                        // old representative will be re-probed when (if)
                        // it is touched again — it was enqueued by the
                        // rename that changed its key.
                        e.insert(r as u32);
                        continue;
                    }
                    // Apply the fd-rule to (rep, r).
                    let fd = fds.fds()[fi];
                    let mut any = false;
                    for a in fd.rhs.iter() {
                        let s1 = t.rows()[rep].sym(a);
                        let s2 = t.rows()[r].sym(a);
                        if s1 == s2 {
                            continue;
                        }
                        let (winner, loser) = match (s1, s2) {
                            (ChaseSym::Const(_), ChaseSym::Const(_)) => {
                                trace.emit_with(|| TraceEvent::StateRejected {
                                    violating_fd: fd_label(&fd, universe),
                                    column: col_label(a, universe),
                                    witness_rows: (rep as u32, r as u32),
                                });
                                return Err(Inconsistent { fd, column: a }.into());
                            }
                            (ChaseSym::Const(_), _) => (s1, s2),
                            (_, ChaseSym::Const(_)) => (s2, s1),
                            (ChaseSym::Dv, _) => (s1, s2),
                            (_, ChaseSym::Dv) => (s2, s1),
                            (ChaseSym::Ndv(x), ChaseSym::Ndv(y)) => {
                                if x < y {
                                    (s1, s2)
                                } else {
                                    (s2, s1)
                                }
                            }
                        };
                        guard.chase_step()?;
                        stats.rule_applications += 1;
                        any = true;
                        let col = a.index() as u32;
                        let holders = occurs.remove(&(col, loser)).unwrap_or_default();
                        for &h in &holders {
                            let h = h as usize;
                            t.rows_mut()[h].syms[a.index()] = winner;
                            if !queued[h] {
                                queued[h] = true;
                                work.push(h as u32);
                            }
                        }
                        let dirtied = holders.len();
                        *dirtied_total += dirtied;
                        occurs.entry((col, winner)).or_default().extend(holders);
                        trace.emit_with(|| TraceEvent::FdRuleFired {
                            fd: fd_label(&fd, universe),
                            column: col_label(a, universe),
                            rows: (rep as u32, r as u32),
                            dirtied,
                        });
                    }
                    if any {
                        // `r` changed; restart its fd sweep on requeue.
                        if !queued[r] {
                            queued[r] = true;
                            work.push(r as u32);
                        }
                        break;
                    }
                    // Rows already agree on the rhs: nothing to do.
                }
            }
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chase_engine::chase;
    use idr_fd::KeyDeps;
    use idr_relation::{state_of, SchemeBuilder, SymbolTable};

    #[test]
    fn agrees_with_reference_on_merging_state() {
        let scheme = SchemeBuilder::new("ABC")
            .scheme("R1", "AB", ["A"])
            .scheme("R2", "AC", ["A"])
            .build()
            .unwrap();
        let kd = KeyDeps::of(&scheme);
        let mut sym = SymbolTable::new();
        let state = state_of(
            &scheme,
            &mut sym,
            &[
                ("R1", &[("A", "a"), ("B", "b")]),
                ("R2", &[("A", "a"), ("C", "c")]),
            ],
        )
        .unwrap();
        let mut t1 = Tableau::of_state(&scheme, &state);
        let mut t2 = t1.clone();
        chase(&mut t1, kd.full(), &Guard::unlimited()).unwrap();
        chase_fast(&mut t2, kd.full(), &Guard::unlimited()).unwrap();
        let all = scheme.universe().all();
        assert_eq!(t1.total_projection(all), t2.total_projection(all));
    }

    #[test]
    fn detects_inconsistency() {
        let scheme = SchemeBuilder::new("AB")
            .scheme("R1", "AB", ["A"])
            .build()
            .unwrap();
        let kd = KeyDeps::of(&scheme);
        let mut sym = SymbolTable::new();
        let state = state_of(
            &scheme,
            &mut sym,
            &[
                ("R1", &[("A", "a"), ("B", "b1")]),
                ("R1", &[("A", "a"), ("B", "b2")]),
            ],
        )
        .unwrap();
        let mut t = Tableau::of_state(&scheme, &state);
        assert!(chase_fast(&mut t, kd.full(), &Guard::unlimited()).is_err());
    }

    #[test]
    fn transitive_merges_propagate() {
        // a-chain: (a0,b0) (a1,b0) (a1,b1) ... requires repeated
        // re-probing as symbols collapse.
        let scheme = SchemeBuilder::new("ABC")
            .scheme("R1", "AB", ["AB"])
            .scheme("R2", "BC", ["B"])
            .scheme("R3", "AC", ["A"])
            .build()
            .unwrap();
        let kd = KeyDeps::of(&scheme);
        let mut sym = SymbolTable::new();
        let state = state_of(
            &scheme,
            &mut sym,
            &[
                ("R3", &[("A", "a0"), ("C", "c0")]),
                ("R1", &[("A", "a0"), ("B", "b0")]),
                ("R1", &[("A", "a1"), ("B", "b0")]),
                ("R1", &[("A", "a1"), ("B", "b1")]),
                ("R1", &[("A", "a2"), ("B", "b1")]),
            ],
        )
        .unwrap();
        let mut t1 = Tableau::of_state(&scheme, &state);
        let mut t2 = t1.clone();
        chase(&mut t1, kd.full(), &Guard::unlimited()).unwrap();
        chase_fast(&mut t2, kd.full(), &Guard::unlimited()).unwrap();
        let ac = scheme.universe().set_of("AC");
        // c0 propagates down the whole chain: a0, a1, a2 all map to c0.
        assert_eq!(t1.total_projection(ac).len(), 3);
        assert_eq!(t1.total_projection(ac), t2.total_projection(ac));
    }

    #[test]
    fn empty_inputs() {
        let mut t = Tableau::new(3);
        assert!(chase_fast(&mut t, &FdSet::new(), &Guard::unlimited()).is_ok());
    }
}
