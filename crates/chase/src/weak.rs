//! The weak instance model (§2.5): consistency, representative instances
//! and X-total projections.

use idr_fd::FdSet;
use idr_relation::exec::{ExecError, Guard};
use idr_relation::{AttrSet, DatabaseScheme, DatabaseState, Tuple};

use crate::chase_engine::{chase, ChaseStats};
use crate::tableau::Tableau;

/// A representative instance: the chased state tableau `CHASE_F(T_r)`
/// (\[H2]), with the chase statistics.
#[derive(Clone, Debug)]
pub struct RepInstance {
    /// The chased tableau.
    pub tableau: Tableau,
    /// Work done by the chase.
    pub stats: ChaseStats,
}

impl RepInstance {
    /// The X-total projection `[X]` of the representative instance (§2.5).
    pub fn total_projection(&self, x: AttrSet) -> Vec<Tuple> {
        self.tableau.total_projection(x)
    }
}

/// Whether the state is consistent with respect to `fds`: a weak instance
/// exists iff the chase of the state tableau does not fail (\[H2]\[GMV]).
///
/// `Ok(true)`/`Ok(false)` is the consistency verdict; `Err` means the
/// guard stopped the chase before a verdict was reached (budget, deadline
/// or cancellation — never inconsistency, which is the `Ok(false)` case
/// here). Pass [`Guard::unlimited`] for an unbounded run.
pub fn is_consistent(
    scheme: &DatabaseScheme,
    state: &DatabaseState,
    fds: &FdSet,
    guard: &Guard,
) -> Result<bool, ExecError> {
    let mut t = Tableau::of_state(scheme, state);
    match chase(&mut t, fds, guard) {
        Ok(_) => Ok(true),
        Err(ExecError::Inconsistent { .. }) => Ok(false),
        Err(e) => Err(e),
    }
}

/// Computes the representative instance for a state. `Ok(None)` when the
/// state is inconsistent, `Err` when the guard stopped the chase.
pub fn representative_instance(
    scheme: &DatabaseScheme,
    state: &DatabaseState,
    fds: &FdSet,
    guard: &Guard,
) -> Result<Option<RepInstance>, ExecError> {
    let mut t = Tableau::of_state(scheme, state);
    match chase(&mut t, fds, guard) {
        Ok(stats) => Ok(Some(RepInstance { tableau: t, stats })),
        Err(ExecError::Inconsistent { .. }) => Ok(None),
        Err(e) => Err(e),
    }
}

/// The X-total projection `[X]` for a state (§2.5): `πt_X(CHASE_F(T_r))`.
/// `Ok(None)` when the state is inconsistent, `Err` when the guard stopped
/// the chase.
pub fn total_projection(
    scheme: &DatabaseScheme,
    state: &DatabaseState,
    fds: &FdSet,
    x: AttrSet,
    guard: &Guard,
) -> Result<Option<Vec<Tuple>>, ExecError> {
    Ok(representative_instance(scheme, state, fds, guard)?.map(|ri| ri.total_projection(x)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use idr_fd::KeyDeps;
    use idr_relation::{state_of, SchemeBuilder, SymbolTable};

    fn fixture() -> (DatabaseScheme, SymbolTable, DatabaseState) {
        let scheme = SchemeBuilder::new("ABC")
            .scheme("R1", "AB", ["A"])
            .scheme("R2", "BC", ["B"])
            .build()
            .unwrap();
        let mut sym = SymbolTable::new();
        let state = state_of(
            &scheme,
            &mut sym,
            &[
                ("R1", &[("A", "a"), ("B", "b")]),
                ("R2", &[("B", "b"), ("C", "c")]),
            ],
        )
        .unwrap();
        (scheme, sym, state)
    }

    #[test]
    fn consistent_state_has_rep_instance() {
        let (scheme, _sym, state) = fixture();
        let kd = KeyDeps::of(&scheme);
        let g = Guard::unlimited();
        assert!(is_consistent(&scheme, &state, kd.full(), &g).unwrap());
        let ri = representative_instance(&scheme, &state, kd.full(), &g)
            .unwrap()
            .unwrap();
        // B→C extends the R1 row to ABC.
        let abc = scheme.universe().set_of("ABC");
        assert_eq!(ri.total_projection(abc).len(), 1);
    }

    #[test]
    fn total_projection_derives_new_facts() {
        let (scheme, _sym, state) = fixture();
        let kd = KeyDeps::of(&scheme);
        // [AC] contains <a, c> even though no relation holds AC.
        let ac = scheme.universe().set_of("AC");
        let proj = total_projection(&scheme, &state, kd.full(), ac, &Guard::unlimited())
            .unwrap()
            .unwrap();
        assert_eq!(proj.len(), 1);
        assert_eq!(proj[0].attrs(), ac);
    }

    #[test]
    fn inconsistent_state_detected() {
        let scheme = SchemeBuilder::new("AB")
            .scheme("R1", "AB", ["A"])
            .build()
            .unwrap();
        let kd = KeyDeps::of(&scheme);
        let mut sym = SymbolTable::new();
        let state = state_of(
            &scheme,
            &mut sym,
            &[
                ("R1", &[("A", "a"), ("B", "b1")]),
                ("R1", &[("A", "a"), ("B", "b2")]),
            ],
        )
        .unwrap();
        let g = Guard::unlimited();
        assert!(!is_consistent(&scheme, &state, kd.full(), &g).unwrap());
        assert!(representative_instance(&scheme, &state, kd.full(), &g)
            .unwrap()
            .is_none());
        assert!(
            total_projection(&scheme, &state, kd.full(), scheme.universe().set_of("A"), &g)
                .unwrap()
                .is_none()
        );
    }

    #[test]
    fn empty_state_is_consistent() {
        let (scheme, _sym, _state) = fixture();
        let kd = KeyDeps::of(&scheme);
        let empty = DatabaseState::empty(&scheme);
        assert!(is_consistent(&scheme, &empty, kd.full(), &Guard::unlimited()).unwrap());
    }
}
