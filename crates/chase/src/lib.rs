//! Tableaux and the chase (§2.2–§2.5 of Chan & Hernández, PODS 1988).
//!
//! This crate is the *semantic ground truth* of the reproduction. Every
//! specialised fast path in `idr-core` — Algorithm 1's whole-tuple chase,
//! the maintenance algorithms, the boundedness expressions — is verified
//! against the generic machinery here:
//!
//! * [`Tableau`] — rows over the universe whose entries are constants,
//!   distinguished variables (dv) or nondistinguished variables (ndv),
//!   with origin tags (the `TAG` column of the paper's figures).
//! * [`chase`] — exhaustive fd-rule application (`CHASE_F(T)`, \[MMS]),
//!   returning the chased tableau or detecting an inconsistency.
//! * [`chase_fast`] — the indexed worklist engine; [`IncrementalChase`] —
//!   the union-find engine with incremental insert support that backs the
//!   `Engine` facade.
//! * State tableaux `T_r` ([`Tableau::of_state`]) and scheme tableaux
//!   `T_R` ([`Tableau::of_scheme`]).
//! * The weak instance model (§2.5): [`is_consistent`],
//!   [`representative_instance`], and X-total projections
//!   ([`total_projection`]).
//! * Lossless-subset tests via the all-dv-row criterion
//!   ([`lossless::is_lossless`]).
//! * Tableau equivalence up to ndv renaming ([`equivalence`]), the notion
//!   Lemma 4.2 is stated in.
//!
//! Every chase entry point takes an execution context (`&Guard`);
//! [`Guard::unlimited`](idr_relation::exec::Guard::unlimited) is the easy
//! default. (The pre-collapse `*_bounded` twins were removed in 0.5 —
//! drop the suffix and pass a `Guard`.)

#![warn(missing_docs)]
mod chase_engine;
pub mod equivalence;
pub mod fast;
pub mod incremental;
pub mod lossless;
mod tableau;
mod weak;

pub use chase_engine::{chase, chase_traced, ChaseOutcome, ChaseStats, Inconsistent};
pub use fast::{chase_fast, chase_fast_traced};
pub use incremental::{
    chase_incremental, CellTrace, FiringInfo, IncrementalChase, RejectionExplanation,
    TupleExplanation,
};
pub use tableau::{ChaseSym, Row, Tableau};
pub use weak::{is_consistent, representative_instance, total_projection, RepInstance};
