//! Losslessness (§2.3): `S ⊆ R` is lossless wrt `F` when `CHASE_F(T_S)`
//! has a row of all distinguished variables, and a *lossless subset of R
//! covering X* additionally has `∪S ⊇ X`.

use idr_fd::FdSet;
use idr_relation::exec::Guard;
use idr_relation::AttrSet;

use crate::chase_engine::chase;
use crate::tableau::Tableau;

/// Whether the family of schemes is lossless with respect to `fds`,
/// chasing the scheme tableau over a universe of the family's union.
///
/// Note the paper's convention for lossless *subsets*: losslessness is
/// judged against the fds *embedded in the subset* and dv-ness against the
/// subset's own union — callers pass the appropriate `fds`.
pub fn is_lossless(schemes: &[AttrSet], fds: &FdSet) -> bool {
    if schemes.is_empty() {
        return false;
    }
    let union = schemes.iter().fold(AttrSet::empty(), |a, &b| a | b);
    let width = tableau_width(&union, fds);
    let mut t = Tableau::of_scheme(schemes, width);
    // Scheme tableaux are tiny (one row per scheme), so the test is
    // intrinsically bounded: no budget needed.
    if chase(&mut t, fds, &Guard::unlimited()).is_err() {
        return false;
    }
    t.rows()
        .iter()
        .any(|r| union.is_subset(r.dv_attrs()))
}

/// The per-row dv sets after chasing the scheme tableau — by the \[BMSU]
/// characterisation these are exactly the closures `Sᵢ⁺` wrt `fds`,
/// *provided each fd is embedded in some scheme of the family* (the
/// paper's cover-embedding setting; key dependencies always qualify).
/// Cross-validated against `FdSet::closure` in tests; Lemma 3.8's
/// splitness test is built on this equivalence.
pub fn dv_closures(schemes: &[AttrSet], fds: &FdSet) -> Vec<AttrSet> {
    let union = schemes.iter().fold(AttrSet::empty(), |a, &b| a | b);
    let width = tableau_width(&union, fds);
    let mut t = Tableau::of_scheme(schemes, width);
    if chase(&mut t, fds, &Guard::unlimited()).is_err() {
        return Vec::new();
    }
    t.rows().iter().map(|r| r.dv_attrs()).collect()
}

/// Width covering both the scheme union and every attribute the fds
/// mention, so the chase never indexes outside the tableau.
fn tableau_width(union: &AttrSet, fds: &FdSet) -> usize {
    let mut all = *union;
    for fd in fds.fds() {
        all |= fd.attrs();
    }
    all.iter().map(|a| a.index()).max().map_or(0, |m| m + 1)
}

/// Whether `subset` is a lossless subset of the database scheme covering
/// `x` (§2.3): `∪S ⊇ X` and `S` lossless wrt the fds embedded in `S`.
pub fn is_lossless_subset_covering(subset: &[AttrSet], embedded_fds: &FdSet, x: AttrSet) -> bool {
    let union = subset.iter().fold(AttrSet::empty(), |a, &b| a | b);
    x.is_subset(union) && is_lossless(subset, embedded_fds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use idr_relation::Universe;

    #[test]
    fn extension_join_pair_is_lossless() {
        let u = Universe::of_chars("ABC");
        let f = FdSet::parse(&u, "A->B, B->C");
        assert!(is_lossless(&[u.set_of("AB"), u.set_of("BC")], &f));
    }

    #[test]
    fn independent_facts_are_lossy() {
        let u = Universe::of_chars("ABCD");
        let f = FdSet::parse(&u, "A->B, C->D");
        assert!(!is_lossless(&[u.set_of("AB"), u.set_of("CD")], &f));
    }

    #[test]
    fn lossy_without_fds() {
        let u = Universe::of_chars("ABC");
        assert!(!is_lossless(&[u.set_of("AB"), u.set_of("BC")], &FdSet::new()));
    }

    #[test]
    fn dv_closures_match_fd_closures() {
        let u = Universe::of_chars("ABCD");
        let f = FdSet::parse(&u, "A->B, B->C, CD->A");
        let schemes = [u.set_of("AB"), u.set_of("BC"), u.set_of("CD"), u.set_of("AD")];
        let dv = dv_closures(&schemes, &f);
        for (i, &s) in schemes.iter().enumerate() {
            assert_eq!(dv[i], f.closure(s), "scheme {i}");
        }
    }

    #[test]
    fn covering_requires_union_superset() {
        let u = Universe::of_chars("ABC");
        let f = FdSet::parse(&u, "A->B");
        assert!(is_lossless_subset_covering(
            &[u.set_of("AB")],
            &f,
            u.set_of("A")
        ));
        assert!(!is_lossless_subset_covering(
            &[u.set_of("AB")],
            &f,
            u.set_of("AC")
        ));
    }

    #[test]
    fn singleton_scheme_is_lossless() {
        let u = Universe::of_chars("AB");
        assert!(is_lossless(&[u.set_of("AB")], &FdSet::new()));
    }

    #[test]
    fn empty_family_is_not_lossless() {
        assert!(!is_lossless(&[], &FdSet::new()));
    }
}
