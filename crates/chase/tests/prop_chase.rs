//! Property tests for the chase: it is confluent-in-effect for our
//! purposes (consistency and total projections don't depend on fd order),
//! sound as a consistency test against a brute-force weak-instance search,
//! and the [BMSU] dv/closure correspondence holds on random inputs.

use idr_chase::{chase, is_consistent, lossless, Tableau};
use idr_fd::{Fd, FdSet};
use idr_relation::{
    AttrSet, Attribute, DatabaseScheme, DatabaseState, RelationScheme, Tuple, Universe,
};
use proptest::prelude::*;

const WIDTH: usize = 4;

fn universe() -> Universe {
    Universe::of_chars("ABCD")
}

/// Random database scheme over ABCD: 2–3 schemes, each 1–3 attributes with
/// a nonempty key; patched so the union covers the universe.
fn arb_scheme() -> impl Strategy<Value = DatabaseScheme> {
    prop::collection::vec(
        (prop::collection::vec(0..WIDTH, 1..WIDTH), any::<u8>()),
        2..4,
    )
    .prop_map(|specs| {
        let u = universe();
        let mut schemes = Vec::new();
        let mut cover = AttrSet::empty();
        for (i, (attrs, key_seed)) in specs.iter().enumerate() {
            let a = AttrSet::from_iter(attrs.iter().map(|&x| Attribute::from_index(x)));
            cover |= a;
            let members: Vec<Attribute> = a.iter().collect();
            let key = AttrSet::singleton(members[(*key_seed as usize) % members.len()]);
            schemes.push(RelationScheme::new(format!("R{i}"), a, vec![key]).unwrap());
        }
        let missing = u.all() - cover;
        if !missing.is_empty() {
            // Pad with one extra scheme to cover the universe.
            let attrs = missing;
            let key = AttrSet::singleton(attrs.first().unwrap());
            schemes.push(
                RelationScheme::new(format!("R{}", schemes.len()), attrs, vec![key]).unwrap(),
            );
        }
        DatabaseScheme::new(u, schemes).unwrap()
    })
}

/// A random state for a given scheme: tuples drawn from a 2-value-per-
/// column pool (small pools force key collisions, exercising both the
/// equating and the inconsistency paths of the chase).
fn arb_state(scheme: &DatabaseScheme) -> BoxedStrategy<DatabaseState> {
    let scheme = scheme.clone();
    let n = scheme.len();
    let width = scheme.universe().len();
    prop::collection::vec((0..n, prop::collection::vec(0..2u8, width)), 0..6)
        .prop_map(move |rows| {
            let mut sym = idr_relation::SymbolTable::new();
            let mut state = DatabaseState::empty(&scheme);
            for (which, vals) in rows {
                let attrs = scheme.scheme(which).attrs();
                let t = Tuple::from_pairs(attrs.iter().map(|a| {
                    (a, sym.intern(&format!("{}={}", a.index(), vals[a.index()])))
                }));
                let _ = state.insert(which, t);
            }
            state
        })
        .boxed()
}

/// Brute-force weak-instance existence for tiny states: try to build a
/// universal relation I over the constants present (plus one fresh null
/// value per column) satisfying the fds with projections covering the
/// state. Exponential; only run on very small inputs.
fn weak_instance_exists_brute(
    scheme: &DatabaseScheme,
    state: &DatabaseState,
    fds: &FdSet,
) -> bool {
    // Equivalent definition via the chase is what we test; as an
    // independent check we verify fd-satisfaction of the chased tableau's
    // rows directly: for each pair of rows and each fd, lhs agreement (as
    // constants) implies rhs agreement. Combined with containment of the
    // original tuples, this certifies a weak instance (pad each row's
    // variables with fresh distinct values).
    let mut t = Tableau::of_state(scheme, state);
    match chase(&mut t, fds) {
        Err(_) => false,
        Ok(_) => {
            for r1 in t.rows() {
                for r2 in t.rows() {
                    for fd in fds.fds() {
                        let lhs_agree = fd.lhs.iter().all(|a| {
                            let (s1, s2) = (r1.sym(a), r2.sym(a));
                            s1 == s2
                        });
                        if lhs_agree {
                            for a in fd.rhs.iter() {
                                assert_eq!(
                                    r1.sym(a),
                                    r2.sym(a),
                                    "chased tableau violates {fd:?}"
                                );
                            }
                        }
                    }
                }
            }
            true
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn chased_tableau_satisfies_fds(
        (scheme, state) in arb_scheme().prop_flat_map(|s| {
            let st = arb_state(&s);
            (Just(s), st)
        })
    ) {
        let kd = idr_fd::KeyDeps::of(&scheme);
        // weak_instance_exists_brute internally asserts fd satisfaction of
        // the chased tableau.
        let _ = weak_instance_exists_brute(&scheme, &state, kd.full());
    }

    #[test]
    fn consistency_is_monotone_under_tuple_removal(
        (scheme, state) in arb_scheme().prop_flat_map(|s| {
            let st = arb_state(&s);
            (Just(s), st)
        })
    ) {
        let kd = idr_fd::KeyDeps::of(&scheme);
        if is_consistent(&scheme, &state, kd.full()) {
            // Removing any single relation's tuples keeps consistency.
            for skip in 0..scheme.len() {
                let mut reduced = DatabaseState::empty(&scheme);
                for (i, t) in state.iter_all() {
                    if i != skip {
                        reduced.insert(i, t.clone()).unwrap();
                    }
                }
                prop_assert!(is_consistent(&scheme, &reduced, kd.full()));
            }
        }
    }

    #[test]
    fn chase_result_independent_of_fd_order(
        (scheme, state) in arb_scheme().prop_flat_map(|s| {
            let st = arb_state(&s);
            (Just(s), st)
        })
    ) {
        let kd = idr_fd::KeyDeps::of(&scheme);
        let fds = kd.full();
        let reversed = FdSet::from_fds(fds.fds().iter().rev().copied());
        let p1 = idr_chase::total_projection(
            &scheme, &state, fds, scheme.universe().all());
        let p2 = idr_chase::total_projection(
            &scheme, &state, &reversed, scheme.universe().all());
        prop_assert_eq!(p1, p2);
    }

    #[test]
    fn fast_chase_agrees_with_reference(
        (scheme, state) in arb_scheme().prop_flat_map(|s| {
            let st = arb_state(&s);
            (Just(s), st)
        })
    ) {
        let kd = idr_fd::KeyDeps::of(&scheme);
        let mut t1 = Tableau::of_state(&scheme, &state);
        let mut t2 = t1.clone();
        let r1 = chase(&mut t1, kd.full());
        let r2 = idr_chase::fast::chase_fast(&mut t2, kd.full());
        prop_assert_eq!(r1.is_ok(), r2.is_ok());
        if r1.is_ok() {
            let all = scheme.universe().all();
            prop_assert_eq!(t1.total_projection(all), t2.total_projection(all));
            // Also compare every single-attribute projection (partial
            // derivations must match too).
            for a in scheme.universe().iter() {
                let x = idr_relation::AttrSet::singleton(a);
                prop_assert_eq!(t1.total_projection(x), t2.total_projection(x));
            }
        }
    }

    #[test]
    fn dv_closures_match_closures_on_random_fds(
        lhss in prop::collection::vec(prop::collection::vec(0..WIDTH, 1..3), 0..5),
        rhss in prop::collection::vec(prop::collection::vec(0..WIDTH, 1..3), 0..5),
        schemes in prop::collection::vec(prop::collection::vec(0..WIDTH, 1..4), 1..4),
    ) {
        let schemes: Vec<AttrSet> = schemes
            .into_iter()
            .map(|s| AttrSet::from_iter(s.into_iter().map(Attribute::from_index)))
            .collect();
        // The [BMSU] correspondence assumes each fd is embedded in some
        // scheme of the family (the cover-embedding setting of the paper).
        let fds = FdSet::from_fds(
            lhss.iter().zip(rhss.iter()).map(|(l, r)| Fd::new(
                AttrSet::from_iter(l.iter().map(|&i| Attribute::from_index(i))),
                AttrSet::from_iter(r.iter().map(|&i| Attribute::from_index(i))),
            )).filter(|fd| schemes.iter().any(|&s| fd.embedded_in(s))),
        );
        let dv = lossless::dv_closures(&schemes, &fds);
        prop_assert_eq!(dv.len(), schemes.len());
        for (i, &s) in schemes.iter().enumerate() {
            prop_assert_eq!(dv[i], fds.closure(s));
        }
    }
}
