//! Randomized property tests for the chase: it is confluent-in-effect for
//! our purposes (consistency and total projections don't depend on fd
//! order), sound as a consistency test against a brute-force
//! weak-instance search, and the [BMSU] dv/closure correspondence holds
//! on random inputs. Seeded [`SplitMix64`] loops — deterministic, offline.

use idr_chase::{chase, is_consistent, lossless, Tableau};
use idr_fd::{Fd, FdSet};
use idr_relation::exec::Guard;
use idr_relation::rng::SplitMix64;
use idr_relation::{
    AttrSet, Attribute, DatabaseScheme, DatabaseState, RelationScheme, Tuple, Universe,
};

const WIDTH: usize = 4;
const CASES: usize = 256;

fn universe() -> Universe {
    Universe::of_chars("ABCD")
}

/// Random database scheme over ABCD: 2–3 schemes, each 1–3 attributes with
/// a nonempty key; patched so the union covers the universe.
fn rand_scheme(rng: &mut SplitMix64) -> DatabaseScheme {
    let u = universe();
    let mut schemes = Vec::new();
    let mut cover = AttrSet::empty();
    for i in 0..rng.gen_range_inclusive(2, 3) {
        let n = rng.gen_range(1, WIDTH);
        let a = AttrSet::from_iter(
            (0..n).map(|_| Attribute::from_index(rng.gen_range(0, WIDTH))),
        );
        cover |= a;
        let members: Vec<Attribute> = a.iter().collect();
        let key = AttrSet::singleton(members[rng.gen_range(0, members.len())]);
        schemes.push(RelationScheme::new(format!("R{i}"), a, vec![key]).unwrap());
    }
    let missing = u.all() - cover;
    if !missing.is_empty() {
        // Pad with one extra scheme to cover the universe.
        let key = AttrSet::singleton(missing.first().unwrap());
        schemes.push(
            RelationScheme::new(format!("R{}", schemes.len()), missing, vec![key]).unwrap(),
        );
    }
    DatabaseScheme::new(u, schemes).unwrap()
}

/// A random state for a given scheme: tuples drawn from a 2-value-per-
/// column pool (small pools force key collisions, exercising both the
/// equating and the inconsistency paths of the chase).
fn rand_state(rng: &mut SplitMix64, scheme: &DatabaseScheme) -> DatabaseState {
    let mut sym = idr_relation::SymbolTable::new();
    let mut state = DatabaseState::empty(scheme);
    for _ in 0..rng.gen_range(0, 6) {
        let which = rng.gen_range(0, scheme.len());
        let vals: Vec<usize> = (0..scheme.universe().len())
            .map(|_| rng.gen_range(0, 2))
            .collect();
        let attrs = scheme.scheme(which).attrs();
        let t = Tuple::from_pairs(
            attrs
                .iter()
                .map(|a| (a, sym.intern(&format!("{}={}", a.index(), vals[a.index()])))),
        );
        let _ = state.insert(which, t);
    }
    state
}

/// Brute-force weak-instance existence for tiny states: try to build a
/// universal relation I over the constants present (plus one fresh null
/// value per column) satisfying the fds with projections covering the
/// state. Exponential; only run on very small inputs.
fn weak_instance_exists_brute(
    scheme: &DatabaseScheme,
    state: &DatabaseState,
    fds: &FdSet,
) -> bool {
    // Equivalent definition via the chase is what we test; as an
    // independent check we verify fd-satisfaction of the chased tableau's
    // rows directly: for each pair of rows and each fd, lhs agreement (as
    // constants) implies rhs agreement. Combined with containment of the
    // original tuples, this certifies a weak instance (pad each row's
    // variables with fresh distinct values).
    let mut t = Tableau::of_state(scheme, state);
    match chase(&mut t, fds, &Guard::unlimited()) {
        Err(_) => false,
        Ok(_) => {
            for r1 in t.rows() {
                for r2 in t.rows() {
                    for fd in fds.fds() {
                        let lhs_agree = fd.lhs.iter().all(|a| {
                            let (s1, s2) = (r1.sym(a), r2.sym(a));
                            s1 == s2
                        });
                        if lhs_agree {
                            for a in fd.rhs.iter() {
                                assert_eq!(
                                    r1.sym(a),
                                    r2.sym(a),
                                    "chased tableau violates {fd:?}"
                                );
                            }
                        }
                    }
                }
            }
            true
        }
    }
}

#[test]
fn chased_tableau_satisfies_fds() {
    let mut master = SplitMix64::new(0xD001);
    for _case in 0..CASES {
        let mut rng = master.split();
        let scheme = rand_scheme(&mut rng);
        let state = rand_state(&mut rng, &scheme);
        let kd = idr_fd::KeyDeps::of(&scheme);
        // weak_instance_exists_brute internally asserts fd satisfaction of
        // the chased tableau.
        let _ = weak_instance_exists_brute(&scheme, &state, kd.full());
    }
}

#[test]
fn consistency_is_monotone_under_tuple_removal() {
    let mut master = SplitMix64::new(0xD002);
    for case in 0..CASES {
        let mut rng = master.split();
        let scheme = rand_scheme(&mut rng);
        let state = rand_state(&mut rng, &scheme);
        let kd = idr_fd::KeyDeps::of(&scheme);
        if is_consistent(&scheme, &state, kd.full(), &Guard::unlimited()).unwrap() {
            // Removing any single relation's tuples keeps consistency.
            for skip in 0..scheme.len() {
                let mut reduced = DatabaseState::empty(&scheme);
                for (i, t) in state.iter_all() {
                    if i != skip {
                        reduced.insert(i, t.clone()).unwrap();
                    }
                }
                assert!(
                    is_consistent(&scheme, &reduced, kd.full(), &Guard::unlimited()).unwrap(),
                    "case {case}, skip {skip}"
                );
            }
        }
    }
}

#[test]
fn chase_result_independent_of_fd_order() {
    let mut master = SplitMix64::new(0xD003);
    for case in 0..CASES {
        let mut rng = master.split();
        let scheme = rand_scheme(&mut rng);
        let state = rand_state(&mut rng, &scheme);
        let kd = idr_fd::KeyDeps::of(&scheme);
        let fds = kd.full();
        let reversed = FdSet::from_fds(fds.fds().iter().rev().copied());
        let g = Guard::unlimited();
        let p1 =
            idr_chase::total_projection(&scheme, &state, fds, scheme.universe().all(), &g)
                .unwrap();
        let p2 =
            idr_chase::total_projection(&scheme, &state, &reversed, scheme.universe().all(), &g)
                .unwrap();
        assert_eq!(p1, p2, "case {case}");
    }
}

#[test]
fn fast_chase_agrees_with_reference() {
    let mut master = SplitMix64::new(0xD004);
    for case in 0..CASES {
        let mut rng = master.split();
        let scheme = rand_scheme(&mut rng);
        let state = rand_state(&mut rng, &scheme);
        let kd = idr_fd::KeyDeps::of(&scheme);
        let g = Guard::unlimited();
        let mut t1 = Tableau::of_state(&scheme, &state);
        let mut t2 = t1.clone();
        let mut t3 = t1.clone();
        let r1 = chase(&mut t1, kd.full(), &g);
        let r2 = idr_chase::fast::chase_fast(&mut t2, kd.full(), &g);
        let r3 = idr_chase::chase_incremental(&mut t3, kd.full(), &g);
        assert_eq!(r1.is_ok(), r2.is_ok(), "case {case}");
        assert_eq!(r1.is_ok(), r3.is_ok(), "case {case}");
        if r1.is_ok() {
            // The incremental engine is identical, not merely equivalent.
            assert_eq!(t1, t3, "case {case}");
            let all = scheme.universe().all();
            assert_eq!(t1.total_projection(all), t2.total_projection(all), "case {case}");
            // Also compare every single-attribute projection (partial
            // derivations must match too).
            for a in scheme.universe().iter() {
                let x = idr_relation::AttrSet::singleton(a);
                assert_eq!(t1.total_projection(x), t2.total_projection(x), "case {case}");
            }
        }
    }
}

#[test]
fn dv_closures_match_closures_on_random_fds() {
    let mut master = SplitMix64::new(0xD005);
    for case in 0..CASES {
        let mut rng = master.split();
        let rand_small_set = |rng: &mut SplitMix64| {
            let n = rng.gen_range(1, 3);
            AttrSet::from_iter((0..n).map(|_| Attribute::from_index(rng.gen_range(0, WIDTH))))
        };
        let schemes: Vec<AttrSet> = {
            let n = rng.gen_range(1, 4);
            (0..n)
                .map(|_| {
                    let w = rng.gen_range(1, 4);
                    AttrSet::from_iter(
                        (0..w).map(|_| Attribute::from_index(rng.gen_range(0, WIDTH))),
                    )
                })
                .collect()
        };
        // The [BMSU] correspondence assumes each fd is embedded in some
        // scheme of the family (the cover-embedding setting of the paper).
        let n_fds = rng.gen_range(0, 5);
        let fds = FdSet::from_fds(
            (0..n_fds)
                .map(|_| Fd::new(rand_small_set(&mut rng), rand_small_set(&mut rng)))
                .filter(|fd| schemes.iter().any(|&s| fd.embedded_in(s))),
        );
        let dv = lossless::dv_closures(&schemes, &fds);
        assert_eq!(dv.len(), schemes.len(), "case {case}");
        for (i, &s) in schemes.iter().enumerate() {
            assert_eq!(dv[i], fds.closure(s), "case {case}, scheme {i}");
        }
    }
}
