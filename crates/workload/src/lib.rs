//! Workloads for the PODS'88 reproduction: the paper's thirteen worked
//! examples as executable fixtures, and parameterised synthetic families
//! for the scaling experiments.
//!
//! The paper has no datasets; its evaluation is by worked example and by
//! asymptotic claim. [`fixtures`] encodes each example together with the
//! paper's stated expectations (EXPERIMENTS.md EX1–EX13); [`generators`]
//! builds scheme families that exercise each claim at scale (DESIGN.md §5
//! documents the substitution); [`states`] produces consistent states and
//! insert workloads by projecting distinct universal tuples — consistent
//! by construction, with chase work arising from fragment reassembly.


#![warn(missing_docs)]
pub mod fixtures;
pub mod generators;
pub mod scale;
pub mod states;

pub use fixtures::{paper_examples, Expectations, Fixture};
