//! The paper's worked examples as executable fixtures.
//!
//! Each [`Fixture`] carries the database scheme (with the keys stated or
//! derived in the paper) and the paper's explicit claims about it, so the
//! integration suite can assert every claim mechanically.

use idr_relation::{DatabaseScheme, SchemeBuilder};

/// The paper's stated expectations for a scheme. `None` means the paper
/// makes no claim.
#[derive(Clone, Copy, Debug, Default)]
pub struct Expectations {
    /// Independent (uniqueness condition).
    pub independent: Option<bool>,
    /// γ-acyclic hypergraph.
    pub gamma_acyclic: Option<bool>,
    /// α-acyclic hypergraph (Example 3 remarks on it).
    pub alpha_acyclic: Option<bool>,
    /// The whole scheme is key-equivalent.
    pub key_equivalent: Option<bool>,
    /// Accepted by Algorithm 6.
    pub independence_reducible: Option<bool>,
    /// Split-free (hence ctm when independence-reducible).
    pub split_free: Option<bool>,
    /// Constant-time-maintainable.
    pub ctm: Option<bool>,
    /// Bounded.
    pub bounded: Option<bool>,
    /// Algebraic-maintainable.
    pub algebraic_maintainable: Option<bool>,
}

/// A paper example: identifier, scheme, expectations.
#[derive(Clone, Debug)]
pub struct Fixture {
    /// Which example of the paper this is (e.g. `"example1_r"`).
    pub name: &'static str,
    /// The database scheme with its embedded keys.
    pub scheme: DatabaseScheme,
    /// The paper's claims.
    pub expect: Expectations,
}

/// Example 1's scheme R: the university database. Neither independent nor
/// γ-acyclic, but bounded and ctm (shown via independence-reducibility).
pub fn example1_r() -> Fixture {
    Fixture {
        name: "example1_r",
        scheme: SchemeBuilder::new("CTHRSG")
            .scheme("R1", "HRC", ["HR"])
            .scheme("R2", "HTR", ["HT", "HR"])
            .scheme("R3", "HTC", ["HT"])
            .scheme("R4", "CSG", ["CS"])
            .scheme("R5", "HSR", ["HS"])
            .build()
            .unwrap(),
        expect: Expectations {
            independent: Some(false),
            gamma_acyclic: Some(false),
            independence_reducible: Some(true),
            ctm: Some(true),
            bounded: Some(true),
            algebraic_maintainable: Some(true),
            ..Default::default()
        },
    }
}

/// Example 1's scheme S: the merged variant, independent per \[S2].
pub fn example1_s() -> Fixture {
    Fixture {
        name: "example1_s",
        scheme: SchemeBuilder::new("CTHRSG")
            .scheme("S1", "HRCT", ["HR", "HT"])
            .scheme("S2", "CSG", ["CS"])
            .scheme("S3", "HSR", ["HS"])
            .build()
            .unwrap(),
        expect: Expectations {
            independent: Some(true),
            independence_reducible: Some(true),
            bounded: Some(true),
            ..Default::default()
        },
    }
}

/// Example 2: R = {AB, BC, AC}, F = {A→C, B→C} — not
/// algebraic-maintainable, hence rejected by Algorithm 6.
pub fn example2() -> Fixture {
    Fixture {
        name: "example2",
        scheme: SchemeBuilder::new("ABC")
            .scheme("R1", "AB", ["AB"])
            .scheme("R2", "BC", ["B"])
            .scheme("R3", "AC", ["A"])
            .build()
            .unwrap(),
        expect: Expectations {
            independence_reducible: Some(false),
            algebraic_maintainable: Some(false),
            ..Default::default()
        },
    }
}

/// Example 3: the all-keys triangle — key-equivalent, not independent,
/// not even α-acyclic.
pub fn example3() -> Fixture {
    Fixture {
        name: "example3",
        scheme: SchemeBuilder::new("ABC")
            .scheme("R1", "AB", ["A", "B"])
            .scheme("R2", "BC", ["B", "C"])
            .scheme("R3", "AC", ["A", "C"])
            .build()
            .unwrap(),
        expect: Expectations {
            independent: Some(false),
            gamma_acyclic: Some(false),
            alpha_acyclic: Some(false),
            key_equivalent: Some(true),
            independence_reducible: Some(true),
            bounded: Some(true),
            ..Default::default()
        },
    }
}

/// Examples 4, 5 and 7 share one scheme: seven relation schemes whose keys
/// A, E, BC, D are all equivalent. Key-equivalent (hence bounded and
/// algebraic-maintainable) but split (key BC), hence not ctm.
pub fn example4() -> Fixture {
    Fixture {
        name: "example4",
        scheme: SchemeBuilder::new("ABCDE")
            .scheme("R1", "AB", ["A"])
            .scheme("R2", "AC", ["A"])
            .scheme("R3", "AE", ["A", "E"])
            .scheme("R4", "EB", ["E"])
            .scheme("R5", "EC", ["E"])
            .scheme("R6", "BCD", ["BC", "D"])
            .scheme("R7", "DA", ["D", "A"])
            .build()
            .unwrap(),
        expect: Expectations {
            key_equivalent: Some(true),
            independence_reducible: Some(true),
            split_free: Some(false),
            ctm: Some(false),
            bounded: Some(true),
            algebraic_maintainable: Some(true),
            ..Default::default()
        },
    }
}

/// Example 6: the maintenance trace scheme, key-equivalent with keys
/// A, B, E, CD.
pub fn example6() -> Fixture {
    Fixture {
        name: "example6",
        scheme: SchemeBuilder::new("ABCDE")
            .scheme("R1", "ABE", ["A", "B", "E"])
            .scheme("R2", "AC", ["A"])
            .scheme("R3", "AD", ["A"])
            .scheme("R4", "BC", ["B"])
            .scheme("R5", "BD", ["B"])
            .scheme("R6", "CDE", ["CD", "E"])
            .build()
            .unwrap(),
        expect: Expectations {
            key_equivalent: Some(true),
            independence_reducible: Some(true),
            bounded: Some(true),
            algebraic_maintainable: Some(true),
            ..Default::default()
        },
    }
}

/// Example 8: key BC is split in R1⁺, R2⁺ and R5⁺.
pub fn example8() -> Fixture {
    Fixture {
        name: "example8",
        scheme: SchemeBuilder::new("ABCD")
            .scheme("R1", "AC", ["A"])
            .scheme("R2", "AB", ["A"])
            .scheme("R3", "ABC", ["A", "BC"])
            .scheme("R4", "BCD", ["BC", "D"])
            .scheme("R5", "AD", ["A", "D"])
            .build()
            .unwrap(),
        expect: Expectations {
            key_equivalent: Some(true),
            split_free: Some(false),
            ..Default::default()
        },
    }
}

/// Example 9: the single-attribute-keys chain — split-free.
pub fn example9() -> Fixture {
    Fixture {
        name: "example9",
        scheme: SchemeBuilder::new("ABCDE")
            .scheme("R1", "AB", ["A", "B"])
            .scheme("R2", "BC", ["B", "C"])
            .scheme("R3", "CD", ["C", "D"])
            .scheme("R4", "DE", ["D", "E"])
            .build()
            .unwrap(),
        expect: Expectations {
            key_equivalent: Some(true),
            split_free: Some(true),
            ctm: Some(true),
            independence_reducible: Some(true),
            ..Default::default()
        },
    }
}

/// Example 10: the split-free triangle used for the Algorithm 5 trace.
pub fn example10() -> Fixture {
    Fixture {
        name: "example10",
        scheme: SchemeBuilder::new("ABC")
            .scheme("S1", "AB", ["A", "B"])
            .scheme("S2", "BC", ["B", "C"])
            .scheme("S3", "AC", ["A", "C"])
            .build()
            .unwrap(),
        expect: Expectations {
            key_equivalent: Some(true),
            split_free: Some(true),
            ctm: Some(true),
            independence_reducible: Some(true),
            ..Default::default()
        },
    }
}

/// Examples 11/12: two key-equivalent blocks {R1..R4} and {R5, R6} whose
/// unions form an independent scheme.
pub fn example11() -> Fixture {
    Fixture {
        name: "example11",
        scheme: SchemeBuilder::new("ABCDEFG")
            .scheme("R1", "AB", ["A", "B"])
            .scheme("R2", "BC", ["B", "C"])
            .scheme("R3", "AC", ["A", "C"])
            .scheme("R4", "AD", ["A"])
            .scheme("R5", "DEF", ["D"])
            .scheme("R6", "DEG", ["D"])
            .build()
            .unwrap(),
        expect: Expectations {
            independent: Some(false),
            key_equivalent: Some(false),
            independence_reducible: Some(true),
            bounded: Some(true),
            algebraic_maintainable: Some(true),
            ..Default::default()
        },
    }
}

/// Example 13: the KEP trace scheme with partition
/// {{R1, R3, R4}, {R2, R5, R6, R7}, {R8}}.
pub fn example13() -> Fixture {
    Fixture {
        name: "example13",
        scheme: SchemeBuilder::new("ABCDEF")
            .scheme("R1", "AB", ["AB"])
            .scheme("R2", "CD", ["CD"])
            .scheme("R3", "ABC", ["AB"])
            .scheme("R4", "ABD", ["AB"])
            .scheme("R5", "CDE", ["CD", "E"])
            .scheme("R6", "EA", ["E"])
            .scheme("R7", "EF", ["E"])
            .scheme("R8", "FB", ["F"])
            .build()
            .unwrap(),
        expect: Expectations::default(),
    }
}

/// All paper fixtures, in example order.
pub fn paper_examples() -> Vec<Fixture> {
    vec![
        example1_r(),
        example1_s(),
        example2(),
        example3(),
        example4(),
        example6(),
        example8(),
        example9(),
        example10(),
        example11(),
        example13(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use idr_fd::{keys::keys_are_exact, KeyDeps};

    #[test]
    fn fixtures_build() {
        let all = paper_examples();
        assert_eq!(all.len(), 11);
        for f in &all {
            assert!(!f.scheme.is_empty(), "{}", f.name);
        }
    }

    #[test]
    fn declared_keys_are_exact_candidate_keys() {
        // The fixture keys must be exactly the candidate keys of each
        // scheme under the induced key dependencies (self-consistency of
        // the paper's "the sets of keys for R1 to Rn are ..." statements).
        for f in paper_examples() {
            let kd = KeyDeps::of(&f.scheme);
            for s in f.scheme.schemes() {
                assert!(
                    keys_are_exact(kd.full(), s.attrs(), s.keys()),
                    "fixture {} scheme {} keys are not exact",
                    f.name,
                    s.name()
                );
            }
        }
    }
}
