//! Parameterised scheme families for the scaling experiments (DESIGN.md
//! §5). Each family scales one paper claim:
//!
//! * [`chain_scheme`] — Example 9 generalised: split-free key-equivalent,
//!   ctm (TH-CTM flat curve).
//! * [`cycle_scheme`] — Example 3/10 generalised: key-equivalent,
//!   not independent, not α-acyclic, split-free.
//! * [`split_scheme`] — Example 4 generalised: key-equivalent but split
//!   (TH-CTM growing curve).
//! * [`star_scheme`] — an independent (and key-equivalent) star.
//! * [`block_chain_scheme`] — Example 11 generalised: `b` key-equivalent
//!   cycle blocks bridged so the induced scheme is independent
//!   (TH-RECOG scaling input).
//! * [`example2_scheme`]/[`example2_adversarial_state`] — the
//!   non-algebraic-maintainable triangle with the proof's chain state
//!   (EX2: maintenance work grows with state size).

use idr_relation::{
    AttrSet, DatabaseScheme, DatabaseState, RelationScheme, SymbolTable, Tuple, Universe,
};

fn attr_name(prefix: &str, i: usize) -> String {
    format!("{prefix}{i}")
}

/// A chain `R1(X0 X1), …, Rn(Xn−1 Xn)` where both attributes of each
/// scheme are keys — key-equivalent and split-free (Example 9 for n = 4).
pub fn chain_scheme(n: usize) -> DatabaseScheme {
    assert!(n >= 1);
    let mut universe = Universe::new();
    for i in 0..=n {
        universe.add(&attr_name("X", i)).unwrap();
    }
    let schemes = (0..n)
        .map(|i| {
            let a = AttrSet::from_iter([
                universe.attr_of(&attr_name("X", i)),
                universe.attr_of(&attr_name("X", i + 1)),
            ]);
            let keys = vec![
                AttrSet::singleton(universe.attr_of(&attr_name("X", i))),
                AttrSet::singleton(universe.attr_of(&attr_name("X", i + 1))),
            ];
            RelationScheme::new(format!("R{i}"), a, keys).unwrap()
        })
        .collect();
    DatabaseScheme::new(universe, schemes).unwrap()
}

/// A cycle `R1(X0 X1), …, Rn(Xn−1 X0)` with all single attributes keys —
/// key-equivalent, split-free, not independent, not α-acyclic for n ≥ 3
/// (Example 3 is n = 3).
pub fn cycle_scheme(n: usize) -> DatabaseScheme {
    assert!(n >= 3);
    let mut universe = Universe::new();
    for i in 0..n {
        universe.add(&attr_name("X", i)).unwrap();
    }
    let schemes = (0..n)
        .map(|i| {
            let x = universe.attr_of(&attr_name("X", i));
            let y = universe.attr_of(&attr_name("X", (i + 1) % n));
            RelationScheme::new(
                format!("R{i}"),
                AttrSet::from_iter([x, y]),
                vec![AttrSet::singleton(x), AttrSet::singleton(y)],
            )
            .unwrap()
        })
        .collect();
    DatabaseScheme::new(universe, schemes).unwrap()
}

/// Example 4 generalised to `m ≥ 2` fragment attributes: universe
/// `{A, E, B1..Bm, D}` with schemes `A Bi` (key A), `E Bi` (key E),
/// `AE` (keys A, E), `B1..Bm D` (keys B1..Bm and D) and `DA` (keys D, A).
/// Key-equivalent; the composite key `B1..Bm` is split in the closures of
/// the fragment schemes, so the scheme is not ctm.
pub fn split_scheme(m: usize) -> DatabaseScheme {
    assert!(m >= 2);
    let mut universe = Universe::new();
    let a = universe.add("A").unwrap();
    let e = universe.add("E").unwrap();
    let bs: Vec<_> = (0..m)
        .map(|i| universe.add(&attr_name("B", i)).unwrap())
        .collect();
    let d = universe.add("D").unwrap();
    let mut schemes = Vec::new();
    for (i, &b) in bs.iter().enumerate() {
        schemes.push(
            RelationScheme::new(
                format!("RA{i}"),
                AttrSet::from_iter([a, b]),
                vec![AttrSet::singleton(a)],
            )
            .unwrap(),
        );
        schemes.push(
            RelationScheme::new(
                format!("RE{i}"),
                AttrSet::from_iter([e, b]),
                vec![AttrSet::singleton(e)],
            )
            .unwrap(),
        );
    }
    schemes.push(
        RelationScheme::new(
            "RAE",
            AttrSet::from_iter([a, e]),
            vec![AttrSet::singleton(a), AttrSet::singleton(e)],
        )
        .unwrap(),
    );
    let b_all = AttrSet::from_iter(bs.iter().copied());
    schemes.push(
        RelationScheme::new(
            "RBD",
            b_all | AttrSet::singleton(d),
            vec![b_all, AttrSet::singleton(d)],
        )
        .unwrap(),
    );
    schemes.push(
        RelationScheme::new(
            "RDA",
            AttrSet::from_iter([d, a]),
            vec![AttrSet::singleton(d), AttrSet::singleton(a)],
        )
        .unwrap(),
    );
    DatabaseScheme::new(universe, schemes).unwrap()
}

/// An independent star: `Ri(K Ai)` for `i < k`, all sharing the hub key
/// `K`. Independent *and* key-equivalent (one block).
pub fn star_scheme(k: usize) -> DatabaseScheme {
    assert!(k >= 1);
    let mut universe = Universe::new();
    let hub = universe.add("K").unwrap();
    let schemes = (0..k)
        .map(|i| {
            let a = universe.add(&attr_name("A", i)).unwrap();
            RelationScheme::new(
                format!("R{i}"),
                AttrSet::from_iter([hub, a]),
                vec![AttrSet::singleton(hub)],
            )
            .unwrap()
        })
        .collect();
    DatabaseScheme::new(universe, schemes).unwrap()
}

/// Example 11 generalised: `b` key-equivalent cycle blocks of `m` schemes
/// each, where block `j` additionally carries a bridge scheme
/// `(Xj0, X(j+1)0)` keyed on `Xj0` — so block `j` determines block
/// `j+1`'s key attribute but not vice versa. The induced block scheme is
/// independent; the whole scheme is independence-reducible with `b`
/// blocks, none of them merged.
pub fn block_chain_scheme(b: usize, m: usize) -> DatabaseScheme {
    assert!(b >= 1 && m >= 3);
    let mut universe = Universe::new();
    let mut attrs = vec![vec![]; b];
    for (j, row) in attrs.iter_mut().enumerate() {
        for i in 0..m {
            row.push(universe.add(&format!("X{j}_{i}")).unwrap());
        }
    }
    let mut schemes = Vec::new();
    for j in 0..b {
        for i in 0..m {
            let x = attrs[j][i];
            let y = attrs[j][(i + 1) % m];
            schemes.push(
                RelationScheme::new(
                    format!("R{j}_{i}"),
                    AttrSet::from_iter([x, y]),
                    vec![AttrSet::singleton(x), AttrSet::singleton(y)],
                )
                .unwrap(),
            );
        }
        if j + 1 < b {
            // Bridge: block j determines the anchor of block j + 1.
            schemes.push(
                RelationScheme::new(
                    format!("B{j}"),
                    AttrSet::from_iter([attrs[j][0], attrs[j + 1][0]]),
                    vec![AttrSet::singleton(attrs[j][0])],
                )
                .unwrap(),
            );
        }
    }
    DatabaseScheme::new(universe, schemes).unwrap()
}

/// Example 2's scheme: `{R1(AB), R2(BC), R3(AC)}`, `F = {A→C, B→C}` —
/// rejected by Algorithm 6 and provably not algebraic-maintainable.
pub fn example2_scheme() -> DatabaseScheme {
    idr_relation::SchemeBuilder::new("ABC")
        .scheme("R1", "AB", ["AB"])
        .scheme("R2", "BC", ["B"])
        .scheme("R3", "AC", ["A"])
        .build()
        .unwrap()
}

/// The adversarial chain state of Example 2 / Theorem 3.4's flavour: `r3 =
/// {<a0, c0>}` and `r1` a chain `(a0,b0), (a1,b0), (a1,b1), …` of length
/// `2n`, so that the inconsistency of inserting `<an, c1>` into `r3` can
/// only be established by traversing the whole chain. Returns the state
/// and the inconsistent insert (scheme index 2).
pub fn example2_adversarial_state(
    scheme: &DatabaseScheme,
    symbols: &mut SymbolTable,
    n: usize,
) -> (DatabaseState, Tuple) {
    let u = scheme.universe();
    let a = |s: &mut SymbolTable, i: usize| s.intern(&format!("a{i}"));
    let bv = |s: &mut SymbolTable, i: usize| s.intern(&format!("b{i}"));
    let mut state = DatabaseState::empty(scheme);
    // r3 = {<a0, c0>}.
    let c0 = symbols.intern("c0");
    let t = Tuple::from_pairs([(u.attr_of("A"), a(symbols, 0)), (u.attr_of("C"), c0)]);
    state.insert(2, t).unwrap();
    // r1 chain: (a_i, b_i) and (a_{i+1}, b_i).
    for i in 0..n {
        let t1 = Tuple::from_pairs([
            (u.attr_of("A"), a(symbols, i)),
            (u.attr_of("B"), bv(symbols, i)),
        ]);
        let t2 = Tuple::from_pairs([
            (u.attr_of("A"), a(symbols, i + 1)),
            (u.attr_of("B"), bv(symbols, i)),
        ]);
        state.insert(0, t1).unwrap();
        state.insert(0, t2).unwrap();
    }
    // The inconsistent insert: <a_n, c1> into r3 (A→C forces c0 through
    // the chain).
    let c1 = symbols.intern("c1");
    let bad = Tuple::from_pairs([(u.attr_of("A"), a(symbols, n)), (u.attr_of("C"), c1)]);
    (state, bad)
}

/// A random database scheme over `width` attributes with `n` relation
/// schemes, for randomized class-inclusion testing.
///
/// Keys must be *candidate* keys with respect to the key dependencies they
/// themselves induce (the paper's standing assumption); random declarations
/// rarely satisfy this, so the generator iterates to a fixpoint: declare
/// keys, derive `F`, recompute each scheme's candidate keys under `F`,
/// redeclare, repeat. Returns `None` when the iteration fails to converge
/// (rare; callers resample).
pub fn random_scheme(
    rng: &mut idr_relation::rng::SplitMix64,
    width: usize,
    n: usize,
) -> Option<DatabaseScheme> {
    use idr_fd::{keys::candidate_keys, KeyDeps};
    assert!((2..=10).contains(&width) && n >= 1);
    let mut universe = Universe::new();
    for i in 0..width {
        universe.add(&attr_name("X", i)).unwrap();
    }
    let all: Vec<idr_relation::Attribute> = universe.iter().collect();
    // Random scheme attribute sets (2–4 attrs), patched to cover U.
    let mut attr_sets: Vec<AttrSet> = (0..n)
        .map(|_| {
            let k = rng.gen_range_inclusive(2, 3.min(width));
            let mut s = AttrSet::empty();
            while s.len() < k {
                s.insert(all[rng.gen_range(0, width)]);
            }
            s
        })
        .collect();
    let covered = attr_sets.iter().fold(AttrSet::empty(), |a, &b| a | b);
    let missing = universe.all() - covered;
    if !missing.is_empty() {
        attr_sets.push(missing | AttrSet::singleton(all[rng.gen_range(0, width)]));
    }
    // Initial random keys: one random nonempty proper-or-full subset each.
    let mut keys: Vec<Vec<AttrSet>> = attr_sets
        .iter()
        .map(|&s| {
            let members: Vec<_> = s.iter().collect();
            let ksize = rng.gen_range_inclusive(1, members.len());
            let mut k = AttrSet::empty();
            while k.len() < ksize {
                k.insert(members[rng.gen_range(0, members.len())]);
            }
            vec![k]
        })
        .collect();
    // Fixpoint repair: keys must be exactly the candidate keys under the
    // fd set they induce.
    for _ in 0..12 {
        let schemes: Vec<RelationScheme> = attr_sets
            .iter()
            .zip(keys.iter())
            .enumerate()
            .map(|(i, (&a, k))| RelationScheme::new(format!("R{i}"), a, k.clone()).unwrap())
            .collect();
        let db = DatabaseScheme::new(universe.clone(), schemes).ok()?;
        let kd = KeyDeps::of(&db);
        let mut changed = false;
        let mut next = Vec::with_capacity(keys.len());
        for (i, &a) in attr_sets.iter().enumerate() {
            let cand = candidate_keys(kd.full(), a);
            let cand = if cand.is_empty() { vec![a] } else { cand };
            if cand != keys[i] {
                changed = true;
            }
            next.push(cand);
        }
        keys = next;
        if !changed {
            return Some(db);
        }
    }
    None
}

/// A *near-miss* variant of `db`: one scheme's key declaration is mutated
/// (an alternative key dropped, a key widened by one attribute, or a key
/// replaced by a fresh nonempty subset), producing a scheme that differs
/// from `db` by a single fd — the boundary inputs where classifiers and
/// recognisers are most likely to disagree.
///
/// The mutant must still satisfy the paper's standing assumption (every
/// declared key set is exactly the candidate keys of its scheme under the
/// fd set the declarations themselves induce), so the mutation is followed
/// by the same fixpoint check as [`random_scheme`]; `None` when the mutant
/// fails it or collapses back to `db` (callers resample with the next
/// seed).
pub fn mutate_one_key(
    db: &DatabaseScheme,
    rng: &mut idr_relation::rng::SplitMix64,
) -> Option<DatabaseScheme> {
    use idr_fd::{keys::candidate_keys, KeyDeps};
    let i = rng.gen_range(0, db.len());
    let s = db.scheme(i);
    let members: Vec<idr_relation::Attribute> = s.attrs().iter().collect();
    let mut keys: Vec<AttrSet> = s.keys().to_vec();
    match rng.gen_range(0, 3) {
        // Drop one alternative key (needs at least two).
        0 if keys.len() >= 2 => {
            keys.remove(rng.gen_range(0, keys.len()));
        }
        // Widen one key by an attribute it lacks (weakens the fd).
        1 => {
            let k = rng.gen_range(0, keys.len());
            let missing: Vec<_> = (s.attrs() - keys[k]).iter().collect();
            if missing.is_empty() {
                return None;
            }
            keys[k] |= AttrSet::singleton(missing[rng.gen_range(0, missing.len())]);
        }
        // Replace one key with a fresh random nonempty subset.
        _ => {
            let k = rng.gen_range(0, keys.len());
            let ksize = rng.gen_range_inclusive(1, members.len());
            let mut fresh = AttrSet::empty();
            while fresh.len() < ksize {
                fresh.insert(members[rng.gen_range(0, members.len())]);
            }
            keys[k] = fresh;
        }
    }
    keys.sort();
    keys.dedup();
    let schemes: Vec<RelationScheme> = (0..db.len())
        .map(|j| {
            let s = db.scheme(j);
            let ks = if j == i { keys.clone() } else { s.keys().to_vec() };
            RelationScheme::new(s.name(), s.attrs(), ks)
        })
        .collect::<Result<_, _>>()
        .ok()?;
    let mutant = DatabaseScheme::new(db.universe().clone(), schemes).ok()?;
    // Standing assumption: declared keys must be exactly the candidate
    // keys under the induced fd set, for *every* scheme (the mutation can
    // change other schemes' candidate keys through the closure).
    let kd = KeyDeps::of(&mutant);
    let mut differs = false;
    for j in 0..mutant.len() {
        let declared = mutant.scheme(j).keys();
        if candidate_keys(kd.full(), mutant.scheme(j).attrs()) != declared {
            return None;
        }
        differs |= declared != db.scheme(j).keys();
    }
    differs.then_some(mutant)
}

#[cfg(test)]
mod tests {
    use super::*;
    use idr_fd::KeyDeps;

    #[test]
    fn chain_scheme_shape() {
        let db = chain_scheme(5);
        assert_eq!(db.len(), 5);
        assert_eq!(db.universe().len(), 6);
        let kd = KeyDeps::of(&db);
        // Every closure is the full universe.
        for i in 0..db.len() {
            assert_eq!(kd.scheme_closure(&db, i), db.universe().all());
        }
    }

    #[test]
    fn cycle_scheme_shape() {
        let db = cycle_scheme(4);
        assert_eq!(db.len(), 4);
        assert_eq!(db.universe().len(), 4);
    }

    #[test]
    fn split_scheme_recovers_example4_shape() {
        let db = split_scheme(2);
        // 2 fragments × 2 + AE + BD + DA = 7 schemes, like Example 4.
        assert_eq!(db.len(), 7);
        assert_eq!(db.universe().len(), 5);
    }

    #[test]
    fn star_scheme_shape() {
        let db = star_scheme(4);
        assert_eq!(db.len(), 4);
        assert_eq!(db.universe().len(), 5);
    }

    #[test]
    fn block_chain_scheme_shape() {
        let db = block_chain_scheme(3, 3);
        // 3 blocks × 3 cycle schemes + 2 bridges.
        assert_eq!(db.len(), 11);
        assert_eq!(db.universe().len(), 9);
    }

    #[test]
    fn mutants_differ_and_keep_the_standing_assumption() {
        use idr_fd::keys::candidate_keys;
        let mut rng = idr_relation::rng::SplitMix64::new(7);
        let mut produced = 0;
        for seed in 0..200u64 {
            let mut srng = idr_relation::rng::SplitMix64::new(seed);
            let Some(db) = random_scheme(&mut srng, 5, 3) else {
                continue;
            };
            let Some(mutant) = mutate_one_key(&db, &mut rng) else {
                continue;
            };
            produced += 1;
            assert_eq!(mutant.len(), db.len());
            assert_eq!(mutant.universe().len(), db.universe().len());
            let kd = KeyDeps::of(&mutant);
            let mut differs = false;
            for j in 0..mutant.len() {
                assert_eq!(
                    candidate_keys(kd.full(), mutant.scheme(j).attrs()),
                    mutant.scheme(j).keys().to_vec(),
                    "seed {seed}: mutant violates the standing assumption"
                );
                differs |= mutant.scheme(j).keys() != db.scheme(j).keys();
            }
            assert!(differs, "seed {seed}: mutant identical to its parent");
        }
        assert!(produced >= 10, "only {produced} mutants from 200 seeds");
    }

    #[test]
    fn example2_state_is_consistent_without_insert() {
        let db = example2_scheme();
        let mut sym = SymbolTable::new();
        let (state, bad) = example2_adversarial_state(&db, &mut sym, 4);
        assert_eq!(state.total_tuples(), 1 + 8);
        assert_eq!(bad.attrs(), db.universe().set_of("AC"));
    }
}
