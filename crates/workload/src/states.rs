//! Consistent-state and insert-workload generation.
//!
//! States are built by projecting *entities* — distinct universal tuples —
//! onto random subsets of the relation schemes. Projections of a
//! dependency-satisfying universal relation are consistent by construction
//! (\[GMV]); the chase's work then consists of reassembling fragments of
//! the same entity, which is exactly the workload the paper's algorithms
//! optimise.

use idr_relation::rng::SplitMix64;
use idr_relation::{DatabaseScheme, DatabaseState, SymbolTable, Tuple};

/// A generated workload: a consistent initial state plus a stream of
/// inserts (scheme index, tuple, whether the insert comes from a fresh or
/// existing entity — *not* a consistency verdict; mixed inserts are judged
/// by the algorithms under test against the chase oracle).
#[derive(Clone, Debug)]
pub struct Workload {
    /// The consistent initial state.
    pub state: DatabaseState,
    /// Insert stream: `(scheme index, tuple)`.
    pub inserts: Vec<(usize, Tuple)>,
}

/// Configuration for [`generate`].
#[derive(Clone, Copy, Debug)]
pub struct WorkloadConfig {
    /// Number of entities (universal tuples) to project into the state.
    pub entities: usize,
    /// Probability (0–100) that an entity is projected onto a given
    /// scheme.
    pub fragment_pct: u32,
    /// Number of inserts to generate.
    pub inserts: usize,
    /// Probability (0–100) that an insert reuses an existing entity's key
    /// values but corrupts a non-key attribute (likely inconsistent).
    pub corrupt_pct: u32,
    /// RNG seed (deterministic workloads for reproducible experiments).
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            entities: 100,
            fragment_pct: 60,
            inserts: 20,
            corrupt_pct: 30,
            seed: 0x1988_0701,
        }
    }
}

/// The universal tuple of entity `id`: every attribute gets the value
/// `"<attr>#<id>"`, so distinct entities share no values and the projected
/// state is consistent by construction.
pub fn entity_tuple(
    scheme: &DatabaseScheme,
    symbols: &mut SymbolTable,
    id: usize,
) -> Tuple {
    let u = scheme.universe();
    Tuple::from_pairs(
        u.iter()
            .map(|a| (a, symbols.intern(&format!("{}#{}", u.name(a), id)))),
    )
}

/// Generates a consistent state and an insert stream for a scheme.
pub fn generate(
    scheme: &DatabaseScheme,
    symbols: &mut SymbolTable,
    cfg: WorkloadConfig,
) -> Workload {
    let mut rng = SplitMix64::new(cfg.seed);
    let mut state = DatabaseState::empty(scheme);
    for id in 0..cfg.entities {
        let universal = entity_tuple(scheme, symbols, id);
        let mut placed = false;
        for i in 0..scheme.len() {
            if rng.gen_pct(cfg.fragment_pct) {
                let frag = universal.project(scheme.scheme(i).attrs());
                let _ = state.insert(i, frag);
                placed = true;
            }
        }
        if !placed {
            // Every entity appears somewhere, so state size tracks the
            // entity count.
            let frag = universal.project(scheme.scheme(0).attrs());
            let _ = state.insert(0, frag);
        }
    }
    let mut inserts = Vec::with_capacity(cfg.inserts);
    for k in 0..cfg.inserts {
        let i = rng.gen_range(0, scheme.len());
        let attrs = scheme.scheme(i).attrs();
        if cfg.corrupt_pct > 0 && rng.gen_pct(cfg.corrupt_pct) && cfg.entities >= 2 {
            // Mix two entities: key values from one, the rest from
            // another — inconsistent whenever the first entity's fragment
            // elsewhere pins the corrupted attributes.
            let id_a = rng.gen_range(0, cfg.entities);
            let id_b = (id_a + 1 + rng.gen_range(0, cfg.entities - 1)) % cfg.entities;
            let ta = entity_tuple(scheme, symbols, id_a);
            let tb = entity_tuple(scheme, symbols, id_b);
            let key = scheme.scheme(i).keys()[0];
            let t = Tuple::from_pairs(attrs.iter().map(|a| {
                let v = if key.contains(a) {
                    ta.value(a)
                } else {
                    tb.value(a)
                };
                (a, v)
            }));
            inserts.push((i, t));
        } else {
            // A fresh entity's fragment: always consistent.
            let id = cfg.entities + k;
            let t = entity_tuple(scheme, symbols, id).project(attrs);
            inserts.push((i, t));
        }
    }
    Workload { state, inserts }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::chain_scheme;

    #[test]
    fn generated_state_has_expected_size_shape() {
        let db = chain_scheme(4);
        let mut sym = SymbolTable::new();
        let w = generate(
            &db,
            &mut sym,
            WorkloadConfig {
                entities: 50,
                ..Default::default()
            },
        );
        assert!(w.state.total_tuples() >= 50);
        assert_eq!(w.inserts.len(), WorkloadConfig::default().inserts);
    }

    #[test]
    fn workloads_are_deterministic() {
        let db = chain_scheme(3);
        let mut sym1 = SymbolTable::new();
        let w1 = generate(&db, &mut sym1, WorkloadConfig::default());
        let mut sym2 = SymbolTable::new();
        let w2 = generate(&db, &mut sym2, WorkloadConfig::default());
        assert_eq!(w1.state.total_tuples(), w2.state.total_tuples());
        assert_eq!(w1.inserts, w2.inserts);
    }

    #[test]
    fn fresh_entity_inserts_have_full_scheme() {
        let db = chain_scheme(3);
        let mut sym = SymbolTable::new();
        let w = generate(
            &db,
            &mut sym,
            WorkloadConfig {
                corrupt_pct: 0,
                ..Default::default()
            },
        );
        for (i, t) in &w.inserts {
            assert_eq!(t.attrs(), db.scheme(*i).attrs());
        }
    }
}
