//! Bulk-load families at 10^5–10^7 tuples for the batch-pipeline
//! experiments (EXPERIMENTS.md §batch, `scripts/bench.sh` chase-scale
//! section).
//!
//! The existing [`crate::states`] generator materialises a
//! [`DatabaseState`](idr_relation::DatabaseState) up front and streams a
//! few dozen inserts; at a million tuples the interesting object is the
//! *op stream itself* — the framed groups a bulk load pushes through
//! `WriteHandle::apply_batch`. [`bulk_inserts`] produces exactly that: a
//! pure-insert stream of `tuples` entity fragments, round-robin over the
//! scheme's relations, where the fragments of one entity share symbols
//! (so the chase's work is real reassembly, not disjoint no-ops) and
//! distinct entities share nothing (so the stream is consistent by
//! construction and every insert is accepted).
//!
//! Three named families scale differently:
//!
//! * `star(16)` — 16 relations around one hub key: every entity's
//!   fragments merge through a single equivalence class per entity;
//!   wide fan-in, shallow chase.
//! * `chain(8)` — 8 two-attribute relations in a line: fragments merge
//!   pairwise along the chain; deep equality propagation.
//! * `block_chain(4,4)` — 4 independent blocks bridged in a line: the
//!   serving layer shards these across lanes, so this is the family the
//!   batch-vs-per-op comparison uses.

use idr_relation::rng::SplitMix64;
use idr_relation::{DatabaseScheme, SymbolTable, Tuple};

use crate::generators::{block_chain_scheme, chain_scheme, star_scheme};

/// The named bulk families, smallest universe first. Tuple counts are
/// chosen by the caller ([`bulk_inserts`] takes the count).
pub fn bulk_families() -> Vec<(&'static str, DatabaseScheme)> {
    vec![
        ("chain(8)", chain_scheme(8)),
        ("star(16)", star_scheme(16)),
        ("block_chain(4,4)", block_chain_scheme(4, 4)),
    ]
}

/// A pure-insert bulk stream of exactly `tuples` ops.
///
/// Op `k` is entity `k / db.len()` projected onto relation `k % db.len()`
/// — so consecutive ops hit different relations (and, on sharded
/// schemes, different serving lanes), and an entity's `db.len()`
/// fragments arrive as a contiguous run that the chase must reassemble.
/// Only the attributes each fragment actually carries are interned, so
/// generating 10^7 tuples stays linear in output size.
pub fn bulk_inserts(
    db: &DatabaseScheme,
    symbols: &mut SymbolTable,
    tuples: usize,
) -> Vec<(usize, Tuple)> {
    let u = db.universe();
    let mut out = Vec::with_capacity(tuples);
    let mut buf = String::new();
    for k in 0..tuples {
        let i = k % db.len();
        let id = k / db.len();
        let t = Tuple::from_pairs(db.scheme(i).attrs().iter().map(|a| {
            buf.clear();
            buf.push_str(u.name(a));
            buf.push('#');
            buf.push_str(itoa(id).as_str());
            (a, symbols.intern(&buf))
        }));
        out.push((i, t));
    }
    out
}

/// `bulk_inserts` with a deterministic shuffle: same multiset of ops,
/// but an entity's fragments are scattered through the stream, so the
/// chase sees late merges instead of contiguous runs. Used by the
/// equivalence tests to decorrelate frame boundaries from entity
/// boundaries.
pub fn bulk_inserts_shuffled(
    db: &DatabaseScheme,
    symbols: &mut SymbolTable,
    tuples: usize,
    seed: u64,
) -> Vec<(usize, Tuple)> {
    let mut ops = bulk_inserts(db, symbols, tuples);
    let mut rng = SplitMix64::new(seed);
    for k in (1..ops.len()).rev() {
        ops.swap(k, rng.gen_range(0, k + 1));
    }
    ops
}

/// Decimal rendering without `format!` (hot loop: called once per tuple).
fn itoa(mut n: usize) -> ArrayStr {
    let mut s = ArrayStr {
        buf: [0; 20],
        len: 0,
    };
    let start = s.buf.len();
    let mut end = start;
    loop {
        end -= 1;
        s.buf[end] = b'0' + (n % 10) as u8;
        n /= 10;
        if n == 0 {
            break;
        }
    }
    s.buf.copy_within(end..start, 0);
    s.len = start - end;
    s
}

struct ArrayStr {
    buf: [u8; 20],
    len: usize,
}

impl ArrayStr {
    fn as_str(&self) -> &str {
        std::str::from_utf8(&self.buf[..self.len]).expect("ascii digits")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idr_fd::KeyDeps;
    use idr_relation::exec::Guard;
    use idr_relation::DatabaseState;

    #[test]
    fn bulk_stream_shape_and_determinism() {
        for (name, db) in bulk_families() {
            let mut sym = SymbolTable::new();
            let ops = bulk_inserts(&db, &mut sym, 1000);
            assert_eq!(ops.len(), 1000, "{name}");
            for (i, t) in &ops {
                assert_eq!(t.attrs(), db.scheme(*i).attrs(), "{name}");
            }
            let mut sym2 = SymbolTable::new();
            assert_eq!(ops, bulk_inserts(&db, &mut sym2, 1000), "{name}");
        }
    }

    #[test]
    fn bulk_stream_is_consistent_and_merges_entities() {
        let (_, db) = bulk_families().remove(1); // star(16): one class/entity
        let mut sym = SymbolTable::new();
        let ops = bulk_inserts(&db, &mut sym, 320); // 20 full entities
        let mut state = DatabaseState::empty(&db);
        for (i, t) in &ops {
            state.insert(*i, t.clone()).unwrap();
        }
        let kd = KeyDeps::of(&db);
        let g = Guard::unlimited();
        assert!(idr_chase::is_consistent(&db, &state, kd.full(), &g).unwrap());
        // Reassembly is real: the hub key joins all 16 fragments, so the
        // total projection over one spoke is answerable for every entity.
        let probe = db.scheme(0).attrs();
        let ans = idr_chase::total_projection(&db, &state, kd.full(), probe, &g)
            .unwrap()
            .expect("consistent");
        assert_eq!(ans.len(), 20);
    }

    #[test]
    fn shuffle_permutes_but_preserves_the_multiset() {
        let (_, db) = bulk_families().remove(0);
        let mut sym = SymbolTable::new();
        let plain = bulk_inserts(&db, &mut sym, 500);
        let mut sym2 = SymbolTable::new();
        let shuffled = bulk_inserts_shuffled(&db, &mut sym2, 500, 0xF00D);
        assert_ne!(plain, shuffled);
        let mut a = plain.clone();
        let mut b = shuffled.clone();
        let key = |(i, t): &(usize, Tuple)| (*i, format!("{t:?}"));
        a.sort_by_key(key);
        b.sort_by_key(key);
        assert_eq!(a, b);
    }

    #[test]
    fn itoa_matches_format() {
        for n in [0usize, 1, 9, 10, 99, 100, 123456789, usize::MAX] {
            assert_eq!(itoa(n).as_str(), n.to_string());
        }
    }
}
