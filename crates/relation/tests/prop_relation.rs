//! Randomized property tests for the relational substrate: AttrSet is a
//! Boolean algebra, Tuple::join is a partial commutative/associative
//! operation, and relational operators satisfy their algebraic laws.
//!
//! The workspace builds offline, so instead of a property-testing
//! framework these run seeded [`SplitMix64`] loops — every case is
//! deterministic and a failure message pinpoints the case index.

use idr_relation::rng::SplitMix64;
use idr_relation::{AttrSet, Attribute, Relation, SymbolTable, Tuple, Universe};

const CASES: usize = 256;

/// A random attribute set over attributes `0..max`.
fn rand_attrset(rng: &mut SplitMix64, max: usize) -> AttrSet {
    let n = rng.gen_range(0, max);
    AttrSet::from_iter((0..n).map(|_| Attribute::from_index(rng.gen_range(0, max))))
}

#[test]
fn union_is_commutative() {
    let mut master = SplitMix64::new(0xA001);
    for case in 0..CASES {
        let mut rng = master.split();
        let (a, b) = (rand_attrset(&mut rng, 40), rand_attrset(&mut rng, 40));
        assert_eq!(a | b, b | a, "case {case}");
    }
}

#[test]
fn intersection_distributes_over_union() {
    let mut master = SplitMix64::new(0xA002);
    for case in 0..CASES {
        let mut rng = master.split();
        let a = rand_attrset(&mut rng, 40);
        let b = rand_attrset(&mut rng, 40);
        let c = rand_attrset(&mut rng, 40);
        assert_eq!(a & (b | c), (a & b) | (a & c), "case {case}");
    }
}

#[test]
fn difference_then_union_restores_subset() {
    let mut master = SplitMix64::new(0xA003);
    for case in 0..CASES {
        let mut rng = master.split();
        let (a, b) = (rand_attrset(&mut rng, 40), rand_attrset(&mut rng, 40));
        let d = a - b;
        assert!(d.is_subset(a), "case {case}");
        assert!(d.is_disjoint(b), "case {case}");
        assert_eq!(d | (a & b), a, "case {case}");
    }
}

#[test]
fn subset_iff_union_absorbs() {
    let mut master = SplitMix64::new(0xA004);
    for case in 0..CASES {
        let mut rng = master.split();
        let (a, b) = (rand_attrset(&mut rng, 40), rand_attrset(&mut rng, 40));
        assert_eq!(a.is_subset(b), (a | b) == b, "case {case}");
    }
}

#[test]
fn iteration_matches_membership() {
    let mut master = SplitMix64::new(0xA005);
    for case in 0..CASES {
        let mut rng = master.split();
        let a = rand_attrset(&mut rng, 200);
        let collected: Vec<Attribute> = a.iter().collect();
        assert_eq!(collected.len(), a.len(), "case {case}");
        for attr in &collected {
            assert!(a.contains(*attr), "case {case}");
        }
        let mut sorted = collected.clone();
        sorted.sort();
        assert_eq!(collected, sorted, "case {case}");
    }
}

/// Random tuples over a tiny universe and a tiny value pool, so joins hit
/// both agreeing and conflicting cases.
fn rand_tuple(rng: &mut SplitMix64, sym: &mut SymbolTable) -> Tuple {
    let n = rng.gen_range(0, 6);
    Tuple::from_pairs((0..n).map(|_| {
        let a = rng.gen_range(0, 6);
        let v = rng.gen_range(0, 3);
        (Attribute::from_index(a), sym.intern(&format!("{a}:{v}")))
    }))
}

#[test]
fn tuple_join_is_commutative() {
    let mut master = SplitMix64::new(0xB001);
    for case in 0..CASES {
        let mut rng = master.split();
        let mut sym = SymbolTable::new();
        let ta = rand_tuple(&mut rng, &mut sym);
        let tb = rand_tuple(&mut rng, &mut sym);
        assert_eq!(ta.join(&tb), tb.join(&ta), "case {case}");
    }
}

#[test]
fn tuple_join_is_associative() {
    let mut master = SplitMix64::new(0xB002);
    for case in 0..CASES {
        let mut rng = master.split();
        let mut sym = SymbolTable::new();
        let ta = rand_tuple(&mut rng, &mut sym);
        let tb = rand_tuple(&mut rng, &mut sym);
        let tc = rand_tuple(&mut rng, &mut sym);
        let left = ta.join(&tb).and_then(|j| j.join(&tc));
        let right = tb.join(&tc).and_then(|j| ta.join(&j));
        // Associativity can differ when an intermediate join fails but the
        // other grouping sidesteps the conflict — in that case both sides
        // must still agree whenever both are defined.
        if let (Some(l), Some(r)) = (&left, &right) {
            assert_eq!(l, r, "case {case}");
        }
    }
}

#[test]
fn join_projections_recover_inputs() {
    let mut master = SplitMix64::new(0xB003);
    for case in 0..CASES {
        let mut rng = master.split();
        let mut sym = SymbolTable::new();
        let ta = rand_tuple(&mut rng, &mut sym);
        let tb = rand_tuple(&mut rng, &mut sym);
        if let Some(j) = ta.join(&tb) {
            assert_eq!(j.project(ta.attrs()), ta, "case {case}");
            assert_eq!(j.project(tb.attrs()), tb, "case {case}");
        }
    }
}

#[test]
fn relation_join_is_subset_of_cartesian_semantics() {
    // R1(AB) ⋈ R2(BC): every output tuple restricted to AB / BC must be
    // an input tuple, and every agreeing pair must appear.
    let mut master = SplitMix64::new(0xB004);
    for case in 0..CASES {
        let mut rng = master.split();
        let u = Universe::of_chars("ABC");
        let mut sym = SymbolTable::new();
        let mut r1 = Relation::new(u.set_of("AB"));
        for _ in 0..rng.gen_range(0, 6) {
            let t = Tuple::from_pairs([
                (u.attr_of("A"), sym.intern(&format!("a{}", rng.gen_range(0, 3)))),
                (u.attr_of("B"), sym.intern(&format!("b{}", rng.gen_range(0, 3)))),
            ]);
            let _ = r1.insert(t);
        }
        let mut r2 = Relation::new(u.set_of("BC"));
        for _ in 0..rng.gen_range(0, 6) {
            let t = Tuple::from_pairs([
                (u.attr_of("B"), sym.intern(&format!("b{}", rng.gen_range(0, 3)))),
                (u.attr_of("C"), sym.intern(&format!("c{}", rng.gen_range(0, 3)))),
            ]);
            let _ = r2.insert(t);
        }
        let j = r1.join(&r2);
        for t in j.iter() {
            assert!(r1.contains(&t.project(u.set_of("AB"))), "case {case}");
            assert!(r2.contains(&t.project(u.set_of("BC"))), "case {case}");
        }
        let mut expected = 0usize;
        for t1 in r1.iter() {
            for t2 in r2.iter() {
                if t1.join(t2).is_some() {
                    expected += 1;
                }
            }
        }
        assert_eq!(j.len(), expected, "case {case}");
    }
}

/// Algebraic laws of the expression evaluator on random tiny states.
mod algebra_laws {
    use idr_relation::algebra::Expr;
    use idr_relation::rng::SplitMix64;
    use idr_relation::{state_of, DatabaseState, SchemeBuilder, SymbolTable};

    const CASES: usize = 128;

    fn rand_rows(rng: &mut SplitMix64) -> Vec<(usize, usize)> {
        (0..rng.gen_range(0, 5))
            .map(|_| (rng.gen_range(0, 3), rng.gen_range(0, 3)))
            .collect()
    }

    fn setup(
        rows: &[(usize, usize)],
        rows2: &[(usize, usize)],
    ) -> (idr_relation::DatabaseScheme, SymbolTable, DatabaseState) {
        let scheme = SchemeBuilder::new("ABC")
            .scheme("R1", "AB", ["AB"])
            .scheme("R2", "BC", ["BC"])
            .build()
            .unwrap();
        let mut sym = SymbolTable::new();
        let mut spec: Vec<(&str, Vec<(&str, String)>)> = Vec::new();
        for &(a, b) in rows {
            spec.push(("R1", vec![("A", format!("a{a}")), ("B", format!("b{b}"))]));
        }
        for &(b, c) in rows2 {
            spec.push(("R2", vec![("B", format!("b{b}")), ("C", format!("c{c}"))]));
        }
        let borrowed: Vec<(&str, Vec<(&str, &str)>)> = spec
            .iter()
            .map(|(n, ps)| (*n, ps.iter().map(|(a, v)| (*a, v.as_str())).collect()))
            .collect();
        let as_slices: Vec<(&str, &[(&str, &str)])> =
            borrowed.iter().map(|(n, ps)| (*n, ps.as_slice())).collect();
        let state = state_of(&scheme, &mut sym, &as_slices).unwrap();
        (scheme, sym, state)
    }

    #[test]
    fn projection_composes() {
        let mut master = SplitMix64::new(0xC001);
        for case in 0..CASES {
            let mut rng = master.split();
            let (rows, rows2) = (rand_rows(&mut rng), rand_rows(&mut rng));
            let (scheme, _sym, state) = setup(&rows, &rows2);
            let u = scheme.universe();
            let e = Expr::rel(0).join(Expr::rel(1));
            // π_A(π_AB(e)) = π_A(e).
            let lhs = e
                .clone()
                .project(u.set_of("AB"))
                .project(u.set_of("A"))
                .eval(&scheme, &state)
                .unwrap();
            let rhs = e.project(u.set_of("A")).eval(&scheme, &state).unwrap();
            assert!(lhs.set_eq(&rhs), "case {case}");
        }
    }

    #[test]
    fn join_is_commutative_as_sets() {
        let mut master = SplitMix64::new(0xC002);
        for case in 0..CASES {
            let mut rng = master.split();
            let (rows, rows2) = (rand_rows(&mut rng), rand_rows(&mut rng));
            let (scheme, _sym, state) = setup(&rows, &rows2);
            let l = Expr::rel(0).join(Expr::rel(1)).eval(&scheme, &state).unwrap();
            let r = Expr::rel(1).join(Expr::rel(0)).eval(&scheme, &state).unwrap();
            assert!(l.set_eq(&r), "case {case}");
        }
    }

    #[test]
    fn selection_commutes_with_join_on_own_side() {
        let mut master = SplitMix64::new(0xC003);
        for case in 0..CASES {
            let mut rng = master.split();
            let (rows, rows2) = (rand_rows(&mut rng), rand_rows(&mut rng));
            let (scheme, mut sym, state) = setup(&rows, &rows2);
            let u = scheme.universe();
            let v = sym.intern("a0");
            let formula = vec![(u.attr_of("A"), v)];
            // σ_A=a0(R1 ⋈ R2) = σ_A=a0(R1) ⋈ R2.
            let l = Expr::rel(0)
                .join(Expr::rel(1))
                .select(formula.clone())
                .eval(&scheme, &state)
                .unwrap();
            let r = Expr::rel(0)
                .select(formula)
                .join(Expr::rel(1))
                .eval(&scheme, &state)
                .unwrap();
            assert!(l.set_eq(&r), "case {case}");
        }
    }

    #[test]
    fn union_is_idempotent_and_commutative() {
        let mut master = SplitMix64::new(0xC004);
        for case in 0..CASES {
            let mut rng = master.split();
            let (rows, rows2) = (rand_rows(&mut rng), rand_rows(&mut rng));
            let (scheme, _sym, state) = setup(&rows, &rows2);
            let u = scheme.universe();
            let a = Expr::rel(0).project(u.set_of("B"));
            let b = Expr::rel(1).project(u.set_of("B"));
            let ab = a.clone().union(b.clone()).eval(&scheme, &state).unwrap();
            let ba = b.clone().union(a.clone()).eval(&scheme, &state).unwrap();
            assert!(ab.set_eq(&ba), "case {case}");
            let aa = a.clone().union(a.clone()).eval(&scheme, &state).unwrap();
            let just_a = a.eval(&scheme, &state).unwrap();
            assert!(aa.set_eq(&just_a), "case {case}");
        }
    }
}
