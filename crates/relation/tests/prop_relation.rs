//! Property-based tests for the relational substrate: AttrSet is a Boolean
//! algebra, Tuple::join is a partial commutative/associative operation, and
//! relational operators satisfy their algebraic laws.

use idr_relation::{AttrSet, Attribute, Relation, SymbolTable, Tuple, Universe};
use proptest::prelude::*;

fn arb_attrset(max: usize) -> impl Strategy<Value = AttrSet> {
    prop::collection::vec(0..max, 0..max)
        .prop_map(|ixs| AttrSet::from_iter(ixs.into_iter().map(Attribute::from_index)))
}

proptest! {
    #[test]
    fn union_is_commutative(a in arb_attrset(40), b in arb_attrset(40)) {
        prop_assert_eq!(a | b, b | a);
    }

    #[test]
    fn intersection_distributes_over_union(
        a in arb_attrset(40), b in arb_attrset(40), c in arb_attrset(40)
    ) {
        prop_assert_eq!(a & (b | c), (a & b) | (a & c));
    }

    #[test]
    fn difference_then_union_restores_subset(a in arb_attrset(40), b in arb_attrset(40)) {
        let d = a - b;
        prop_assert!(d.is_subset(a));
        prop_assert!(d.is_disjoint(b));
        prop_assert_eq!(d | (a & b), a);
    }

    #[test]
    fn subset_iff_union_absorbs(a in arb_attrset(40), b in arb_attrset(40)) {
        prop_assert_eq!(a.is_subset(b), (a | b) == b);
    }

    #[test]
    fn iteration_matches_membership(a in arb_attrset(200)) {
        let collected: Vec<Attribute> = a.iter().collect();
        prop_assert_eq!(collected.len(), a.len());
        for attr in &collected {
            prop_assert!(a.contains(*attr));
        }
        let mut sorted = collected.clone();
        sorted.sort();
        prop_assert_eq!(collected, sorted);
    }
}

/// Random tuples over a tiny universe and a tiny value pool, so joins hit
/// both agreeing and conflicting cases.
fn arb_tuple() -> impl Strategy<Value = Vec<(usize, u8)>> {
    prop::collection::vec((0..6usize, 0..3u8), 0..6)
}

fn mk_tuple(spec: &[(usize, u8)], sym: &mut SymbolTable) -> Tuple {
    Tuple::from_pairs(
        spec.iter()
            .map(|&(a, v)| (Attribute::from_index(a), sym.intern(&format!("{a}:{v}")))),
    )
}

proptest! {
    #[test]
    fn tuple_join_is_commutative(a in arb_tuple(), b in arb_tuple()) {
        let mut sym = SymbolTable::new();
        let ta = mk_tuple(&a, &mut sym);
        let tb = mk_tuple(&b, &mut sym);
        prop_assert_eq!(ta.join(&tb), tb.join(&ta));
    }

    #[test]
    fn tuple_join_is_associative(a in arb_tuple(), b in arb_tuple(), c in arb_tuple()) {
        let mut sym = SymbolTable::new();
        let (ta, tb, tc) = (
            mk_tuple(&a, &mut sym),
            mk_tuple(&b, &mut sym),
            mk_tuple(&c, &mut sym),
        );
        let left = ta.join(&tb).and_then(|j| j.join(&tc));
        let right = tb.join(&tc).and_then(|j| ta.join(&j));
        // Associativity can differ when an intermediate join fails but the
        // other grouping sidesteps the conflict — in that case both sides
        // must still agree whenever both are defined.
        if let (Some(l), Some(r)) = (&left, &right) {
            prop_assert_eq!(l, r);
        }
    }

    #[test]
    fn join_projections_recover_inputs(a in arb_tuple(), b in arb_tuple()) {
        let mut sym = SymbolTable::new();
        let ta = mk_tuple(&a, &mut sym);
        let tb = mk_tuple(&b, &mut sym);
        if let Some(j) = ta.join(&tb) {
            prop_assert_eq!(j.project(ta.attrs()), ta);
            prop_assert_eq!(j.project(tb.attrs()), tb);
        }
    }

    #[test]
    fn relation_join_is_subset_of_cartesian_semantics(
        rows_a in prop::collection::vec(prop::collection::vec(0..3u8, 2), 0..6),
        rows_b in prop::collection::vec(prop::collection::vec(0..3u8, 2), 0..6),
    ) {
        // R1(AB) ⋈ R2(BC): every output tuple restricted to AB / BC must be
        // an input tuple, and every agreeing pair must appear.
        let u = Universe::of_chars("ABC");
        let mut sym = SymbolTable::new();
        let mut r1 = Relation::new(u.set_of("AB"));
        for row in &rows_a {
            let t = Tuple::from_pairs([
                (u.attr_of("A"), sym.intern(&format!("a{}", row[0]))),
                (u.attr_of("B"), sym.intern(&format!("b{}", row[1]))),
            ]);
            let _ = r1.insert(t);
        }
        let mut r2 = Relation::new(u.set_of("BC"));
        for row in &rows_b {
            let t = Tuple::from_pairs([
                (u.attr_of("B"), sym.intern(&format!("b{}", row[0]))),
                (u.attr_of("C"), sym.intern(&format!("c{}", row[1]))),
            ]);
            let _ = r2.insert(t);
        }
        let j = r1.join(&r2);
        for t in j.iter() {
            prop_assert!(r1.contains(&t.project(u.set_of("AB"))));
            prop_assert!(r2.contains(&t.project(u.set_of("BC"))));
        }
        let mut expected = 0usize;
        for t1 in r1.iter() {
            for t2 in r2.iter() {
                if t1.join(t2).is_some() {
                    expected += 1;
                }
            }
        }
        prop_assert_eq!(j.len(), expected);
    }
}

/// Algebraic laws of the expression evaluator on random tiny states.
mod algebra_laws {
    use idr_relation::algebra::Expr;
    use idr_relation::{state_of, DatabaseState, SchemeBuilder, SymbolTable};
    use proptest::prelude::*;

    fn setup(
        rows: &[(u8, u8)],
        rows2: &[(u8, u8)],
    ) -> (idr_relation::DatabaseScheme, SymbolTable, DatabaseState) {
        let scheme = SchemeBuilder::new("ABC")
            .scheme("R1", "AB", &["AB"])
            .scheme("R2", "BC", &["BC"])
            .build()
            .unwrap();
        let mut sym = SymbolTable::new();
        let mut spec: Vec<(&str, Vec<(&str, String)>)> = Vec::new();
        for &(a, b) in rows {
            spec.push(("R1", vec![("A", format!("a{a}")), ("B", format!("b{b}"))]));
        }
        for &(b, c) in rows2 {
            spec.push(("R2", vec![("B", format!("b{b}")), ("C", format!("c{c}"))]));
        }
        let borrowed: Vec<(&str, Vec<(&str, &str)>)> = spec
            .iter()
            .map(|(n, ps)| (*n, ps.iter().map(|(a, v)| (*a, v.as_str())).collect()))
            .collect();
        let as_slices: Vec<(&str, &[(&str, &str)])> =
            borrowed.iter().map(|(n, ps)| (*n, ps.as_slice())).collect();
        let state = state_of(&scheme, &mut sym, &as_slices).unwrap();
        (scheme, sym, state)
    }

    proptest! {
        #[test]
        fn projection_composes(
            rows in prop::collection::vec((0..3u8, 0..3u8), 0..5),
            rows2 in prop::collection::vec((0..3u8, 0..3u8), 0..5),
        ) {
            let (scheme, _sym, state) = setup(&rows, &rows2);
            let u = scheme.universe();
            let e = Expr::rel(0).join(Expr::rel(1));
            // π_A(π_AB(e)) = π_A(e).
            let lhs = e.clone().project(u.set_of("AB")).project(u.set_of("A"))
                .eval(&scheme, &state).unwrap();
            let rhs = e.project(u.set_of("A")).eval(&scheme, &state).unwrap();
            prop_assert!(lhs.set_eq(&rhs));
        }

        #[test]
        fn join_is_commutative_as_sets(
            rows in prop::collection::vec((0..3u8, 0..3u8), 0..5),
            rows2 in prop::collection::vec((0..3u8, 0..3u8), 0..5),
        ) {
            let (scheme, _sym, state) = setup(&rows, &rows2);
            let l = Expr::rel(0).join(Expr::rel(1)).eval(&scheme, &state).unwrap();
            let r = Expr::rel(1).join(Expr::rel(0)).eval(&scheme, &state).unwrap();
            prop_assert!(l.set_eq(&r));
        }

        #[test]
        fn selection_commutes_with_join_on_own_side(
            rows in prop::collection::vec((0..3u8, 0..3u8), 0..5),
            rows2 in prop::collection::vec((0..3u8, 0..3u8), 0..5),
        ) {
            let (scheme, mut sym, state) = setup(&rows, &rows2);
            let u = scheme.universe();
            let v = sym.intern("a0");
            let formula = vec![(u.attr_of("A"), v)];
            // σ_A=a0(R1 ⋈ R2) = σ_A=a0(R1) ⋈ R2.
            let l = Expr::rel(0).join(Expr::rel(1)).select(formula.clone())
                .eval(&scheme, &state).unwrap();
            let r = Expr::rel(0).select(formula).join(Expr::rel(1))
                .eval(&scheme, &state).unwrap();
            prop_assert!(l.set_eq(&r));
        }

        #[test]
        fn union_is_idempotent_and_commutative(
            rows in prop::collection::vec((0..3u8, 0..3u8), 0..5),
            rows2 in prop::collection::vec((0..3u8, 0..3u8), 0..5),
        ) {
            let (scheme, _sym, state) = setup(&rows, &rows2);
            let u = scheme.universe();
            let a = Expr::rel(0).project(u.set_of("B"));
            let b = Expr::rel(1).project(u.set_of("B"));
            let ab = a.clone().union(b.clone()).eval(&scheme, &state).unwrap();
            let ba = b.clone().union(a.clone()).eval(&scheme, &state).unwrap();
            prop_assert!(ab.set_eq(&ba));
            let aa = a.clone().union(a.clone()).eval(&scheme, &state).unwrap();
            let just_a = a.eval(&scheme, &state).unwrap();
            prop_assert!(aa.set_eq(&just_a));
        }
    }
}
