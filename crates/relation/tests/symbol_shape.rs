//! Memory-shape regression test for [`idr_relation::SymbolTable`].
//!
//! The table used to store every interned string twice — once in its
//! `strings: Vec<String>` arena and again as the owned key of a
//! `HashMap<String, Value>` lookup index — doubling intern memory at the
//! 10^6–10^7 symbols a bulk load produces. The fix indexes by string
//! *hash* and confirms candidates against the arena, so each symbol's
//! bytes are allocated exactly once.
//!
//! The test pins that shape with a counting global allocator: interning
//! N distinct strings of one distinctive length must perform exactly N
//! heap allocations of that length (the double-store made 2N). Length
//! 257 collides with nothing else on the path — `Vec`/`HashMap` growth
//! allocates power-of-two multiples of their entry sizes.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use idr_relation::SymbolTable;

/// Length of every test symbol; chosen so no container-growth allocation
/// can accidentally match the filter.
const SYMBOL_LEN: usize = 257;

struct CountingAlloc;

/// Number of allocations of exactly [`SYMBOL_LEN`] bytes.
static SYMBOL_SIZED_ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if layout.size() == SYMBOL_LEN {
            SYMBOL_SIZED_ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn each_interned_string_is_stored_once() {
    const N: usize = 1000;
    // Materialise the inputs *before* the counted window so only the
    // table's own copies are measured.
    let inputs: Vec<String> = (0..N)
        .map(|i| {
            let mut s = String::with_capacity(SYMBOL_LEN);
            s.push_str(&format!("sym{i}"));
            while s.len() < SYMBOL_LEN {
                s.push('_');
            }
            s
        })
        .collect();

    let mut table = SymbolTable::new();
    let before = SYMBOL_SIZED_ALLOCS.load(Ordering::Relaxed);
    let vals: Vec<_> = inputs.iter().map(|s| table.intern(s)).collect();
    // Re-interning and lookups must not copy anything.
    for (s, &v) in inputs.iter().zip(&vals) {
        assert_eq!(table.intern(s), v);
        assert_eq!(table.get(s), Some(v));
    }
    let copies = SYMBOL_SIZED_ALLOCS.load(Ordering::Relaxed) - before;

    assert_eq!(
        copies, N as u64,
        "interning {N} distinct {SYMBOL_LEN}-byte symbols must heap-copy \
         each exactly once (double-storage would make {})",
        2 * N
    );
    // The shape change must not break resolution.
    for (s, &v) in inputs.iter().zip(&vals) {
        assert_eq!(table.resolve(v), s);
    }
}
