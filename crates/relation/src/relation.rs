use std::collections::HashSet;

use crate::attrset::AttrSet;
use crate::error::RelationError;
use crate::tuple::Tuple;

/// A relation: a set of total tuples over a common attribute set (§2.1).
///
/// Set semantics are maintained on insertion (duplicates are ignored), and
/// tuple order is insertion order, which keeps every downstream algorithm
/// deterministic.
#[derive(Clone, Debug, Default)]
pub struct Relation {
    attrs: AttrSet,
    tuples: Vec<Tuple>,
    seen: HashSet<Tuple>,
}

impl Relation {
    /// Creates an empty relation over `attrs`.
    pub fn new(attrs: AttrSet) -> Self {
        Relation {
            attrs,
            tuples: Vec::new(),
            seen: HashSet::new(),
        }
    }

    /// The relation's attribute set.
    #[inline]
    pub fn attrs(&self) -> AttrSet {
        self.attrs
    }

    /// Inserts a tuple; returns `true` if it was new.
    ///
    /// # Errors
    ///
    /// Fails if the tuple's attribute set differs from the relation's.
    pub fn insert(&mut self, t: Tuple) -> Result<bool, RelationError> {
        if t.attrs() != self.attrs {
            return Err(RelationError::SchemeMismatch);
        }
        if self.seen.contains(&t) {
            return Ok(false);
        }
        self.seen.insert(t.clone());
        self.tuples.push(t);
        Ok(true)
    }

    /// Removes a tuple; returns `true` if it was present. Insertion order
    /// of the remaining tuples is preserved.
    pub fn remove(&mut self, t: &Tuple) -> bool {
        if !self.seen.remove(t) {
            return false;
        }
        if let Some(pos) = self.tuples.iter().position(|u| u == t) {
            self.tuples.remove(pos);
        }
        true
    }

    /// Membership test.
    pub fn contains(&self, t: &Tuple) -> bool {
        self.seen.contains(t)
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the relation holds no tuple.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Iterates the tuples in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.tuples.iter()
    }

    /// Builds a relation from an iterator of tuples (deduplicating).
    ///
    /// # Errors
    ///
    /// Fails if any tuple has a mismatching attribute set.
    pub fn from_tuples<I: IntoIterator<Item = Tuple>>(
        attrs: AttrSet,
        tuples: I,
    ) -> Result<Self, RelationError> {
        let mut r = Relation::new(attrs);
        for t in tuples {
            r.insert(t)?;
        }
        Ok(r)
    }

    /// Projection `π_X(r)`; `X` must be a subset of the relation's scheme.
    pub fn project(&self, x: AttrSet) -> Result<Relation, RelationError> {
        if !x.is_subset(self.attrs) {
            return Err(RelationError::ProjectionNotContained);
        }
        let mut out = Relation::new(x);
        for t in &self.tuples {
            // Projection cannot fail scheme checks by construction.
            let _ = out.insert(t.project(x));
        }
        Ok(out)
    }

    /// Set union of two relations over the same attribute set.
    pub fn union(&self, other: &Relation) -> Result<Relation, RelationError> {
        if self.attrs != other.attrs {
            return Err(RelationError::UnionSchemeMismatch);
        }
        let mut out = self.clone();
        for t in other.iter() {
            out.insert(t.clone())?;
        }
        Ok(out)
    }

    /// Set difference `self − other` over the same attribute set.
    pub fn difference(&self, other: &Relation) -> Result<Relation, RelationError> {
        if self.attrs != other.attrs {
            return Err(RelationError::UnionSchemeMismatch);
        }
        let mut out = Relation::new(self.attrs);
        for t in self.iter() {
            if !other.contains(t) {
                let _ = out.insert(t.clone());
            }
        }
        Ok(out)
    }

    /// Natural join `self ⋈ other` (nested-loop with a hash index on the
    /// common attributes of the smaller side).
    pub fn join(&self, other: &Relation) -> Relation {
        let (small, large) = if self.len() <= other.len() {
            (self, other)
        } else {
            (other, self)
        };
        let common = small.attrs & large.attrs;
        let out_attrs = small.attrs | large.attrs;
        let mut out = Relation::new(out_attrs);
        if common.is_empty() {
            for a in small.iter() {
                for b in large.iter() {
                    if let Some(j) = a.join(b) {
                        let _ = out.insert(j);
                    }
                }
            }
            return out;
        }
        use std::collections::HashMap;
        let mut index: HashMap<Tuple, Vec<&Tuple>> = HashMap::new();
        for t in small.iter() {
            index.entry(t.project(common)).or_default().push(t);
        }
        for t in large.iter() {
            if let Some(matches) = index.get(&t.project(common)) {
                for m in matches {
                    if let Some(j) = m.join(t) {
                        let _ = out.insert(j);
                    }
                }
            }
        }
        out
    }

    /// Conjunctive selection `σ_{A1=c1 ∧ …}(r)` (§2.7).
    pub fn select(&self, formula: &[(crate::Attribute, crate::Value)]) -> Result<Relation, RelationError> {
        for &(a, _) in formula {
            if !self.attrs.contains(a) {
                return Err(RelationError::SelectionNotContained);
            }
        }
        let mut out = Relation::new(self.attrs);
        'next: for t in self.iter() {
            for &(a, v) in formula {
                if t.value(a) != v {
                    continue 'next;
                }
            }
            let _ = out.insert(t.clone());
        }
        Ok(out)
    }

    /// Collects the tuples into a sorted `Vec` — convenient for
    /// order-insensitive comparisons in tests.
    pub fn sorted_tuples(&self) -> Vec<Tuple> {
        let mut v = self.tuples.clone();
        v.sort();
        v
    }

    /// Structural equality as *sets* of tuples.
    pub fn set_eq(&self, other: &Relation) -> bool {
        self.attrs == other.attrs
            && self.len() == other.len()
            && self.tuples.iter().all(|t| other.contains(t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::SymbolTable;
    use crate::universe::Universe;

    fn tup(u: &Universe, s: &mut SymbolTable, pairs: &[(&str, &str)]) -> Tuple {
        Tuple::from_pairs(pairs.iter().map(|&(a, v)| (u.attr_of(a), s.intern(v))))
    }

    #[test]
    fn insert_dedups() {
        let u = Universe::of_chars("AB");
        let mut s = SymbolTable::new();
        let mut r = Relation::new(u.set_of("AB"));
        let t = tup(&u, &mut s, &[("A", "a"), ("B", "b")]);
        assert!(r.insert(t.clone()).unwrap());
        assert!(!r.insert(t).unwrap());
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn insert_rejects_wrong_scheme() {
        let u = Universe::of_chars("AB");
        let mut s = SymbolTable::new();
        let mut r = Relation::new(u.set_of("AB"));
        let t = tup(&u, &mut s, &[("A", "a")]);
        assert!(matches!(r.insert(t), Err(RelationError::SchemeMismatch)));
    }

    #[test]
    fn project_and_union() {
        let u = Universe::of_chars("ABC");
        let mut s = SymbolTable::new();
        let mut r = Relation::new(u.set_of("ABC"));
        r.insert(tup(&u, &mut s, &[("A", "a"), ("B", "b"), ("C", "c")]))
            .unwrap();
        r.insert(tup(&u, &mut s, &[("A", "a"), ("B", "b"), ("C", "c2")]))
            .unwrap();
        let p = r.project(u.set_of("AB")).unwrap();
        assert_eq!(p.len(), 1);
        let un = p.union(&p).unwrap();
        assert_eq!(un.len(), 1);
    }

    #[test]
    fn join_matches_on_common_attrs() {
        let u = Universe::of_chars("ABC");
        let mut s = SymbolTable::new();
        let mut r1 = Relation::new(u.set_of("AB"));
        r1.insert(tup(&u, &mut s, &[("A", "a1"), ("B", "b")])).unwrap();
        r1.insert(tup(&u, &mut s, &[("A", "a2"), ("B", "b2")])).unwrap();
        let mut r2 = Relation::new(u.set_of("BC"));
        r2.insert(tup(&u, &mut s, &[("B", "b"), ("C", "c")])).unwrap();
        let j = r1.join(&r2);
        assert_eq!(j.attrs(), u.set_of("ABC"));
        assert_eq!(j.len(), 1);
        assert!(j.iter().next().unwrap().agrees_on(
            &tup(&u, &mut s, &[("A", "a1"), ("B", "b"), ("C", "c")]),
            u.set_of("ABC")
        ));
    }

    #[test]
    fn join_without_common_attrs_is_cartesian() {
        let u = Universe::of_chars("AB");
        let mut s = SymbolTable::new();
        let mut r1 = Relation::new(u.set_of("A"));
        r1.insert(tup(&u, &mut s, &[("A", "a1")])).unwrap();
        r1.insert(tup(&u, &mut s, &[("A", "a2")])).unwrap();
        let mut r2 = Relation::new(u.set_of("B"));
        r2.insert(tup(&u, &mut s, &[("B", "b1")])).unwrap();
        r2.insert(tup(&u, &mut s, &[("B", "b2")])).unwrap();
        assert_eq!(r1.join(&r2).len(), 4);
    }

    #[test]
    fn select_filters() {
        let u = Universe::of_chars("AB");
        let mut s = SymbolTable::new();
        let mut r = Relation::new(u.set_of("AB"));
        r.insert(tup(&u, &mut s, &[("A", "a"), ("B", "b1")])).unwrap();
        r.insert(tup(&u, &mut s, &[("A", "a"), ("B", "b2")])).unwrap();
        let sel = r
            .select(&[(u.attr_of("B"), s.intern("b1"))])
            .unwrap();
        assert_eq!(sel.len(), 1);
        let bad = r.select(&[(u.attr_of("B"), s.intern("zzz"))]).unwrap();
        assert!(bad.is_empty());
    }

    #[test]
    fn difference_removes_common() {
        let u = Universe::of_chars("A");
        let mut s = SymbolTable::new();
        let mut r1 = Relation::new(u.set_of("A"));
        r1.insert(tup(&u, &mut s, &[("A", "x")])).unwrap();
        r1.insert(tup(&u, &mut s, &[("A", "y")])).unwrap();
        let mut r2 = Relation::new(u.set_of("A"));
        r2.insert(tup(&u, &mut s, &[("A", "x")])).unwrap();
        let d = r1.difference(&r2).unwrap();
        assert_eq!(d.len(), 1);
    }
}
