use std::fmt;

/// Errors raised by the relational substrate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RelationError {
    /// An attribute name was interned twice into one universe.
    DuplicateAttribute(String),
    /// The universe exceeded [`crate::MAX_ATTRS`] attributes.
    UniverseFull,
    /// A tuple's value count does not match its attribute set.
    TupleArity {
        /// Arity implied by the attribute set.
        expected: usize,
        /// Number of values supplied.
        got: usize,
    },
    /// A tuple was inserted into a relation over a different scheme.
    SchemeMismatch,
    /// A relation scheme declared a key that is not a subset of the scheme.
    KeyNotEmbedded {
        /// Name of the offending relation scheme.
        scheme: String,
    },
    /// A relation scheme declared no key.
    NoKey {
        /// Name of the offending relation scheme.
        scheme: String,
    },
    /// A database scheme declared two relation schemes with the same name.
    DuplicateScheme(String),
    /// The union of the relation schemes does not cover the universe.
    IncompleteCover,
    /// Union of expressions over different output schemes.
    UnionSchemeMismatch,
    /// A projection requested attributes outside its input scheme.
    ProjectionNotContained,
    /// A selection constrained an attribute outside its input scheme.
    SelectionNotContained,
    /// An expression referenced a relation index outside the state.
    UnknownRelation(usize),
    /// A scheme declaration used an attribute character that is not in the
    /// universe.
    UnknownAttribute {
        /// Name of the offending relation scheme.
        scheme: String,
        /// The unknown attribute character.
        attr: char,
    },
}

impl fmt::Display for RelationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelationError::DuplicateAttribute(n) => {
                write!(f, "attribute {n:?} already in universe")
            }
            RelationError::UniverseFull => {
                write!(f, "universe exceeds the supported attribute count")
            }
            RelationError::TupleArity { expected, got } => {
                write!(f, "tuple arity mismatch: expected {expected}, got {got}")
            }
            RelationError::SchemeMismatch => {
                write!(f, "tuple scheme does not match relation scheme")
            }
            RelationError::KeyNotEmbedded { scheme } => {
                write!(f, "key not embedded in relation scheme {scheme}")
            }
            RelationError::NoKey { scheme } => {
                write!(f, "relation scheme {scheme} declares no key")
            }
            RelationError::DuplicateScheme(n) => {
                write!(f, "duplicate relation scheme name {n:?}")
            }
            RelationError::IncompleteCover => {
                write!(f, "relation schemes do not cover the universe")
            }
            RelationError::UnionSchemeMismatch => {
                write!(f, "union of expressions with different schemes")
            }
            RelationError::ProjectionNotContained => {
                write!(f, "projection attributes not contained in input scheme")
            }
            RelationError::SelectionNotContained => {
                write!(f, "selection attribute not contained in input scheme")
            }
            RelationError::UnknownRelation(i) => {
                write!(f, "expression references unknown relation index {i}")
            }
            RelationError::UnknownAttribute { scheme, attr } => {
                write!(
                    f,
                    "relation scheme {scheme} uses attribute {attr:?} which is not in the universe"
                )
            }
        }
    }
}

impl std::error::Error for RelationError {}
