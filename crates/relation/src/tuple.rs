use std::fmt;

use crate::attrset::AttrSet;
use crate::error::RelationError;
use crate::symbol::Value;
use crate::universe::{Attribute, Universe};

/// A total tuple over an attribute set `C`.
///
/// The paper constantly manipulates "total tuples on C" where `C` is not a
/// relation scheme — e.g. the accumulating tuple `q` of Algorithm 2, the
/// extended tuple `t'` of Algorithm 4, or the constant components of a
/// partially chased tableau row. A `Tuple` is exactly that object: a map
/// from an [`AttrSet`] to values, stored densely in ascending attribute
/// order.
///
/// Natural join of two such tuples ([`Tuple::join`]) succeeds iff they agree
/// on their common attributes, which is the `q := q ⋈ v` step the
/// maintenance algorithms are built from.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tuple {
    attrs: AttrSet,
    values: Box<[Value]>,
}

impl Tuple {
    /// Creates a tuple over `attrs` from values given in ascending
    /// attribute order.
    ///
    /// # Errors
    ///
    /// Fails if the number of values differs from `attrs.len()`.
    pub fn new(attrs: AttrSet, values: Vec<Value>) -> Result<Self, RelationError> {
        if attrs.len() != values.len() {
            return Err(RelationError::TupleArity {
                expected: attrs.len(),
                got: values.len(),
            });
        }
        Ok(Tuple {
            attrs,
            values: values.into_boxed_slice(),
        })
    }

    /// Creates a tuple from explicit (attribute, value) pairs in any order.
    pub fn from_pairs<I: IntoIterator<Item = (Attribute, Value)>>(pairs: I) -> Self {
        let mut pairs: Vec<(Attribute, Value)> = pairs.into_iter().collect();
        pairs.sort_by_key(|&(a, _)| a);
        pairs.dedup_by_key(|&mut (a, _)| a);
        let attrs = AttrSet::from_iter(pairs.iter().map(|&(a, _)| a));
        let values = pairs.iter().map(|&(_, v)| v).collect();
        Tuple { attrs, values }
    }

    /// The empty tuple (over the empty attribute set). Joining with it is
    /// the identity; it is the natural `q` seed when nothing is known yet.
    pub fn unit() -> Self {
        Tuple {
            attrs: AttrSet::empty(),
            values: Box::new([]),
        }
    }

    /// The attribute set this tuple is total on.
    #[inline]
    pub fn attrs(&self) -> AttrSet {
        self.attrs
    }

    /// The value at attribute `a`, or `None` if `a` is outside the tuple's
    /// attribute set.
    #[inline]
    pub fn get(&self, a: Attribute) -> Option<Value> {
        if !self.attrs.contains(a) {
            return None;
        }
        Some(self.values[self.rank(a)])
    }

    /// The value at attribute `a`.
    ///
    /// # Panics
    ///
    /// Panics if `a` is outside the tuple's attribute set; use [`Tuple::get`]
    /// for the fallible variant.
    #[inline]
    pub fn value(&self, a: Attribute) -> Value {
        self.get(a)
            .unwrap_or_else(|| panic!("attribute {:?} not in tuple", a))
    }

    /// Values in ascending attribute order.
    #[inline]
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Iterates `(attribute, value)` pairs in ascending attribute order.
    pub fn iter(&self) -> impl Iterator<Item = (Attribute, Value)> + '_ {
        self.attrs.iter().zip(self.values.iter().copied())
    }

    /// The restriction `t[X]` (§2.1). `X` is intersected with the tuple's
    /// attribute set, so restriction by a superset is the identity.
    pub fn project(&self, x: AttrSet) -> Tuple {
        let keep = self.attrs & x;
        if keep == self.attrs {
            return self.clone();
        }
        let values = self
            .iter()
            .filter(|&(a, _)| keep.contains(a))
            .map(|(_, v)| v)
            .collect();
        Tuple { attrs: keep, values }
    }

    /// Whether the two tuples agree on every attribute of `x`.
    ///
    /// Both tuples must be total on `x` for agreement; an attribute missing
    /// on either side counts as disagreement (in tableau terms the missing
    /// position holds a unique nondistinguished variable).
    pub fn agrees_on(&self, other: &Tuple, x: AttrSet) -> bool {
        if !x.is_subset(self.attrs) || !x.is_subset(other.attrs) {
            return false;
        }
        x.iter().all(|a| self.value(a) == other.value(a))
    }

    /// Natural join `self ⋈ other`.
    ///
    /// Returns `None` when the tuples conflict on a common attribute — the
    /// "q is empty" rejection branch of Algorithms 2 and 5.
    pub fn join(&self, other: &Tuple) -> Option<Tuple> {
        let common = self.attrs & other.attrs;
        for a in common.iter() {
            if self.value(a) != other.value(a) {
                return None;
            }
        }
        if other.attrs.is_subset(self.attrs) {
            return Some(self.clone());
        }
        if self.attrs.is_subset(other.attrs) {
            return Some(other.clone());
        }
        let attrs = self.attrs | other.attrs;
        let values = attrs
            .iter()
            .map(|a| self.get(a).unwrap_or_else(|| other.value(a)))
            .collect();
        Some(Tuple { attrs, values })
    }

    /// The set of constants appearing in the tuple — `CST(t)` from §2.7,
    /// used to define when a sequence of selections is admissible for a
    /// constant-time-maintenance algorithm.
    pub fn constants(&self) -> Vec<Value> {
        let mut v: Vec<Value> = self.values.to_vec();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Renders the tuple with a universe and symbol table, e.g.
    /// `<A=a, B=b>`.
    pub fn render(&self, universe: &Universe, symbols: &crate::SymbolTable) -> String {
        let mut out = String::from("<");
        let mut first = true;
        for (a, v) in self.iter() {
            if !first {
                out.push_str(", ");
            }
            out.push_str(universe.name(a));
            out.push('=');
            out.push_str(symbols.resolve(v));
            first = false;
        }
        out.push('>');
        out
    }

    #[inline]
    fn rank(&self, a: Attribute) -> usize {
        // Position of `a` among the set bits below it.
        self.attrs
            .iter()
            .position(|b| b == a)
            .expect("rank: attribute present by contract")
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tuple[")?;
        let mut first = true;
        for (a, v) in self.iter() {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{}:{}", a.index(), v.index())?;
            first = false;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::SymbolTable;

    fn fixture() -> (Universe, SymbolTable) {
        (Universe::of_chars("ABCDE"), SymbolTable::new())
    }

    fn tup(u: &Universe, s: &mut SymbolTable, pairs: &[(&str, &str)]) -> Tuple {
        Tuple::from_pairs(
            pairs
                .iter()
                .map(|&(a, v)| (u.attr_of(a), s.intern(v))),
        )
    }

    #[test]
    fn new_checks_arity() {
        let (u, mut s) = fixture();
        let attrs = u.set_of("AB");
        let v = vec![s.intern("x")];
        assert!(matches!(
            Tuple::new(attrs, v),
            Err(RelationError::TupleArity { .. })
        ));
    }

    #[test]
    fn get_and_value() {
        let (u, mut s) = fixture();
        let t = tup(&u, &mut s, &[("A", "a"), ("C", "c")]);
        assert_eq!(t.get(u.attr_of("A")), Some(s.intern("a")));
        assert_eq!(t.get(u.attr_of("B")), None);
        assert_eq!(t.attrs(), u.set_of("AC"));
    }

    #[test]
    fn project_restricts() {
        let (u, mut s) = fixture();
        let t = tup(&u, &mut s, &[("A", "a"), ("B", "b"), ("C", "c")]);
        let p = t.project(u.set_of("AC"));
        assert_eq!(p.attrs(), u.set_of("AC"));
        assert_eq!(p.value(u.attr_of("C")), s.intern("c"));
        // Restriction by a superset is the identity.
        assert_eq!(t.project(u.set_of("ABCDE")), t);
    }

    #[test]
    fn join_agreeing_tuples() {
        let (u, mut s) = fixture();
        let t1 = tup(&u, &mut s, &[("A", "a"), ("B", "b")]);
        let t2 = tup(&u, &mut s, &[("B", "b"), ("C", "c")]);
        let j = t1.join(&t2).unwrap();
        assert_eq!(j.attrs(), u.set_of("ABC"));
        assert_eq!(j.value(u.attr_of("C")), s.intern("c"));
    }

    #[test]
    fn join_conflicting_tuples_is_empty() {
        let (u, mut s) = fixture();
        let t1 = tup(&u, &mut s, &[("A", "a"), ("B", "b")]);
        let t2 = tup(&u, &mut s, &[("B", "b2"), ("C", "c")]);
        assert!(t1.join(&t2).is_none());
    }

    #[test]
    fn join_with_unit_is_identity() {
        let (u, mut s) = fixture();
        let t = tup(&u, &mut s, &[("A", "a")]);
        assert_eq!(Tuple::unit().join(&t).unwrap(), t);
        assert_eq!(t.join(&Tuple::unit()).unwrap(), t);
    }

    #[test]
    fn join_disjoint_tuples_concatenates() {
        let (u, mut s) = fixture();
        let t1 = tup(&u, &mut s, &[("A", "a")]);
        let t2 = tup(&u, &mut s, &[("D", "d")]);
        let j = t1.join(&t2).unwrap();
        assert_eq!(j.attrs(), u.set_of("AD"));
    }

    #[test]
    fn agrees_on_requires_totality() {
        let (u, mut s) = fixture();
        let t1 = tup(&u, &mut s, &[("A", "a"), ("B", "b")]);
        let t2 = tup(&u, &mut s, &[("A", "a")]);
        assert!(t1.agrees_on(&t2, u.set_of("A")));
        assert!(!t1.agrees_on(&t2, u.set_of("AB")));
    }

    #[test]
    fn constants_are_deduped() {
        let (u, mut s) = fixture();
        let t = tup(&u, &mut s, &[("A", "x"), ("B", "x"), ("C", "y")]);
        assert_eq!(t.constants().len(), 2);
    }

    #[test]
    fn render_is_readable() {
        let (u, mut s) = fixture();
        let t = tup(&u, &mut s, &[("A", "a"), ("B", "b")]);
        assert_eq!(t.render(&u, &s), "<A=a, B=b>");
    }
}
