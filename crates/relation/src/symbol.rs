use std::collections::HashMap;
use std::fmt;
use std::hash::{BuildHasher, RandomState};

use crate::exec::ExecError;

/// An interned constant value appearing in tuples.
///
/// The paper assumes pairwise-disjoint attribute domains (§2.1); we do not
/// enforce disjointness mechanically — fixtures follow the convention of
/// distinct names per column — but interning gives O(1) equality, which the
/// chase and the maintenance algorithms rely on heavily.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Value(pub(crate) u32);

impl Value {
    /// The raw interning index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a value from a raw index (must come from the owning table).
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit the `u32` interning space — a
    /// silent `as u32` wrap here would alias two distinct constants and
    /// corrupt every downstream equality. The fallible interning path is
    /// [`SymbolTable::try_intern`].
    #[inline]
    pub fn from_index(index: usize) -> Self {
        assert!(
            index <= u32::MAX as usize,
            "symbol index {index} exceeds the u32 interning space"
        );
        Value(index as u32)
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Val({})", self.0)
    }
}

/// Interning table for constants.
///
/// Each interned string is stored exactly once, in `strings`; the lookup
/// index maps the string's *hash* to the indexes carrying that hash and
/// confirms candidates against `strings` directly. The obvious
/// `HashMap<String, Value>` index would clone every symbol a second time
/// — double the intern memory at the 10^6–10^7 symbols the batch
/// pipeline loads (see the `memory_shape` regression test).
///
/// # Examples
///
/// ```
/// use idr_relation::SymbolTable;
///
/// let mut t = SymbolTable::new();
/// let a = t.intern("alice");
/// assert_eq!(t.intern("alice"), a);
/// assert_eq!(t.resolve(a), "alice");
/// ```
#[derive(Clone, Debug, Default)]
pub struct SymbolTable {
    strings: Vec<String>,
    hasher: RandomState,
    /// String hash → interning indexes with that hash (almost always one;
    /// candidates are confirmed against `strings` before use).
    index: HashMap<u64, Vec<u32>>,
}

impl SymbolTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        SymbolTable::default()
    }

    /// Finds the interning index of `s` under its precomputed hash.
    fn probe(&self, hash: u64, s: &str) -> Option<Value> {
        let bucket = self.index.get(&hash)?;
        bucket
            .iter()
            .copied()
            .find(|&i| self.strings[i as usize] == s)
            .map(Value)
    }

    /// Interns a string, returning the same [`Value`] for equal strings.
    ///
    /// # Panics
    ///
    /// Panics if the table already holds 2^32 distinct symbols (see
    /// [`SymbolTable::try_intern`] for the fallible form).
    pub fn intern(&mut self, s: &str) -> Value {
        self.try_intern(s)
            .expect("symbol table full: 2^32 distinct symbols interned")
    }

    /// Interns a string, failing with a typed
    /// [`ExecError::CapacityExceeded`] once the `u32` interning space is
    /// full instead of wrapping and aliasing an existing symbol.
    pub fn try_intern(&mut self, s: &str) -> Result<Value, ExecError> {
        let hash = self.hasher.hash_one(s);
        if let Some(v) = self.probe(hash, s) {
            return Ok(v);
        }
        let id = u32::try_from(self.strings.len()).map_err(|_| ExecError::CapacityExceeded {
            what: "interned symbols",
            limit: 1 << 32,
        })?;
        self.strings.push(s.to_string());
        self.index.entry(hash).or_default().push(id);
        Ok(Value(id))
    }

    /// Returns a fresh value guaranteed distinct from all interned ones —
    /// handy for generating the "unique constant" tuples of Theorem 3.4's
    /// adversarial construction.
    pub fn fresh(&mut self, prefix: &str) -> Value {
        let name = format!("{prefix}#{}", self.strings.len());
        self.intern(&name)
    }

    /// Resolves an interned value back to its string.
    ///
    /// # Panics
    ///
    /// Panics if the value does not belong to this table.
    pub fn resolve(&self, v: Value) -> &str {
        &self.strings[v.index()]
    }

    /// Looks up a previously interned string.
    pub fn get(&self, s: &str) -> Option<Value> {
        self.probe(self.hasher.hash_one(s), s)
    }

    /// Number of distinct interned values.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether no value has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut t = SymbolTable::new();
        let a = t.intern("x");
        let b = t.intern("y");
        assert_ne!(a, b);
        assert_eq!(t.intern("x"), a);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn resolve_round_trips() {
        let mut t = SymbolTable::new();
        let v = t.intern("hello");
        assert_eq!(t.resolve(v), "hello");
        assert_eq!(t.get("hello"), Some(v));
        assert_eq!(t.get("absent"), None);
    }

    #[test]
    fn fresh_values_are_distinct() {
        let mut t = SymbolTable::new();
        let a = t.intern("a");
        let f1 = t.fresh("n");
        let f2 = t.fresh("n");
        assert_ne!(f1, f2);
        assert_ne!(f1, a);
    }

    #[test]
    fn survives_many_symbols_and_clone() {
        // Exercises hash-bucket probing (including reallocation of the
        // bucket map) across enough symbols to make accidental collisions
        // of the *bucket* path — not the full-string confirm — plausible.
        let mut t = SymbolTable::new();
        let vals: Vec<Value> = (0..10_000).map(|i| t.intern(&format!("s{i}"))).collect();
        let snap = t.clone();
        for (i, &v) in vals.iter().enumerate() {
            assert_eq!(t.get(&format!("s{i}")), Some(v));
            assert_eq!(snap.resolve(v), format!("s{i}"));
            assert_eq!(t.intern(&format!("s{i}")), v);
        }
        assert_eq!(t.len(), 10_000);
    }
}
