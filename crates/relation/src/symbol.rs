use std::collections::HashMap;
use std::fmt;

/// An interned constant value appearing in tuples.
///
/// The paper assumes pairwise-disjoint attribute domains (§2.1); we do not
/// enforce disjointness mechanically — fixtures follow the convention of
/// distinct names per column — but interning gives O(1) equality, which the
/// chase and the maintenance algorithms rely on heavily.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Value(pub(crate) u32);

impl Value {
    /// The raw interning index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a value from a raw index (must come from the owning table).
    #[inline]
    pub fn from_index(index: usize) -> Self {
        Value(index as u32)
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Val({})", self.0)
    }
}

/// Interning table for constants.
///
/// # Examples
///
/// ```
/// use idr_relation::SymbolTable;
///
/// let mut t = SymbolTable::new();
/// let a = t.intern("alice");
/// assert_eq!(t.intern("alice"), a);
/// assert_eq!(t.resolve(a), "alice");
/// ```
#[derive(Clone, Debug, Default)]
pub struct SymbolTable {
    strings: Vec<String>,
    index: HashMap<String, Value>,
}

impl SymbolTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        SymbolTable::default()
    }

    /// Interns a string, returning the same [`Value`] for equal strings.
    pub fn intern(&mut self, s: &str) -> Value {
        if let Some(&v) = self.index.get(s) {
            return v;
        }
        let v = Value(self.strings.len() as u32);
        self.strings.push(s.to_string());
        self.index.insert(s.to_string(), v);
        v
    }

    /// Returns a fresh value guaranteed distinct from all interned ones —
    /// handy for generating the "unique constant" tuples of Theorem 3.4's
    /// adversarial construction.
    pub fn fresh(&mut self, prefix: &str) -> Value {
        let name = format!("{prefix}#{}", self.strings.len());
        self.intern(&name)
    }

    /// Resolves an interned value back to its string.
    ///
    /// # Panics
    ///
    /// Panics if the value does not belong to this table.
    pub fn resolve(&self, v: Value) -> &str {
        &self.strings[v.index()]
    }

    /// Looks up a previously interned string.
    pub fn get(&self, s: &str) -> Option<Value> {
        self.index.get(s).copied()
    }

    /// Number of distinct interned values.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether no value has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut t = SymbolTable::new();
        let a = t.intern("x");
        let b = t.intern("y");
        assert_ne!(a, b);
        assert_eq!(t.intern("x"), a);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn resolve_round_trips() {
        let mut t = SymbolTable::new();
        let v = t.intern("hello");
        assert_eq!(t.resolve(v), "hello");
        assert_eq!(t.get("hello"), Some(v));
        assert_eq!(t.get("absent"), None);
    }

    #[test]
    fn fresh_values_are_distinct() {
        let mut t = SymbolTable::new();
        let a = t.intern("a");
        let f1 = t.fresh("n");
        let f2 = t.fresh("n");
        assert_ne!(f1, f2);
        assert_ne!(f1, a);
    }
}
