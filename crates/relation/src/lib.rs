//! Relational-model substrate for the *Independence-reducible Database
//! Schemes* reproduction (Chan & Hernández, PODS 1988).
//!
//! This crate provides the data model every other crate in the workspace is
//! built on:
//!
//! * [`Universe`] — the fixed, finite set of attributes `U = {A1, …, An}`
//!   with string interning ([`Attribute`] ids).
//! * [`AttrSet`] — fast, `Copy` bitsets over the universe (up to
//!   [`MAX_ATTRS`] attributes), used for relation schemes, FD sides,
//!   closures and keys.
//! * [`SymbolTable`] / [`Value`] — interned constants for tuple components.
//! * [`Tuple`] — a total tuple over an arbitrary attribute set; tuples over
//!   a *subset* of a relation scheme double as the "partial tuples / total
//!   on C" objects the paper's algorithms manipulate.
//! * [`Relation`], [`DatabaseState`] — relations with set semantics and
//!   database states `r = <r1, …, rk>`.
//! * [`RelationScheme`], [`DatabaseScheme`] — schemes with embedded
//!   candidate keys (the paper's standing assumption is that a cover of the
//!   FDs is embedded as key dependencies).
//! * [`algebra`] — a small relational-algebra AST (projection, conjunctive
//!   selection, natural join, union) with an evaluator, matching §2.6 of
//!   the paper (extension joins, sequential joins) and the expressions of
//!   Corollary 3.1(b) / Theorem 4.1.


#![warn(missing_docs)]
pub mod algebra;
mod attrset;
mod error;
pub mod exec;
pub mod parse;
mod relation;
pub mod rng;
mod schema;
mod state;
mod symbol;
mod tuple;
mod universe;

pub use attrset::{AttrSet, AttrSetIter, MAX_ATTRS};
pub use error::RelationError;
pub use relation::Relation;
pub use schema::{DatabaseScheme, RelationScheme, SchemeBuilder};
pub use state::{state_of, DatabaseState};
pub use symbol::{SymbolTable, Value};
pub use tuple::Tuple;
pub use universe::{Attribute, Universe};
