use std::collections::HashMap;
use std::fmt;

use crate::attrset::{AttrSet, MAX_ATTRS};
use crate::error::RelationError;

/// An interned attribute of the universe `U`.
///
/// Attributes are cheap `Copy` ids; their names live in the [`Universe`].
/// Ordering follows insertion order into the universe, which gives every
/// algorithm in the workspace a deterministic iteration order.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Attribute(pub(crate) u32);

impl Attribute {
    /// The position of this attribute in its universe.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an attribute from a raw universe index.
    ///
    /// Callers must guarantee `index` is a valid index of the intended
    /// universe; the type itself carries no back-pointer.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        debug_assert!(index < MAX_ATTRS);
        Attribute(index as u32)
    }
}

impl fmt::Debug for Attribute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Attr({})", self.0)
    }
}

/// The universe of attributes `U = {A1, …, An}` (§2.1 of the paper).
///
/// A universe interns attribute names and hands out [`Attribute`] ids. At
/// most [`MAX_ATTRS`] attributes are supported, which keeps [`AttrSet`] a
/// small `Copy` bitset — far beyond anything dependency-theoretic schemes
/// need in practice.
///
/// # Examples
///
/// ```
/// use idr_relation::Universe;
///
/// let mut u = Universe::new();
/// let a = u.add("A").unwrap();
/// let b = u.add("B").unwrap();
/// assert_eq!(u.name(a), "A");
/// assert_eq!(u.attr("B"), Some(b));
/// assert_eq!(u.len(), 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Universe {
    names: Vec<String>,
    index: HashMap<String, Attribute>,
}

impl Universe {
    /// Creates an empty universe.
    pub fn new() -> Self {
        Universe::default()
    }

    /// Creates a universe from single-character attribute names, the
    /// convention every example in the paper uses (`"ABCDE"` ↦ attributes
    /// `A`, `B`, `C`, `D`, `E`).
    pub fn of_chars(chars: &str) -> Self {
        let mut u = Universe::new();
        for c in chars.chars() {
            u.add(&c.to_string())
                .expect("of_chars: duplicate or overflowing attribute");
        }
        u
    }

    /// Interns a new attribute name.
    ///
    /// # Errors
    ///
    /// Returns an error if the name is already present or the universe is
    /// full ([`MAX_ATTRS`]).
    pub fn add(&mut self, name: &str) -> Result<Attribute, RelationError> {
        if self.index.contains_key(name) {
            return Err(RelationError::DuplicateAttribute(name.to_string()));
        }
        if self.names.len() >= MAX_ATTRS {
            return Err(RelationError::UniverseFull);
        }
        let attr = Attribute(self.names.len() as u32);
        self.names.push(name.to_string());
        self.index.insert(name.to_string(), attr);
        Ok(attr)
    }

    /// Looks up an attribute by name.
    pub fn attr(&self, name: &str) -> Option<Attribute> {
        self.index.get(name).copied()
    }

    /// Looks up an attribute by name, panicking with a clear message when
    /// absent. Convenient in tests and fixtures.
    pub fn attr_of(&self, name: &str) -> Attribute {
        self.attr(name)
            .unwrap_or_else(|| panic!("attribute {name:?} not in universe"))
    }

    /// The name of an attribute.
    ///
    /// # Panics
    ///
    /// Panics if the attribute does not belong to this universe.
    pub fn name(&self, attr: Attribute) -> &str {
        &self.names[attr.index()]
    }

    /// Number of attributes in the universe.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the universe is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over all attributes in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = Attribute> + '_ {
        (0..self.names.len() as u32).map(Attribute)
    }

    /// The set of all attributes, i.e. `U` itself.
    pub fn all(&self) -> AttrSet {
        let mut s = AttrSet::empty();
        for a in self.iter() {
            s.insert(a);
        }
        s
    }

    /// Parses an attribute set from single-character names (`"ABC"`), the
    /// notation used throughout the paper's examples.
    ///
    /// # Panics
    ///
    /// Panics if any character does not name an attribute; fixtures want
    /// loud failures.
    pub fn set_of(&self, chars: &str) -> AttrSet {
        self.try_set_of(chars)
            .unwrap_or_else(|c| panic!("attribute {c:?} not in universe"))
    }

    /// Fallible [`set_of`](Self::set_of) for external input: returns the
    /// first character that does not name an attribute instead of
    /// panicking.
    pub fn try_set_of(&self, chars: &str) -> Result<AttrSet, char> {
        let mut s = AttrSet::empty();
        for c in chars.chars() {
            if c.is_whitespace() {
                continue;
            }
            match self.attr(&c.to_string()) {
                Some(a) => {
                    s.insert(a);
                }
                None => return Err(c),
            }
        }
        Ok(s)
    }

    /// Renders an attribute set using this universe's names, sorted by
    /// attribute order — e.g. `"ABC"` — matching the paper's notation.
    pub fn render(&self, set: AttrSet) -> String {
        let mut out = String::new();
        for a in set.iter() {
            out.push_str(self.name(a));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup() {
        let mut u = Universe::new();
        let a = u.add("A").unwrap();
        assert_eq!(u.attr("A"), Some(a));
        assert_eq!(u.attr("B"), None);
        assert_eq!(u.name(a), "A");
    }

    #[test]
    fn duplicate_rejected() {
        let mut u = Universe::new();
        u.add("A").unwrap();
        assert!(matches!(
            u.add("A"),
            Err(RelationError::DuplicateAttribute(_))
        ));
    }

    #[test]
    fn of_chars_and_set_of() {
        let u = Universe::of_chars("ABCDE");
        assert_eq!(u.len(), 5);
        let s = u.set_of("ACE");
        assert_eq!(s.len(), 3);
        assert!(s.contains(u.attr_of("A")));
        assert!(!s.contains(u.attr_of("B")));
        assert_eq!(u.render(s), "ACE");
    }

    #[test]
    fn universe_full() {
        let mut u = Universe::new();
        for i in 0..MAX_ATTRS {
            u.add(&format!("A{i}")).unwrap();
        }
        assert!(matches!(u.add("overflow"), Err(RelationError::UniverseFull)));
    }

    #[test]
    fn all_covers_every_attribute() {
        let u = Universe::of_chars("ABC");
        let all = u.all();
        for a in u.iter() {
            assert!(all.contains(a));
        }
        assert_eq!(all.len(), 3);
    }
}
