use std::fmt;
use std::ops::{BitAnd, BitAndAssign, BitOr, BitOrAssign, Sub, SubAssign};

use crate::universe::Attribute;

/// Maximum number of attributes a [`crate::Universe`] may hold.
///
/// Fixing the width keeps [`AttrSet`] a flat `Copy` value (four machine
/// words) so that the closure and recognition hot loops never allocate.
pub const MAX_ATTRS: usize = 256;

const BLOCKS: usize = MAX_ATTRS / 64;

/// A set of attributes, represented as a fixed-width bitset.
///
/// `AttrSet` is the workhorse of the whole reproduction: relation schemes,
/// FD left/right sides, closures, keys and connection sets are all
/// `AttrSet`s. All operations are branch-light word operations and the type
/// is `Copy`, so the attribute-closure fixpoints (the inner loop of KEP and
/// Algorithm 6) run without heap traffic.
///
/// # Examples
///
/// ```
/// use idr_relation::{AttrSet, Attribute};
///
/// let a = Attribute::from_index(0);
/// let b = Attribute::from_index(1);
/// let mut s = AttrSet::empty();
/// s.insert(a);
/// let t = AttrSet::from_iter([a, b]);
/// assert!(s.is_subset(t));
/// assert_eq!((t - s).len(), 1);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct AttrSet {
    blocks: [u64; BLOCKS],
}

impl AttrSet {
    /// The empty set.
    #[inline]
    pub const fn empty() -> Self {
        AttrSet {
            blocks: [0; BLOCKS],
        }
    }

    /// The singleton set `{a}`.
    #[inline]
    pub fn singleton(a: Attribute) -> Self {
        let mut s = AttrSet::empty();
        s.insert(a);
        s
    }

    /// Inserts an attribute; returns `true` if it was newly added.
    #[inline]
    pub fn insert(&mut self, a: Attribute) -> bool {
        let (blk, bit) = Self::locate(a);
        let fresh = self.blocks[blk] & bit == 0;
        self.blocks[blk] |= bit;
        fresh
    }

    /// Removes an attribute; returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, a: Attribute) -> bool {
        let (blk, bit) = Self::locate(a);
        let present = self.blocks[blk] & bit != 0;
        self.blocks[blk] &= !bit;
        present
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, a: Attribute) -> bool {
        let (blk, bit) = Self::locate(a);
        self.blocks[blk] & bit != 0
    }

    /// Number of attributes in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.blocks.iter().all(|&b| b == 0)
    }

    /// `self ⊆ other`.
    #[inline]
    pub fn is_subset(&self, other: AttrSet) -> bool {
        self.blocks
            .iter()
            .zip(other.blocks.iter())
            .all(|(&a, &b)| a & !b == 0)
    }

    /// `self ⊂ other` (proper subset).
    #[inline]
    pub fn is_proper_subset(&self, other: AttrSet) -> bool {
        self.is_subset(other) && *self != other
    }

    /// `self ⊇ other`.
    #[inline]
    pub fn is_superset(&self, other: AttrSet) -> bool {
        other.is_subset(*self)
    }

    /// Whether the two sets share no attribute.
    #[inline]
    pub fn is_disjoint(&self, other: AttrSet) -> bool {
        self.blocks
            .iter()
            .zip(other.blocks.iter())
            .all(|(&a, &b)| a & b == 0)
    }

    /// Whether the two sets intersect.
    #[inline]
    pub fn intersects(&self, other: AttrSet) -> bool {
        !self.is_disjoint(other)
    }

    /// Two sets are *incomparable* when neither is a subset of the other
    /// (§2.1) — the distinction Algorithm 1 cases on.
    #[inline]
    pub fn is_incomparable(&self, other: AttrSet) -> bool {
        !self.is_subset(other) && !other.is_subset(*self)
    }

    /// Union.
    #[inline]
    pub fn union(mut self, other: AttrSet) -> AttrSet {
        self |= other;
        self
    }

    /// Intersection.
    #[inline]
    pub fn intersect(mut self, other: AttrSet) -> AttrSet {
        self &= other;
        self
    }

    /// Set difference.
    #[inline]
    pub fn difference(mut self, other: AttrSet) -> AttrSet {
        self -= other;
        self
    }

    /// Iterates over the attributes in ascending order.
    #[inline]
    pub fn iter(&self) -> AttrSetIter {
        AttrSetIter {
            set: *self,
            block: 0,
        }
    }

    /// The smallest attribute of the set, if any.
    pub fn first(&self) -> Option<Attribute> {
        self.iter().next()
    }

    /// Builds a set from any iterator of attributes (also available via
    /// the `FromIterator` impl).
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter<I: IntoIterator<Item = Attribute>>(iter: I) -> Self {
        let mut s = AttrSet::empty();
        for a in iter {
            s.insert(a);
        }
        s
    }

    /// Enumerates all subsets of `self`, including the empty set and `self`
    /// itself. Used by the small-scheme exact procedures (BCNF check,
    /// lossless-subset enumeration); callers guard against large sets.
    pub fn subsets(&self) -> impl Iterator<Item = AttrSet> + '_ {
        let elems: Vec<Attribute> = self.iter().collect();
        let n = elems.len();
        assert!(
            n <= 24,
            "refusing to enumerate 2^{n} subsets; guard the call site"
        );
        (0u32..(1u32 << n)).map(move |mask| {
            let mut s = AttrSet::empty();
            for (i, &a) in elems.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    s.insert(a);
                }
            }
            s
        })
    }

    /// Budgeted [`subsets`](Self::subsets): charges `2^|self|` enumeration
    /// units against `guard` before yielding anything, so an over-wide set
    /// produces a typed [`crate::exec::ExecError::BudgetExceeded`] instead
    /// of the panic in the unguarded version. Sets wider than 62 attributes
    /// always exceed (their subset count does not fit a `u64`).
    pub fn try_subsets(
        &self,
        guard: &crate::exec::Guard,
    ) -> Result<impl Iterator<Item = AttrSet>, crate::exec::ExecError> {
        let elems: Vec<Attribute> = self.iter().collect();
        let n = elems.len();
        if n > 62 {
            return Err(crate::exec::ExecError::BudgetExceeded {
                resource: crate::exec::Resource::Enumeration,
                limit: guard
                    .budget()
                    .max_enumeration
                    .unwrap_or(crate::exec::DEFAULT_MAX_ENUMERATION),
                spent: u64::MAX,
            });
        }
        let count = 1u64 << n;
        guard.enumeration(count)?;
        Ok((0..count).map(move |mask| {
            let mut s = AttrSet::empty();
            for (i, &a) in elems.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    s.insert(a);
                }
            }
            s
        }))
    }

    #[inline]
    fn locate(a: Attribute) -> (usize, u64) {
        let i = a.index();
        debug_assert!(i < MAX_ATTRS, "attribute index out of range");
        (i / 64, 1u64 << (i % 64))
    }
}

impl FromIterator<Attribute> for AttrSet {
    fn from_iter<I: IntoIterator<Item = Attribute>>(iter: I) -> Self {
        AttrSet::from_iter(iter)
    }
}

/// Iterator over the attributes of an [`AttrSet`] in ascending order.
pub struct AttrSetIter {
    set: AttrSet,
    block: usize,
}

impl Iterator for AttrSetIter {
    type Item = Attribute;

    #[inline]
    fn next(&mut self) -> Option<Attribute> {
        while self.block < BLOCKS {
            let bits = self.set.blocks[self.block];
            if bits != 0 {
                let tz = bits.trailing_zeros() as usize;
                self.set.blocks[self.block] &= bits - 1;
                return Some(Attribute::from_index(self.block * 64 + tz));
            }
            self.block += 1;
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.set.len();
        (n, Some(n))
    }
}

impl ExactSizeIterator for AttrSetIter {}

impl BitOr for AttrSet {
    type Output = AttrSet;
    #[inline]
    fn bitor(self, rhs: AttrSet) -> AttrSet {
        self.union(rhs)
    }
}

impl BitOrAssign for AttrSet {
    #[inline]
    fn bitor_assign(&mut self, rhs: AttrSet) {
        for (a, b) in self.blocks.iter_mut().zip(rhs.blocks.iter()) {
            *a |= b;
        }
    }
}

impl BitAnd for AttrSet {
    type Output = AttrSet;
    #[inline]
    fn bitand(self, rhs: AttrSet) -> AttrSet {
        self.intersect(rhs)
    }
}

impl BitAndAssign for AttrSet {
    #[inline]
    fn bitand_assign(&mut self, rhs: AttrSet) {
        for (a, b) in self.blocks.iter_mut().zip(rhs.blocks.iter()) {
            *a &= b;
        }
    }
}

impl Sub for AttrSet {
    type Output = AttrSet;
    #[inline]
    fn sub(self, rhs: AttrSet) -> AttrSet {
        self.difference(rhs)
    }
}

impl SubAssign for AttrSet {
    #[inline]
    fn sub_assign(&mut self, rhs: AttrSet) {
        for (a, b) in self.blocks.iter_mut().zip(rhs.blocks.iter()) {
            *a &= !b;
        }
    }
}

impl fmt::Debug for AttrSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for a in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{}", a.index())?;
            first = false;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attrs(idx: &[usize]) -> AttrSet {
        AttrSet::from_iter(idx.iter().map(|&i| Attribute::from_index(i)))
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = AttrSet::empty();
        let a = Attribute::from_index(3);
        assert!(s.insert(a));
        assert!(!s.insert(a));
        assert!(s.contains(a));
        assert!(s.remove(a));
        assert!(!s.remove(a));
        assert!(s.is_empty());
    }

    #[test]
    fn set_algebra() {
        let s = attrs(&[0, 1, 2]);
        let t = attrs(&[1, 2, 3]);
        assert_eq!(s.union(t), attrs(&[0, 1, 2, 3]));
        assert_eq!(s.intersect(t), attrs(&[1, 2]));
        assert_eq!(s.difference(t), attrs(&[0]));
        assert_eq!(s | t, s.union(t));
        assert_eq!(s & t, s.intersect(t));
        assert_eq!(s - t, s.difference(t));
    }

    #[test]
    fn subset_relations() {
        let s = attrs(&[1, 2]);
        let t = attrs(&[0, 1, 2]);
        assert!(s.is_subset(t));
        assert!(s.is_proper_subset(t));
        assert!(t.is_superset(s));
        assert!(!t.is_subset(s));
        assert!(s.is_subset(s));
        assert!(!s.is_proper_subset(s));
    }

    #[test]
    fn incomparable() {
        let s = attrs(&[0, 1]);
        let t = attrs(&[1, 2]);
        assert!(s.is_incomparable(t));
        assert!(!s.is_incomparable(s));
        assert!(!attrs(&[0]).is_incomparable(s));
    }

    #[test]
    fn disjointness() {
        assert!(attrs(&[0, 1]).is_disjoint(attrs(&[2, 3])));
        assert!(attrs(&[0, 1]).intersects(attrs(&[1, 2])));
        assert!(AttrSet::empty().is_disjoint(AttrSet::empty()));
    }

    #[test]
    fn iteration_is_sorted() {
        let s = attrs(&[5, 1, 200, 64, 63]);
        let got: Vec<usize> = s.iter().map(|a| a.index()).collect();
        assert_eq!(got, vec![1, 5, 63, 64, 200]);
        assert_eq!(s.len(), 5);
        assert_eq!(s.first(), Some(Attribute::from_index(1)));
    }

    #[test]
    fn cross_block_operations() {
        let s = attrs(&[0, 63, 64, 127, 128, 255]);
        let t = attrs(&[63, 128]);
        assert!(t.is_subset(s));
        assert_eq!((s - t).len(), 4);
        assert_eq!(s.intersect(t), t);
    }

    #[test]
    fn subsets_enumeration() {
        let s = attrs(&[0, 1, 2]);
        let subs: Vec<AttrSet> = s.subsets().collect();
        assert_eq!(subs.len(), 8);
        assert!(subs.contains(&AttrSet::empty()));
        assert!(subs.contains(&s));
        for sub in subs {
            assert!(sub.is_subset(s));
        }
    }

    #[test]
    fn ordering_is_total_and_consistent_with_eq() {
        let s = attrs(&[0]);
        let t = attrs(&[1]);
        assert_ne!(s.cmp(&t), std::cmp::Ordering::Equal);
        assert_eq!(s.cmp(&s), std::cmp::Ordering::Equal);
    }
}
