//! Budgeted, cancellable execution: resource budgets, work metering and
//! the typed failure taxonomy shared by every crate in the workspace.
//!
//! The paper's central results are *cost bounds*: boundedness counts chase
//! rule applications (Alg. 1, Cor. 3.1) and constant-time maintainability
//! counts single-tuple selections (Alg. 5, Thm. 3.4). This module turns
//! those cost models into enforced runtime contracts. A [`Budget`] states
//! how much of each resource a computation may spend; a [`Guard`] meters
//! the work as it happens; and every guard-taking entry point in the
//! workspace returns a typed [`ExecError`] — never a panic — when the
//! budget is exhausted, the deadline passes, the caller cancels, or an
//! injected storage fault proves permanent.
//!
//! The three metered resources mirror the paper's cost model exactly:
//!
//! * [`Resource::ChaseSteps`] — symbol-equating fd-rule applications, the
//!   unit in which boundedness is stated (§2.3, §3.1).
//! * [`Resource::Lookups`] — single-tuple selections against the state,
//!   the unit of Algorithm 4/5's constant-time claim (§2.7, §3.3).
//! * [`Resource::Enumeration`] — candidate subsets examined by the
//!   inherently exponential procedures (lossless-cover enumeration, FD
//!   projection); these were previously guarded by `assert!` and now fail
//!   typed.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Hard ceiling on subset enumeration used when a budget leaves
/// [`Budget::max_enumeration`] unset. Enumeration is exponential in its
/// input width, so unlike chase steps and lookups it is *never* unlimited:
/// an unbounded default would turn an adversarial 64-scheme family into a
/// non-terminating loop rather than a typed error.
pub const DEFAULT_MAX_ENUMERATION: u64 = 1 << 22;

/// The metered resource classes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Resource {
    /// Symbol-equating fd-rule applications of the chase.
    ChaseSteps,
    /// Single-tuple selections issued against a state or representative
    /// instance.
    Lookups,
    /// Candidate subsets examined by exponential enumeration.
    Enumeration,
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Resource::ChaseSteps => write!(f, "chase steps"),
            Resource::Lookups => write!(f, "lookups"),
            Resource::Enumeration => write!(f, "enumeration"),
        }
    }
}

/// Whether an injected or observed fault is worth retrying.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Retrying the same operation may succeed (e.g. a timed-out page
    /// read). The maintainers retry these under a [`RetryPolicy`].
    Transient,
    /// Retrying cannot help (e.g. checksum mismatch); surfaces immediately
    /// as [`ExecError::Faulted`].
    Permanent,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::Transient => write!(f, "transient"),
            FaultKind::Permanent => write!(f, "permanent"),
        }
    }
}

/// A single storage-level failure reported by a state-access
/// implementation (see `idr_core::exec::StateAccess`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Fault {
    /// Transient (retryable) or permanent.
    pub kind: FaultKind,
    /// Human-readable description of the failed operation.
    pub operation: String,
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} fault during {}", self.kind, self.operation)
    }
}

impl std::error::Error for Fault {}

/// Why a bounded entry point stopped without producing its result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExecError {
    /// A resource budget was exhausted. `limit` is the configured ceiling,
    /// `spent` the amount consumed when the guard tripped (`spent` may
    /// exceed `limit` when a single operation charges several units).
    BudgetExceeded {
        /// Which resource ran out.
        resource: Resource,
        /// The configured ceiling.
        limit: u64,
        /// Units consumed when the guard tripped.
        spent: u64,
    },
    /// The wall-clock deadline passed.
    TimedOut {
        /// Milliseconds elapsed since the guard was created.
        elapsed_ms: u64,
        /// The configured timeout in milliseconds.
        limit_ms: u64,
    },
    /// The caller cancelled via [`CancelToken::cancel`].
    Cancelled,
    /// A storage fault persisted through the retry policy (or was
    /// permanent to begin with).
    Faulted {
        /// The kind of the final fault.
        kind: FaultKind,
        /// Description of the failed operation.
        operation: String,
        /// Number of attempts made (1 = no retries).
        attempts: u32,
    },
    /// The computation itself found the state inconsistent — wraps the
    /// chase's `Inconsistent` and Algorithm 1's `KeInconsistent` so that
    /// callers of bounded entry points handle exactly one error type.
    Inconsistent {
        /// Rendered description of the violated dependency.
        detail: String,
    },
    /// A fixed-width identifier space ran out (e.g. the chase's `u32`
    /// node ids or the symbol table's `u32` intern ids). Unlike
    /// [`ExecError::BudgetExceeded`] this is not resumable: retrying with
    /// a larger budget cannot help, the structure is full.
    CapacityExceeded {
        /// Which identifier space ran out.
        what: &'static str,
        /// The hard ceiling that was hit.
        limit: u64,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::BudgetExceeded {
                resource,
                limit,
                spent,
            } => write!(
                f,
                "budget exceeded: {spent} {resource} spent, limit {limit}"
            ),
            ExecError::TimedOut {
                elapsed_ms,
                limit_ms,
            } => write!(f, "timed out after {elapsed_ms} ms (limit {limit_ms} ms)"),
            ExecError::Cancelled => write!(f, "cancelled"),
            ExecError::Faulted {
                kind,
                operation,
                attempts,
            } => write!(
                f,
                "{kind} fault during {operation} after {attempts} attempt(s)"
            ),
            ExecError::Inconsistent { detail } => {
                write!(f, "state inconsistent: {detail}")
            }
            ExecError::CapacityExceeded { what, limit } => {
                write!(f, "capacity exceeded: {what} full at {limit}")
            }
        }
    }
}

impl std::error::Error for ExecError {}

impl ExecError {
    /// Whether the error is a resource/deadline/cancellation failure (as
    /// opposed to a semantic inconsistency or a fault).
    pub fn is_resource_exhaustion(&self) -> bool {
        matches!(
            self,
            ExecError::BudgetExceeded { .. } | ExecError::TimedOut { .. } | ExecError::Cancelled
        )
    }
}

/// Resource limits for one bounded computation. `None` means unlimited
/// (except enumeration — see [`DEFAULT_MAX_ENUMERATION`]).
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use idr_relation::exec::Budget;
///
/// let b = Budget::unlimited()
///     .with_max_chase_steps(10_000)
///     .with_max_lookups(500)
///     .with_timeout(Duration::from_millis(50));
/// assert_eq!(b.max_chase_steps, Some(10_000));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Budget {
    /// Ceiling on chase fd-rule applications.
    pub max_chase_steps: Option<u64>,
    /// Ceiling on single-tuple selections.
    pub max_lookups: Option<u64>,
    /// Ceiling on enumeration units (candidate subsets examined).
    pub max_enumeration: Option<u64>,
    /// Wall-clock timeout, measured from [`Guard::new`].
    pub timeout: Option<Duration>,
}

impl Budget {
    /// No limits (enumeration still capped at
    /// [`DEFAULT_MAX_ENUMERATION`]).
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// Sets the chase-step ceiling.
    pub fn with_max_chase_steps(mut self, n: u64) -> Self {
        self.max_chase_steps = Some(n);
        self
    }

    /// Sets the lookup ceiling.
    pub fn with_max_lookups(mut self, n: u64) -> Self {
        self.max_lookups = Some(n);
        self
    }

    /// Sets the enumeration ceiling.
    pub fn with_max_enumeration(mut self, n: u64) -> Self {
        self.max_enumeration = Some(n);
        self
    }

    /// Sets the wall-clock timeout.
    pub fn with_timeout(mut self, d: Duration) -> Self {
        self.timeout = Some(d);
        self
    }
}

/// A handle that cancels the computation guarded by the [`Guard`] it was
/// obtained from. Cloneable and sendable to other threads.
#[derive(Clone, Debug)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// Requests cancellation; the guarded computation returns
    /// [`ExecError::Cancelled`] at its next metering point.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// A point-in-time copy of a [`Guard`]'s work counters, read with one
/// call ([`Guard::snapshot`]). The spent-getter triple survives as thin
/// wrappers over this.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GuardSnapshot {
    /// Chase steps (fd-rule applications) spent.
    pub chase_steps: u64,
    /// Index/hash lookups spent.
    pub lookups: u64,
    /// Enumeration units (tuples materialised) spent.
    pub enumeration: u64,
}

/// Meters the work of one bounded computation against a [`Budget`].
///
/// A guard is shared by reference across every stage of a pipeline (chase,
/// maintenance, query evaluation), so the budget applies to the *whole*
/// request, not to each stage separately. Counters are atomic; a guard may
/// be probed from several threads.
#[derive(Debug)]
pub struct Guard {
    budget: Budget,
    started: Instant,
    deadline: Option<Instant>,
    chase_steps: AtomicU64,
    lookups: AtomicU64,
    enumeration: AtomicU64,
    cancelled: Arc<AtomicBool>,
}

impl Guard {
    /// Creates a guard; the deadline clock starts now.
    pub fn new(budget: Budget) -> Self {
        let started = Instant::now();
        Guard {
            deadline: budget.timeout.map(|t| started + t),
            budget,
            started,
            chase_steps: AtomicU64::new(0),
            lookups: AtomicU64::new(0),
            enumeration: AtomicU64::new(0),
            cancelled: Arc::new(AtomicBool::new(false)),
        }
    }

    /// A guard with no limits — bounded entry points called with it behave
    /// exactly like their unbudgeted originals (modulo the enumeration
    /// backstop).
    pub fn unlimited() -> Self {
        Guard::new(Budget::unlimited())
    }

    /// The budget this guard enforces.
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    /// A token that cancels this guard's computation.
    pub fn cancel_token(&self) -> CancelToken {
        CancelToken {
            flag: Arc::clone(&self.cancelled),
        }
    }

    /// A point-in-time copy of all three work counters — the one call
    /// for reporting surfaces (metrics gauges, CLI summaries, bench
    /// reports) that would otherwise read the `*_spent()` getters
    /// separately.
    pub fn snapshot(&self) -> GuardSnapshot {
        GuardSnapshot {
            chase_steps: self.chase_steps.load(Ordering::Relaxed),
            lookups: self.lookups.load(Ordering::Relaxed),
            enumeration: self.enumeration.load(Ordering::Relaxed),
        }
    }

    /// Chase steps spent so far (thin wrapper over
    /// [`snapshot`](Guard::snapshot)).
    pub fn chase_steps_spent(&self) -> u64 {
        self.snapshot().chase_steps
    }

    /// Lookups spent so far (thin wrapper over
    /// [`snapshot`](Guard::snapshot)).
    pub fn lookups_spent(&self) -> u64 {
        self.snapshot().lookups
    }

    /// Enumeration units spent so far (thin wrapper over
    /// [`snapshot`](Guard::snapshot)).
    pub fn enumeration_spent(&self) -> u64 {
        self.snapshot().enumeration
    }

    /// Checks deadline and cancellation without charging any resource.
    /// Cheap enough for per-pass use in inner loops.
    pub fn checkpoint(&self) -> Result<(), ExecError> {
        if self.cancelled.load(Ordering::Relaxed) {
            return Err(ExecError::Cancelled);
        }
        if let Some(deadline) = self.deadline {
            let now = Instant::now();
            if now >= deadline {
                return Err(ExecError::TimedOut {
                    elapsed_ms: now.duration_since(self.started).as_millis() as u64,
                    limit_ms: self
                        .budget
                        .timeout
                        .map(|t| t.as_millis() as u64)
                        .unwrap_or(0),
                });
            }
        }
        Ok(())
    }

    /// Charges one chase rule application.
    pub fn chase_step(&self) -> Result<(), ExecError> {
        self.charge(
            Resource::ChaseSteps,
            &self.chase_steps,
            self.budget.max_chase_steps,
            1,
        )
    }

    /// Charges one single-tuple selection.
    pub fn lookup(&self) -> Result<(), ExecError> {
        self.charge(Resource::Lookups, &self.lookups, self.budget.max_lookups, 1)
    }

    /// Charges `n` enumeration units. Unlike the other resources,
    /// enumeration is always finite: an unset budget falls back to
    /// [`DEFAULT_MAX_ENUMERATION`].
    pub fn enumeration(&self, n: u64) -> Result<(), ExecError> {
        let limit = self
            .budget
            .max_enumeration
            .unwrap_or(DEFAULT_MAX_ENUMERATION);
        self.charge(Resource::Enumeration, &self.enumeration, Some(limit), n)
    }

    fn charge(
        &self,
        resource: Resource,
        counter: &AtomicU64,
        limit: Option<u64>,
        n: u64,
    ) -> Result<(), ExecError> {
        self.checkpoint()?;
        let spent = counter.fetch_add(n, Ordering::Relaxed).saturating_add(n);
        if let Some(limit) = limit {
            if spent > limit {
                return Err(ExecError::BudgetExceeded {
                    resource,
                    limit,
                    spent,
                });
            }
        }
        Ok(())
    }
}

impl Default for Guard {
    fn default() -> Self {
        Guard::unlimited()
    }
}

/// Bounded retry with exponential backoff, applied by the maintainers to
/// transient storage faults.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (`0` = fail on first fault).
    pub max_retries: u32,
    /// Sleep before the first retry; doubles each retry. `ZERO` disables
    /// sleeping (the right setting for tests and for in-memory backends).
    pub base_backoff: Duration,
}

impl RetryPolicy {
    /// No retries: every fault, transient or not, surfaces immediately.
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            base_backoff: Duration::ZERO,
        }
    }

    /// `max_retries` retries with no backoff sleep.
    pub fn retries(max_retries: u32) -> Self {
        RetryPolicy {
            max_retries,
            base_backoff: Duration::ZERO,
        }
    }

    /// Sets the base backoff duration.
    pub fn with_base_backoff(mut self, d: Duration) -> Self {
        self.base_backoff = d;
        self
    }

    /// Runs `op`, retrying transient faults up to `max_retries` times with
    /// exponential backoff. Permanent faults and exhausted retries map to
    /// [`ExecError::Faulted`]; the guard's deadline and cancellation are
    /// honoured between attempts.
    pub fn run<T>(
        &self,
        guard: &Guard,
        mut op: impl FnMut() -> Result<T, Fault>,
    ) -> Result<T, ExecError> {
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            match op() {
                Ok(v) => return Ok(v),
                Err(fault) => {
                    let retryable =
                        fault.kind == FaultKind::Transient && attempts <= self.max_retries;
                    if !retryable {
                        return Err(ExecError::Faulted {
                            kind: fault.kind,
                            operation: fault.operation,
                            attempts,
                        });
                    }
                    if !self.base_backoff.is_zero() {
                        // Exponential backoff capped at 2^10 × base.
                        let factor = 1u32 << (attempts - 1).min(10);
                        std::thread::sleep(self.base_backoff * factor);
                    }
                    guard.checkpoint()?;
                }
            }
        }
    }
}

impl Default for RetryPolicy {
    /// Three retries, 1 ms base backoff — degrades gracefully on flaky
    /// backends without stalling an interactive caller.
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_backoff: Duration::from_millis(1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_trips_typed() {
        let g = Guard::new(Budget::unlimited().with_max_lookups(2));
        assert!(g.lookup().is_ok());
        assert!(g.lookup().is_ok());
        let err = g.lookup().unwrap_err();
        assert_eq!(
            err,
            ExecError::BudgetExceeded {
                resource: Resource::Lookups,
                limit: 2,
                spent: 3
            }
        );
    }

    #[test]
    fn enumeration_has_a_backstop() {
        let g = Guard::unlimited();
        let err = g.enumeration(DEFAULT_MAX_ENUMERATION + 1).unwrap_err();
        assert!(matches!(
            err,
            ExecError::BudgetExceeded {
                resource: Resource::Enumeration,
                ..
            }
        ));
    }

    #[test]
    fn deadline_fires() {
        let g = Guard::new(Budget::unlimited().with_timeout(Duration::ZERO));
        assert!(matches!(g.checkpoint(), Err(ExecError::TimedOut { .. })));
    }

    #[test]
    fn cancellation_fires() {
        let g = Guard::unlimited();
        let token = g.cancel_token();
        assert!(g.checkpoint().is_ok());
        token.cancel();
        assert_eq!(g.checkpoint(), Err(ExecError::Cancelled));
        assert_eq!(g.chase_step(), Err(ExecError::Cancelled));
    }

    #[test]
    fn retry_policy_retries_transients() {
        let g = Guard::unlimited();
        let mut failures_left = 2;
        let out = RetryPolicy::retries(3).run(&g, || {
            if failures_left > 0 {
                failures_left -= 1;
                Err(Fault {
                    kind: FaultKind::Transient,
                    operation: "lookup".into(),
                })
            } else {
                Ok(41)
            }
        });
        assert_eq!(out.unwrap(), 41);
    }

    #[test]
    fn retry_policy_fails_permanents_immediately() {
        let g = Guard::unlimited();
        let mut calls = 0;
        let out: Result<(), ExecError> = RetryPolicy::retries(5).run(&g, || {
            calls += 1;
            Err(Fault {
                kind: FaultKind::Permanent,
                operation: "lookup".into(),
            })
        });
        assert_eq!(calls, 1);
        assert!(matches!(
            out,
            Err(ExecError::Faulted {
                kind: FaultKind::Permanent,
                attempts: 1,
                ..
            })
        ));
    }

    #[test]
    fn retry_policy_exhausts_into_faulted() {
        let g = Guard::unlimited();
        let out: Result<(), ExecError> = RetryPolicy::retries(2).run(&g, || {
            Err(Fault {
                kind: FaultKind::Transient,
                operation: "lookup".into(),
            })
        });
        assert!(matches!(
            out,
            Err(ExecError::Faulted {
                kind: FaultKind::Transient,
                attempts: 3,
                ..
            })
        ));
    }

    #[test]
    fn errors_render() {
        let e = ExecError::BudgetExceeded {
            resource: Resource::ChaseSteps,
            limit: 10,
            spent: 11,
        };
        assert!(e.to_string().contains("chase steps"));
        assert!(e.is_resource_exhaustion());
        let f = ExecError::Faulted {
            kind: FaultKind::Permanent,
            operation: "select".into(),
            attempts: 1,
        };
        assert!(!f.is_resource_exhaustion());
        assert!(f.to_string().contains("permanent"));
    }
}
