//! Text formats for schemes, states and tuples — the `idr` CLI's file
//! formats, factored here so the fuzzing oracle's replayable corpus
//! fixtures (`idr-oracle`) parse and render the exact same syntax.
//!
//! ## Scheme files
//!
//! ```text
//! # comments and blank lines are ignored
//! universe: H R C T S G
//! scheme R1: H R C  keys H R
//! scheme R2: H T R  keys H T | H R
//! ```
//!
//! Attribute names are whitespace-separated tokens; alternative keys are
//! separated by `|`.
//!
//! ## State files
//!
//! One tuple per line: the relation name, a colon, then `ATTR=value`
//! pairs covering exactly the relation's attributes.
//!
//! ```text
//! R1: H=h1 R=r1 C=c1
//! R4: C=c1 S=s1 G=g1
//! ```
//!
//! Errors are human-readable strings prefixed with the 1-based line
//! number (`"line 3: unknown attribute \"Z\""`), which the CLI maps to
//! its parse-error exit code.

use crate::{
    AttrSet, DatabaseScheme, DatabaseState, RelationScheme, SymbolTable, Tuple, Universe,
};

/// Parses the scheme file format described in the module docs.
pub fn parse_scheme(text: &str) -> Result<DatabaseScheme, String> {
    let mut universe = Universe::new();
    let mut universe_seen = false;
    let mut schemes: Vec<RelationScheme> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let at = |msg: &str| format!("line {}: {msg}", lineno + 1);
        if let Some(rest) = line.strip_prefix("universe:") {
            for tok in rest.split_whitespace() {
                universe.add(tok).map_err(|e| at(&format!("{e}")))?;
            }
            universe_seen = true;
        } else if let Some(rest) = line.strip_prefix("scheme ") {
            if !universe_seen {
                return Err(at("'universe:' must come before schemes"));
            }
            let (name, body) = rest
                .split_once(':')
                .ok_or_else(|| at("expected 'scheme NAME: ATTRS keys K1 | K2'"))?;
            let (attrs_part, keys_part) = body
                .split_once("keys")
                .ok_or_else(|| at("missing 'keys' clause"))?;
            let mut attrs = AttrSet::empty();
            for tok in attrs_part.split_whitespace() {
                let a = universe
                    .attr(tok)
                    .ok_or_else(|| at(&format!("unknown attribute {tok:?}")))?;
                attrs.insert(a);
            }
            let mut keys = Vec::new();
            for alt in keys_part.split('|') {
                let mut k = AttrSet::empty();
                for tok in alt.split_whitespace() {
                    let a = universe
                        .attr(tok)
                        .ok_or_else(|| at(&format!("unknown attribute {tok:?}")))?;
                    k.insert(a);
                }
                if !k.is_empty() {
                    keys.push(k);
                }
            }
            schemes.push(
                RelationScheme::new(name.trim(), attrs, keys)
                    .map_err(|e| at(&format!("{e}")))?,
            );
        } else {
            return Err(at("expected 'universe:' or 'scheme ...'"));
        }
    }
    DatabaseScheme::new(universe, schemes).map_err(|e| format!("{e}"))
}

/// Parses one `NAME: ATTR=value ...` state line into a relation index and
/// a tuple covering exactly that relation's attributes.
pub fn parse_tuple_line(
    line: &str,
    db: &DatabaseScheme,
    symbols: &mut SymbolTable,
) -> Result<(usize, Tuple), String> {
    let u = db.universe();
    let (name, body) = line
        .split_once(':')
        .ok_or_else(|| "expected 'NAME: ATTR=value ...'".to_string())?;
    let name = name.trim();
    let i = (0..db.len())
        .find(|&i| db.scheme(i).name() == name)
        .ok_or_else(|| format!("unknown relation {name:?}"))?;
    let mut pairs = Vec::new();
    for tok in body.split_whitespace() {
        let (attr, value) = tok
            .split_once('=')
            .ok_or_else(|| format!("expected ATTR=value, got {tok:?}"))?;
        let a = u
            .attr(attr)
            .ok_or_else(|| format!("unknown attribute {attr:?}"))?;
        pairs.push((a, symbols.intern(value)));
    }
    let t = Tuple::from_pairs(pairs);
    if t.attrs() != db.scheme(i).attrs() {
        return Err(format!(
            "tuple covers {} but {name} has attributes {}",
            u.render(t.attrs()),
            u.render(db.scheme(i).attrs())
        ));
    }
    Ok((i, t))
}

/// Parses the state file format described in the module docs: one
/// `NAME: ATTR=value ...` tuple per line, values interned into `symbols`.
pub fn parse_state(
    text: &str,
    db: &DatabaseScheme,
    symbols: &mut SymbolTable,
) -> Result<DatabaseState, String> {
    let mut state = DatabaseState::empty(db);
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let at = |msg: &str| format!("line {}: {msg}", lineno + 1);
        let (i, t) = parse_tuple_line(line, db, symbols).map_err(|e| at(&e))?;
        state.insert(i, t).map_err(|e| at(&format!("{e}")))?;
    }
    Ok(state)
}

/// Renders a scheme back into the scheme file format; the output
/// round-trips through [`parse_scheme`] to an equal scheme. Attribute
/// names are space-separated, so multi-character names survive.
pub fn render_scheme_file(db: &DatabaseScheme) -> String {
    let u = db.universe();
    let set = |s: AttrSet| {
        s.iter()
            .map(|a| u.name(a).to_string())
            .collect::<Vec<_>>()
            .join(" ")
    };
    let mut out = String::from("universe:");
    for a in u.iter() {
        out.push(' ');
        out.push_str(u.name(a));
    }
    out.push('\n');
    for s in db.schemes() {
        let keys = s
            .keys()
            .iter()
            .map(|&k| set(k))
            .collect::<Vec<_>>()
            .join(" | ");
        out.push_str(&format!(
            "scheme {}: {} keys {}\n",
            s.name(),
            set(s.attrs()),
            keys
        ));
    }
    out
}

/// Renders one `(relation, tuple)` pair as a state-file line
/// (`R1: H=h1 R=r1`), round-tripping through [`parse_tuple_line`].
pub fn render_tuple_line(
    db: &DatabaseScheme,
    symbols: &SymbolTable,
    i: usize,
    t: &Tuple,
) -> String {
    let u = db.universe();
    let pairs = t
        .iter()
        .map(|(a, v)| format!("{}={}", u.name(a), symbols.resolve(v)))
        .collect::<Vec<_>>()
        .join(" ");
    format!("{}: {}", db.scheme(i).name(), pairs)
}

/// Renders a full state as state-file lines, relation by relation.
pub fn render_state_file(
    db: &DatabaseScheme,
    state: &DatabaseState,
    symbols: &SymbolTable,
) -> String {
    let mut out = String::new();
    for (i, t) in state.iter_all() {
        out.push_str(&render_tuple_line(db, symbols, i, t));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const EXAMPLE1: &str = "
# Example 1 of the paper
universe: C T H R S G
scheme R1: H R C  keys H R
scheme R2: H T R  keys H T | H R
scheme R3: H T C  keys H T
scheme R4: C S G  keys C S
scheme R5: H S R  keys H S
";

    #[test]
    fn parses_example1() {
        let db = parse_scheme(EXAMPLE1).unwrap();
        assert_eq!(db.len(), 5);
        assert_eq!(db.scheme(1).keys().len(), 2);
    }

    #[test]
    fn rejects_unknown_attribute() {
        let err = parse_scheme("universe: A B\nscheme R1: A Z keys A").unwrap_err();
        assert!(err.contains("unknown attribute"));
    }

    #[test]
    fn rejects_scheme_before_universe() {
        let err = parse_scheme("scheme R1: A keys A").unwrap_err();
        assert!(err.contains("universe"));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let db = parse_scheme("# hi\n\nuniverse: A B\n# mid\nscheme R1: A B keys A\n").unwrap();
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn parses_a_state_file() {
        let db = parse_scheme(EXAMPLE1).unwrap();
        let mut sym = SymbolTable::new();
        let state = parse_state(
            "# registrar\nR1: H=h1 R=r1 C=c1\nR4: C=c1 S=s1 G=g1\n",
            &db,
            &mut sym,
        )
        .unwrap();
        assert_eq!(state.total_tuples(), 2);
        assert_eq!(state.relation(0).len(), 1);
        assert_eq!(state.relation(3).len(), 1);
    }

    #[test]
    fn state_parser_rejects_bad_lines() {
        let db = parse_scheme(EXAMPLE1).unwrap();
        let mut sym = SymbolTable::new();
        for (text, needle) in [
            ("R9: H=h", "unknown relation"),
            ("R1: H=h1", "tuple covers"),
            ("R1: H=h1 R=r1 Z=z", "unknown attribute"),
            ("R1 H=h1", "expected 'NAME:"),
            ("R1: H", "expected ATTR=value"),
        ] {
            let err = parse_state(text, &db, &mut sym).unwrap_err();
            assert!(err.contains(needle), "{text:?} gave {err:?}");
        }
    }

    #[test]
    fn scheme_file_round_trips() {
        let db = parse_scheme(EXAMPLE1).unwrap();
        let rendered = render_scheme_file(&db);
        let back = parse_scheme(&rendered).unwrap();
        assert_eq!(render_scheme_file(&back), rendered);
        assert_eq!(back.len(), db.len());
        for i in 0..db.len() {
            assert_eq!(back.scheme(i).name(), db.scheme(i).name());
            assert_eq!(back.scheme(i).attrs(), db.scheme(i).attrs());
            assert_eq!(back.scheme(i).keys(), db.scheme(i).keys());
        }
    }

    #[test]
    fn state_file_round_trips_with_multichar_names() {
        let db = parse_scheme(
            "universe: X0 X1 X2\nscheme R0: X0 X1 keys X0\nscheme R1: X1 X2 keys X2\n",
        )
        .unwrap();
        let mut sym = SymbolTable::new();
        let state = parse_state("R0: X0=a_1 X1=b\nR1: X1=b X2=c\n", &db, &mut sym).unwrap();
        let rendered = render_state_file(&db, &state, &sym);
        let mut sym2 = SymbolTable::new();
        let back = parse_state(&rendered, &db, &mut sym2).unwrap();
        assert_eq!(back.total_tuples(), state.total_tuples());
        assert_eq!(render_state_file(&db, &back, &sym2), rendered);
    }
}
