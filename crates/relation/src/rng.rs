//! A small, dependency-free deterministic PRNG (SplitMix64).
//!
//! The workspace builds fully offline, so the workload generators and the
//! randomized test suites cannot pull `rand` from the registry. SplitMix64
//! (Steele, Lea & Flood, *Fast Splittable Pseudorandom Number Generators*,
//! OOPSLA 2014) is a 64-bit mixing generator with a one-word state: more
//! than adequate statistical quality for generating test schemes and
//! states, trivially seedable, and guaranteed to produce identical streams
//! on every platform — which keeps the EXPERIMENTS.md workloads
//! reproducible byte-for-byte.

/// A deterministic SplitMix64 pseudorandom number generator.
///
/// # Examples
///
/// ```
/// use idr_relation::rng::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// let x = a.gen_range(0, 10);
/// assert!(x < 10);
/// ```
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `[lo, hi)`. `hi` must be greater than `lo`.
    pub fn gen_range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "gen_range: empty range {lo}..{hi}");
        let span = (hi - lo) as u64;
        // Multiply-shift bounded generation (Lemire); the bias for spans
        // this small (test-scale) is far below anything observable.
        let x = self.next_u64();
        lo + (((x as u128 * span as u128) >> 64) as usize)
    }

    /// An inclusive-range convenience: uniform in `[lo, hi]`.
    pub fn gen_range_inclusive(&mut self, lo: usize, hi: usize) -> usize {
        self.gen_range(lo, hi + 1)
    }

    /// Bernoulli draw: `true` with probability `pct`/100.
    pub fn gen_pct(&mut self, pct: u32) -> bool {
        (self.gen_range(0, 100) as u32) < pct
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.gen_range(0, i + 1);
            xs.swap(i, j);
        }
    }

    /// Derives an independent generator (the "split" of SplitMix64): used
    /// by test drivers to give each case its own stream.
    pub fn split(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = SplitMix64::new(0xDEAD_BEEF);
        let mut b = SplitMix64::new(0xDEAD_BEEF);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn reference_vector() {
        // First outputs of SplitMix64 seeded with 0 (published reference).
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(r.next_u64(), 0x6E78_9E6A_A1B9_65F4);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            let x = r.gen_range(3, 9);
            assert!((3..9).contains(&x));
        }
        // All values of a small range are hit.
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[r.gen_range(0, 5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SplitMix64::new(11);
        let mut v: Vec<usize> = (0..20).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }
}
