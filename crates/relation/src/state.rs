use crate::error::RelationError;
use crate::relation::Relation;
use crate::schema::DatabaseScheme;
use crate::symbol::SymbolTable;
use crate::tuple::Tuple;

/// A database state `r = <r1, …, rk>` (§2.1): one relation per relation
/// scheme, in scheme order.
#[derive(Clone, Debug)]
pub struct DatabaseState {
    relations: Vec<Relation>,
}

impl DatabaseState {
    /// Creates the empty state for a database scheme.
    pub fn empty(scheme: &DatabaseScheme) -> Self {
        DatabaseState {
            relations: scheme
                .schemes()
                .iter()
                .map(|s| Relation::new(s.attrs()))
                .collect(),
        }
    }

    /// The relation for scheme index `i`.
    pub fn relation(&self, i: usize) -> &Relation {
        &self.relations[i]
    }

    /// All relations, in scheme order.
    pub fn relations(&self) -> &[Relation] {
        &self.relations
    }

    /// Inserts a tuple into relation `i`; returns `true` if it was new.
    pub fn insert(&mut self, i: usize, t: Tuple) -> Result<bool, RelationError> {
        self.relations
            .get_mut(i)
            .ok_or(RelationError::UnknownRelation(i))?
            .insert(t)
    }

    /// Removes a tuple from relation `i`; returns `true` if it was present.
    pub fn remove(&mut self, i: usize, t: &Tuple) -> Result<bool, RelationError> {
        Ok(self
            .relations
            .get_mut(i)
            .ok_or(RelationError::UnknownRelation(i))?
            .remove(t))
    }

    /// Total number of tuples in the state.
    pub fn total_tuples(&self) -> usize {
        self.relations.iter().map(Relation::len).sum()
    }

    /// Whether every relation is empty.
    pub fn is_empty(&self) -> bool {
        self.relations.iter().all(Relation::is_empty)
    }

    /// Iterates `(scheme index, tuple)` over all tuples.
    pub fn iter_all(&self) -> impl Iterator<Item = (usize, &Tuple)> {
        self.relations
            .iter()
            .enumerate()
            .flat_map(|(i, r)| r.iter().map(move |t| (i, t)))
    }

    /// Restricts the state to the relations of a subset of schemes,
    /// preserving the given index order. Used to form block substates in
    /// Sections 4–5.
    pub fn substate(&self, indices: &[usize]) -> DatabaseState {
        DatabaseState {
            relations: indices.iter().map(|&i| self.relations[i].clone()).collect(),
        }
    }

    /// State union `s ∪ r` (componentwise, §2.1).
    pub fn union(&self, other: &DatabaseState) -> Result<DatabaseState, RelationError> {
        let relations = self
            .relations
            .iter()
            .zip(other.relations.iter())
            .map(|(a, b)| a.union(b))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(DatabaseState { relations })
    }

    /// Pretty-prints the state for examples and debugging.
    pub fn render(&self, scheme: &DatabaseScheme, symbols: &SymbolTable) -> String {
        let mut out = String::new();
        for (i, r) in self.relations.iter().enumerate() {
            out.push_str(scheme.scheme(i).name());
            out.push('(');
            out.push_str(&scheme.universe().render(r.attrs()));
            out.push_str("):");
            if r.is_empty() {
                out.push_str(" ∅\n");
                continue;
            }
            out.push('\n');
            for t in r.iter() {
                out.push_str("  ");
                out.push_str(&t.render(scheme.universe(), symbols));
                out.push('\n');
            }
        }
        out
    }
}

/// Convenience for building states in fixtures: tuples given as
/// `(scheme name, [(attr, value)])` in single-character attribute notation.
pub fn state_of(
    scheme: &DatabaseScheme,
    symbols: &mut SymbolTable,
    rows: &[(&str, &[(&str, &str)])],
) -> Result<DatabaseState, RelationError> {
    let mut state = DatabaseState::empty(scheme);
    for (name, pairs) in rows {
        let i = scheme
            .index_of(name)
            .ok_or(RelationError::UnknownRelation(usize::MAX))?;
        let t = Tuple::from_pairs(
            pairs
                .iter()
                .map(|&(a, v)| (scheme.universe().attr_of(a), symbols.intern(v))),
        );
        state.insert(i, t)?;
    }
    Ok(state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::SchemeBuilder;

    fn db() -> DatabaseScheme {
        SchemeBuilder::new("ABC")
            .scheme("R1", "AB", ["A"])
            .scheme("R2", "BC", ["B"])
            .build()
            .unwrap()
    }

    #[test]
    fn empty_state_has_right_shape() {
        let scheme = db();
        let s = DatabaseState::empty(&scheme);
        assert_eq!(s.relations().len(), 2);
        assert!(s.is_empty());
        assert_eq!(s.total_tuples(), 0);
    }

    #[test]
    fn state_of_builds_and_inserts() {
        let scheme = db();
        let mut sym = SymbolTable::new();
        let s = state_of(
            &scheme,
            &mut sym,
            &[
                ("R1", &[("A", "a"), ("B", "b")]),
                ("R2", &[("B", "b"), ("C", "c")]),
            ],
        )
        .unwrap();
        assert_eq!(s.total_tuples(), 2);
        assert_eq!(s.relation(0).len(), 1);
        let all: Vec<_> = s.iter_all().collect();
        assert_eq!(all.len(), 2);
    }

    #[test]
    fn substate_selects_relations() {
        let scheme = db();
        let mut sym = SymbolTable::new();
        let s = state_of(&scheme, &mut sym, &[("R2", &[("B", "b"), ("C", "c")])]).unwrap();
        let sub = s.substate(&[1]);
        assert_eq!(sub.relations().len(), 1);
        assert_eq!(sub.relation(0).len(), 1);
    }

    #[test]
    fn union_is_componentwise() {
        let scheme = db();
        let mut sym = SymbolTable::new();
        let s1 = state_of(&scheme, &mut sym, &[("R1", &[("A", "a"), ("B", "b")])]).unwrap();
        let s2 = state_of(&scheme, &mut sym, &[("R1", &[("A", "a2"), ("B", "b")])]).unwrap();
        let u = s1.union(&s2).unwrap();
        assert_eq!(u.relation(0).len(), 2);
    }
}
