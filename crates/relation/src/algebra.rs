//! Relational-algebra expressions (§2.6–§2.7 of the paper).
//!
//! The boundedness results of the paper (Corollary 3.1(b), Theorem 4.1) are
//! statements about *predetermined relational expressions*: unions of
//! projections of joins of relation schemes. This module provides a small
//! AST for exactly that fragment — relation references, natural join,
//! projection, conjunctive selection, union — plus constructors for the
//! paper's *extension joins* and *sequential joins*, and an evaluator over
//! [`DatabaseState`]s.

use std::fmt;

use crate::attrset::AttrSet;
use crate::error::RelationError;
use crate::relation::Relation;
use crate::schema::DatabaseScheme;
use crate::state::DatabaseState;
use crate::symbol::Value;
use crate::universe::Attribute;

/// A relational-algebra expression over a database scheme.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// A base relation, by scheme index.
    Rel(usize),
    /// Projection `π_X(e)`.
    Project(AttrSet, Box<Expr>),
    /// Conjunctive selection `σ_{A1=c1 ∧ …}(e)` (§2.7).
    Select(Vec<(Attribute, Value)>, Box<Expr>),
    /// Natural join `e1 ⋈ e2`.
    Join(Box<Expr>, Box<Expr>),
    /// Union `e1 ∪ e2` (both sides must have the same output scheme).
    Union(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// A base-relation reference.
    pub fn rel(i: usize) -> Expr {
        Expr::Rel(i)
    }

    /// Projection.
    pub fn project(self, x: AttrSet) -> Expr {
        Expr::Project(x, Box::new(self))
    }

    /// Conjunctive selection.
    pub fn select(self, formula: Vec<(Attribute, Value)>) -> Expr {
        Expr::Select(formula, Box::new(self))
    }

    /// Natural join.
    pub fn join(self, other: Expr) -> Expr {
        Expr::Join(Box::new(self), Box::new(other))
    }

    /// Union.
    pub fn union(self, other: Expr) -> Expr {
        Expr::Union(Box::new(self), Box::new(other))
    }

    /// The *sequential join* `((Ri1 ⋈ Ri2) ⋈ …) ⋈ Rim` over scheme indices
    /// (§2.6). Panics on an empty sequence.
    pub fn sequential(indices: &[usize]) -> Expr {
        assert!(!indices.is_empty(), "sequential join of nothing");
        let mut e = Expr::rel(indices[0]);
        for &i in &indices[1..] {
            e = e.join(Expr::rel(i));
        }
        e
    }

    /// A union over a nonempty list of expressions.
    pub fn union_all(mut exprs: Vec<Expr>) -> Expr {
        assert!(!exprs.is_empty(), "union of nothing");
        let mut e = exprs.remove(0);
        for x in exprs {
            e = e.union(x);
        }
        e
    }

    /// Computes the output attribute set of the expression and validates it
    /// (projections contained, selections contained, unions compatible).
    pub fn output_scheme(&self, scheme: &DatabaseScheme) -> Result<AttrSet, RelationError> {
        match self {
            Expr::Rel(i) => scheme
                .schemes()
                .get(*i)
                .map(|s| s.attrs())
                .ok_or(RelationError::UnknownRelation(*i)),
            Expr::Project(x, e) => {
                let inner = e.output_scheme(scheme)?;
                if !x.is_subset(inner) {
                    return Err(RelationError::ProjectionNotContained);
                }
                Ok(*x)
            }
            Expr::Select(formula, e) => {
                let inner = e.output_scheme(scheme)?;
                for &(a, _) in formula {
                    if !inner.contains(a) {
                        return Err(RelationError::SelectionNotContained);
                    }
                }
                Ok(inner)
            }
            Expr::Join(l, r) => Ok(l.output_scheme(scheme)? | r.output_scheme(scheme)?),
            Expr::Union(l, r) => {
                let ls = l.output_scheme(scheme)?;
                let rs = r.output_scheme(scheme)?;
                if ls != rs {
                    return Err(RelationError::UnionSchemeMismatch);
                }
                Ok(ls)
            }
        }
    }

    /// Evaluates the expression over a database state.
    #[allow(clippy::only_used_in_recursion)]
    pub fn eval(
        &self,
        scheme: &DatabaseScheme,
        state: &DatabaseState,
    ) -> Result<Relation, RelationError> {
        match self {
            Expr::Rel(i) => {
                if *i >= state.relations().len() {
                    return Err(RelationError::UnknownRelation(*i));
                }
                Ok(state.relation(*i).clone())
            }
            Expr::Project(x, e) => e.eval(scheme, state)?.project(*x),
            Expr::Select(formula, e) => e.eval(scheme, state)?.select(formula),
            Expr::Join(l, r) => Ok(l.eval(scheme, state)?.join(&r.eval(scheme, state)?)),
            Expr::Union(l, r) => {
                let lv = l.eval(scheme, state)?;
                let rv = r.eval(scheme, state)?;
                lv.union(&rv)
            }
        }
    }

    /// Counts base-relation references — a proxy for expression size used
    /// in the boundedness experiments.
    pub fn rel_refs(&self) -> usize {
        match self {
            Expr::Rel(_) => 1,
            Expr::Project(_, e) | Expr::Select(_, e) => e.rel_refs(),
            Expr::Join(l, r) | Expr::Union(l, r) => l.rel_refs() + r.rel_refs(),
        }
    }

    /// Renders the expression with scheme names for display.
    pub fn render(&self, scheme: &DatabaseScheme) -> String {
        struct D<'a>(&'a Expr, &'a DatabaseScheme);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                match self.0 {
                    Expr::Rel(i) => write!(f, "{}", self.1.scheme(*i).name()),
                    Expr::Project(x, e) => {
                        write!(
                            f,
                            "π[{}]({})",
                            self.1.universe().render(*x),
                            D(e, self.1)
                        )
                    }
                    Expr::Select(formula, e) => {
                        write!(f, "σ[")?;
                        for (i, (a, v)) in formula.iter().enumerate() {
                            if i > 0 {
                                write!(f, "∧")?;
                            }
                            write!(f, "{}=v{}", self.1.universe().name(*a), v.index())?;
                        }
                        write!(f, "]({})", D(e, self.1))
                    }
                    Expr::Join(l, r) => write!(f, "({} ⋈ {})", D(l, self.1), D(r, self.1)),
                    Expr::Union(l, r) => write!(f, "({} ∪ {})", D(l, self.1), D(r, self.1)),
                }
            }
        }
        format!("{}", D(self, scheme))
    }
}

/// Checks whether `e1 ⋈ e2` is an *extension join* (§2.6): there is
/// `Y ⊆ R2 − R1` with `R2 ∩ R1 → Y ∈ F⁺` — i.e. the join extends tuples of
/// `e1` by functionally determined new attributes. The FD check is supplied
/// as a closure so this crate stays independent of the FD crate.
pub fn is_extension_join<F>(r1: AttrSet, r2: AttrSet, implies: F) -> bool
where
    F: Fn(AttrSet, AttrSet) -> bool,
{
    let common = r1 & r2;
    let new = r2 - r1;
    !new.is_empty() && implies(common, new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::SchemeBuilder;
    use crate::state::state_of;
    use crate::symbol::SymbolTable;

    fn setup() -> (DatabaseScheme, SymbolTable, DatabaseState) {
        let scheme = SchemeBuilder::new("ABC")
            .scheme("R1", "AB", ["A"])
            .scheme("R2", "BC", ["B"])
            .build()
            .unwrap();
        let mut sym = SymbolTable::new();
        let state = state_of(
            &scheme,
            &mut sym,
            &[
                ("R1", &[("A", "a1"), ("B", "b1")]),
                ("R1", &[("A", "a2"), ("B", "b2")]),
                ("R2", &[("B", "b1"), ("C", "c1")]),
            ],
        )
        .unwrap();
        (scheme, sym, state)
    }

    #[test]
    fn join_project_eval() {
        let (scheme, _sym, state) = setup();
        let x = scheme.universe().set_of("AC");
        let e = Expr::rel(0).join(Expr::rel(1)).project(x);
        assert_eq!(e.output_scheme(&scheme).unwrap(), x);
        let r = e.eval(&scheme, &state).unwrap();
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn select_eval() {
        let (scheme, mut sym, state) = setup();
        let e = Expr::rel(0).select(vec![(scheme.universe().attr_of("A"), sym.intern("a1"))]);
        let r = e.eval(&scheme, &state).unwrap();
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn union_scheme_mismatch_detected() {
        let (scheme, _sym, _state) = setup();
        let e = Expr::rel(0).union(Expr::rel(1));
        assert!(matches!(
            e.output_scheme(&scheme),
            Err(RelationError::UnionSchemeMismatch)
        ));
    }

    #[test]
    fn projection_must_be_contained() {
        let (scheme, _sym, _state) = setup();
        let e = Expr::rel(0).project(scheme.universe().set_of("C"));
        assert!(matches!(
            e.output_scheme(&scheme),
            Err(RelationError::ProjectionNotContained)
        ));
    }

    #[test]
    fn sequential_join_builds_left_deep() {
        let (scheme, _sym, state) = setup();
        let e = Expr::sequential(&[0, 1]);
        assert_eq!(e.rel_refs(), 2);
        let r = e.eval(&scheme, &state).unwrap();
        assert_eq!(r.attrs(), scheme.universe().set_of("ABC"));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn union_all_folds() {
        let (scheme, _sym, state) = setup();
        let e = Expr::union_all(vec![Expr::rel(0), Expr::rel(0)]);
        let r = e.eval(&scheme, &state).unwrap();
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn extension_join_predicate() {
        let (scheme, _, _) = setup();
        let u = scheme.universe();
        // R1(AB) ⋈ R2(BC) with B→C: an extension join.
        let yes = is_extension_join(u.set_of("AB"), u.set_of("BC"), |lhs, rhs| {
            lhs == u.set_of("B") && rhs == u.set_of("C")
        });
        assert!(yes);
        // Without the FD it is not.
        let no = is_extension_join(u.set_of("AB"), u.set_of("BC"), |_, _| false);
        assert!(!no);
    }

    #[test]
    fn render_mentions_names() {
        let (scheme, _sym, _state) = setup();
        let e = Expr::rel(0).join(Expr::rel(1)).project(scheme.universe().set_of("A"));
        let s = e.render(&scheme);
        assert!(s.contains("R1"));
        assert!(s.contains("R2"));
        assert!(s.contains("π"));
    }
}
