use crate::attrset::AttrSet;
use crate::error::RelationError;
use crate::universe::Universe;

/// A relation scheme `R(X)` together with its declared candidate keys.
///
/// The paper's standing assumption (end of §1) is that a cover of the
/// functional dependencies is embedded in the database scheme *in the form
/// of key dependencies*, so keys are part of the scheme declaration, exactly
/// as in the examples ("the sets of keys for R1 to R5 are {HR}, {HT, HR},
/// …").
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RelationScheme {
    name: String,
    attrs: AttrSet,
    keys: Vec<AttrSet>,
}

impl RelationScheme {
    /// Creates a scheme, validating that every key is a nonempty subset of
    /// the scheme and that at least one key is declared.
    pub fn new(
        name: impl Into<String>,
        attrs: AttrSet,
        keys: Vec<AttrSet>,
    ) -> Result<Self, RelationError> {
        let name = name.into();
        if keys.is_empty() {
            return Err(RelationError::NoKey { scheme: name });
        }
        for k in &keys {
            if k.is_empty() || !k.is_subset(attrs) {
                return Err(RelationError::KeyNotEmbedded { scheme: name });
            }
        }
        let mut keys = keys;
        keys.sort();
        keys.dedup();
        Ok(RelationScheme { name, attrs, keys })
    }

    /// The scheme's name (e.g. `"R1"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The scheme's attribute set.
    #[inline]
    pub fn attrs(&self) -> AttrSet {
        self.attrs
    }

    /// The declared candidate keys (sorted, deduplicated).
    pub fn keys(&self) -> &[AttrSet] {
        &self.keys
    }

    /// Whether `x` contains some key of this scheme (i.e. is a superkey).
    pub fn has_superkey_in(&self, x: AttrSet) -> bool {
        self.keys.iter().any(|k| k.is_subset(x))
    }
}

/// A database scheme `R = {R1, …, Rk}` over a [`Universe`] (§2.1), with the
/// embedded keys that induce its set of key dependencies.
#[derive(Clone, Debug)]
pub struct DatabaseScheme {
    universe: Universe,
    schemes: Vec<RelationScheme>,
}

impl DatabaseScheme {
    /// Creates a database scheme, validating that scheme names are unique
    /// and the schemes cover the universe (the paper requires `∪Ri = U`).
    pub fn new(
        universe: Universe,
        schemes: Vec<RelationScheme>,
    ) -> Result<Self, RelationError> {
        let mut cover = AttrSet::empty();
        let mut names = std::collections::HashSet::new();
        for s in &schemes {
            if !names.insert(s.name().to_string()) {
                return Err(RelationError::DuplicateScheme(s.name().to_string()));
            }
            cover |= s.attrs();
        }
        if cover != universe.all() {
            return Err(RelationError::IncompleteCover);
        }
        Ok(DatabaseScheme { universe, schemes })
    }

    /// The attribute universe.
    pub fn universe(&self) -> &Universe {
        &self.universe
    }

    /// The relation schemes, in declaration order.
    pub fn schemes(&self) -> &[RelationScheme] {
        &self.schemes
    }

    /// Number of relation schemes.
    pub fn len(&self) -> usize {
        self.schemes.len()
    }

    /// Whether the database scheme has no relation scheme.
    pub fn is_empty(&self) -> bool {
        self.schemes.is_empty()
    }

    /// The scheme at position `i`.
    pub fn scheme(&self, i: usize) -> &RelationScheme {
        &self.schemes[i]
    }

    /// Finds a scheme index by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.schemes.iter().position(|s| s.name() == name)
    }

    /// All keys embedded anywhere in the database scheme, deduplicated, as
    /// `(key, owning scheme index)` witnesses (first owner wins). The
    /// splitness machinery of §3.3 quantifies over this set.
    pub fn all_keys(&self) -> Vec<(AttrSet, usize)> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for (i, s) in self.schemes.iter().enumerate() {
            for &k in s.keys() {
                if seen.insert(k) {
                    out.push((k, i));
                }
            }
        }
        out
    }

    /// The union `∪S` of a subset of schemes given by indices.
    pub fn union_of(&self, indices: &[usize]) -> AttrSet {
        indices
            .iter()
            .fold(AttrSet::empty(), |acc, &i| acc | self.schemes[i].attrs())
    }

    /// Restriction of the database scheme to a subset of its relation
    /// schemes (used when working block-by-block in Sections 3–5). The
    /// result is *not* validated to cover the universe; it is a subscheme
    /// wrapper sharing this scheme's universe.
    pub fn subscheme(&self, indices: &[usize]) -> Vec<RelationScheme> {
        indices.iter().map(|&i| self.schemes[i].clone()).collect()
    }
}

/// Ergonomic builder for database schemes in the paper's single-letter
/// notation.
///
/// # Examples
///
/// ```
/// use idr_relation::SchemeBuilder;
///
/// // Example 3 of the paper.
/// let db = SchemeBuilder::new("ABC")
///     .scheme("R1", "AB", ["A", "B"])
///     .scheme("R2", "BC", ["B", "C"])
///     .scheme("R3", "AC", ["A", "C"])
///     .build()
///     .unwrap();
/// assert_eq!(db.len(), 3);
/// ```
pub struct SchemeBuilder {
    universe: Universe,
    schemes: Vec<(String, String, Vec<String>)>,
}

impl SchemeBuilder {
    /// Starts a builder with a universe of single-character attributes.
    pub fn new(universe_chars: &str) -> Self {
        SchemeBuilder {
            universe: Universe::of_chars(universe_chars),
            schemes: Vec::new(),
        }
    }

    /// Adds a relation scheme: attributes and each key given as character
    /// strings (`"HRC"`, keys `["HR"]`). Keys accept any iterable of
    /// string-likes — `&["HR"]`, `vec![String::from("HR")]`, or an
    /// iterator.
    pub fn scheme(
        mut self,
        name: &str,
        attrs: &str,
        keys: impl IntoIterator<Item = impl AsRef<str>>,
    ) -> Self {
        self.schemes.push((
            name.to_string(),
            attrs.to_string(),
            keys.into_iter().map(|k| k.as_ref().to_string()).collect(),
        ));
        self
    }

    /// Finalises the database scheme. Errors name the offending scheme:
    /// unknown attribute characters surface as
    /// [`RelationError::UnknownAttribute`] rather than a panic.
    pub fn build(self) -> Result<DatabaseScheme, RelationError> {
        let mut schemes = Vec::new();
        for (name, attrs, keys) in &self.schemes {
            let set_of = |chars: &str| {
                self.universe
                    .try_set_of(chars)
                    .map_err(|attr| RelationError::UnknownAttribute {
                        scheme: name.clone(),
                        attr,
                    })
            };
            let a = set_of(attrs)?;
            let ks = keys
                .iter()
                .map(|k| set_of(k))
                .collect::<Result<Vec<_>, _>>()?;
            schemes.push(RelationScheme::new(name.clone(), a, ks)?);
        }
        DatabaseScheme::new(self.universe, schemes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_builds_example_1() {
        // Example 1: university database.
        let db = SchemeBuilder::new("CTHRSG")
            .scheme("R1", "HRC", ["HR"])
            .scheme("R2", "HTR", ["HT", "HR"])
            .scheme("R3", "HTC", ["HT"])
            .scheme("R4", "CSG", ["CS"])
            .scheme("R5", "HSR", ["HS"])
            .build()
            .unwrap();
        assert_eq!(db.len(), 5);
        assert_eq!(db.scheme(1).keys().len(), 2);
        assert_eq!(db.index_of("R4"), Some(3));
        assert_eq!(db.universe().len(), 6);
    }

    #[test]
    fn keys_must_be_embedded() {
        let u = Universe::of_chars("AB");
        let err = RelationScheme::new("R", u.set_of("A"), vec![u.set_of("AB")]);
        assert!(matches!(err, Err(RelationError::KeyNotEmbedded { .. })));
    }

    #[test]
    fn scheme_requires_a_key() {
        let u = Universe::of_chars("AB");
        let err = RelationScheme::new("R", u.set_of("A"), vec![]);
        assert!(matches!(err, Err(RelationError::NoKey { .. })));
    }

    #[test]
    fn cover_must_be_complete() {
        let err = SchemeBuilder::new("ABC")
            .scheme("R1", "AB", ["A"])
            .build();
        assert!(matches!(err, Err(RelationError::IncompleteCover)));
    }

    #[test]
    fn duplicate_names_rejected() {
        let err = SchemeBuilder::new("AB")
            .scheme("R1", "AB", ["A"])
            .scheme("R1", "AB", ["B"])
            .build();
        assert!(matches!(err, Err(RelationError::DuplicateScheme(_))));
    }

    #[test]
    fn builder_accepts_any_key_iterable() {
        let owned: Vec<String> = vec!["A".into()];
        let db = SchemeBuilder::new("AB")
            .scheme("R1", "AB", owned)
            .scheme("R2", "AB", ["A", "B"].iter().filter(|k| **k == "B"))
            .build()
            .unwrap();
        assert_eq!(db.scheme(0).keys(), &[db.universe().set_of("A")]);
        assert_eq!(db.scheme(1).keys(), &[db.universe().set_of("B")]);
    }

    #[test]
    fn builder_errors_name_the_offending_scheme() {
        let err = SchemeBuilder::new("AB")
            .scheme("R1", "AB", ["A"])
            .scheme("R2", "AX", ["A"])
            .build()
            .unwrap_err();
        match err {
            RelationError::UnknownAttribute { scheme, attr } => {
                assert_eq!(scheme, "R2");
                assert_eq!(attr, 'X');
            }
            other => panic!("expected UnknownAttribute, got {other:?}"),
        }
        let err = SchemeBuilder::new("AB")
            .scheme("R1", "AB", ["AX"])
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            RelationError::UnknownAttribute { attr: 'X', .. }
        ));
    }

    #[test]
    fn all_keys_deduplicates() {
        let db = SchemeBuilder::new("AB")
            .scheme("R1", "AB", ["A"])
            .scheme("R2", "AB", ["A", "B"])
            .build()
            .unwrap();
        let keys = db.all_keys();
        assert_eq!(keys.len(), 2);
    }

    #[test]
    fn superkey_test() {
        let u = Universe::of_chars("ABC");
        let r = RelationScheme::new("R", u.set_of("ABC"), vec![u.set_of("AB")]).unwrap();
        assert!(r.has_superkey_in(u.set_of("ABC")));
        assert!(r.has_superkey_in(u.set_of("AB")));
        assert!(!r.has_superkey_in(u.set_of("A")));
    }
}
