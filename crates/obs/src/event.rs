//! The typed trace-event taxonomy.
//!
//! Events are small copyable records. Human-facing fields (`fd`,
//! `column`, `scope`, …) are `Arc<str>` labels **pre-rendered by the
//! emitter at setup time**, so constructing an event on the hot path
//! clones a pointer instead of formatting a string. Row references are
//! tableau row indexes; `tag` fields are the originating relation index
//! of a row when known (the `TAG` column of the paper's figures).
//!
//! Each event renders two ways: [`render_text`](TraceEvent::render_text)
//! — one `key=value` line for `--trace=text` — and
//! [`to_json`](TraceEvent::to_json) — one single-line JSON object with a
//! `"type"` discriminator for `--trace=json` and the golden-trace suite.
//! Neither rendering includes clocks, addresses or other
//! run-dependent data, so traces are byte-stable across runs.

use std::sync::Arc;

use crate::json::JsonWriter;

/// A structured trace record. See the module docs for conventions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A chase run began (one per `run` call on an engine; `scope`
    /// identifies the tableau, e.g. `whole` or `T1`).
    ChaseStarted {
        /// Which tableau is being chased.
        scope: Arc<str>,
        /// Rows in the tableau at run start.
        rows: usize,
        /// Dependencies being chased with.
        fds: usize,
    },
    /// A symbol-equating fd-rule application (one class merge).
    FdRuleFired {
        /// The applied dependency, rendered (`HR→C`).
        fd: Arc<str>,
        /// The column whose classes merged, rendered (`C`).
        column: Arc<str>,
        /// The two rows the rule was applied to (representative, probed).
        rows: (u32, u32),
        /// Rows whose visible symbol changed and were re-enqueued.
        dirtied: usize,
    },
    /// Total rows re-enqueued by symbol changes over one chase run.
    RowsDirtied {
        /// The run's scope (matches its [`TraceEvent::ChaseStarted`]).
        scope: Arc<str>,
        /// Total worklist pushes caused by class merges.
        count: usize,
    },
    /// One IR block finished evaluating (per-block session verdict).
    BlockEvaluated {
        /// Block index (0-based).
        block: usize,
        /// Whether the block's substate chased to a fixpoint.
        consistent: bool,
        /// Worklist pops / scan passes spent.
        passes: usize,
        /// Rule applications spent.
        rule_applications: usize,
    },
    /// A guard stopped the computation (budget, deadline or
    /// cancellation).
    BudgetTrip {
        /// Rendered description of the trip (resource, spent, limit).
        detail: Arc<str>,
    },
    /// The chase tried to equate two distinct constants: the state (or a
    /// speculative insert) is inconsistent.
    StateRejected {
        /// The violated dependency, rendered.
        violating_fd: Arc<str>,
        /// The column on which constants clashed, rendered.
        column: Arc<str>,
        /// The two witnessing rows.
        witness_rows: (u32, u32),
    },
    /// A session finished binding an engine to a state.
    SessionBuilt {
        /// Block tableaux built (1 for the whole-state backend).
        blocks: usize,
        /// The session's consistency verdict.
        consistent: bool,
    },
    /// An incremental insert was applied (or rejected).
    InsertApplied {
        /// Target relation name.
        relation: Arc<str>,
        /// Whether the insert kept the state consistent.
        accepted: bool,
    },
    /// A delete was applied.
    DeleteApplied {
        /// Target relation name.
        relation: Arc<str>,
        /// Whether the tuple was present.
        removed: bool,
    },
    /// An X-total projection was answered.
    QueryAnswered {
        /// The projection attributes, rendered.
        attrs: Arc<str>,
        /// `expr` (chase-free Theorem 4.1 expression) or `chase`
        /// (whole-state fallback).
        method: Arc<str>,
        /// Result cardinality.
        tuples: usize,
    },
    /// Algorithm 6 finished.
    RecognitionDone {
        /// Whether the scheme is independence-reducible.
        accepted: bool,
        /// Blocks in the IR partition (0 when rejected).
        blocks: usize,
    },
    /// The key-equivalent partition (§5.1) was computed.
    KepComputed {
        /// Number of blocks.
        blocks: usize,
        /// Size of the largest block.
        largest: usize,
    },
    /// A single-tuple selection of Algorithm 4/5 (§2.7).
    SelectionPerformed {
        /// The relation selected against.
        relation: Arc<str>,
        /// Whether a matching tuple was found.
        found: bool,
    },
    /// A record was committed to the write-ahead log (before the
    /// corresponding in-memory mutation).
    WalAppended {
        /// The record's verb (`insert`, `delete` or `abort`).
        verb: Arc<str>,
        /// Framed record size in bytes (header + payload).
        bytes: usize,
    },
    /// A snapshot was installed by atomic rename and the WAL rotated to
    /// a new epoch.
    SnapshotWritten {
        /// The new snapshot's epoch.
        epoch: u64,
        /// Tuples in the snapshotted state.
        tuples: usize,
    },
    /// Snapshot rotation could not delete an old WAL log; the stale file
    /// is harmless (recovery reads only the snapshot's epoch) but the
    /// failure is surfaced instead of swallowed.
    CompactionSkipped {
        /// The WAL file that survived deletion.
        path: Arc<str>,
        /// The rendered `io::Error`.
        error: Arc<str>,
    },
    /// An anti-entropy exchange shipped a missing op range to a peer
    /// replica.
    SyncOpsShipped {
        /// The shipping replica.
        src: usize,
        /// The receiving replica.
        dst: usize,
        /// The origin replica whose journal the range extends.
        origin: usize,
        /// First shipped sequence number (0-based) in the origin's log.
        from: u64,
        /// Ops in the shipped range.
        count: usize,
    },
    /// One simulator round finished (messages delivered, client ops
    /// issued, anti-entropy ticked).
    SyncRoundCompleted {
        /// The 0-based round index.
        round: usize,
        /// Messages delivered this round.
        messages: usize,
        /// Whether every replica's digest matched at round end.
        in_sync: bool,
    },
    /// A replica crashed mid-sync (scripted fault); its in-flight
    /// transfer was cut and its session state discarded.
    SyncReplicaCrashed {
        /// The crashed replica.
        replica: usize,
        /// The protocol step interrupted (`digest_pull`, `ops_push`, …).
        step: Arc<str>,
    },
    /// Every replica converged to the same digest with no messages in
    /// flight.
    SyncConverged {
        /// Rounds it took.
        rounds: usize,
        /// Total ops shipped between replicas over the run.
        ops_shipped: usize,
    },
    /// Crash recovery finished replaying a WAL tail through the guarded
    /// session path.
    RecoveryReplayed {
        /// The snapshot epoch recovery started from.
        epoch: u64,
        /// Complete, checksum-valid records found in the WAL.
        records: usize,
        /// Ops replayed (after abort filtering).
        replayed: usize,
        /// Op records skipped because an abort marker followed them.
        aborted: usize,
        /// Bytes of crash-torn final record truncated.
        torn_bytes: usize,
    },
    /// A consistent tableau epoch was published for readers: the serving
    /// hub cut a snapshot spanning every block, so read views opened from
    /// now on answer against this epoch without blocking writers.
    EpochPublished {
        /// The published epoch number (monotone per hub).
        epoch: u64,
        /// Tuples in the published state.
        tuples: usize,
        /// The epoch's consistency verdict.
        consistent: bool,
    },
    /// A group-commit leader flushed the coalesced WAL records of
    /// concurrent writers as one framed batch with a single fsync.
    GroupCommitted {
        /// Records in the batch (1 when no writer overlapped).
        ops: usize,
        /// Framed bytes written.
        bytes: usize,
    },
    /// A framed op group went through the batch write path as one unit:
    /// one dirty-row seeding per involved block, one WAL batch, one
    /// fsync. The per-op `insert_applied`/`delete_applied` events are
    /// *not* emitted for the group's ops — this single aggregate stands
    /// for all of them.
    BatchApplied {
        /// Ops in the group.
        ops: usize,
        /// Ops whose verdict was positive (insert accepted / tuple
        /// removed).
        applied: usize,
        /// Distinct blocks the group touched.
        blocks: usize,
    },
    /// One write op's trip through the serving pipeline, broken into
    /// per-phase durations (microseconds attributed to each phase; 0
    /// for phases the op did not reach). The only event carrying wall
    /// time — emitted solely from serve-mode timed paths, never from
    /// the deterministic engine paths the golden-trace suite pins.
    OpTimeline {
        /// The op verb (`insert` / `delete`).
        verb: Arc<str>,
        /// The op's sequence number in its session.
        op: u64,
        /// End-to-end pipeline time.
        total_us: u64,
        /// Time queued before a writer lane picked the op up.
        enqueue_us: u64,
        /// Time to acquire the block lock.
        lane_acquire_us: u64,
        /// Time to render and queue the WAL record.
        wal_append_us: u64,
        /// Time waiting on the group-commit batch.
        batch_wait_us: u64,
        /// Time to make the batch durable.
        fsync_us: u64,
        /// Time in the chase + state mutation.
        apply_us: u64,
        /// Time to hand the op off for reader visibility.
        publish_us: u64,
    },
}

impl TraceEvent {
    /// The snake-case discriminator used by both renderings.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::ChaseStarted { .. } => "chase_started",
            TraceEvent::FdRuleFired { .. } => "fd_rule_fired",
            TraceEvent::RowsDirtied { .. } => "rows_dirtied",
            TraceEvent::BlockEvaluated { .. } => "block_evaluated",
            TraceEvent::BudgetTrip { .. } => "budget_trip",
            TraceEvent::StateRejected { .. } => "state_rejected",
            TraceEvent::SessionBuilt { .. } => "session_built",
            TraceEvent::InsertApplied { .. } => "insert_applied",
            TraceEvent::DeleteApplied { .. } => "delete_applied",
            TraceEvent::QueryAnswered { .. } => "query_answered",
            TraceEvent::RecognitionDone { .. } => "recognition_done",
            TraceEvent::KepComputed { .. } => "kep_computed",
            TraceEvent::SelectionPerformed { .. } => "selection_performed",
            TraceEvent::WalAppended { .. } => "wal_appended",
            TraceEvent::SnapshotWritten { .. } => "snapshot_written",
            TraceEvent::CompactionSkipped { .. } => "compaction_skipped",
            TraceEvent::SyncOpsShipped { .. } => "sync_ops_shipped",
            TraceEvent::SyncRoundCompleted { .. } => "sync_round_completed",
            TraceEvent::SyncReplicaCrashed { .. } => "sync_replica_crashed",
            TraceEvent::SyncConverged { .. } => "sync_converged",
            TraceEvent::RecoveryReplayed { .. } => "recovery_replayed",
            TraceEvent::EpochPublished { .. } => "epoch_published",
            TraceEvent::GroupCommitted { .. } => "group_committed",
            TraceEvent::BatchApplied { .. } => "batch_applied",
            TraceEvent::OpTimeline { .. } => "op_timeline",
        }
    }

    /// One `kind key=value ...` line for `--trace=text`.
    pub fn render_text(&self) -> String {
        match self {
            TraceEvent::ChaseStarted { scope, rows, fds } => {
                format!("chase_started scope={scope} rows={rows} fds={fds}")
            }
            TraceEvent::FdRuleFired {
                fd,
                column,
                rows,
                dirtied,
            } => format!(
                "fd_rule_fired fd={fd} column={column} rows=({},{}) dirtied={dirtied}",
                rows.0, rows.1
            ),
            TraceEvent::RowsDirtied { scope, count } => {
                format!("rows_dirtied scope={scope} count={count}")
            }
            TraceEvent::BlockEvaluated {
                block,
                consistent,
                passes,
                rule_applications,
            } => format!(
                "block_evaluated block={block} consistent={consistent} passes={passes} rule_applications={rule_applications}"
            ),
            TraceEvent::BudgetTrip { detail } => format!("budget_trip detail={detail:?}"),
            TraceEvent::StateRejected {
                violating_fd,
                column,
                witness_rows,
            } => format!(
                "state_rejected violating_fd={violating_fd} column={column} witness_rows=({},{})",
                witness_rows.0, witness_rows.1
            ),
            TraceEvent::SessionBuilt { blocks, consistent } => {
                format!("session_built blocks={blocks} consistent={consistent}")
            }
            TraceEvent::InsertApplied { relation, accepted } => {
                format!("insert_applied relation={relation} accepted={accepted}")
            }
            TraceEvent::DeleteApplied { relation, removed } => {
                format!("delete_applied relation={relation} removed={removed}")
            }
            TraceEvent::QueryAnswered {
                attrs,
                method,
                tuples,
            } => format!("query_answered attrs={attrs} method={method} tuples={tuples}"),
            TraceEvent::RecognitionDone { accepted, blocks } => {
                format!("recognition_done accepted={accepted} blocks={blocks}")
            }
            TraceEvent::KepComputed { blocks, largest } => {
                format!("kep_computed blocks={blocks} largest={largest}")
            }
            TraceEvent::SelectionPerformed { relation, found } => {
                format!("selection_performed relation={relation} found={found}")
            }
            TraceEvent::WalAppended { verb, bytes } => {
                format!("wal_appended verb={verb} bytes={bytes}")
            }
            TraceEvent::SnapshotWritten { epoch, tuples } => {
                format!("snapshot_written epoch={epoch} tuples={tuples}")
            }
            TraceEvent::CompactionSkipped { path, error } => {
                format!("compaction_skipped path={path} error={error:?}")
            }
            TraceEvent::SyncOpsShipped {
                src,
                dst,
                origin,
                from,
                count,
            } => format!(
                "sync_ops_shipped src={src} dst={dst} origin={origin} from={from} count={count}"
            ),
            TraceEvent::SyncRoundCompleted {
                round,
                messages,
                in_sync,
            } => format!("sync_round_completed round={round} messages={messages} in_sync={in_sync}"),
            TraceEvent::SyncReplicaCrashed { replica, step } => {
                format!("sync_replica_crashed replica={replica} step={step}")
            }
            TraceEvent::SyncConverged { rounds, ops_shipped } => {
                format!("sync_converged rounds={rounds} ops_shipped={ops_shipped}")
            }
            TraceEvent::RecoveryReplayed {
                epoch,
                records,
                replayed,
                aborted,
                torn_bytes,
            } => format!(
                "recovery_replayed epoch={epoch} records={records} replayed={replayed} aborted={aborted} torn_bytes={torn_bytes}"
            ),
            TraceEvent::EpochPublished {
                epoch,
                tuples,
                consistent,
            } => format!("epoch_published epoch={epoch} tuples={tuples} consistent={consistent}"),
            TraceEvent::GroupCommitted { ops, bytes } => {
                format!("group_committed ops={ops} bytes={bytes}")
            }
            TraceEvent::BatchApplied {
                ops,
                applied,
                blocks,
            } => format!("batch_applied ops={ops} applied={applied} blocks={blocks}"),
            TraceEvent::OpTimeline {
                verb,
                op,
                total_us,
                enqueue_us,
                lane_acquire_us,
                wal_append_us,
                batch_wait_us,
                fsync_us,
                apply_us,
                publish_us,
            } => format!(
                "op_timeline verb={verb} op={op} total_us={total_us} enqueue_us={enqueue_us} lane_acquire_us={lane_acquire_us} wal_append_us={wal_append_us} batch_wait_us={batch_wait_us} fsync_us={fsync_us} apply_us={apply_us} publish_us={publish_us}"
            ),
        }
    }

    /// One single-line JSON object with a `"type"` discriminator.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object().key("type").string(self.kind());
        match self {
            TraceEvent::ChaseStarted { scope, rows, fds } => {
                w.key("scope")
                    .string(scope)
                    .key("rows")
                    .u64(*rows as u64)
                    .key("fds")
                    .u64(*fds as u64);
            }
            TraceEvent::FdRuleFired {
                fd,
                column,
                rows,
                dirtied,
            } => {
                w.key("fd").string(fd).key("column").string(column);
                w.key("rows")
                    .begin_array()
                    .u64(rows.0 as u64)
                    .u64(rows.1 as u64)
                    .end_array();
                w.key("dirtied").u64(*dirtied as u64);
            }
            TraceEvent::RowsDirtied { scope, count } => {
                w.key("scope")
                    .string(scope)
                    .key("count")
                    .u64(*count as u64);
            }
            TraceEvent::BlockEvaluated {
                block,
                consistent,
                passes,
                rule_applications,
            } => {
                w.key("block")
                    .u64(*block as u64)
                    .key("consistent")
                    .bool(*consistent)
                    .key("passes")
                    .u64(*passes as u64)
                    .key("rule_applications")
                    .u64(*rule_applications as u64);
            }
            TraceEvent::BudgetTrip { detail } => {
                w.key("detail").string(detail);
            }
            TraceEvent::StateRejected {
                violating_fd,
                column,
                witness_rows,
            } => {
                w.key("violating_fd")
                    .string(violating_fd)
                    .key("column")
                    .string(column);
                w.key("witness_rows")
                    .begin_array()
                    .u64(witness_rows.0 as u64)
                    .u64(witness_rows.1 as u64)
                    .end_array();
            }
            TraceEvent::SessionBuilt { blocks, consistent } => {
                w.key("blocks")
                    .u64(*blocks as u64)
                    .key("consistent")
                    .bool(*consistent);
            }
            TraceEvent::InsertApplied { relation, accepted } => {
                w.key("relation")
                    .string(relation)
                    .key("accepted")
                    .bool(*accepted);
            }
            TraceEvent::DeleteApplied { relation, removed } => {
                w.key("relation")
                    .string(relation)
                    .key("removed")
                    .bool(*removed);
            }
            TraceEvent::QueryAnswered {
                attrs,
                method,
                tuples,
            } => {
                w.key("attrs")
                    .string(attrs)
                    .key("method")
                    .string(method)
                    .key("tuples")
                    .u64(*tuples as u64);
            }
            TraceEvent::RecognitionDone { accepted, blocks } => {
                w.key("accepted")
                    .bool(*accepted)
                    .key("blocks")
                    .u64(*blocks as u64);
            }
            TraceEvent::KepComputed { blocks, largest } => {
                w.key("blocks")
                    .u64(*blocks as u64)
                    .key("largest")
                    .u64(*largest as u64);
            }
            TraceEvent::SelectionPerformed { relation, found } => {
                w.key("relation")
                    .string(relation)
                    .key("found")
                    .bool(*found);
            }
            TraceEvent::WalAppended { verb, bytes } => {
                w.key("verb").string(verb).key("bytes").u64(*bytes as u64);
            }
            TraceEvent::SnapshotWritten { epoch, tuples } => {
                w.key("epoch").u64(*epoch).key("tuples").u64(*tuples as u64);
            }
            TraceEvent::CompactionSkipped { path, error } => {
                w.key("path").string(path).key("error").string(error);
            }
            TraceEvent::SyncOpsShipped {
                src,
                dst,
                origin,
                from,
                count,
            } => {
                w.key("src")
                    .u64(*src as u64)
                    .key("dst")
                    .u64(*dst as u64)
                    .key("origin")
                    .u64(*origin as u64)
                    .key("from")
                    .u64(*from)
                    .key("count")
                    .u64(*count as u64);
            }
            TraceEvent::SyncRoundCompleted {
                round,
                messages,
                in_sync,
            } => {
                w.key("round")
                    .u64(*round as u64)
                    .key("messages")
                    .u64(*messages as u64)
                    .key("in_sync")
                    .bool(*in_sync);
            }
            TraceEvent::SyncReplicaCrashed { replica, step } => {
                w.key("replica").u64(*replica as u64).key("step").string(step);
            }
            TraceEvent::SyncConverged { rounds, ops_shipped } => {
                w.key("rounds")
                    .u64(*rounds as u64)
                    .key("ops_shipped")
                    .u64(*ops_shipped as u64);
            }
            TraceEvent::RecoveryReplayed {
                epoch,
                records,
                replayed,
                aborted,
                torn_bytes,
            } => {
                w.key("epoch")
                    .u64(*epoch)
                    .key("records")
                    .u64(*records as u64)
                    .key("replayed")
                    .u64(*replayed as u64)
                    .key("aborted")
                    .u64(*aborted as u64)
                    .key("torn_bytes")
                    .u64(*torn_bytes as u64);
            }
            TraceEvent::EpochPublished {
                epoch,
                tuples,
                consistent,
            } => {
                w.key("epoch")
                    .u64(*epoch)
                    .key("tuples")
                    .u64(*tuples as u64)
                    .key("consistent")
                    .bool(*consistent);
            }
            TraceEvent::GroupCommitted { ops, bytes } => {
                w.key("ops").u64(*ops as u64).key("bytes").u64(*bytes as u64);
            }
            TraceEvent::BatchApplied {
                ops,
                applied,
                blocks,
            } => {
                w.key("ops")
                    .u64(*ops as u64)
                    .key("applied")
                    .u64(*applied as u64)
                    .key("blocks")
                    .u64(*blocks as u64);
            }
            TraceEvent::OpTimeline {
                verb,
                op,
                total_us,
                enqueue_us,
                lane_acquire_us,
                wal_append_us,
                batch_wait_us,
                fsync_us,
                apply_us,
                publish_us,
            } => {
                w.key("verb")
                    .string(verb)
                    .key("op")
                    .u64(*op)
                    .key("total_us")
                    .u64(*total_us)
                    .key("enqueue_us")
                    .u64(*enqueue_us)
                    .key("lane_acquire_us")
                    .u64(*lane_acquire_us)
                    .key("wal_append_us")
                    .u64(*wal_append_us)
                    .key("batch_wait_us")
                    .u64(*batch_wait_us)
                    .key("fsync_us")
                    .u64(*fsync_us)
                    .key("apply_us")
                    .u64(*apply_us)
                    .key("publish_us")
                    .u64(*publish_us);
            }
        }
        w.end_object();
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_and_text_render_every_variant() {
        let label: Arc<str> = Arc::from("A→B");
        let events = [
            TraceEvent::ChaseStarted {
                scope: label.clone(),
                rows: 2,
                fds: 1,
            },
            TraceEvent::FdRuleFired {
                fd: label.clone(),
                column: label.clone(),
                rows: (0, 1),
                dirtied: 3,
            },
            TraceEvent::RowsDirtied {
                scope: label.clone(),
                count: 3,
            },
            TraceEvent::BlockEvaluated {
                block: 0,
                consistent: true,
                passes: 4,
                rule_applications: 2,
            },
            TraceEvent::BudgetTrip {
                detail: label.clone(),
            },
            TraceEvent::StateRejected {
                violating_fd: label.clone(),
                column: label.clone(),
                witness_rows: (1, 2),
            },
            TraceEvent::SessionBuilt {
                blocks: 2,
                consistent: false,
            },
            TraceEvent::InsertApplied {
                relation: label.clone(),
                accepted: true,
            },
            TraceEvent::DeleteApplied {
                relation: label.clone(),
                removed: false,
            },
            TraceEvent::QueryAnswered {
                attrs: label.clone(),
                method: label.clone(),
                tuples: 9,
            },
            TraceEvent::RecognitionDone {
                accepted: true,
                blocks: 2,
            },
            TraceEvent::KepComputed {
                blocks: 3,
                largest: 4,
            },
            TraceEvent::SelectionPerformed {
                relation: label.clone(),
                found: true,
            },
            TraceEvent::WalAppended {
                verb: label.clone(),
                bytes: 26,
            },
            TraceEvent::SnapshotWritten {
                epoch: 3,
                tuples: 12,
            },
            TraceEvent::CompactionSkipped {
                path: label.clone(),
                error: label.clone(),
            },
            TraceEvent::SyncOpsShipped {
                src: 0,
                dst: 1,
                origin: 0,
                from: 4,
                count: 2,
            },
            TraceEvent::SyncRoundCompleted {
                round: 5,
                messages: 3,
                in_sync: false,
            },
            TraceEvent::SyncReplicaCrashed {
                replica: 1,
                step: label.clone(),
            },
            TraceEvent::SyncConverged {
                rounds: 9,
                ops_shipped: 14,
            },
            TraceEvent::RecoveryReplayed {
                epoch: 3,
                records: 7,
                replayed: 5,
                aborted: 1,
                torn_bytes: 11,
            },
            TraceEvent::EpochPublished {
                epoch: 4,
                tuples: 20,
                consistent: true,
            },
            TraceEvent::GroupCommitted { ops: 3, bytes: 96 },
            TraceEvent::BatchApplied {
                ops: 6,
                applied: 5,
                blocks: 2,
            },
            TraceEvent::OpTimeline {
                verb: Arc::from("insert"),
                op: 12,
                total_us: 480,
                enqueue_us: 30,
                lane_acquire_us: 5,
                wal_append_us: 40,
                batch_wait_us: 180,
                fsync_us: 150,
                apply_us: 60,
                publish_us: 15,
            },
        ];
        for e in &events {
            let json = e.to_json();
            assert!(json.starts_with(&format!("{{\"type\":\"{}\"", e.kind())), "{json}");
            assert!(json.ends_with('}'), "{json}");
            assert!(e.render_text().starts_with(e.kind()));
        }
    }

    #[test]
    fn fd_rule_fired_json_shape() {
        let e = TraceEvent::FdRuleFired {
            fd: Arc::from("HR→C"),
            column: Arc::from("C"),
            rows: (0, 1),
            dirtied: 2,
        };
        assert_eq!(
            e.to_json(),
            r#"{"type":"fd_rule_fired","fd":"HR→C","column":"C","rows":[0,1],"dirtied":2}"#
        );
    }
}
