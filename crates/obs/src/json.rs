//! A minimal hand-rolled JSON writer.
//!
//! The workspace is hermetic (no registry dependencies, hence no serde);
//! PR 2's bench harness already hand-rolled its JSON document. This
//! module centralises the two pieces every emitter needs — string
//! escaping and an object/array builder that tracks commas — so the
//! trace, metrics and bench writers produce consistent output.

use std::fmt::Write as _;

/// Escapes `s` as the *contents* of a JSON string (no surrounding
/// quotes).
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// `"s"` with JSON escaping.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    escape_into(&mut out, s);
    out.push('"');
    out
}

/// An appender that writes one JSON object or array into a `String`,
/// inserting commas between items. Values passed to the `raw` variants
/// must already be valid JSON.
#[derive(Debug)]
pub struct JsonWriter {
    buf: String,
    /// Whether the current container already holds an item, per nesting
    /// level.
    has_item: Vec<bool>,
}

impl JsonWriter {
    /// A writer with an empty buffer.
    pub fn new() -> Self {
        JsonWriter {
            buf: String::new(),
            has_item: Vec::new(),
        }
    }

    fn comma(&mut self) {
        if let Some(top) = self.has_item.last_mut() {
            if *top {
                self.buf.push(',');
            }
            *top = true;
        }
    }

    /// Opens `{`.
    pub fn begin_object(&mut self) -> &mut Self {
        self.comma();
        self.buf.push('{');
        self.has_item.push(false);
        self
    }

    /// Closes `}`.
    pub fn end_object(&mut self) -> &mut Self {
        self.has_item.pop();
        self.buf.push('}');
        self
    }

    /// Opens `[`.
    pub fn begin_array(&mut self) -> &mut Self {
        self.comma();
        self.buf.push('[');
        self.has_item.push(false);
        self
    }

    /// Closes `]`.
    pub fn end_array(&mut self) -> &mut Self {
        self.has_item.pop();
        self.buf.push(']');
        self
    }

    /// Writes `"key":` (inside an object), without a value; follow with
    /// one of the value calls or a `begin_*`.
    pub fn key(&mut self, key: &str) -> &mut Self {
        self.comma();
        self.buf.push('"');
        escape_into(&mut self.buf, key);
        self.buf.push_str("\":");
        // The upcoming value must not re-insert a comma.
        if let Some(top) = self.has_item.last_mut() {
            *top = false;
        }
        self
    }

    /// Writes a string value.
    pub fn string(&mut self, v: &str) -> &mut Self {
        self.comma();
        self.buf.push('"');
        escape_into(&mut self.buf, v);
        self.buf.push('"');
        self
    }

    /// Writes an unsigned integer value.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.comma();
        let _ = write!(self.buf, "{v}");
        self
    }

    /// Writes a boolean value.
    pub fn bool(&mut self, v: bool) -> &mut Self {
        self.comma();
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Writes a float value with three decimal places (the bench
    /// harness's millisecond convention).
    pub fn f64_ms(&mut self, v: f64) -> &mut Self {
        self.comma();
        let _ = write!(self.buf, "{v:.3}");
        self
    }

    /// Writes a pre-serialised JSON fragment verbatim.
    pub fn raw(&mut self, v: &str) -> &mut Self {
        self.comma();
        self.buf.push_str(v);
        self
    }

    /// Consumes the writer, returning the document.
    pub fn finish(self) -> String {
        self.buf
    }
}

impl Default for JsonWriter {
    fn default() -> Self {
        JsonWriter::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(quote("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(quote("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn writer_builds_nested_documents() {
        let mut w = JsonWriter::new();
        w.begin_object()
            .key("name")
            .string("x")
            .key("n")
            .u64(3)
            .key("ok")
            .bool(true)
            .key("items")
            .begin_array()
            .u64(1)
            .u64(2)
            .begin_object()
            .key("k")
            .string("v")
            .end_object()
            .end_array()
            .end_object();
        assert_eq!(
            w.finish(),
            r#"{"name":"x","n":3,"ok":true,"items":[1,2,{"k":"v"}]}"#
        );
    }

    #[test]
    fn raw_embeds_fragments() {
        let mut w = JsonWriter::new();
        w.begin_array().raw("{\"a\":1}").u64(2).end_array();
        assert_eq!(w.finish(), r#"[{"a":1},2]"#);
    }
}
