//! `idr-obs` — dependency-free structured tracing and metrics.
//!
//! The execution layer (PR 1) made every computation *budgeted* and the
//! engine (PR 2) made it *fast*; this crate makes it *observable*. It is
//! deliberately at the bottom of the workspace dependency graph — std
//! only, no other `idr-*` crate — so every layer (the chase engines, the
//! `Engine` facade, the maintainers, the CLI, the bench harness) can emit
//! into the same two sinks:
//!
//! * **Tracing** ([`tracer`]): a [`Tracer`] trait with a no-op default
//!   that compiles to a single branch on the hot path, a fixed-capacity
//!   ring-buffer [`EventLog`], and a [`ShardedLog`] whose per-shard
//!   streams merge deterministically — the block-parallel engine gives
//!   each scoped thread its own shard and merges in block order at the
//!   barrier, so serial and parallel runs produce *identical* event
//!   streams, not merely equivalent ones. Events ([`TraceEvent`]) are
//!   typed records whose human-facing fields are pre-rendered
//!   `Arc<str>` labels: emitting clones a pointer, it never formats.
//! * **Metrics** ([`metrics`]): a [`MetricsRegistry`] of named atomic
//!   counters, gauges and fixed-bucket latency histograms, snapshotable
//!   as one [`MetricsSnapshot`] and serialised by the same hand-rolled
//!   JSON writer ([`json`]) the bench harness uses — the workspace stays
//!   hermetic (no serde).
//!
//! Everything is `Send + Sync`; counters are relaxed atomics and the
//! event log takes one uncontended mutex per emit. Nothing in this crate
//! reads clocks or allocates identifiers, so two runs over the same
//! inputs produce byte-identical traces — the property the golden-trace
//! suite pins down.

#![warn(missing_docs)]

pub mod event;
pub mod json;
pub mod metrics;
pub mod tracer;

pub use event::TraceEvent;
pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot,
};
pub use tracer::{EventLog, NoopTracer, ShardedLog, TraceHandle, Tracer};
