//! `idr-obs` — dependency-free structured tracing and metrics.
//!
//! The execution layer (PR 1) made every computation *budgeted* and the
//! engine (PR 2) made it *fast*; this crate makes it *observable*. It is
//! deliberately at the bottom of the workspace dependency graph — std
//! only, no other `idr-*` crate — so every layer (the chase engines, the
//! `Engine` facade, the maintainers, the CLI, the bench harness) can emit
//! into the same two sinks:
//!
//! * **Tracing** ([`tracer`]): a [`Tracer`] trait with a no-op default
//!   that compiles to a single branch on the hot path, a fixed-capacity
//!   ring-buffer [`EventLog`], and a [`ShardedLog`] whose per-shard
//!   streams merge deterministically — the block-parallel engine gives
//!   each scoped thread its own shard and merges in block order at the
//!   barrier, so serial and parallel runs produce *identical* event
//!   streams, not merely equivalent ones. Events ([`TraceEvent`]) are
//!   typed records whose human-facing fields are pre-rendered
//!   `Arc<str>` labels: emitting clones a pointer, it never formats.
//! * **Metrics** ([`metrics`]): a [`MetricsRegistry`] of named atomic
//!   counters, gauges and fixed-bucket latency histograms, snapshotable
//!   as one [`MetricsSnapshot`] and serialised by the same hand-rolled
//!   JSON writer ([`json`]) the bench harness uses — the workspace stays
//!   hermetic (no serde).
//!
//! * **Timelines** ([`timeline`]): per-op pipeline spans for the
//!   serving write path (enqueue → lane-acquire → wal-append →
//!   batch-wait → fsync → apply → publish), with first-write-wins
//!   atomic stamps and a thread-local current-op channel so layers
//!   behind fixed trait boundaries can stamp without signature churn.
//! * **Exposition** ([`exposition`]): a Prometheus-style
//!   `name{label="value"} value` text renderer over the same snapshot,
//!   again without any client library.
//!
//! Everything is `Send + Sync`; counters are relaxed atomics and the
//! event log takes one uncontended mutex per emit. The engine-facing
//! core of this crate reads no clocks and allocates no identifiers, so
//! two runs over the same inputs produce byte-identical traces — the
//! property the golden-trace suite pins down. The *one* deliberate
//! exception is [`timeline`] (and the [`TraceEvent::OpTimeline`] event
//! it feeds): op timelines exist to measure wall time on the serving
//! path and are emitted only from serve-mode timed paths, never from
//! the deterministic engine paths. DESIGN.md §15 spells out the split.

#![warn(missing_docs)]

pub mod event;
pub mod exposition;
pub mod json;
pub mod metrics;
pub mod timeline;
pub mod tracer;

pub use event::TraceEvent;
pub use exposition::render_prometheus;
pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot, WindowedRate,
};
pub use timeline::{OpTimeline, Phase};
pub use tracer::{EventLog, NoopTracer, ShardedLog, TraceHandle, Tracer};
