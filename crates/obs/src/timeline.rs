//! Per-op pipeline timelines: monotonic phase stamps for the serving
//! write path.
//!
//! An [`OpTimeline`] records when each pipeline phase of one write op
//! *completed*, as microseconds since the timeline's creation. The
//! phases follow the serving pipeline in order:
//!
//! ```text
//! enqueue → lane-acquire → wal-append → batch-wait → fsync → apply → publish
//! ```
//!
//! Stamps are first-write-wins atomics, so independent layers (the CLI
//! dispatcher, the hub's writer lane, the group-commit WAL) can each
//! stamp the phases they own without coordinating; a phase a layer does
//! not reach simply stays unset. [`OpTimeline::is_monotone`] checks the
//! recorded stamps never run backwards in pipeline order — the invariant
//! the concurrent fuzz arm asserts per op.
//!
//! **This module reads the clock.** It is the deliberate exception to
//! the crate's determinism contract: timelines never feed the trace
//! *golden* paths (serial/parallel byte-equality is over engine events,
//! which stay clock-free); they feed the serve-mode operator surface,
//! where wall time is the point. Tests that need determinism use
//! [`OpTimeline::record`], which bypasses the clock entirely.
//!
//! Because the durability traits have fixed signatures, the WAL layer
//! cannot receive a timeline parameter; instead the writer lane
//! installs its op's timeline in a thread-local ([`set_current`]) for
//! the duration of the synchronous log→chase→apply pipeline, and deeper
//! layers stamp through [`stamp_current`]. The install is RAII-scoped,
//! so a panic or early return cannot leak one op's timeline into the
//! next.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::event::TraceEvent;

/// One phase of the serving write pipeline, in pipeline order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    /// Op accepted by the dispatcher and queued for a writer lane.
    Enqueue,
    /// Writer lane acquired its block lock.
    LaneAcquire,
    /// Op's WAL record queued for the group-commit writer.
    WalAppend,
    /// Group-commit wait over (leader finished its linger + drain, or
    /// follower woken by a durable batch).
    BatchWait,
    /// Op durable: its batch's fsync completed.
    Fsync,
    /// Chase re-run and state mutation applied under the block lock.
    Apply,
    /// Op visible: snapshot handoff (stale flag / snapshot cut) done.
    Publish,
}

impl Phase {
    /// Every phase, in pipeline order.
    pub const ALL: [Phase; 7] = [
        Phase::Enqueue,
        Phase::LaneAcquire,
        Phase::WalAppend,
        Phase::BatchWait,
        Phase::Fsync,
        Phase::Apply,
        Phase::Publish,
    ];

    /// Stable snake_case name, used in events and stats output.
    pub fn as_str(self) -> &'static str {
        match self {
            Phase::Enqueue => "enqueue",
            Phase::LaneAcquire => "lane_acquire",
            Phase::WalAppend => "wal_append",
            Phase::BatchWait => "batch_wait",
            Phase::Fsync => "fsync",
            Phase::Apply => "apply",
            Phase::Publish => "publish",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// Completion stamps for one op's trip through the serving pipeline.
///
/// Stamps are stored as `elapsed_us + 1` (0 means "not reached"), so a
/// phase completing within the timeline's first microsecond is still
/// distinguishable from an unreached one.
#[derive(Debug)]
pub struct OpTimeline {
    start: Instant,
    stamps: [AtomicU64; 7],
}

impl Default for OpTimeline {
    fn default() -> Self {
        OpTimeline::new()
    }
}

impl OpTimeline {
    /// A fresh timeline; the clock starts now.
    pub fn new() -> Self {
        OpTimeline {
            start: Instant::now(),
            stamps: Default::default(),
        }
    }

    /// Stamps `phase` as completed now. First write wins: re-stamping a
    /// phase (e.g. a generic fallback after a specific layer already
    /// stamped it) is a no-op.
    pub fn stamp(&self, phase: Phase) {
        let us = self.start.elapsed().as_micros().min(u64::MAX as u128 - 1) as u64;
        self.record(phase, us);
    }

    /// Stamps `phase` at an explicit offset of `us` microseconds,
    /// bypassing the clock (first write wins). Lets tests drive a fake
    /// clock deterministically.
    pub fn record(&self, phase: Phase, us: u64) {
        let _ = self.stamps[phase.index()].compare_exchange(
            0,
            us.saturating_add(1),
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
    }

    /// Microseconds from creation to `phase`'s completion, if stamped.
    pub fn get(&self, phase: Phase) -> Option<u64> {
        match self.stamps[phase.index()].load(Ordering::Relaxed) {
            0 => None,
            v => Some(v - 1),
        }
    }

    /// The latest recorded stamp — the op's total pipeline time.
    pub fn total_us(&self) -> u64 {
        Phase::ALL
            .iter()
            .filter_map(|&p| self.get(p))
            .max()
            .unwrap_or(0)
    }

    /// True when recorded stamps are non-decreasing in pipeline order.
    /// Unreached phases are skipped: `enqueue=2, apply=5` is monotone
    /// even with everything between them unset.
    pub fn is_monotone(&self) -> bool {
        let mut last = 0u64;
        for &p in &Phase::ALL {
            if let Some(us) = self.get(p) {
                if us < last {
                    return false;
                }
                last = us;
            }
        }
        true
    }

    /// True when every phase in `phases` has been stamped.
    pub fn covers(&self, phases: &[Phase]) -> bool {
        phases.iter().all(|&p| self.get(p).is_some())
    }

    /// `(phase, duration_us)` for each recorded phase: the gap between
    /// its stamp and the previous recorded stamp (the first recorded
    /// phase's duration is its own offset).
    pub fn phase_durations(&self) -> Vec<(Phase, u64)> {
        let mut out = Vec::new();
        let mut last = 0u64;
        for &p in &Phase::ALL {
            if let Some(us) = self.get(p) {
                out.push((p, us.saturating_sub(last)));
                last = us;
            }
        }
        out
    }

    /// The per-phase duration attributed to `phase` (0 if unreached).
    pub fn duration_of(&self, phase: Phase) -> u64 {
        self.phase_durations()
            .iter()
            .find(|(p, _)| *p == phase)
            .map(|(_, d)| *d)
            .unwrap_or(0)
    }

    /// Renders this timeline as a [`TraceEvent::OpTimeline`] with
    /// per-phase duration attribution.
    pub fn to_event(&self, verb: Arc<str>, op: u64) -> TraceEvent {
        let mut by_phase = [0u64; 7];
        for (p, d) in self.phase_durations() {
            by_phase[p.index()] = d;
        }
        TraceEvent::OpTimeline {
            verb,
            op,
            total_us: self.total_us(),
            enqueue_us: by_phase[Phase::Enqueue.index()],
            lane_acquire_us: by_phase[Phase::LaneAcquire.index()],
            wal_append_us: by_phase[Phase::WalAppend.index()],
            batch_wait_us: by_phase[Phase::BatchWait.index()],
            fsync_us: by_phase[Phase::Fsync.index()],
            apply_us: by_phase[Phase::Apply.index()],
            publish_us: by_phase[Phase::Publish.index()],
        }
    }
}

thread_local! {
    static CURRENT: RefCell<Option<Arc<OpTimeline>>> = const { RefCell::new(None) };
}

/// RAII guard for a thread's current-op timeline; dropping it restores
/// the previous one (usually `None`).
#[derive(Debug)]
pub struct CurrentOp {
    prev: Option<Arc<OpTimeline>>,
}

impl Drop for CurrentOp {
    fn drop(&mut self) {
        CURRENT.with(|c| *c.borrow_mut() = self.prev.take());
    }
}

/// Installs `timeline` as this thread's current op for the guard's
/// lifetime, so layers below a fixed trait boundary (the durability
/// sinks, the group-commit WAL) can stamp it via [`stamp_current`].
pub fn set_current(timeline: &Arc<OpTimeline>) -> CurrentOp {
    let prev = CURRENT.with(|c| c.borrow_mut().replace(Arc::clone(timeline)));
    CurrentOp { prev }
}

/// Stamps `phase` on this thread's current-op timeline, if one is
/// installed; a single thread-local read otherwise.
pub fn stamp_current(phase: Phase) {
    CURRENT.with(|c| {
        if let Some(tl) = c.borrow().as_deref() {
            tl.stamp(phase);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamps_are_first_write_wins() {
        let tl = OpTimeline::new();
        tl.record(Phase::Apply, 10);
        tl.record(Phase::Apply, 99);
        assert_eq!(tl.get(Phase::Apply), Some(10));
    }

    #[test]
    fn zero_offset_is_distinguishable_from_unset() {
        let tl = OpTimeline::new();
        assert_eq!(tl.get(Phase::Enqueue), None);
        tl.record(Phase::Enqueue, 0);
        assert_eq!(tl.get(Phase::Enqueue), Some(0));
    }

    #[test]
    fn monotonicity_skips_unreached_phases() {
        let tl = OpTimeline::new();
        tl.record(Phase::Enqueue, 2);
        tl.record(Phase::Apply, 5);
        assert!(tl.is_monotone());
        tl.record(Phase::Publish, 4); // runs backwards from apply=5
        assert!(!tl.is_monotone());
    }

    #[test]
    fn durations_are_gaps_between_recorded_stamps() {
        let tl = OpTimeline::new();
        tl.record(Phase::Enqueue, 1);
        tl.record(Phase::LaneAcquire, 4);
        tl.record(Phase::Apply, 10);
        assert_eq!(
            tl.phase_durations(),
            vec![
                (Phase::Enqueue, 1),
                (Phase::LaneAcquire, 3),
                (Phase::Apply, 6)
            ]
        );
        assert_eq!(tl.total_us(), 10);
        assert!(tl.covers(&[Phase::Enqueue, Phase::Apply]));
        assert!(!tl.covers(&[Phase::Fsync]));
    }

    #[test]
    fn real_clock_stamps_are_monotone() {
        let tl = OpTimeline::new();
        for &p in &Phase::ALL {
            tl.stamp(p);
        }
        assert!(tl.is_monotone());
        assert!(tl.covers(&Phase::ALL));
    }

    #[test]
    fn thread_local_current_op_stamps_and_restores() {
        let tl = Arc::new(OpTimeline::new());
        stamp_current(Phase::Fsync); // no current op: no-op
        assert_eq!(tl.get(Phase::Fsync), None);
        {
            let _cur = set_current(&tl);
            stamp_current(Phase::Fsync);
        }
        assert!(tl.get(Phase::Fsync).is_some());
        stamp_current(Phase::Publish); // guard dropped: no-op again
        assert_eq!(tl.get(Phase::Publish), None);
    }

    #[test]
    fn nested_installs_restore_the_outer_timeline() {
        let outer = Arc::new(OpTimeline::new());
        let inner = Arc::new(OpTimeline::new());
        let _a = set_current(&outer);
        {
            let _b = set_current(&inner);
            stamp_current(Phase::Apply);
        }
        stamp_current(Phase::Publish);
        assert!(inner.get(Phase::Apply).is_some());
        assert_eq!(inner.get(Phase::Publish), None);
        assert!(outer.get(Phase::Publish).is_some());
        assert_eq!(outer.get(Phase::Apply), None);
    }
}
