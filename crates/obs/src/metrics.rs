//! Named atomic counters, gauges and fixed-bucket latency histograms.
//!
//! A [`MetricsRegistry`] hands out `Arc` handles so hot code increments
//! a pre-resolved atomic — the name lookup happens once, at setup. A
//! [`snapshot`](MetricsRegistry::snapshot) folds everything into one
//! [`MetricsSnapshot`] with deterministic (sorted-name) ordering,
//! serialised by the hand-rolled JSON writer ([`crate::json`]); the
//! workspace stays hermetic.
//!
//! Histograms are fixed-bucket (cumulative-free: each bucket counts its
//! own range) with caller-chosen upper bounds plus an implicit overflow
//! bucket; [`latency_bounds_us`] is the shared microsecond scale used
//! for engine timings.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::json::JsonWriter;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` — for up/down gauges like queue depth.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`, saturating at zero (concurrent decrements can
    /// momentarily observe a not-yet-incremented value).
    pub fn sub(&self, n: u64) {
        self.0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(n))
            })
            .ok();
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram: bucket `i` counts observations `v` with
/// `v <= bounds[i]` (and `> bounds[i-1]`); values above the last bound
/// land in the overflow bucket.
#[derive(Debug)]
pub struct Histogram {
    bounds: Box<[u64]>,
    /// `bounds.len() + 1` buckets; the last is overflow.
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
}

/// The shared microsecond latency scale: 1µs … 10s in a 1-2-5
/// progression. 22 buckets plus overflow.
pub fn latency_bounds_us() -> Vec<u64> {
    let mut out = Vec::new();
    let mut decade = 1u64;
    while decade <= 1_000_000 {
        for m in [1, 2, 5] {
            out.push(m * decade);
        }
        decade *= 10;
    }
    out.push(10_000_000);
    out
}

impl Histogram {
    /// A histogram over ascending `bounds` (deduplicated, sorted).
    pub fn new(bounds: &[u64]) -> Self {
        let mut b: Vec<u64> = bounds.to_vec();
        b.sort_unstable();
        b.dedup();
        let n = b.len();
        Histogram {
            bounds: b.into_boxed_slice(),
            buckets: (0..=n).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn observe(&self, v: u64) {
        let i = self.bounds.partition_point(|&b| b < v);
        self.buckets[i].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Records a duration in microseconds.
    pub fn observe_duration(&self, d: Duration) {
        self.observe(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    fn snapshot(&self, name: &str) -> HistogramSnapshot {
        let buckets = self
            .bounds
            .iter()
            .enumerate()
            .map(|(i, &b)| (b, self.buckets[i].load(Ordering::Relaxed)))
            .collect();
        HistogramSnapshot {
            name: name.to_string(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            buckets,
            overflow: self.buckets[self.bounds.len()].load(Ordering::Relaxed),
        }
    }
}

/// A registry of named metrics. Handles are `Arc`s: resolve once, then
/// increment lock-free.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        Arc::clone(
            self.counters
                .lock()
                .expect("metrics registry poisoned")
                .entry(name.to_string())
                .or_default(),
        )
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        Arc::clone(
            self.gauges
                .lock()
                .expect("metrics registry poisoned")
                .entry(name.to_string())
                .or_default(),
        )
    }

    /// The histogram named `name` over the shared latency scale
    /// ([`latency_bounds_us`]), created on first use.
    pub fn latency_histogram(&self, name: &str) -> Arc<Histogram> {
        self.histogram(name, &latency_bounds_us())
    }

    /// The histogram named `name`, created over `bounds` on first use
    /// (an existing histogram keeps its original bounds).
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Arc<Histogram> {
        Arc::clone(
            self.histograms
                .lock()
                .expect("metrics registry poisoned")
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::new(bounds))),
        )
    }

    /// A point-in-time copy of every metric, sorted by name.
    ///
    /// Each map lock is held only long enough to clone `(name, Arc)`
    /// pairs; the atomics are read after the locks drop. Hot-path
    /// writers hold pre-resolved `Arc` handles and never touch the
    /// maps, so a periodic snapshot (serve's `--stats-every`) cannot
    /// stall a writer lane — the only contention window is another
    /// thread *registering* a brand-new metric at the same instant.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters: Vec<(String, Arc<Counter>)> = self
            .counters
            .lock()
            .expect("metrics registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), Arc::clone(v)))
            .collect();
        let gauges: Vec<(String, Arc<Gauge>)> = self
            .gauges
            .lock()
            .expect("metrics registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), Arc::clone(v)))
            .collect();
        let histograms: Vec<(String, Arc<Histogram>)> = self
            .histograms
            .lock()
            .expect("metrics registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), Arc::clone(v)))
            .collect();
        MetricsSnapshot {
            counters: counters.iter().map(|(k, v)| (k.clone(), v.get())).collect(),
            gauges: gauges.iter().map(|(k, v)| (k.clone(), v.get())).collect(),
            histograms: histograms.iter().map(|(k, v)| v.snapshot(k)).collect(),
        }
    }
}

/// A sliding-window event rate over a fixed ring of time slots.
///
/// The clock is *explicit*: every call takes `now_us`, so production
/// code passes a monotonic elapsed-time reading while tests drive a
/// fake clock and get bit-for-bit deterministic rates. The window is
/// divided into `slots` equal slices; recording into a slice whose
/// epoch has passed resets it, so memory stays fixed no matter how long
/// the server runs.
#[derive(Debug)]
pub struct WindowedRate {
    window_us: u64,
    slot_us: u64,
    /// `(slot_epoch, count)` per slot; an entry counts only when its
    /// epoch matches the current time's.
    slots: Vec<(u64, u64)>,
}

impl WindowedRate {
    /// A rate over a trailing `window_us` window with `slots` slices.
    /// Both are clamped to at least 1 (sub-slot windows round up).
    pub fn new(window_us: u64, slots: usize) -> Self {
        let slots = slots.max(1);
        let window_us = window_us.max(1);
        WindowedRate {
            window_us,
            slot_us: (window_us / slots as u64).max(1),
            slots: vec![(u64::MAX, 0); slots],
        }
    }

    fn slot_epoch(&self, now_us: u64) -> u64 {
        now_us / self.slot_us
    }

    /// Records `n` events at `now_us`.
    pub fn record(&mut self, now_us: u64, n: u64) {
        let epoch = self.slot_epoch(now_us);
        let i = (epoch % self.slots.len() as u64) as usize;
        if self.slots[i].0 != epoch {
            self.slots[i] = (epoch, 0);
        }
        self.slots[i].1 += n;
    }

    /// Events recorded inside the trailing window ending at `now_us`.
    pub fn count(&self, now_us: u64) -> u64 {
        let epoch = self.slot_epoch(now_us);
        let oldest = epoch.saturating_sub(self.slots.len() as u64 - 1);
        self.slots
            .iter()
            .filter(|(e, _)| (oldest..=epoch).contains(e))
            .map(|(_, c)| c)
            .sum()
    }

    /// Events per second over the trailing window ending at `now_us`.
    /// Early in a run, the divisor is the elapsed time rather than the
    /// full window, so the first seconds aren't under-reported.
    pub fn per_sec(&self, now_us: u64) -> f64 {
        let span = self.window_us.min(now_us.max(1));
        self.count(now_us) as f64 * 1_000_000.0 / span as f64
    }
}

/// One histogram's snapshot: per-bucket `(upper_bound, count)` pairs
/// plus the overflow bucket.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// `(upper_bound, count)` per bucket, ascending.
    pub buckets: Vec<(u64, u64)>,
    /// Observations above the last bound.
    pub overflow: u64,
}

impl HistogramSnapshot {
    /// The `q`-quantile (`0.0 ..= 1.0`) estimated from the buckets: the
    /// upper bound of the bucket containing the quantile rank. Returns
    /// `None` for an empty histogram; a rank landing in the overflow
    /// bucket reports `u64::MAX` ("above the top bound"). The estimate
    /// is conservative — at most one bucket width above the true value,
    /// which on the 1-2-5 latency scale means within 2.5x.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for &(bound, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return Some(bound);
            }
        }
        Some(u64::MAX)
    }

    /// The median estimate. `None` when empty.
    pub fn p50(&self) -> Option<u64> {
        self.quantile(0.50)
    }

    /// The 95th-percentile estimate. `None` when empty.
    pub fn p95(&self) -> Option<u64> {
        self.quantile(0.95)
    }

    /// The 99th-percentile estimate. `None` when empty.
    pub fn p99(&self) -> Option<u64> {
        self.quantile(0.99)
    }

    /// Mean observed value, `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// A point-in-time copy of a [`MetricsRegistry`], with deterministic
/// ordering and a hand-rolled JSON rendering.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// `(name, value)` counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` gauges, sorted by name.
    pub gauges: Vec<(String, u64)>,
    /// Histograms, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Single-line JSON:
    /// `{"counters":{...},"gauges":{...},"histograms":[...]}`.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("counters").begin_object();
        for (k, v) in &self.counters {
            w.key(k).u64(*v);
        }
        w.end_object();
        w.key("gauges").begin_object();
        for (k, v) in &self.gauges {
            w.key(k).u64(*v);
        }
        w.end_object();
        w.key("histograms").begin_array();
        for h in &self.histograms {
            w.begin_object()
                .key("name")
                .string(&h.name)
                .key("count")
                .u64(h.count)
                .key("sum")
                .u64(h.sum)
                .key("overflow")
                .u64(h.overflow)
                .key("buckets")
                .begin_array();
            for &(bound, count) in &h.buckets {
                // Elide empty buckets: the latency scale is wide and the
                // document stays readable.
                if count > 0 {
                    w.begin_array().u64(bound).u64(count).end_array();
                }
            }
            w.end_array().end_object();
        }
        w.end_array();
        w.end_object();
        w.finish()
    }

    /// A `name value` line per metric, for human output.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.counters {
            out.push_str(&format!("counter   {k} = {v}\n"));
        }
        for (k, v) in &self.gauges {
            out.push_str(&format!("gauge     {k} = {v}\n"));
        }
        for h in &self.histograms {
            out.push_str(&format!(
                "histogram {} count={} sum={}us mean={:.1}us\n",
                h.name,
                h.count,
                h.sum,
                if h.count > 0 {
                    h.sum as f64 / h.count as f64
                } else {
                    0.0
                }
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_round_trip() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("chase.rule_applications");
        c.add(3);
        reg.counter("chase.rule_applications").inc();
        reg.gauge("guard.chase_steps").set(17);
        let snap = reg.snapshot();
        assert_eq!(
            snap.counters,
            vec![("chase.rule_applications".to_string(), 4)]
        );
        assert_eq!(snap.gauges, vec![("guard.chase_steps".to_string(), 17)]);
    }

    #[test]
    fn histogram_buckets_by_bound() {
        let h = Histogram::new(&[10, 100]);
        h.observe(5);
        h.observe(10);
        h.observe(11);
        h.observe(1000);
        let s = h.snapshot("t");
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 1026);
        assert_eq!(s.buckets, vec![(10, 2), (100, 1)]);
        assert_eq!(s.overflow, 1);
    }

    #[test]
    fn latency_scale_is_ascending() {
        let b = latency_bounds_us();
        assert!(b.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(*b.first().unwrap(), 1);
        assert_eq!(*b.last().unwrap(), 10_000_000);
    }

    #[test]
    fn snapshot_json_is_deterministic_and_sorted() {
        let reg = MetricsRegistry::new();
        reg.counter("b").inc();
        reg.counter("a").add(2);
        reg.histogram("h", &[10]).observe(3);
        let j1 = reg.snapshot().to_json();
        let j2 = reg.snapshot().to_json();
        assert_eq!(j1, j2);
        assert_eq!(
            j1,
            r#"{"counters":{"a":2,"b":1},"gauges":{},"histograms":[{"name":"h","count":1,"sum":3,"overflow":0,"buckets":[[10,1]]}]}"#
        );
    }

    #[test]
    fn gauge_add_sub_saturates_at_zero() {
        let g = Gauge::default();
        g.add(3);
        g.sub(1);
        assert_eq!(g.get(), 2);
        g.sub(10);
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn quantile_of_empty_histogram_is_none() {
        let s = Histogram::new(&[10, 100]).snapshot("t");
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.p99(), None);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn quantile_walks_cumulative_buckets() {
        let h = Histogram::new(&[10, 20, 50]);
        // 6 in (..=10], 3 in (10..=20], 1 in (20..=50].
        for _ in 0..6 {
            h.observe(5);
        }
        for _ in 0..3 {
            h.observe(15);
        }
        h.observe(30);
        let s = h.snapshot("t");
        assert_eq!(s.p50(), Some(10)); // rank 5 of 10 lands in the first bucket
        assert_eq!(s.quantile(0.89), Some(20)); // rank 9
        assert_eq!(s.p95(), Some(50)); // rank 10
        assert_eq!(s.quantile(0.0), Some(10)); // rank clamps to 1
        assert_eq!(s.quantile(1.0), Some(50));
    }

    #[test]
    fn quantile_in_edge_buckets_and_overflow() {
        let h = Histogram::new(&[10]);
        h.observe(3); // first (and only) bounded bucket
        h.observe(99); // overflow
        let s = h.snapshot("t");
        assert_eq!(s.p50(), Some(10));
        assert_eq!(s.p99(), Some(u64::MAX)); // rank 2 lands above the top bound
        // All mass in overflow: every quantile is "above the top bound".
        let h = Histogram::new(&[10]);
        h.observe(99);
        assert_eq!(h.snapshot("t").p50(), Some(u64::MAX));
    }

    #[test]
    fn windowed_rate_is_deterministic_under_a_fake_clock() {
        let mut r = WindowedRate::new(1_000_000, 10); // 1s window, 100ms slots
        for t in [0u64, 100_000, 200_000, 300_000] {
            r.record(t, 5);
        }
        assert_eq!(r.count(300_000), 20);
        // 20 events over the first 0.3s: early-run divisor is elapsed time.
        assert!((r.per_sec(300_000) - 20.0 * 1_000_000.0 / 300_000.0).abs() < 1e-9);
        // 1.5s later the window has slid past every recorded slot.
        assert_eq!(r.count(1_800_000), 0);
        // Re-recording into a recycled slot resets its stale epoch.
        r.record(2_000_000, 7);
        assert_eq!(r.count(2_000_000), 7);
        // Identical replay produces identical numbers.
        let mut r2 = WindowedRate::new(1_000_000, 10);
        for t in [0u64, 100_000, 200_000, 300_000] {
            r2.record(t, 5);
        }
        assert_eq!(r2.count(300_000), 20);
        assert_eq!(r2.per_sec(300_000).to_bits(), {
            let mut r3 = WindowedRate::new(1_000_000, 10);
            for t in [0u64, 100_000, 200_000, 300_000] {
                r3.record(t, 5);
            }
            r3.per_sec(300_000).to_bits()
        });
    }

    #[test]
    fn snapshot_reads_do_not_hold_registry_locks() {
        // Regression shape for the hot-path fix: while one thread holds
        // a registry map lock mid-registration, snapshot() must still
        // have been able to read atomics outside the locks. We can't
        // observe lock spans directly; instead pin the contract that
        // snapshot equals a by-hand read through pre-resolved handles.
        let reg = MetricsRegistry::new();
        let c = reg.counter("serve.ops");
        let h = reg.latency_histogram("serve.op_us");
        c.add(41);
        h.observe(7);
        let snap = reg.snapshot();
        c.inc(); // handle writes after the snapshot don't retro-apply
        assert_eq!(snap.counters, vec![("serve.ops".to_string(), 41)]);
        assert_eq!(snap.histograms[0].count, 1);
        assert_eq!(reg.snapshot().counters[0].1, 42);
    }

    #[test]
    fn snapshot_renders_text() {
        let reg = MetricsRegistry::new();
        reg.counter("x").inc();
        reg.latency_histogram("lat").observe(10);
        let text = reg.snapshot().render_text();
        assert!(text.contains("counter   x = 1"));
        assert!(text.contains("histogram lat count=1"));
    }
}
