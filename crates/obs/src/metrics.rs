//! Named atomic counters, gauges and fixed-bucket latency histograms.
//!
//! A [`MetricsRegistry`] hands out `Arc` handles so hot code increments
//! a pre-resolved atomic — the name lookup happens once, at setup. A
//! [`snapshot`](MetricsRegistry::snapshot) folds everything into one
//! [`MetricsSnapshot`] with deterministic (sorted-name) ordering,
//! serialised by the hand-rolled JSON writer ([`crate::json`]); the
//! workspace stays hermetic.
//!
//! Histograms are fixed-bucket (cumulative-free: each bucket counts its
//! own range) with caller-chosen upper bounds plus an implicit overflow
//! bucket; [`latency_bounds_us`] is the shared microsecond scale used
//! for engine timings.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::json::JsonWriter;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram: bucket `i` counts observations `v` with
/// `v <= bounds[i]` (and `> bounds[i-1]`); values above the last bound
/// land in the overflow bucket.
#[derive(Debug)]
pub struct Histogram {
    bounds: Box<[u64]>,
    /// `bounds.len() + 1` buckets; the last is overflow.
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
}

/// The shared microsecond latency scale: 1µs … 10s in a 1-2-5
/// progression. 22 buckets plus overflow.
pub fn latency_bounds_us() -> Vec<u64> {
    let mut out = Vec::new();
    let mut decade = 1u64;
    while decade <= 1_000_000 {
        for m in [1, 2, 5] {
            out.push(m * decade);
        }
        decade *= 10;
    }
    out.push(10_000_000);
    out
}

impl Histogram {
    /// A histogram over ascending `bounds` (deduplicated, sorted).
    pub fn new(bounds: &[u64]) -> Self {
        let mut b: Vec<u64> = bounds.to_vec();
        b.sort_unstable();
        b.dedup();
        let n = b.len();
        Histogram {
            bounds: b.into_boxed_slice(),
            buckets: (0..=n).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn observe(&self, v: u64) {
        let i = self.bounds.partition_point(|&b| b < v);
        self.buckets[i].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Records a duration in microseconds.
    pub fn observe_duration(&self, d: Duration) {
        self.observe(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    fn snapshot(&self, name: &str) -> HistogramSnapshot {
        let buckets = self
            .bounds
            .iter()
            .enumerate()
            .map(|(i, &b)| (b, self.buckets[i].load(Ordering::Relaxed)))
            .collect();
        HistogramSnapshot {
            name: name.to_string(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            buckets,
            overflow: self.buckets[self.bounds.len()].load(Ordering::Relaxed),
        }
    }
}

/// A registry of named metrics. Handles are `Arc`s: resolve once, then
/// increment lock-free.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        Arc::clone(
            self.counters
                .lock()
                .expect("metrics registry poisoned")
                .entry(name.to_string())
                .or_default(),
        )
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        Arc::clone(
            self.gauges
                .lock()
                .expect("metrics registry poisoned")
                .entry(name.to_string())
                .or_default(),
        )
    }

    /// The histogram named `name` over the shared latency scale
    /// ([`latency_bounds_us`]), created on first use.
    pub fn latency_histogram(&self, name: &str) -> Arc<Histogram> {
        self.histogram(name, &latency_bounds_us())
    }

    /// The histogram named `name`, created over `bounds` on first use
    /// (an existing histogram keeps its original bounds).
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Arc<Histogram> {
        Arc::clone(
            self.histograms
                .lock()
                .expect("metrics registry poisoned")
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::new(bounds))),
        )
    }

    /// A point-in-time copy of every metric, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .lock()
                .expect("metrics registry poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .expect("metrics registry poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .expect("metrics registry poisoned")
                .iter()
                .map(|(k, v)| v.snapshot(k))
                .collect(),
        }
    }
}

/// One histogram's snapshot: per-bucket `(upper_bound, count)` pairs
/// plus the overflow bucket.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// `(upper_bound, count)` per bucket, ascending.
    pub buckets: Vec<(u64, u64)>,
    /// Observations above the last bound.
    pub overflow: u64,
}

/// A point-in-time copy of a [`MetricsRegistry`], with deterministic
/// ordering and a hand-rolled JSON rendering.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// `(name, value)` counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` gauges, sorted by name.
    pub gauges: Vec<(String, u64)>,
    /// Histograms, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Single-line JSON:
    /// `{"counters":{...},"gauges":{...},"histograms":[...]}`.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("counters").begin_object();
        for (k, v) in &self.counters {
            w.key(k).u64(*v);
        }
        w.end_object();
        w.key("gauges").begin_object();
        for (k, v) in &self.gauges {
            w.key(k).u64(*v);
        }
        w.end_object();
        w.key("histograms").begin_array();
        for h in &self.histograms {
            w.begin_object()
                .key("name")
                .string(&h.name)
                .key("count")
                .u64(h.count)
                .key("sum")
                .u64(h.sum)
                .key("overflow")
                .u64(h.overflow)
                .key("buckets")
                .begin_array();
            for &(bound, count) in &h.buckets {
                // Elide empty buckets: the latency scale is wide and the
                // document stays readable.
                if count > 0 {
                    w.begin_array().u64(bound).u64(count).end_array();
                }
            }
            w.end_array().end_object();
        }
        w.end_array();
        w.end_object();
        w.finish()
    }

    /// A `name value` line per metric, for human output.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.counters {
            out.push_str(&format!("counter   {k} = {v}\n"));
        }
        for (k, v) in &self.gauges {
            out.push_str(&format!("gauge     {k} = {v}\n"));
        }
        for h in &self.histograms {
            out.push_str(&format!(
                "histogram {} count={} sum={}us mean={:.1}us\n",
                h.name,
                h.count,
                h.sum,
                if h.count > 0 {
                    h.sum as f64 / h.count as f64
                } else {
                    0.0
                }
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_round_trip() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("chase.rule_applications");
        c.add(3);
        reg.counter("chase.rule_applications").inc();
        reg.gauge("guard.chase_steps").set(17);
        let snap = reg.snapshot();
        assert_eq!(
            snap.counters,
            vec![("chase.rule_applications".to_string(), 4)]
        );
        assert_eq!(snap.gauges, vec![("guard.chase_steps".to_string(), 17)]);
    }

    #[test]
    fn histogram_buckets_by_bound() {
        let h = Histogram::new(&[10, 100]);
        h.observe(5);
        h.observe(10);
        h.observe(11);
        h.observe(1000);
        let s = h.snapshot("t");
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 1026);
        assert_eq!(s.buckets, vec![(10, 2), (100, 1)]);
        assert_eq!(s.overflow, 1);
    }

    #[test]
    fn latency_scale_is_ascending() {
        let b = latency_bounds_us();
        assert!(b.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(*b.first().unwrap(), 1);
        assert_eq!(*b.last().unwrap(), 10_000_000);
    }

    #[test]
    fn snapshot_json_is_deterministic_and_sorted() {
        let reg = MetricsRegistry::new();
        reg.counter("b").inc();
        reg.counter("a").add(2);
        reg.histogram("h", &[10]).observe(3);
        let j1 = reg.snapshot().to_json();
        let j2 = reg.snapshot().to_json();
        assert_eq!(j1, j2);
        assert_eq!(
            j1,
            r#"{"counters":{"a":2,"b":1},"gauges":{},"histograms":[{"name":"h","count":1,"sum":3,"overflow":0,"buckets":[[10,1]]}]}"#
        );
    }

    #[test]
    fn snapshot_renders_text() {
        let reg = MetricsRegistry::new();
        reg.counter("x").inc();
        reg.latency_histogram("lat").observe(10);
        let text = reg.snapshot().render_text();
        assert!(text.contains("counter   x = 1"));
        assert!(text.contains("histogram lat count=1"));
    }
}
