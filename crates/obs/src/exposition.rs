//! Dependency-free Prometheus-style text exposition.
//!
//! Renders a [`MetricsSnapshot`] as `name{label="value"} value` lines —
//! the de-facto scrape format — without pulling in any client library;
//! the workspace stays hermetic. Registry names use dots
//! (`store.wal_appends`) and an optional inline label suffix
//! (`hub.lane_ops{block=3}`); exposition maps dots and dashes to
//! underscores, prefixes everything with `idr_`, and quotes label
//! values, so the two examples above become `idr_store_wal_appends` and
//! `idr_hub_lane_ops{block="3"}`.
//!
//! Histograms follow the Prometheus convention: cumulative
//! `_bucket{le="..."}` series ending in `le="+Inf"`, plus `_sum` and
//! `_count`. Ordering is the snapshot's (sorted by name), so the output
//! is deterministic.

use crate::metrics::MetricsSnapshot;

/// Splits a registry name into `(base, label_suffix)`: the suffix of
/// `hub.lane_ops{block=3}` is `{block="3"}`, rendered with quoted
/// values; a name without braces has an empty suffix.
fn split_name(name: &str) -> (String, String) {
    let (base, labels) = match name.split_once('{') {
        Some((b, rest)) => (b, rest.strip_suffix('}').unwrap_or(rest)),
        None => (name, ""),
    };
    let base: String = base
        .chars()
        .map(|c| if c == '.' || c == '-' { '_' } else { c })
        .collect();
    if labels.is_empty() {
        return (format!("idr_{base}"), String::new());
    }
    let rendered: Vec<String> = labels
        .split(',')
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => format!("{}=\"{}\"", k.trim(), v.trim().trim_matches('"')),
            None => format!("{}=\"\"", pair.trim()),
        })
        .collect();
    (format!("idr_{base}"), format!("{{{}}}", rendered.join(",")))
}

/// Joins a `{k="v"}` suffix with extra label pairs (for histogram `le`).
fn with_extra_label(suffix: &str, extra: &str) -> String {
    if suffix.is_empty() {
        format!("{{{extra}}}")
    } else {
        format!("{}{},{}}}", &suffix[..1], &suffix[1..suffix.len() - 1], extra)
    }
}

/// Renders the snapshot in Prometheus text exposition style.
pub fn render_prometheus(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, v) in &snap.counters {
        let (base, labels) = split_name(name);
        out.push_str(&format!("{base}{labels} {v}\n"));
    }
    for (name, v) in &snap.gauges {
        let (base, labels) = split_name(name);
        out.push_str(&format!("{base}{labels} {v}\n"));
    }
    for h in &snap.histograms {
        let (base, labels) = split_name(&h.name);
        let mut cumulative = 0u64;
        for &(bound, count) in &h.buckets {
            cumulative += count;
            // Elide empty prefixes? No — cumulative series must be
            // complete for quantile math downstream; emit every bound.
            let l = with_extra_label(&labels, &format!("le=\"{bound}\""));
            out.push_str(&format!("{base}_bucket{l} {cumulative}\n"));
        }
        cumulative += h.overflow;
        let l = with_extra_label(&labels, "le=\"+Inf\"");
        out.push_str(&format!("{base}_bucket{l} {cumulative}\n"));
        out.push_str(&format!("{base}_sum{labels} {}\n", h.sum));
        out.push_str(&format!("{base}_count{labels} {}\n", h.count));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    #[test]
    fn names_are_sanitized_and_labels_quoted() {
        let reg = MetricsRegistry::new();
        reg.counter("store.wal_appends").add(4);
        reg.counter("hub.lane_ops{block=3}").add(9);
        reg.gauge("serve.queue_depth").set(2);
        let text = render_prometheus(&reg.snapshot());
        assert!(text.contains("idr_store_wal_appends 4\n"));
        assert!(text.contains("idr_hub_lane_ops{block=\"3\"} 9\n"));
        assert!(text.contains("idr_serve_queue_depth 2\n"));
    }

    #[test]
    fn histograms_render_cumulative_buckets_with_inf() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("store.batch_size", &[1, 4]);
        h.observe(1);
        h.observe(3);
        h.observe(100); // overflow
        let text = render_prometheus(&reg.snapshot());
        assert!(text.contains("idr_store_batch_size_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("idr_store_batch_size_bucket{le=\"4\"} 2\n"));
        assert!(text.contains("idr_store_batch_size_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("idr_store_batch_size_sum 104\n"));
        assert!(text.contains("idr_store_batch_size_count 3\n"));
    }

    #[test]
    fn labeled_histogram_keeps_its_labels_on_every_series() {
        let reg = MetricsRegistry::new();
        reg.histogram("pipeline.us{phase=fsync}", &[10]).observe(5);
        let text = render_prometheus(&reg.snapshot());
        assert!(text.contains("idr_pipeline_us_bucket{phase=\"fsync\",le=\"10\"} 1\n"));
        assert!(text.contains("idr_pipeline_us_sum{phase=\"fsync\"} 5\n"));
        assert!(text.contains("idr_pipeline_us_count{phase=\"fsync\"} 1\n"));
    }

    #[test]
    fn output_is_deterministic() {
        let build = || {
            let reg = MetricsRegistry::new();
            reg.counter("b").inc();
            reg.counter("a").add(2);
            reg.latency_histogram("h").observe(3);
            render_prometheus(&reg.snapshot())
        };
        assert_eq!(build(), build());
    }
}
