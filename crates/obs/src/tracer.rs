//! Tracer trait, the ring-buffer event log, sharding, and the cheap
//! handle threaded through the engines.
//!
//! The hot-path contract: an instrumentation site calls
//! [`TraceHandle::emit_with`] with a *closure* that builds the event.
//! When no tracer is installed (the default), the call is one branch on
//! an `Option` — the closure is never invoked, no event is constructed,
//! nothing is formatted. When a tracer is installed, the closure runs
//! and the event is pushed into a fixed-capacity ring buffer under one
//! uncontended mutex.
//!
//! Determinism under block parallelism comes from [`ShardedLog`]: the
//! engine gives every IR block its own shard, scoped worker threads
//! write only to their own shard, and after the join barrier the shards
//! are drained *in block order* into the session's sink. Serial and
//! parallel runs therefore produce identical event sequences — the
//! golden-trace suite asserts byte equality, not just multiset
//! equality.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use crate::event::TraceEvent;

/// A sink for [`TraceEvent`]s. Implementations must be cheap to probe
/// via [`enabled`](Tracer::enabled): instrumentation sites gate event
/// construction on it.
pub trait Tracer: Send + Sync {
    /// Whether events should be constructed and emitted at all.
    fn enabled(&self) -> bool {
        false
    }

    /// Records one event. Implementations must not block for long — the
    /// chase calls this with its own locks *not* held, but from inside
    /// hot loops.
    fn emit(&self, event: TraceEvent);
}

/// The default sink: drops everything, reports itself disabled.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopTracer;

impl Tracer for NoopTracer {
    fn emit(&self, _event: TraceEvent) {}
}

#[derive(Debug)]
struct LogState {
    events: VecDeque<TraceEvent>,
    /// Events discarded because the ring was full (oldest-first).
    dropped: u64,
    /// Total events ever emitted (including dropped).
    seq: u64,
}

/// A fixed-capacity ring buffer of trace events. When full, the oldest
/// event is discarded and counted in [`dropped`](EventLog::dropped) —
/// tracing never grows without bound and never errors.
#[derive(Debug)]
pub struct EventLog {
    capacity: usize,
    state: Mutex<LogState>,
}

impl EventLog {
    /// A log holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        EventLog {
            capacity: capacity.max(1),
            state: Mutex::new(LogState {
                events: VecDeque::new(),
                dropped: 0,
                seq: 0,
            }),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events currently buffered.
    pub fn len(&self) -> usize {
        self.state.lock().expect("event log poisoned").events.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events discarded because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.state.lock().expect("event log poisoned").dropped
    }

    /// Total events ever emitted into this log (buffered + dropped).
    pub fn total_emitted(&self) -> u64 {
        self.state.lock().expect("event log poisoned").seq
    }

    /// Removes and returns all buffered events, oldest first.
    pub fn drain(&self) -> Vec<TraceEvent> {
        let mut st = self.state.lock().expect("event log poisoned");
        st.events.drain(..).collect()
    }

    /// Clones the buffered events without draining, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        let st = self.state.lock().expect("event log poisoned");
        st.events.iter().cloned().collect()
    }
}

impl Tracer for EventLog {
    fn enabled(&self) -> bool {
        true
    }

    fn emit(&self, event: TraceEvent) {
        let mut st = self.state.lock().expect("event log poisoned");
        st.seq += 1;
        if st.events.len() == self.capacity {
            st.events.pop_front();
            st.dropped += 1;
        }
        st.events.push_back(event);
    }
}

/// Per-shard event logs that merge deterministically.
///
/// The block-parallel engine creates one shard per IR block; each scoped
/// worker emits only into its block's shard, and at the join barrier
/// [`merge_into`](ShardedLog::merge_into) drains the shards *in shard
/// order* into a single sink. Because each block's chase is itself
/// deterministic, the merged stream is identical whether the blocks ran
/// serially or in parallel.
#[derive(Debug)]
pub struct ShardedLog {
    shards: Vec<Arc<EventLog>>,
}

impl ShardedLog {
    /// `n` shards of `capacity_per_shard` events each.
    pub fn new(n: usize, capacity_per_shard: usize) -> Self {
        ShardedLog {
            shards: (0..n)
                .map(|_| Arc::new(EventLog::new(capacity_per_shard)))
                .collect(),
        }
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Whether there are no shards.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// The shard for block `i`.
    pub fn shard(&self, i: usize) -> &Arc<EventLog> {
        &self.shards[i]
    }

    /// Drains every shard, in shard order, into `sink`. Returns the
    /// number of events merged.
    pub fn merge_into(&self, sink: &dyn Tracer) -> usize {
        let mut n = 0;
        for shard in &self.shards {
            for e in shard.drain() {
                sink.emit(e);
                n += 1;
            }
        }
        n
    }

    /// [`merge_into`](ShardedLog::merge_into) through a [`TraceHandle`]
    /// (no-op when the handle is disabled).
    pub fn merge_into_handle(&self, sink: &TraceHandle) -> usize {
        let mut n = 0;
        for shard in &self.shards {
            for e in shard.drain() {
                sink.emit(e);
                n += 1;
            }
        }
        n
    }
}

/// The cheap, cloneable handle instrumented code holds. `None` (the
/// default) is the no-op tracer compiled down to one branch.
#[derive(Clone, Default)]
pub struct TraceHandle(Option<Arc<dyn Tracer>>);

impl TraceHandle {
    /// The disabled handle.
    pub fn none() -> Self {
        TraceHandle(None)
    }

    /// A handle emitting into `tracer`.
    pub fn new(tracer: Arc<dyn Tracer>) -> Self {
        TraceHandle(Some(tracer))
    }

    /// A handle emitting into an [`EventLog`].
    pub fn to_log(log: Arc<EventLog>) -> Self {
        TraceHandle(Some(log))
    }

    /// Whether emitting is worthwhile. Instrumentation sites use this to
    /// skip whole blocks of event preparation.
    #[inline]
    pub fn enabled(&self) -> bool {
        match &self.0 {
            Some(t) => t.enabled(),
            None => false,
        }
    }

    /// Emits the event built by `f`, if and only if tracing is enabled —
    /// `f` never runs otherwise.
    #[inline]
    pub fn emit_with(&self, f: impl FnOnce() -> TraceEvent) {
        if let Some(t) = &self.0 {
            if t.enabled() {
                t.emit(f());
            }
        }
    }

    /// Emits an already-built event, if tracing is enabled. Prefer
    /// [`emit_with`](TraceHandle::emit_with) when construction has any
    /// cost; this is for relaying events that already exist (e.g. shard
    /// merges).
    pub fn emit(&self, event: TraceEvent) {
        if let Some(t) = &self.0 {
            if t.enabled() {
                t.emit(event);
            }
        }
    }
}

impl std::fmt::Debug for TraceHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "TraceHandle({})",
            if self.enabled() { "enabled" } else { "disabled" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn ev(n: usize) -> TraceEvent {
        TraceEvent::SessionBuilt {
            blocks: n,
            consistent: true,
        }
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let log = EventLog::new(2);
        log.emit(ev(0));
        log.emit(ev(1));
        log.emit(ev(2));
        assert_eq!(log.len(), 2);
        assert_eq!(log.dropped(), 1);
        assert_eq!(log.total_emitted(), 3);
        let drained = log.drain();
        assert_eq!(drained, vec![ev(1), ev(2)]);
        assert!(log.is_empty());
    }

    #[test]
    fn handle_defaults_disabled_and_skips_closure() {
        let h = TraceHandle::none();
        assert!(!h.enabled());
        h.emit_with(|| panic!("must not be constructed"));
    }

    #[test]
    fn handle_emits_into_log() {
        let log = Arc::new(EventLog::new(16));
        let h = TraceHandle::to_log(Arc::clone(&log));
        assert!(h.enabled());
        h.emit_with(|| ev(7));
        assert_eq!(log.events(), vec![ev(7)]);
    }

    #[test]
    fn shards_merge_in_order() {
        let sharded = ShardedLog::new(3, 8);
        // Emit out of shard order, as parallel workers would.
        sharded.shard(2).emit(ev(20));
        sharded.shard(0).emit(ev(0));
        sharded.shard(1).emit(ev(10));
        sharded.shard(0).emit(ev(1));
        let sink = EventLog::new(16);
        assert_eq!(sharded.merge_into(&sink), 4);
        assert_eq!(sink.drain(), vec![ev(0), ev(1), ev(10), ev(20)]);
    }

    #[test]
    fn noop_tracer_is_disabled() {
        assert!(!NoopTracer.enabled());
        NoopTracer.emit(ev(0));
    }
}
