//! Ablation 1 (DESIGN.md §7): attribute-closure computation — the indexed
//! bitset algorithm vs the naive bitset scan vs a `BTreeSet`-based
//! implementation. Closure is the inner loop of KEP, Algorithm 6 and the
//! splitness test, so this is the data-structure decision that sets the
//! recognition constant factor.

use std::collections::BTreeSet;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use idr_fd::{naive, KeyDeps};
use idr_relation::Attribute;
use idr_workload::generators;

fn bench_closure(c: &mut Criterion) {
    let mut group = c.benchmark_group("fd_closure");
    for n in [8usize, 16, 32, 64] {
        // A chain scheme of n relations: 2n key dependencies whose closure
        // from one end walks the whole chain.
        let db = generators::chain_scheme(n);
        let kd = KeyDeps::of(&db);
        let fds = kd.full().clone();
        let start = db.scheme(0).attrs();
        group.bench_with_input(BenchmarkId::new("indexed_bitset", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(fds.closure(start)));
        });
        group.bench_with_input(BenchmarkId::new("naive_bitset", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(naive::closure_naive(&fds, start)));
        });
        let start_bt: BTreeSet<Attribute> = start.iter().collect();
        group.bench_with_input(BenchmarkId::new("btreeset", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(naive::closure_btreeset(&fds, &start_bt)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_closure);
criterion_main!(benches);
