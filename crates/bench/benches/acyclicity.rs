//! Ablation 4: γ-acyclicity deciders — the reduction-based production test
//! against the exponential γ-cycle search, on acyclic (chain/star) and
//! cyclic (cycle) hypergraphs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use idr_hypergraph::{gamma, gyo, Hypergraph};
use idr_workload::generators;

fn bench_acyclicity(c: &mut Criterion) {
    let mut group = c.benchmark_group("acyclicity");
    for &n in &[4usize, 8, 12] {
        let chain = Hypergraph::of_scheme(&generators::chain_scheme(n));
        group.bench_with_input(BenchmarkId::new("reduction_chain", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(gamma::is_gamma_acyclic(&chain)));
        });
        group.bench_with_input(BenchmarkId::new("cycle_search_chain", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(gamma::is_gamma_acyclic_oracle(&chain)));
        });

        let cyc = Hypergraph::of_scheme(&generators::cycle_scheme(n.max(3)));
        group.bench_with_input(BenchmarkId::new("reduction_cycle", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(gamma::is_gamma_acyclic(&cyc)));
        });
        group.bench_with_input(BenchmarkId::new("cycle_search_cycle", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(gamma::is_gamma_acyclic_oracle(&cyc)));
        });

        group.bench_with_input(BenchmarkId::new("gyo_alpha_chain", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(gyo::is_alpha_acyclic(&chain)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_acyclicity);
criterion_main!(benches);
