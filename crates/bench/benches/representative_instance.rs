//! Ablation 2 / Corollary 3.1: computing the representative instance of a
//! key-equivalent state — Algorithm 1's whole-tuple merging (`KeRep`)
//! against the generic fd-rule chase, as the state grows.
//!
//! The paper's point is qualitative (Algorithm 1 only ever equates whole
//! tuples, so a key-indexed merge suffices); the benchmark shows the
//! resulting asymptotic gap.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use idr_bench::instance;
use idr_core::KeRep;
use idr_relation::AttrSet;
use idr_workload::generators;

fn bench_rep_instance(c: &mut Criterion) {
    let mut group = c.benchmark_group("representative_instance");
    group.sample_size(10);
    for entities in [50usize, 100, 200] {
        let inst = instance(generators::cycle_scheme(5), entities, 42);
        let keys: Vec<AttrSet> = inst
            .scheme
            .schemes()
            .iter()
            .flat_map(|s| s.keys().iter().copied())
            .collect();
        group.throughput(Throughput::Elements(inst.state.total_tuples() as u64));

        group.bench_with_input(
            BenchmarkId::new("algorithm1_kerep", entities),
            &entities,
            |b, _| {
                b.iter(|| {
                    let rep = KeRep::build(
                        &keys,
                        inst.state.iter_all().map(|(_, t)| t.clone()),
                    )
                    .expect("consistent");
                    std::hint::black_box(rep.len())
                });
            },
        );

        group.bench_with_input(
            BenchmarkId::new("indexed_chase", entities),
            &entities,
            |b, _| {
                b.iter(|| {
                    let mut t = idr_chase::Tableau::of_state(&inst.scheme, &inst.state);
                    idr_chase::fast::chase_fast(&mut t, inst.kd.full()).expect("consistent");
                    std::hint::black_box(t.len())
                });
            },
        );

        group.bench_with_input(
            BenchmarkId::new("generic_chase", entities),
            &entities,
            |b, _| {
                b.iter(|| {
                    let ri = idr_chase::representative_instance(
                        &inst.scheme,
                        &inst.state,
                        inst.kd.full(),
                    )
                    .expect("consistent");
                    std::hint::black_box(ri.tableau.len())
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_rep_instance);
criterion_main!(benches);
