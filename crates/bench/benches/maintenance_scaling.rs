//! TH-CTM and EX2: the maintenance-cost landscape.
//!
//! * `ctm_algorithm5` — split-free scheme, per-insert cost of Algorithm 5
//!   over a prebuilt index: flat in the state size (constant-time
//!   maintainability, Theorem 3.3).
//! * `algebraic_algorithm2` — split scheme, per-insert cost of Algorithm 2
//!   over a prebuilt representative instance: flat in the state size
//!   (algebraic maintainability, Theorem 3.2 — the state-size-dependent
//!   part of ctm's definition is about *ad hoc* retrieval, not about
//!   index-assisted lookups).
//! * `rechase_baseline` — the strawman: re-chasing the whole updated
//!   state; grows with the state.
//! * `outside_class_chase` — Example 2's adversarial chain: even the
//!   *decision* inherently grows with the state (Theorem 3.4's flavour).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use idr_bench::instance;
use idr_core::maintain::{algorithm2, algorithm5, IrMaintainer, StateIndex};
use idr_core::recognition::recognize;
use idr_fd::KeyDeps;
use idr_relation::{SymbolTable, Tuple};
use idr_workload::generators;
use idr_workload::states::entity_tuple;

fn bench_maintenance(c: &mut Criterion) {
    let mut group = c.benchmark_group("maintenance_scaling");
    group.sample_size(20);

    for entities in [100usize, 400, 1600, 6400] {
        // Split-free family: cycle(5); Algorithm 5 over a state index.
        {
            let mut inst = instance(generators::cycle_scheme(5), entities, 7);
            let members: Vec<usize> = (0..inst.scheme.len()).collect();
            let idx = StateIndex::build(&inst.scheme, &members, &inst.state).unwrap();
            let t: Tuple = entity_tuple(&inst.scheme, &mut inst.symbols, 0)
                .project(inst.scheme.scheme(0).attrs());
            group.bench_with_input(
                BenchmarkId::new("ctm_algorithm5", entities),
                &entities,
                |b, _| {
                    b.iter(|| {
                        std::hint::black_box(algorithm5(&inst.scheme, &idx, 0, &t))
                    });
                },
            );
        }

        // Split family: split(3); Algorithm 2 over a prebuilt rep.
        {
            let mut inst = instance(generators::split_scheme(3), entities, 7);
            let kd = KeyDeps::of(&inst.scheme);
            let ir = recognize(&inst.scheme, &kd).accepted().unwrap();
            let m = IrMaintainer::new(&inst.scheme, &ir, &inst.state).unwrap();
            let t: Tuple = entity_tuple(&inst.scheme, &mut inst.symbols, 0)
                .project(inst.scheme.scheme(0).attrs());
            group.bench_with_input(
                BenchmarkId::new("algebraic_algorithm2", entities),
                &entities,
                |b, _| {
                    b.iter(|| {
                        std::hint::black_box(algorithm2(&inst.scheme, &m.reps()[0], 0, &t))
                    });
                },
            );
        }

    }

    // Strawman: re-chase the whole updated state per insert. Kept to small
    // states — the whole point is that it does not scale.
    for entities in [50usize, 100, 200] {
        let mut inst = instance(generators::cycle_scheme(5), entities, 7);
        let t: Tuple = entity_tuple(&inst.scheme, &mut inst.symbols, 0)
            .project(inst.scheme.scheme(0).attrs());
        let mut updated = inst.state.clone();
        updated.insert(0, t).unwrap();
        group.bench_with_input(
            BenchmarkId::new("rechase_baseline", entities),
            &entities,
            |b, _| {
                b.iter(|| {
                    std::hint::black_box(idr_chase::is_consistent(
                        &inst.scheme,
                        &updated,
                        inst.kd.full(),
                    ))
                });
            },
        );
    }

    // Outside the class: the Example 2 chain, where the refutation itself
    // must traverse the state.
    for n in [25usize, 100, 400] {
        let db = generators::example2_scheme();
        let kd = KeyDeps::of(&db);
        let mut sym = SymbolTable::new();
        let (state, bad) = generators::example2_adversarial_state(&db, &mut sym, n);
        let mut updated = state.clone();
        updated.insert(2, bad).unwrap();
        group.bench_with_input(
            BenchmarkId::new("outside_class_chase", n),
            &n,
            |b, _| {
                b.iter(|| {
                    std::hint::black_box(idr_chase::is_consistent(&db, &updated, kd.full()))
                });
            },
        );
    }
    // Theorem 3.4's inflated witness: on a split scheme, deciding the
    // probe via base-relation access (the chase here) costs Ω(state),
    // while Algorithm 2 over the prebuilt representative instance stays
    // flat — the algebraic-vs-ctm gap made measurable.
    for n in [10usize, 40, 160] {
        let db = generators::split_scheme(3);
        let kd = KeyDeps::of(&db);
        let block: Vec<usize> = (0..db.len()).collect();
        let mut sym = SymbolTable::new();
        let w = idr_core::ctm_witness::non_ctm_witness(&db, &kd, &block, &mut sym)
            .expect("split(3) splits");
        let inflated = w.inflate(&db, &mut sym, n);
        let mut bad = inflated.clone();
        bad.insert(w.probe_scheme, w.probe.clone()).unwrap();
        group.bench_with_input(
            BenchmarkId::new("split_witness_chase", n),
            &n,
            |b, _| {
                b.iter(|| std::hint::black_box(idr_chase::is_consistent(&db, &bad, kd.full())));
            },
        );
        let keys: Vec<idr_relation::AttrSet> = db
            .schemes()
            .iter()
            .flat_map(|s| s.keys().iter().copied())
            .collect();
        let rep = idr_core::KeRep::build(&keys, inflated.iter_all().map(|(_, t)| t.clone()))
            .expect("consistent");
        group.bench_with_input(
            BenchmarkId::new("split_witness_algorithm2", n),
            &n,
            |b, _| {
                b.iter(|| {
                    std::hint::black_box(algorithm2(&db, &rep, w.probe_scheme, &w.probe))
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_maintenance);
criterion_main!(benches);
