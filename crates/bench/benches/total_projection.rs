//! TH-BOUND: bounded query answering. Evaluating the predetermined
//! Theorem 4.1 expression for `[X]` versus chasing the state tableau and
//! projecting, as the state grows. The expression is compiled once per
//! scheme (boundedness: its size depends only on `R` and `F`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use idr_bench::instance;
use idr_core::query::ir_total_projection_expr;
use idr_core::recognition::recognize;
use idr_relation::AttrSet;
use idr_workload::generators;

fn bench_total_projection(c: &mut Criterion) {
    let mut group = c.benchmark_group("total_projection");
    group.sample_size(10);
    for entities in [50usize, 100, 250] {
        // Example 11 generalised: a cross-block query, the hard case.
        let inst = instance(generators::block_chain_scheme(2, 4), entities, 21);
        let u = inst.scheme.universe();
        // X = anchor of block 0 + an attribute of block 1: answerable only
        // through the bridge.
        let x = AttrSet::from_iter([u.attr_of("X0_1"), u.attr_of("X1_1")]);
        let ir = recognize(&inst.scheme, &inst.kd).accepted().unwrap();
        let expr = ir_total_projection_expr(&inst.scheme, &inst.kd, &ir, x)
            .expect("coverable through the bridge");

        group.bench_with_input(
            BenchmarkId::new("bounded_expression", entities),
            &entities,
            |b, _| {
                b.iter(|| {
                    let rel = expr.eval(&inst.scheme, &inst.state).unwrap();
                    std::hint::black_box(rel.len())
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("chase_oracle", entities),
            &entities,
            |b, _| {
                b.iter(|| {
                    let rows =
                        idr_chase::total_projection(&inst.scheme, &inst.state, inst.kd.full(), x)
                            .expect("consistent");
                    std::hint::black_box(rows.len())
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("chase_oracle_indexed", entities),
            &entities,
            |b, _| {
                b.iter(|| {
                    let mut t = idr_chase::Tableau::of_state(&inst.scheme, &inst.state);
                    idr_chase::fast::chase_fast(&mut t, inst.kd.full()).expect("consistent");
                    std::hint::black_box(t.total_projection(x).len())
                });
            },
        );
    }

    // Expression *compilation* cost (depends only on R and F, not the
    // state) — the "predetermined" part of boundedness.
    for blocks in [2usize, 3, 4] {
        let inst = instance(generators::block_chain_scheme(blocks, 3), 10, 3);
        let u = inst.scheme.universe();
        let x = AttrSet::from_iter([
            u.attr_of("X0_1"),
            u.attr_of(&format!("X{}_1", blocks - 1)),
        ]);
        let ir = recognize(&inst.scheme, &inst.kd).accepted().unwrap();
        group.bench_with_input(
            BenchmarkId::new("expression_compilation", blocks),
            &blocks,
            |b, _| {
                b.iter(|| {
                    std::hint::black_box(ir_total_projection_expr(
                        &inst.scheme,
                        &inst.kd,
                        &ir,
                        x,
                    ))
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_total_projection);
criterion_main!(benches);
