//! TH-RECOG: Algorithm 6 is polynomial (Corollary 5.4). Recognition
//! runtime against the number of relation schemes, across the structural
//! families: many small blocks (block chain), one giant key-equivalent
//! block (cycle), and a deep KEP recursion (chain of singleton blocks via
//! directed bridges).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use idr_core::recognition::recognize;
use idr_core::split::is_split_free;
use idr_fd::KeyDeps;
use idr_workload::generators;

fn bench_recognition(c: &mut Criterion) {
    let mut group = c.benchmark_group("recognition");
    for &n in &[8usize, 16, 32, 64] {
        let db = generators::cycle_scheme(n);
        group.bench_with_input(BenchmarkId::new("cycle_one_block", n), &n, |b, _| {
            b.iter(|| {
                let kd = KeyDeps::of(&db);
                std::hint::black_box(recognize(&db, &kd).is_accepted())
            });
        });
    }
    for &blocks in &[2usize, 4, 8, 16] {
        let db = generators::block_chain_scheme(blocks, 4);
        let n = db.len();
        group.bench_with_input(
            BenchmarkId::new("block_chain", n),
            &blocks,
            |b, _| {
                b.iter(|| {
                    let kd = KeyDeps::of(&db);
                    std::hint::black_box(recognize(&db, &kd).is_accepted())
                });
            },
        );
    }
    // The split-freeness test (the ctm characterisation, §5.4).
    for &m in &[2usize, 4, 8] {
        let db = generators::split_scheme(m);
        let kd = KeyDeps::of(&db);
        let all: Vec<usize> = (0..db.len()).collect();
        group.bench_with_input(BenchmarkId::new("split_test", db.len()), &m, |b, _| {
            b.iter(|| std::hint::black_box(is_split_free(&db, &kd, &all)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_recognition);
criterion_main!(benches);
