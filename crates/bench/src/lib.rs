//! Shared helpers for the benchmark harness.
//!
//! Each bench target under `benches/` regenerates one experiment of
//! EXPERIMENTS.md; this library provides the fixtures they share.

use idr_fd::KeyDeps;
use idr_relation::{DatabaseScheme, DatabaseState, SymbolTable};
use idr_workload::states::{generate, WorkloadConfig};

/// A prepared benchmark instance: scheme, key dependencies, a consistent
/// state of roughly `entities` entities, and a symbol table to mint insert
/// tuples from.
pub struct Instance {
    pub scheme: DatabaseScheme,
    pub kd: KeyDeps,
    pub state: DatabaseState,
    pub symbols: SymbolTable,
}

/// Builds an instance over a consistent generated state.
pub fn instance(scheme: DatabaseScheme, entities: usize, seed: u64) -> Instance {
    let kd = KeyDeps::of(&scheme);
    let mut symbols = SymbolTable::new();
    let w = generate(
        &scheme,
        &mut symbols,
        WorkloadConfig {
            entities,
            fragment_pct: 60,
            inserts: 0,
            corrupt_pct: 0,
            seed,
        },
    );
    Instance {
        scheme,
        kd,
        state: w.state,
        symbols,
    }
}
