//! The anti-entropy wire protocol: two message kinds and a framed
//! byte format for op ranges.
//!
//! * [`Message::Digest`] carries a replica's full [`JournalDigest`];
//!   `want_reply` distinguishes the opening request (the receiver
//!   answers with its own digest) from the reply.
//! * [`Message::OpsPush`] ships one origin's journal suffix as a
//!   *frame*: the ops concatenated in the store's WAL record framing
//!   (`[len][crc32][payload]`, see [`idr_store::wal`]), plus the
//!   sender's chain value at the range's base so the receiver can
//!   verify attachment in O(1).
//!
//! Reusing the WAL framing is what gives in-flight transfers the same
//! crash discipline as the on-disk log: a transfer cut at **any** byte
//! boundary decodes to a complete prefix of its records (the torn tail
//! is discarded), so a replica that crashes mid-receive keeps exactly
//! the ops that made it into its durable journal and re-requests the
//! rest on the next round.

use std::path::Path;

use idr_store::wal::{self, RECORD_HEADER_LEN};

use crate::digest::JournalDigest;

/// An anti-entropy protocol message.
#[derive(Clone, Debug)]
pub enum Message {
    /// A digest exchange: the sender's full summary. With `want_reply`
    /// the receiver answers with its own digest (the opening of a sync
    /// round); without, it is the reply closing the exchange.
    Digest {
        /// The sender's per-origin digest vector.
        digest: JournalDigest,
        /// Whether the receiver should answer with its own digest.
        want_reply: bool,
    },
    /// A shipped journal suffix for one origin.
    OpsPush {
        /// The origin whose journal the range extends.
        origin: usize,
        /// The index of the first op in the frame.
        from: u64,
        /// The sender's chain value before op `from` — the receiver
        /// attaches only if its own chain at `from` matches.
        base_chain: u32,
        /// The ops, framed as WAL records.
        frame: Vec<u8>,
    },
}

impl Message {
    /// The protocol step this message belongs to, for traces and crash
    /// scripting: `digest_request`, `digest_reply` or `ops_push`.
    pub fn step(&self) -> &'static str {
        match self {
            Message::Digest {
                want_reply: true, ..
            } => "digest_request",
            Message::Digest { .. } => "digest_reply",
            Message::OpsPush { .. } => "ops_push",
        }
    }
}

/// Frames `ops` as concatenated WAL records, ready to ship.
pub fn encode_frame<'a, I: IntoIterator<Item = &'a str>>(ops: I) -> Vec<u8> {
    let mut frame = Vec::new();
    for op in ops {
        frame.extend_from_slice(&wal::encode_record(op));
    }
    frame
}

/// Decodes a frame back into op payloads: the complete-record prefix.
/// A torn tail (a transfer cut mid-record) is tolerated and reported as
/// the second component; a *complete* record with a bad checksum is
/// corruption and surfaces as `Err` with the store's diagnostic.
pub fn decode_frame(frame: &[u8]) -> Result<(Vec<String>, u64), String> {
    let scan =
        wal::scan_bytes(frame, Path::new("<ops-frame>")).map_err(|e| e.to_string())?;
    Ok((scan.records, scan.torn_bytes))
}

/// Counts the records a frame will decode to, without allocating their
/// payloads — used when tracing shipped-op counts at send time.
pub fn frame_record_count(frame: &[u8]) -> usize {
    let mut count = 0;
    let mut at = 0usize;
    while frame.len() - at >= RECORD_HEADER_LEN {
        let len = u32::from_le_bytes(frame[at..at + 4].try_into().unwrap()) as usize;
        if frame.len() - at - RECORD_HEADER_LEN < len {
            break;
        }
        at += RECORD_HEADER_LEN + len;
        count += 1;
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trips_and_tolerates_cuts() {
        let ops = ["insert R1: A=a B=b", "delete R1: A=a B=b", "abort"];
        let frame = encode_frame(ops.iter().copied());
        assert_eq!(frame_record_count(&frame), 3);
        let (decoded, torn) = decode_frame(&frame).unwrap();
        assert_eq!(decoded, ops);
        assert_eq!(torn, 0);
        // Every proper prefix decodes to a complete-record prefix.
        for cut in 0..frame.len() {
            let (decoded, _) = decode_frame(&frame[..cut]).unwrap();
            assert!(decoded.len() <= 3);
            assert_eq!(decoded, ops[..decoded.len()], "cut at {cut}");
            assert_eq!(frame_record_count(&frame[..cut]), decoded.len());
        }
    }
}
