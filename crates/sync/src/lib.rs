//! `idr-sync` — WAL-shipping replication with digest-based
//! anti-entropy for the independence-reducible engine.
//!
//! The paper's maintenance algorithms (Theorems 4.1/4.2 of Chan &
//! Hernández 1988) reduce updates to a stream of small, individually
//! checkable ops; `idr-store` makes that stream durable; this crate
//! makes it **replicated**. A replica group converges by shipping op
//! ranges, not states:
//!
//! * every replica is the single writer of its own append-only
//!   [`journal::Journal`] of op lines (the WAL payload format);
//! * replicas summarise journals as chained digest vectors
//!   ([`digest::JournalDigest`]: per-origin length + rolling chained
//!   CRC32) and classify a peer per origin as
//!   in-sync/ahead/behind/diverged ([`digest::DigestStatus`]);
//! * reconciliation ships missing ranges in the store's WAL record
//!   framing ([`proto`]), so a transfer cut at any byte boundary —
//!   a crash mid-sync — degrades to a shorter valid range;
//! * shipped ops are replayed through the normal guarded
//!   [`Session`](idr_core::Session) path in a **canonical total
//!   order** (`(seq, origin)`), re-earning every verdict
//!   ([`replica::Replica`]); converged replicas are byte-identical in
//!   rendered state, consistency verdict, and query answers.
//!
//! [`sim::Simulator`] drives N replicas through scripted fault plans
//! ([`fault::FaultPlan`]: drop, delay/reorder, duplication, partition
//! with heal, crash at any protocol step) deterministically from one
//! seed; [`scenario`] gives the whole thing a replayable text format.
//! The convergence oracle (`idr fuzz --sync`) asserts replicas under
//! random faults converge to a never-partitioned baseline.
//!
//! Replication sits *outside* the paper's results: the paper
//! guarantees cheap local maintenance; this layer only transports the
//! resulting op streams. Nothing here touches the chase or the
//! recognition algorithms.

#![warn(missing_docs)]

pub mod digest;
pub mod fault;
pub mod journal;
pub mod net;
pub mod proto;
pub mod replica;
pub mod scenario;
pub mod sim;

pub use digest::{DigestStatus, JournalDigest, OriginDigest};
pub use fault::{CrashPoint, CrashStep, FaultPlan, Partition, SyncPolicy};
pub use journal::{AttachError, Journal};
pub use net::{
    connect, connect_with_retry, handshake, initiate_exchange, respond_exchange,
    run_wire_scenario, scheme_digest, ExchangeFaults, ExchangeOutcome, FramedConn, Hello,
    WireError, WireMsg, MAX_WIRE_FRAME, WIRE_VERSION,
};
pub use proto::Message;
pub use replica::Replica;
pub use scenario::{parse_scenario, render_scenario, Scenario, Transport};
pub use sim::{ScriptedOp, Simulator, SyncReport};
