//! Scripted sync scenarios: a line-oriented text format the `idr sync`
//! CLI runs and the convergence oracle writes its shrunk failures in.
//!
//! ```text
//! # two replicas, a lossy link, one crash mid-transfer
//! replicas: 2
//! seed: 42
//! max-rounds: 64
//! policy: retries=3 backoff=2 timeout=3
//! drop: 20
//! dup: 10
//! delay: 20 max 2
//! partition: 1..4 0 | 1
//! crash: 2 1 ops_push
//! scheme {
//! universe: A B C
//! scheme R1: A B keys A
//! scheme R2: B C keys B
//! }
//! op: 0 0 insert R1: A=a B=b
//! op: 1 1 insert R2: B=b C=c
//! ```
//!
//! Every knob has a default (`seed: 0`, `max-rounds: 64`, the default
//! [`SyncPolicy`], a clean network), so a minimal scenario is just
//! `replicas:`, a `scheme { … }` block and some `op:` lines. The format
//! round-trips through [`render_scenario`], which is how failing fuzz
//! cases become replayable fixture files.

use idr_obs::TraceHandle;
use idr_relation::parse::{parse_scheme, render_scheme_file};
use idr_relation::DatabaseScheme;

use crate::fault::{CrashPoint, CrashStep, FaultPlan, Partition, SyncPolicy};
use crate::sim::{ScriptedOp, Simulator, SyncReport};

/// Which runner executes a scenario.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Transport {
    /// The deterministic in-process simulator (the model).
    #[default]
    Sim,
    /// Real loopback sockets with durable journals
    /// ([`crate::net::run_wire_scenario`] — the implementation under
    /// test).
    Wire,
}

impl Transport {
    /// The directive token (`sim` / `wire`).
    pub fn name(self) -> &'static str {
        match self {
            Transport::Sim => "sim",
            Transport::Wire => "wire",
        }
    }
}

/// A parsed scenario: everything a [`Simulator`] run needs.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// The scheme the replicas serve.
    pub db: DatabaseScheme,
    /// Replica count.
    pub replicas: usize,
    /// The adversary's seed.
    pub seed: u64,
    /// Round budget.
    pub max_rounds: usize,
    /// Retry/backoff/timeout policy.
    pub policy: SyncPolicy,
    /// The scripted adversary.
    pub plan: FaultPlan,
    /// The scripted client ops.
    pub ops: Vec<ScriptedOp>,
    /// Which runner executes it (`transport:` directive, default sim).
    pub transport: Transport,
}

impl Scenario {
    /// Runs the scenario, attaching `tracer` to the simulator.
    pub fn run(&self, tracer: TraceHandle) -> Result<SyncReport, idr_relation::exec::ExecError> {
        self.run_with(tracer, None)
    }

    /// Runs the scenario with full observability: `tracer` for the
    /// deterministic `sync_*` events, `metrics` for wall-clock round
    /// timings (`sync.round_us` / `sync.rounds`).
    pub fn run_with(
        &self,
        tracer: TraceHandle,
        metrics: Option<std::sync::Arc<idr_obs::MetricsRegistry>>,
    ) -> Result<SyncReport, idr_relation::exec::ExecError> {
        if self.transport == Transport::Wire {
            return crate::net::run_wire_scenario(self, tracer, metrics);
        }
        let mut sim = Simulator::new(
            &self.db,
            self.replicas,
            self.ops.clone(),
            self.plan.clone(),
            self.policy,
            self.seed,
        )
        .with_observability(tracer)
        .with_metrics(metrics);
        sim.run(self.max_rounds)
    }
}

fn parse_usize(s: &str, what: &str) -> Result<usize, String> {
    s.trim()
        .parse()
        .map_err(|_| format!("{what}: expected a number, got {s:?}"))
}

/// Parses `key=N` out of a policy clause.
fn policy_field(clause: &str, key: &str) -> Result<Option<u32>, String> {
    match clause.split_once('=') {
        Some((k, v)) if k.trim() == key => v
            .trim()
            .parse()
            .map(Some)
            .map_err(|_| format!("policy {key}: bad number {v:?}")),
        _ => Ok(None),
    }
}

/// Parses scenario text. Unknown directives are errors (a typo in a
/// fault line silently weakening the adversary would be worse).
pub fn parse_scenario(text: &str) -> Result<Scenario, String> {
    let mut replicas = None;
    let mut seed = 0u64;
    let mut max_rounds = 64usize;
    let mut policy = SyncPolicy::default();
    let mut plan = FaultPlan::clean();
    let mut transport = Transport::default();
    let mut ops = Vec::new();
    let mut scheme_text: Option<String> = None;
    let mut lines = text.lines().enumerate();
    while let Some((n, raw)) = lines.next() {
        let line = raw.trim();
        let at = |detail: String| format!("line {}: {detail}", n + 1);
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "scheme {" {
            let mut body = String::new();
            let mut closed = false;
            for (_, raw) in lines.by_ref() {
                if raw.trim() == "}" {
                    closed = true;
                    break;
                }
                body.push_str(raw);
                body.push('\n');
            }
            if !closed {
                return Err(at("unterminated scheme { block".to_string()));
            }
            scheme_text = Some(body);
            continue;
        }
        let (key, rest) = line
            .split_once(':')
            .ok_or_else(|| at(format!("expected 'directive: …', got {line:?}")))?;
        let rest = rest.trim();
        match key.trim() {
            "replicas" => replicas = Some(parse_usize(rest, "replicas").map_err(&at)?),
            "seed" => {
                seed = rest
                    .parse()
                    .map_err(|_| at(format!("seed: bad number {rest:?}")))?
            }
            "max-rounds" => max_rounds = parse_usize(rest, "max-rounds").map_err(&at)?,
            "transport" => {
                transport = match rest {
                    "sim" => Transport::Sim,
                    "wire" => Transport::Wire,
                    other => {
                        return Err(at(format!(
                            "transport: want 'sim' or 'wire', got {other:?}"
                        )))
                    }
                }
            }
            "policy" => {
                for clause in rest.split_whitespace() {
                    let mut known = false;
                    if let Some(v) = policy_field(clause, "retries").map_err(&at)? {
                        policy.max_retries = v;
                        known = true;
                    }
                    if let Some(v) = policy_field(clause, "backoff").map_err(&at)? {
                        policy.backoff_rounds = v;
                        known = true;
                    }
                    if let Some(v) = policy_field(clause, "timeout").map_err(&at)? {
                        policy.round_timeout = v;
                        known = true;
                    }
                    if !known {
                        return Err(at(format!(
                            "policy: unknown clause {clause:?} (want retries=N backoff=N timeout=N)"
                        )));
                    }
                }
            }
            "drop" => plan.drop_pct = parse_usize(rest, "drop").map_err(&at)? as u32,
            "dup" => plan.dup_pct = parse_usize(rest, "dup").map_err(&at)? as u32,
            "delay" => {
                // `delay: PCT [max N]`
                let mut parts = rest.split_whitespace();
                plan.delay_pct =
                    parse_usize(parts.next().unwrap_or(""), "delay pct").map_err(&at)? as u32;
                match (parts.next(), parts.next()) {
                    (None, _) => plan.max_delay = plan.max_delay.max(1),
                    (Some("max"), Some(v)) => {
                        plan.max_delay = parse_usize(v, "delay max").map_err(&at)?
                    }
                    _ => return Err(at(format!("delay: want 'PCT [max N]', got {rest:?}"))),
                }
            }
            "partition" => {
                // `partition: FROM..TO a b | c d`
                let (window, groups) = rest
                    .split_once(' ')
                    .ok_or_else(|| at(format!("partition: want 'FROM..TO groups', got {rest:?}")))?;
                let (from, to) = window
                    .split_once("..")
                    .ok_or_else(|| at(format!("partition window: want FROM..TO, got {window:?}")))?;
                let groups = groups
                    .split('|')
                    .map(|g| {
                        g.split_whitespace()
                            .map(|r| parse_usize(r, "partition member"))
                            .collect::<Result<Vec<_>, _>>()
                    })
                    .collect::<Result<Vec<_>, _>>()
                    .map_err(&at)?;
                plan.partitions.push(Partition {
                    from_round: parse_usize(from, "partition from").map_err(&at)?,
                    to_round: parse_usize(to, "partition to").map_err(&at)?,
                    groups,
                });
            }
            "crash" => {
                // `crash: ROUND REPLICA STEP`
                let parts: Vec<&str> = rest.split_whitespace().collect();
                let [round, replica, step] = parts[..] else {
                    return Err(at(format!("crash: want 'ROUND REPLICA STEP', got {rest:?}")));
                };
                plan.crashes.push(CrashPoint {
                    round: parse_usize(round, "crash round").map_err(&at)?,
                    replica: parse_usize(replica, "crash replica").map_err(&at)?,
                    step: CrashStep::parse(step).map_err(&at)?,
                });
            }
            "op" => {
                // `op: ROUND REPLICA insert R1: A=a B=b`
                let parts: Vec<&str> = rest.splitn(3, ' ').collect();
                let [round, replica, line] = parts[..] else {
                    return Err(at(format!("op: want 'ROUND REPLICA OP-LINE', got {rest:?}")));
                };
                ops.push(ScriptedOp {
                    round: parse_usize(round, "op round")?,
                    replica: parse_usize(replica, "op replica")?,
                    line: line.to_string(),
                });
            }
            other => return Err(at(format!("unknown directive {other:?}"))),
        }
    }
    let replicas = replicas.ok_or("missing 'replicas:' directive")?;
    if replicas == 0 {
        return Err("replicas must be at least 1".to_string());
    }
    let scheme_text = scheme_text.ok_or("missing 'scheme { … }' block")?;
    let db = parse_scheme(&scheme_text).map_err(|e| format!("scheme block: {e}"))?;
    for op in &ops {
        if op.replica >= replicas {
            return Err(format!(
                "op targets replica {} but there are only {replicas}",
                op.replica
            ));
        }
    }
    for c in &plan.crashes {
        if c.replica >= replicas {
            return Err(format!(
                "crash targets replica {} but there are only {replicas}",
                c.replica
            ));
        }
    }
    Ok(Scenario {
        db,
        replicas,
        seed,
        max_rounds,
        policy,
        plan,
        ops,
        transport,
    })
}

/// Renders a scenario back to its file format (parse ∘ render is the
/// identity on the semantic content).
pub fn render_scenario(s: &Scenario) -> String {
    let mut out = String::new();
    out.push_str(&format!("replicas: {}\n", s.replicas));
    out.push_str(&format!("seed: {}\n", s.seed));
    out.push_str(&format!("max-rounds: {}\n", s.max_rounds));
    if s.transport != Transport::Sim {
        out.push_str(&format!("transport: {}\n", s.transport.name()));
    }
    out.push_str(&format!(
        "policy: retries={} backoff={} timeout={}\n",
        s.policy.max_retries, s.policy.backoff_rounds, s.policy.round_timeout
    ));
    if s.plan.drop_pct > 0 {
        out.push_str(&format!("drop: {}\n", s.plan.drop_pct));
    }
    if s.plan.dup_pct > 0 {
        out.push_str(&format!("dup: {}\n", s.plan.dup_pct));
    }
    if s.plan.delay_pct > 0 {
        out.push_str(&format!(
            "delay: {} max {}\n",
            s.plan.delay_pct, s.plan.max_delay
        ));
    }
    for p in &s.plan.partitions {
        let groups = p
            .groups
            .iter()
            .map(|g| {
                g.iter()
                    .map(usize::to_string)
                    .collect::<Vec<_>>()
                    .join(" ")
            })
            .collect::<Vec<_>>()
            .join(" | ");
        out.push_str(&format!(
            "partition: {}..{} {}\n",
            p.from_round, p.to_round, groups
        ));
    }
    for c in &s.plan.crashes {
        out.push_str(&format!(
            "crash: {} {} {}\n",
            c.round,
            c.replica,
            c.step.name()
        ));
    }
    out.push_str("scheme {\n");
    out.push_str(&render_scheme_file(&s.db));
    out.push_str("}\n");
    for op in &s.ops {
        out.push_str(&format!("op: {} {} {}\n", op.round, op.replica, op.line));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const EXAMPLE: &str = "\
# comment
replicas: 3
seed: 7
max-rounds: 40
policy: retries=2 backoff=1 timeout=2
drop: 15
dup: 5
delay: 10 max 2
partition: 1..4 0 1 | 2
crash: 2 1 ops_push
scheme {
universe: A B C
scheme R1: A B keys A
scheme R2: B C keys B
}
op: 0 0 insert R1: A=a B=b
op: 1 2 insert R2: B=b C=c
";

    #[test]
    fn parses_and_round_trips() {
        let s = parse_scenario(EXAMPLE).unwrap();
        assert_eq!(s.replicas, 3);
        assert_eq!(s.seed, 7);
        assert_eq!(s.policy.max_retries, 2);
        assert_eq!(s.plan.drop_pct, 15);
        assert_eq!(s.plan.partitions.len(), 1);
        assert_eq!(s.plan.crashes.len(), 1);
        assert_eq!(s.ops.len(), 2);
        let rendered = render_scenario(&s);
        let s2 = parse_scenario(&rendered).unwrap();
        assert_eq!(s2.replicas, s.replicas);
        assert_eq!(s2.plan, s.plan);
        assert_eq!(s2.ops, s.ops);
        assert_eq!(s2.policy, s.policy);
    }

    #[test]
    fn runs_to_convergence() {
        let s = parse_scenario(EXAMPLE).unwrap();
        let report = s.run(TraceHandle::none()).unwrap();
        assert!(report.converged, "{:?}", report.trace);
        assert!(report.diverged.is_none());
        assert_eq!(report.state_lines.len(), 2);
    }

    #[test]
    fn transport_directive_round_trips() {
        let s = parse_scenario(EXAMPLE).unwrap();
        assert_eq!(s.transport, Transport::Sim, "sim is the default");
        assert!(
            !render_scenario(&s).contains("transport:"),
            "the default transport renders implicitly"
        );
        let mut wire = s.clone();
        wire.transport = Transport::Wire;
        let rendered = render_scenario(&wire);
        assert!(rendered.contains("transport: wire\n"), "{rendered}");
        let back = parse_scenario(&rendered).unwrap();
        assert_eq!(back.transport, Transport::Wire);
        assert_eq!(back.plan, wire.plan);
        assert_eq!(back.ops, wire.ops);
        // And an explicit `transport: sim` parses too.
        let explicit = parse_scenario(&format!("transport: sim\n{EXAMPLE}")).unwrap();
        assert_eq!(explicit.transport, Transport::Sim);
    }

    #[test]
    fn rejects_malformed_directives() {
        for (bad, want) in [
            ("replicas: x\n", "expected a number"),
            ("bogus: 1\n", "unknown directive"),
            ("crash: 1 0 explode\nreplicas: 1\n", "unknown crash step"),
            ("transport: carrier-pigeon\nreplicas: 1\n", "transport: want"),
            ("replicas: 1\n", "missing 'scheme"),
        ] {
            let err = parse_scenario(bad).unwrap_err();
            assert!(err.contains(want), "{bad:?} -> {err}");
        }
    }
}
