//! Fault plans and sync policy — the scripted adversary and the
//! injectable knobs the simulator runs under.
//!
//! A [`FaultPlan`] describes everything the network and the processes
//! may do wrong: probabilistic message drop, delay (which reorders),
//! duplication, link partitions with a scripted heal round, and crashes
//! pinned to a `(round, replica, protocol step)` triple. Crashes reuse
//! the store's cut-at-every-byte discipline for in-flight range
//! transfers: a replica crashing on an `ops_push` keeps only the
//! complete-record prefix of the frame that reached its journal.
//!
//! [`SyncPolicy`] is the replica-side counterpart: how long an
//! initiator waits for a digest reply, how many consecutive timeouts it
//! tolerates before backing off, and for how many rounds it backs off.

use idr_relation::rng::SplitMix64;

/// Retry/backoff/timeout knobs for the anti-entropy initiator. The
/// simulator enforces these **outside** the replica, so the policy is
/// injectable without touching protocol logic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SyncPolicy {
    /// Consecutive reply timeouts tolerated before backing off.
    pub max_retries: u32,
    /// Rounds to stay silent towards a peer after `max_retries`
    /// timeouts.
    pub backoff_rounds: u32,
    /// Rounds an initiator waits for a digest reply before counting a
    /// timeout.
    pub round_timeout: u32,
}

impl SyncPolicy {
    /// Retry every round, never back off, one-round timeout — the
    /// most aggressive (and chattiest) policy.
    pub fn eager() -> SyncPolicy {
        SyncPolicy {
            max_retries: u32::MAX,
            backoff_rounds: 0,
            round_timeout: 1,
        }
    }
}

impl Default for SyncPolicy {
    /// Three retries, two-round backoff, three-round timeout.
    fn default() -> SyncPolicy {
        SyncPolicy {
            max_retries: 3,
            backoff_rounds: 2,
            round_timeout: 3,
        }
    }
}

/// A link partition: between `from_round` (inclusive) and `to_round`
/// (exclusive) only replicas in the same group can exchange messages.
/// Replicas not listed in any group are isolated singletons.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partition {
    /// First round the partition is in force.
    pub from_round: usize,
    /// First round after the heal.
    pub to_round: usize,
    /// The connectivity groups.
    pub groups: Vec<Vec<usize>>,
}

impl Partition {
    /// Whether `a` and `b` can talk at `round` under this partition.
    pub fn allows(&self, round: usize, a: usize, b: usize) -> bool {
        if round < self.from_round || round >= self.to_round {
            return true;
        }
        self.groups
            .iter()
            .any(|g| g.contains(&a) && g.contains(&b))
    }
}

/// The protocol step a scripted crash fires on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrashStep {
    /// Crash at the start of the round, before any processing.
    StartOfRound,
    /// Crash while processing an incoming digest request.
    DigestRequest,
    /// Crash while processing an incoming digest reply.
    DigestReply,
    /// Crash while receiving an ops range: the in-flight frame is cut
    /// at a random byte boundary and only its complete-record prefix
    /// reaches the journal.
    OpsPush,
}

impl CrashStep {
    /// The step's scenario-file name.
    pub fn name(self) -> &'static str {
        match self {
            CrashStep::StartOfRound => "start",
            CrashStep::DigestRequest => "digest_request",
            CrashStep::DigestReply => "digest_reply",
            CrashStep::OpsPush => "ops_push",
        }
    }

    /// Parses a scenario-file step name.
    pub fn parse(s: &str) -> Result<CrashStep, String> {
        match s {
            "start" => Ok(CrashStep::StartOfRound),
            "digest_request" => Ok(CrashStep::DigestRequest),
            "digest_reply" => Ok(CrashStep::DigestReply),
            "ops_push" => Ok(CrashStep::OpsPush),
            other => Err(format!(
                "unknown crash step {other:?} (want start|digest_request|digest_reply|ops_push)"
            )),
        }
    }
}

/// A scripted crash: replica `replica` crashes the first time `step`
/// occurs for it at or after `round`. Fires at most once.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrashPoint {
    /// Earliest round the crash can fire.
    pub round: usize,
    /// The replica that crashes.
    pub replica: usize,
    /// The protocol step it crashes on.
    pub step: CrashStep,
}

/// Everything the adversary is scripted to do.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Percent of messages dropped in flight.
    pub drop_pct: u32,
    /// Percent of messages duplicated.
    pub dup_pct: u32,
    /// Percent of messages delayed by `1..=max_delay` extra rounds
    /// (delay reorders: undelayed later messages overtake).
    pub delay_pct: u32,
    /// Maximum extra rounds a delayed message waits.
    pub max_delay: usize,
    /// Scripted link partitions.
    pub partitions: Vec<Partition>,
    /// Scripted crashes.
    pub crashes: Vec<CrashPoint>,
}

impl FaultPlan {
    /// The fault-free plan.
    pub fn clean() -> FaultPlan {
        FaultPlan::default()
    }

    /// Whether any active partition blocks `a`–`b` at `round`.
    pub fn blocked(&self, round: usize, a: usize, b: usize) -> bool {
        self.partitions
            .iter()
            .any(|p| !p.allows(round, a, b))
    }

    /// The last round at which this plan still does anything: after it,
    /// the network is clean except for the probabilistic faults (which
    /// never end). Convergence checks wait this round out.
    pub fn last_scripted_round(&self) -> usize {
        let heal = self.partitions.iter().map(|p| p.to_round).max().unwrap_or(0);
        let crash = self.crashes.iter().map(|c| c.round + 1).max().unwrap_or(0);
        heal.max(crash)
    }

    /// Draws a random plan for `n` replicas whose scripted faults all
    /// end by `horizon` — the oracle's adversary generator. Probability
    /// knobs are moderate so convergence stays reachable.
    pub fn random(rng: &mut SplitMix64, n: usize, horizon: usize) -> FaultPlan {
        let mut plan = FaultPlan {
            drop_pct: rng.gen_range_inclusive(0, 30) as u32,
            dup_pct: rng.gen_range_inclusive(0, 20) as u32,
            delay_pct: rng.gen_range_inclusive(0, 30) as u32,
            max_delay: rng.gen_range_inclusive(1, 3),
            partitions: Vec::new(),
            crashes: Vec::new(),
        };
        if n >= 2 && rng.gen_pct(50) {
            let from = rng.gen_range(0, horizon.saturating_sub(2).max(1));
            let to = (from + rng.gen_range_inclusive(1, 4)).min(horizon);
            // A random two-group split; replicas left out are isolated.
            let mut members: Vec<usize> = (0..n).collect();
            rng.shuffle(&mut members);
            let cut = rng.gen_range_inclusive(1, n - 1);
            plan.partitions.push(Partition {
                from_round: from,
                to_round: to,
                groups: vec![members[..cut].to_vec(), members[cut..].to_vec()],
            });
        }
        for _ in 0..rng.gen_range_inclusive(0, 2) {
            plan.crashes.push(CrashPoint {
                round: rng.gen_range(0, horizon),
                replica: rng.gen_range(0, n),
                step: match rng.gen_range(0, 4) {
                    0 => CrashStep::StartOfRound,
                    1 => CrashStep::DigestRequest,
                    2 => CrashStep::DigestReply,
                    _ => CrashStep::OpsPush,
                },
            });
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitions_block_only_in_window_and_across_groups() {
        let p = Partition {
            from_round: 2,
            to_round: 5,
            groups: vec![vec![0, 1], vec![2]],
        };
        assert!(p.allows(1, 0, 2), "before the window");
        assert!(p.allows(5, 0, 2), "after the heal");
        assert!(p.allows(3, 0, 1), "same group");
        assert!(!p.allows(3, 0, 2), "across groups");
        assert!(!p.allows(3, 1, 3), "unlisted replicas are isolated");
    }

    #[test]
    fn random_plans_end_by_their_horizon() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..50 {
            let plan = FaultPlan::random(&mut rng, 3, 10);
            assert!(plan.last_scripted_round() <= 10, "{plan:?}");
        }
    }
}
