//! Per-origin append-only op journals.
//!
//! Replication treats each replica as the **single writer** of its own
//! journal: client ops append at one origin only, and anti-entropy
//! ships read-only copies of journal suffixes. Single-writer journals
//! never conflict — two replicas can only disagree about *how much* of
//! an origin's journal they have seen, never about its contents — which
//! is what makes the chained digest comparison sound: any chain
//! contradiction at a common index is corruption, not concurrency.
//!
//! The journal keeps the chain value after **every** op (not just the
//! head) so it can classify a peer's digest at any length in O(1) and
//! verify the overlap of a shipped range op by op.

use std::path::Path;

use crate::digest::{DigestStatus, OriginDigest};
use idr_store::journal::JournalFile;
use idr_store::wal::fold_chain;
use idr_store::StoreError;

/// Why a shipped op range could not be attached to a journal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AttachError {
    /// The range starts past our end — there is a gap we have not seen.
    /// Not an error in the protocol sense: a later anti-entropy round
    /// re-ships from our actual length.
    Gap {
        /// Ops we hold.
        have: u64,
        /// Where the range starts.
        from: u64,
    },
    /// The range's chain contradicts ours at `at` — divergence on a
    /// single-writer journal, surfaced as such.
    Diverged {
        /// The op index where the chains first contradict.
        at: u64,
    },
    /// Persisting the verified suffix to the durable backing failed.
    /// Unlike the protocol-level cases above this is a storage fault:
    /// the in-memory journal is left untouched so digests never
    /// advertise ops the disk does not hold.
    Storage {
        /// The rendered store error.
        detail: String,
    },
}

impl std::fmt::Display for AttachError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttachError::Gap { have, from } => {
                write!(f, "range starts at {from} but journal holds {have} ops")
            }
            AttachError::Diverged { at } => write!(f, "chain mismatch at op {at}"),
            AttachError::Storage { detail } => write!(f, "journal persistence failed: {detail}"),
        }
    }
}

/// One origin's append-only op journal with per-op chained CRCs.
///
/// A journal is either purely in-memory (the simulator's replicas) or
/// backed by a durable [`JournalFile`] segment
/// ([`Journal::open_durable`]), in which case every append persists
/// before it is acknowledged in memory — a digest never advertises an
/// op the disk would forget.
#[derive(Debug, Default)]
pub struct Journal {
    ops: Vec<String>,
    /// `chains[i]` is the chain value after folding `ops[..=i]`.
    chains: Vec<u32>,
    /// Durable backing, when this journal outlives its process.
    sink: Option<JournalFile>,
}

impl Journal {
    /// An empty in-memory journal.
    pub fn new() -> Journal {
        Journal::default()
    }

    /// Opens (or creates) a durable journal backed by the WAL-framed
    /// segment at `path`, recovering every op that was durably
    /// appended. The chain values are recomputed from the recovered
    /// payloads — the digest a restarted replica advertises is earned
    /// from disk bytes, not trusted from any header. Returns the
    /// journal and the torn bytes truncated from the tail (a crash cut
    /// mid-append), 0 normally.
    pub fn open_durable(path: &Path, sync: bool) -> Result<(Journal, u64), StoreError> {
        let rec = JournalFile::open(path, sync)?;
        let mut j = Journal::new();
        for op in rec.records {
            let chain = fold_chain(j.chain_at(j.len()).unwrap_or(0), &op);
            j.ops.push(op);
            j.chains.push(chain);
        }
        debug_assert_eq!(j.digest().chain, rec.chain);
        j.sink = Some(rec.file);
        Ok((j, rec.torn_bytes))
    }

    /// Whether this journal persists its ops to disk.
    pub fn is_durable(&self) -> bool {
        self.sink.is_some()
    }

    /// Ops in the journal.
    pub fn len(&self) -> u64 {
        self.ops.len() as u64
    }

    /// Whether the journal holds no ops.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The op at index `i`.
    pub fn op(&self, i: u64) -> &str {
        &self.ops[i as usize]
    }

    /// The ops from index `from` to the end.
    pub fn ops_from(&self, from: u64) -> &[String] {
        &self.ops[from as usize..]
    }

    /// The chain value after the first `n` ops (`0` for `n == 0`), or
    /// `None` if we do not hold `n` ops.
    pub fn chain_at(&self, n: u64) -> Option<u32> {
        if n == 0 {
            Some(0)
        } else if n <= self.len() {
            Some(self.chains[n as usize - 1])
        } else {
            None
        }
    }

    /// The journal's digest: its length and head chain.
    pub fn digest(&self) -> OriginDigest {
        OriginDigest {
            len: self.len(),
            chain: self.chain_at(self.len()).unwrap_or(0),
        }
    }

    /// Appends one op (the single-writer path: a client op at this
    /// journal's origin), persisting it first when the journal is
    /// durable.
    pub fn append(&mut self, op: String) -> Result<(), StoreError> {
        if let Some(sink) = &mut self.sink {
            sink.append(&op)?;
        }
        let chain = fold_chain(self.chain_at(self.len()).unwrap_or(0), &op);
        self.ops.push(op);
        self.chains.push(chain);
        Ok(())
    }

    /// Classifies a peer's digest of this origin against our journal.
    /// Every case lands in exactly one [`DigestStatus`]: equal lengths
    /// compare heads, a shorter peer is verified against our chain at
    /// its length, a longer peer is tentatively [`DigestStatus::Behind`]
    /// (for us) pending base-chain verification at attach time.
    pub fn classify(&self, theirs: OriginDigest) -> DigestStatus {
        match theirs.len.cmp(&self.len()) {
            std::cmp::Ordering::Equal => {
                if theirs.chain == self.digest().chain {
                    DigestStatus::InSync
                } else {
                    DigestStatus::Diverged
                }
            }
            std::cmp::Ordering::Less => {
                if self.chain_at(theirs.len) == Some(theirs.chain) {
                    DigestStatus::Ahead
                } else {
                    DigestStatus::Diverged
                }
            }
            std::cmp::Ordering::Greater => DigestStatus::Behind,
        }
    }

    /// Attaches a shipped range: `records` claim to be the ops starting
    /// at index `from`, with `base_chain` the sender's chain *before*
    /// them. Verifies the base, re-verifies any overlap with ops we
    /// already hold op by op, and appends only the genuinely new
    /// suffix. Returns how many ops were appended.
    ///
    /// Tolerant of redundant delivery (duplicate or reordered pushes
    /// re-verify and append nothing) and of short ranges (a range cut
    /// by a crash attaches its surviving prefix).
    pub fn attach(
        &mut self,
        from: u64,
        base_chain: u32,
        records: &[String],
    ) -> Result<u64, AttachError> {
        if from > self.len() {
            return Err(AttachError::Gap {
                have: self.len(),
                from,
            });
        }
        if self.chain_at(from) != Some(base_chain) {
            return Err(AttachError::Diverged { at: from });
        }
        // Verify first, without mutating: overlap op by op, then the
        // genuinely new suffix.
        let mut chain = base_chain;
        let mut fresh: Vec<(String, u32)> = Vec::new();
        for (i, record) in records.iter().enumerate() {
            let idx = from + i as u64;
            chain = fold_chain(chain, record);
            if idx < self.len() {
                if self.chains[idx as usize] != chain {
                    return Err(AttachError::Diverged { at: idx });
                }
            } else {
                fresh.push((record.clone(), chain));
            }
        }
        // Persist the whole suffix with one fsync (the group-commit
        // path), then acknowledge it in memory.
        if !fresh.is_empty() {
            if let Some(sink) = &mut self.sink {
                sink.append_batch(fresh.iter().map(|(op, _)| op.as_str()))
                    .map_err(|e| AttachError::Storage {
                        detail: e.to_string(),
                    })?;
            }
        }
        let appended = fresh.len() as u64;
        for (op, chain) in fresh {
            self.ops.push(op);
            self.chains.push(chain);
        }
        Ok(appended)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn journal(ops: &[&str]) -> Journal {
        let mut j = Journal::new();
        for op in ops {
            j.append(op.to_string()).unwrap();
        }
        j
    }

    #[test]
    fn classify_covers_all_four_statuses() {
        let mine = journal(&["a", "b", "c"]);
        assert_eq!(mine.classify(mine.digest()), DigestStatus::InSync);
        assert_eq!(mine.classify(journal(&["a"]).digest()), DigestStatus::Ahead);
        assert_eq!(
            mine.classify(journal(&["a", "b", "c", "d"]).digest()),
            DigestStatus::Behind
        );
        assert_eq!(
            mine.classify(journal(&["a", "x", "c"]).digest()),
            DigestStatus::Diverged
        );
        assert_eq!(
            mine.classify(journal(&["x"]).digest()),
            DigestStatus::Diverged,
            "a shorter contradicting prefix is divergence, not ahead"
        );
    }

    #[test]
    fn attach_appends_suffix_and_tolerates_overlap() {
        let full = journal(&["a", "b", "c", "d"]);
        let mut mine = journal(&["a", "b"]);
        // Overlapping range [1..4): verifies "b", appends "c", "d".
        let records: Vec<String> = full.ops_from(1).to_vec();
        let appended = mine.attach(1, full.chain_at(1).unwrap(), &records).unwrap();
        assert_eq!(appended, 2);
        assert_eq!(mine.digest(), full.digest());
        // Re-delivering the same range is a no-op.
        assert_eq!(mine.attach(1, full.chain_at(1).unwrap(), &records).unwrap(), 0);
    }

    #[test]
    fn attach_rejects_gaps_and_contradictions() {
        let mut mine = journal(&["a", "b"]);
        assert!(matches!(
            mine.attach(3, 0, &["z".to_string()]),
            Err(AttachError::Gap { have: 2, from: 3 })
        ));
        // A base chain that does not match ours at index 1.
        assert!(matches!(
            mine.attach(1, 0xdead_beef, &["z".to_string()]),
            Err(AttachError::Diverged { at: 1 })
        ));
        // Overlap verification catches a contradicting record.
        let base = mine.chain_at(1).unwrap();
        assert!(matches!(
            mine.attach(1, base, &["not-b".to_string()]),
            Err(AttachError::Diverged { at: 1 })
        ));
        assert_eq!(mine.len(), 2, "failed attaches must not mutate");
    }

    #[test]
    fn durable_journal_survives_reopen_with_identical_digest() {
        let dir = idr_store::TempDir::new("sync-journal");
        let path = dir.path().join("origin-0.log");
        let reference = journal(&["a", "b", "c", "d"]);
        {
            let (mut j, torn) = Journal::open_durable(&path, false).unwrap();
            assert_eq!(torn, 0);
            assert!(j.is_durable());
            j.append("a".to_string()).unwrap();
            j.append("b".to_string()).unwrap();
            // Attach a shipped range on top of the appends.
            let records: Vec<String> = reference.ops_from(1).to_vec();
            let appended = j
                .attach(1, reference.chain_at(1).unwrap(), &records)
                .unwrap();
            assert_eq!(appended, 2);
            assert_eq!(j.digest(), reference.digest());
        }
        let (j, torn) = Journal::open_durable(&path, false).unwrap();
        assert_eq!(torn, 0);
        assert_eq!(j.digest(), reference.digest());
        assert_eq!(j.ops_from(0), reference.ops_from(0));
    }
}
