//! Per-origin append-only op journals.
//!
//! Replication treats each replica as the **single writer** of its own
//! journal: client ops append at one origin only, and anti-entropy
//! ships read-only copies of journal suffixes. Single-writer journals
//! never conflict — two replicas can only disagree about *how much* of
//! an origin's journal they have seen, never about its contents — which
//! is what makes the chained digest comparison sound: any chain
//! contradiction at a common index is corruption, not concurrency.
//!
//! The journal keeps the chain value after **every** op (not just the
//! head) so it can classify a peer's digest at any length in O(1) and
//! verify the overlap of a shipped range op by op.

use crate::digest::{DigestStatus, OriginDigest};
use idr_store::wal::fold_chain;

/// Why a shipped op range could not be attached to a journal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AttachError {
    /// The range starts past our end — there is a gap we have not seen.
    /// Not an error in the protocol sense: a later anti-entropy round
    /// re-ships from our actual length.
    Gap {
        /// Ops we hold.
        have: u64,
        /// Where the range starts.
        from: u64,
    },
    /// The range's chain contradicts ours at `at` — divergence on a
    /// single-writer journal, surfaced as such.
    Diverged {
        /// The op index where the chains first contradict.
        at: u64,
    },
}

impl std::fmt::Display for AttachError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttachError::Gap { have, from } => {
                write!(f, "range starts at {from} but journal holds {have} ops")
            }
            AttachError::Diverged { at } => write!(f, "chain mismatch at op {at}"),
        }
    }
}

/// One origin's append-only op journal with per-op chained CRCs.
#[derive(Clone, Debug, Default)]
pub struct Journal {
    ops: Vec<String>,
    /// `chains[i]` is the chain value after folding `ops[..=i]`.
    chains: Vec<u32>,
}

impl Journal {
    /// An empty journal.
    pub fn new() -> Journal {
        Journal::default()
    }

    /// Ops in the journal.
    pub fn len(&self) -> u64 {
        self.ops.len() as u64
    }

    /// Whether the journal holds no ops.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The op at index `i`.
    pub fn op(&self, i: u64) -> &str {
        &self.ops[i as usize]
    }

    /// The ops from index `from` to the end.
    pub fn ops_from(&self, from: u64) -> &[String] {
        &self.ops[from as usize..]
    }

    /// The chain value after the first `n` ops (`0` for `n == 0`), or
    /// `None` if we do not hold `n` ops.
    pub fn chain_at(&self, n: u64) -> Option<u32> {
        if n == 0 {
            Some(0)
        } else if n <= self.len() {
            Some(self.chains[n as usize - 1])
        } else {
            None
        }
    }

    /// The journal's digest: its length and head chain.
    pub fn digest(&self) -> OriginDigest {
        OriginDigest {
            len: self.len(),
            chain: self.chain_at(self.len()).unwrap_or(0),
        }
    }

    /// Appends one op (the single-writer path: a client op at this
    /// journal's origin).
    pub fn append(&mut self, op: String) {
        let chain = fold_chain(self.chain_at(self.len()).unwrap_or(0), &op);
        self.ops.push(op);
        self.chains.push(chain);
    }

    /// Classifies a peer's digest of this origin against our journal.
    /// Every case lands in exactly one [`DigestStatus`]: equal lengths
    /// compare heads, a shorter peer is verified against our chain at
    /// its length, a longer peer is tentatively [`DigestStatus::Behind`]
    /// (for us) pending base-chain verification at attach time.
    pub fn classify(&self, theirs: OriginDigest) -> DigestStatus {
        match theirs.len.cmp(&self.len()) {
            std::cmp::Ordering::Equal => {
                if theirs.chain == self.digest().chain {
                    DigestStatus::InSync
                } else {
                    DigestStatus::Diverged
                }
            }
            std::cmp::Ordering::Less => {
                if self.chain_at(theirs.len) == Some(theirs.chain) {
                    DigestStatus::Ahead
                } else {
                    DigestStatus::Diverged
                }
            }
            std::cmp::Ordering::Greater => DigestStatus::Behind,
        }
    }

    /// Attaches a shipped range: `records` claim to be the ops starting
    /// at index `from`, with `base_chain` the sender's chain *before*
    /// them. Verifies the base, re-verifies any overlap with ops we
    /// already hold op by op, and appends only the genuinely new
    /// suffix. Returns how many ops were appended.
    ///
    /// Tolerant of redundant delivery (duplicate or reordered pushes
    /// re-verify and append nothing) and of short ranges (a range cut
    /// by a crash attaches its surviving prefix).
    pub fn attach(
        &mut self,
        from: u64,
        base_chain: u32,
        records: &[String],
    ) -> Result<u64, AttachError> {
        if from > self.len() {
            return Err(AttachError::Gap {
                have: self.len(),
                from,
            });
        }
        if self.chain_at(from) != Some(base_chain) {
            return Err(AttachError::Diverged { at: from });
        }
        let mut chain = base_chain;
        let mut appended = 0;
        for (i, record) in records.iter().enumerate() {
            let idx = from + i as u64;
            chain = fold_chain(chain, record);
            if idx < self.len() {
                if self.chains[idx as usize] != chain {
                    return Err(AttachError::Diverged { at: idx });
                }
            } else {
                self.ops.push(record.clone());
                self.chains.push(chain);
                appended += 1;
            }
        }
        Ok(appended)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn journal(ops: &[&str]) -> Journal {
        let mut j = Journal::new();
        for op in ops {
            j.append(op.to_string());
        }
        j
    }

    #[test]
    fn classify_covers_all_four_statuses() {
        let mine = journal(&["a", "b", "c"]);
        assert_eq!(mine.classify(mine.digest()), DigestStatus::InSync);
        assert_eq!(mine.classify(journal(&["a"]).digest()), DigestStatus::Ahead);
        assert_eq!(
            mine.classify(journal(&["a", "b", "c", "d"]).digest()),
            DigestStatus::Behind
        );
        assert_eq!(
            mine.classify(journal(&["a", "x", "c"]).digest()),
            DigestStatus::Diverged
        );
        assert_eq!(
            mine.classify(journal(&["x"]).digest()),
            DigestStatus::Diverged,
            "a shorter contradicting prefix is divergence, not ahead"
        );
    }

    #[test]
    fn attach_appends_suffix_and_tolerates_overlap() {
        let full = journal(&["a", "b", "c", "d"]);
        let mut mine = journal(&["a", "b"]);
        // Overlapping range [1..4): verifies "b", appends "c", "d".
        let records: Vec<String> = full.ops_from(1).to_vec();
        let appended = mine.attach(1, full.chain_at(1).unwrap(), &records).unwrap();
        assert_eq!(appended, 2);
        assert_eq!(mine.digest(), full.digest());
        // Re-delivering the same range is a no-op.
        assert_eq!(mine.attach(1, full.chain_at(1).unwrap(), &records).unwrap(), 0);
    }

    #[test]
    fn attach_rejects_gaps_and_contradictions() {
        let mut mine = journal(&["a", "b"]);
        assert!(matches!(
            mine.attach(3, 0, &["z".to_string()]),
            Err(AttachError::Gap { have: 2, from: 3 })
        ));
        // A base chain that does not match ours at index 1.
        assert!(matches!(
            mine.attach(1, 0xdead_beef, &["z".to_string()]),
            Err(AttachError::Diverged { at: 1 })
        ));
        // Overlap verification catches a contradicting record.
        let base = mine.chain_at(1).unwrap();
        assert!(matches!(
            mine.attach(1, base, &["not-b".to_string()]),
            Err(AttachError::Diverged { at: 1 })
        ));
        assert_eq!(mine.len(), 2, "failed attaches must not mutate");
    }
}
