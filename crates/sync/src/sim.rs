//! The deterministic in-process simulator: N replicas, a faulty
//! network, and synchronous rounds.
//!
//! Everything is driven by one vendored [`SplitMix64`] stream and
//! deterministic iteration orders, so a `(scenario, seed)` pair replays
//! the exact same execution — the property the convergence oracle's
//! shrinker and the `idr sync` CLI rely on.
//!
//! # Round structure
//!
//! 1. scripted crashes with step `start` fire;
//! 2. scripted client ops for the round apply at their replicas;
//! 3. anti-entropy initiation: every replica opens a digest exchange
//!    with every peer it is not backing off from (see
//!    [`SyncPolicy`]); the simulator, not the replica, owns the
//!    retry/backoff/timeout bookkeeping, so the policy is injectable;
//! 4. delivery: every message due this round is delivered in a
//!    deterministic order; scripted crashes pinned to a protocol step
//!    fire here (an in-flight ops range is cut at a random byte
//!    boundary, its complete-record prefix reaches the journal, and the
//!    replica rebuilds from its journals);
//! 5. the round is traced and convergence is checked: scripted faults
//!    all in the past, network empty, every digest equal, every
//!    rendered state byte-identical.
//!
//! Messages sent in round `r` are never delivered before `r + 1`, so a
//! full mesh converges in a handful of rounds on a clean network and
//! the per-round trace reads as a causal history.

use idr_obs::{TraceEvent, TraceHandle};
use idr_relation::exec::{ExecError, Guard};
use idr_relation::rng::SplitMix64;
use idr_relation::DatabaseScheme;

use crate::fault::{CrashStep, FaultPlan, SyncPolicy};
use crate::proto::{self, Message};
use crate::replica::Replica;

/// A scripted client op: `line` arrives at `replica` in `round`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScriptedOp {
    /// The round the op arrives in.
    pub round: usize,
    /// The replica it arrives at (its origin).
    pub replica: usize,
    /// The op line (`insert R1: A=a B=b` / `delete …`).
    pub line: String,
}

/// What a simulation run did and concluded.
#[derive(Clone, Debug)]
pub struct SyncReport {
    /// Whether the group converged (digest-equal, byte-identical
    /// states) before the round budget ran out.
    pub converged: bool,
    /// Whether any replica observed divergence (chain contradiction or
    /// malformed shipped data) — should never happen and fails the
    /// oracle.
    pub diverged: Option<String>,
    /// Rounds executed (the convergence round when `converged`).
    pub rounds: usize,
    /// Total ops shipped in `OpsPush` frames (retransmissions count).
    pub ops_shipped: usize,
    /// Messages offered to the network.
    pub messages_sent: usize,
    /// Messages the adversary dropped (including partition blocks).
    pub dropped: usize,
    /// Messages the adversary duplicated.
    pub duplicated: usize,
    /// Messages the adversary delayed.
    pub delayed: usize,
    /// Crashes that fired.
    pub crashes: usize,
    /// The converged consistency verdict (replica 0's when not
    /// converged).
    pub consistent: bool,
    /// The converged rendered state (replica 0's when not converged).
    pub state_lines: Vec<String>,
    /// Round-by-round digest trace lines.
    pub trace: Vec<String>,
}

/// An in-flight message.
#[derive(Clone, Debug)]
struct Envelope {
    id: u64,
    deliver: usize,
    src: usize,
    dst: usize,
    msg: Message,
}

/// Per ordered pair `(initiator, peer)` retry bookkeeping.
#[derive(Clone, Copy, Debug, Default)]
struct PeerSync {
    /// Round the awaited reply times out at, if awaiting one.
    deadline: Option<usize>,
    /// Consecutive timeouts so far.
    timeouts: u32,
    /// Earliest round the next exchange may open.
    next: usize,
}

/// The simulator.
pub struct Simulator {
    replicas: Vec<Replica>,
    ops: Vec<ScriptedOp>,
    plan: FaultPlan,
    policy: SyncPolicy,
    rng: SplitMix64,
    guard: Guard,
    net: Vec<Envelope>,
    next_id: u64,
    pairs: Vec<Vec<PeerSync>>,
    crash_fired: Vec<bool>,
    tracer: TraceHandle,
    /// Pre-resolved round-timing handles (None when metrics are off).
    round_metrics: Option<(
        std::sync::Arc<idr_obs::Counter>,
        std::sync::Arc<idr_obs::Histogram>,
    )>,
    report: SyncReport,
}

impl Simulator {
    /// Builds a simulator over `db` with `n` fresh replicas.
    pub fn new(
        db: &DatabaseScheme,
        n: usize,
        ops: Vec<ScriptedOp>,
        plan: FaultPlan,
        policy: SyncPolicy,
        seed: u64,
    ) -> Simulator {
        Simulator {
            replicas: (0..n).map(|i| Replica::new(i, n, db)).collect(),
            ops,
            crash_fired: vec![false; plan.crashes.len()],
            plan,
            policy,
            rng: SplitMix64::new(seed),
            guard: Guard::unlimited(),
            net: Vec::new(),
            next_id: 0,
            pairs: (0..n).map(|_| vec![PeerSync::default(); n]).collect(),
            tracer: TraceHandle::none(),
            round_metrics: None,
            report: SyncReport {
                converged: false,
                diverged: None,
                rounds: 0,
                ops_shipped: 0,
                messages_sent: 0,
                dropped: 0,
                duplicated: 0,
                delayed: 0,
                crashes: 0,
                consistent: true,
                state_lines: Vec::new(),
                trace: Vec::new(),
            },
        }
    }

    /// Attaches a trace sink: the run emits `sync_*` events.
    pub fn with_observability(mut self, tracer: TraceHandle) -> Simulator {
        self.tracer = tracer;
        self
    }

    /// Attaches a metrics registry: each anti-entropy round's wall time
    /// lands in the `sync.round_us` histogram and `sync.rounds` counts
    /// them. Round *timings* are wall-clock (non-deterministic); every
    /// `sync_*` trace event stays clock-free.
    pub fn with_metrics(mut self, metrics: Option<std::sync::Arc<idr_obs::MetricsRegistry>>) -> Simulator {
        self.round_metrics =
            metrics.map(|m| (m.counter("sync.rounds"), m.latency_histogram("sync.round_us")));
        self
    }

    /// The replicas, for post-run inspection by the oracle.
    pub fn replicas(&self) -> &[Replica] {
        &self.replicas
    }

    /// Runs until convergence or `max_rounds`, whichever first.
    pub fn run(&mut self, max_rounds: usize) -> Result<SyncReport, ExecError> {
        for round in 0..max_rounds {
            self.report.rounds = round + 1;
            let t0 = std::time::Instant::now();
            self.step(round)?;
            if let Some((rounds, round_us)) = &self.round_metrics {
                rounds.inc();
                round_us.observe_duration(t0.elapsed());
            }
            if self.check_converged(round) {
                break;
            }
        }
        let sample = &self.replicas[0];
        self.report.consistent = sample.is_consistent();
        self.report.state_lines = sample.state_lines();
        if self.report.diverged.is_none() {
            self.report.diverged = self
                .replicas
                .iter()
                .find_map(|r| r.diverged().map(|d| format!("replica {}: {d}", r.id())));
        }
        if self.report.converged {
            self.tracer.emit_with(|| TraceEvent::SyncConverged {
                rounds: self.report.rounds,
                ops_shipped: self.report.ops_shipped,
            });
        }
        Ok(self.report.clone())
    }

    /// One synchronous round.
    fn step(&mut self, round: usize) -> Result<(), ExecError> {
        // 1. Scripted start-of-round crashes.
        self.fire_start_crashes(round)?;

        // 2. Scripted client ops.
        let due: Vec<ScriptedOp> = self
            .ops
            .iter()
            .filter(|o| o.round == round)
            .cloned()
            .collect();
        for op in due {
            self.replicas[op.replica].client_op(&op.line, &self.guard)?;
        }

        // 3. Anti-entropy initiation under the injectable policy.
        let n = self.replicas.len();
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let p = &mut self.pairs[i][j];
                if let Some(deadline) = p.deadline {
                    if round >= deadline {
                        // The awaited reply never came: a timeout.
                        p.deadline = None;
                        p.timeouts += 1;
                        if p.timeouts > self.policy.max_retries {
                            p.next = round + self.policy.backoff_rounds as usize;
                            p.timeouts = 0;
                        }
                    }
                }
                let p = self.pairs[i][j];
                if p.deadline.is_none() && round >= p.next {
                    let msg = Message::Digest {
                        digest: self.replicas[i].digest(),
                        want_reply: true,
                    };
                    self.send(round, i, j, msg);
                    let p = &mut self.pairs[i][j];
                    p.deadline = Some(round + self.policy.round_timeout.max(1) as usize);
                    p.next = round + 1;
                }
            }
        }

        // 4. Delivery, in deterministic (dst, id) order. A replica that
        // crashes mid-round loses the rest of this round's deliveries
        // (they died in its socket buffer).
        let mut due: Vec<Envelope> = Vec::new();
        self.net.retain(|e| {
            if e.deliver <= round {
                due.push(e.clone());
                false
            } else {
                true
            }
        });
        due.sort_by_key(|e| (e.dst, e.id));
        let mut crashed_this_round = vec![false; n];
        let mut delivered = 0usize;
        for env in due {
            if crashed_this_round[env.dst] {
                continue;
            }
            // A crash scripted for this step at this replica?
            if self.crash_due(round, env.dst, env.msg.step()) {
                crashed_this_round[env.dst] = true;
                self.crash_on_delivery(round, env)?;
                continue;
            }
            delivered += 1;
            if let Message::Digest {
                want_reply: false, ..
            } = env.msg
            {
                // The reply the initiator was waiting for.
                let p = &mut self.pairs[env.dst][env.src];
                p.deadline = None;
                p.timeouts = 0;
            }
            let out = self.replicas[env.dst].receive(env.src, &env.msg, &self.guard)?;
            for (dst, msg) in out.messages {
                if let Message::OpsPush {
                    origin,
                    from,
                    ref frame,
                    ..
                } = msg
                {
                    let count = proto::frame_record_count(frame);
                    self.report.ops_shipped += count;
                    let src = env.dst;
                    self.tracer.emit_with(|| TraceEvent::SyncOpsShipped {
                        src,
                        dst,
                        origin,
                        from,
                        count,
                    });
                }
                self.send(round, env.dst, dst, msg);
            }
        }

        // 5. Trace the round.
        let digests: Vec<String> = self
            .replicas
            .iter()
            .map(|r| format!("r{}={}", r.id(), r.digest().render()))
            .collect();
        let in_sync = self.digests_equal();
        self.report.trace.push(format!(
            "round {round}: {} in-flight={} {}",
            digests.join(" "),
            self.net.len(),
            if in_sync { "in-sync" } else { "syncing" }
        ));
        self.tracer.emit_with(|| TraceEvent::SyncRoundCompleted {
            round,
            messages: delivered,
            in_sync,
        });
        Ok(())
    }

    /// Offers a message to the faulty network.
    fn send(&mut self, round: usize, src: usize, dst: usize, msg: Message) {
        self.report.messages_sent += 1;
        if self.plan.blocked(round, src, dst) || self.rng.gen_pct(self.plan.drop_pct) {
            self.report.dropped += 1;
            return;
        }
        let mut delay = 0;
        if self.plan.delay_pct > 0 && self.rng.gen_pct(self.plan.delay_pct) {
            delay = self.rng.gen_range_inclusive(1, self.plan.max_delay.max(1));
            self.report.delayed += 1;
        }
        let copies = if self.rng.gen_pct(self.plan.dup_pct) {
            self.report.duplicated += 1;
            2
        } else {
            1
        };
        for _ in 0..copies {
            let id = self.next_id;
            self.next_id += 1;
            self.net.push(Envelope {
                id,
                deliver: round + 1 + delay,
                src,
                dst,
                msg: msg.clone(),
            });
        }
    }

    /// Whether a not-yet-fired crash point matches `(round, replica,
    /// step)` — `step == None` matches `start` points at round start.
    fn crash_due(&self, round: usize, replica: usize, step: &str) -> bool {
        self.plan.crashes.iter().enumerate().any(|(k, c)| {
            !self.crash_fired[k]
                && c.replica == replica
                && round >= c.round
                && c.step.name() == step
        })
    }

    /// Fires any due `start` crash points.
    fn fire_start_crashes(&mut self, round: usize) -> Result<(), ExecError> {
        for k in 0..self.plan.crashes.len() {
            let c = self.plan.crashes[k];
            if !self.crash_fired[k]
                && c.step == CrashStep::StartOfRound
                && round >= c.round
            {
                self.crash_fired[k] = true;
                self.crash_replica(round, c.replica, "start")?;
            }
        }
        Ok(())
    }

    /// Crashes `replica` while it is delivering `env`: an in-flight ops
    /// range is cut at a random byte boundary and its complete-record
    /// prefix still reaches the journal (the WAL framing's torn-tail
    /// discipline); then the replica restarts.
    fn crash_on_delivery(&mut self, round: usize, env: Envelope) -> Result<(), ExecError> {
        let step = env.msg.step();
        for k in 0..self.plan.crashes.len() {
            let c = self.plan.crashes[k];
            if !self.crash_fired[k]
                && c.replica == env.dst
                && round >= c.round
                && c.step.name() == step
            {
                self.crash_fired[k] = true;
                break;
            }
        }
        if let Message::OpsPush {
            origin,
            from,
            base_chain,
            frame,
        } = &env.msg
        {
            let cut = self.rng.gen_range_inclusive(0, frame.len());
            let torn = Message::OpsPush {
                origin: *origin,
                from: *from,
                base_chain: *base_chain,
                frame: frame[..cut].to_vec(),
            };
            // The surviving prefix hits the durable journal; the
            // replica's outgoing reaction dies with it.
            let _ = self.replicas[env.dst].receive(env.src, &torn, &self.guard)?;
        }
        self.crash_replica(round, env.dst, step)
    }

    /// Crash-and-restart semantics: queued deliveries for this round
    /// die, awaited replies are forgotten, the state is rebuilt from
    /// the journals.
    fn crash_replica(&mut self, round: usize, replica: usize, step: &str) -> Result<(), ExecError> {
        self.report.crashes += 1;
        self.net
            .retain(|e| !(e.dst == replica && e.deliver <= round));
        for p in &mut self.pairs[replica] {
            *p = PeerSync::default();
        }
        self.replicas[replica].crash(&self.guard)?;
        self.tracer.emit_with(|| TraceEvent::SyncReplicaCrashed {
            replica,
            step: std::sync::Arc::from(step),
        });
        Ok(())
    }

    fn digests_equal(&self) -> bool {
        let first = self.replicas[0].digest();
        self.replicas.iter().skip(1).all(|r| r.digest() == first)
    }

    /// Convergence: every scripted fault and op is in the past and
    /// digests are equal — stable even with stale messages still in
    /// flight, because attaches are idempotent (a push computed from
    /// any earlier journal re-attaches and appends nothing). The
    /// rendered states are then verified byte-identical (a digest match
    /// with differing states would be a canonical-order bug, reported
    /// as divergence).
    fn check_converged(&mut self, round: usize) -> bool {
        let last_op = self.ops.iter().map(|o| o.round).max().unwrap_or(0);
        if round < self.plan.last_scripted_round().max(last_op) || !self.digests_equal() {
            return false;
        }
        let first = self.replicas[0].state_lines();
        let verdict = self.replicas[0].is_consistent();
        for r in self.replicas.iter().skip(1) {
            if r.state_lines() != first || r.is_consistent() != verdict {
                self.report.diverged = Some(format!(
                    "digests equal but replica {} state differs from replica 0",
                    r.id()
                ));
                return true;
            }
        }
        self.report.converged = true;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idr_relation::parse::parse_scheme;

    fn db() -> DatabaseScheme {
        parse_scheme("universe: A B C\nscheme R1: A B keys A\nscheme R2: B C keys B\n").unwrap()
    }

    fn ops() -> Vec<ScriptedOp> {
        (0..6)
            .map(|i| ScriptedOp {
                round: i % 3,
                replica: i % 3,
                line: format!("insert R1: A=a{i} B=b{i}"),
            })
            .collect()
    }

    #[test]
    fn clean_network_converges_quickly() {
        let mut sim = Simulator::new(
            &db(),
            3,
            ops(),
            FaultPlan::clean(),
            SyncPolicy::default(),
            1,
        );
        let report = sim.run(32).unwrap();
        assert!(report.converged, "{:?}", report.trace);
        assert!(report.diverged.is_none());
        assert_eq!(report.state_lines.len(), 6);
        assert!(report.rounds <= 8, "clean mesh should converge fast");
        assert_eq!(report.dropped + report.duplicated + report.delayed, 0);
    }

    #[test]
    fn faulty_network_still_converges_deterministically() {
        let plan = FaultPlan {
            drop_pct: 25,
            dup_pct: 15,
            delay_pct: 25,
            max_delay: 2,
            partitions: vec![crate::fault::Partition {
                from_round: 1,
                to_round: 5,
                groups: vec![vec![0], vec![1, 2]],
            }],
            crashes: vec![crate::fault::CrashPoint {
                round: 2,
                replica: 1,
                step: CrashStep::OpsPush,
            }],
        };
        let run = |seed| {
            let mut sim = Simulator::new(&db(), 3, ops(), plan.clone(), SyncPolicy::default(), seed);
            sim.run(64).unwrap()
        };
        let a = run(42);
        let b = run(42);
        assert!(a.converged, "{:?}", a.trace);
        assert!(a.diverged.is_none());
        assert_eq!(a.state_lines, b.state_lines);
        assert_eq!(a.trace, b.trace, "same seed must replay identically");
        assert_eq!(a.ops_shipped, b.ops_shipped);
        assert!(a.crashes >= 1, "the scripted crash fired");
    }
}
