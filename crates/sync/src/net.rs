//! Real-socket transport for the anti-entropy protocol.
//!
//! The protocol itself ([`crate::proto`]) is transport-agnostic: two
//! message kinds, both plain byte frames. This module puts them on TCP:
//!
//! * **Framing** ([`FramedConn`]): every wire message travels as
//!   `[payload len: u32 LE][crc32(payload): u32 LE][payload]` — the
//!   store's WAL record header ([`idr_store::wal`]) reused verbatim,
//!   except the payload may be binary (an ops push nests a whole
//!   WAL-framed op range) and the size cap is [`MAX_WIRE_FRAME`]. A
//!   connection cut mid-frame loses at most the torn frame; everything
//!   before it was already CRC-verified.
//! * **Handshake** ([`Hello`], [`handshake`]): both sides lead with a
//!   `hello` frame carrying the wire version, their origin id, the
//!   group size, and a CRC32 digest of the rendered scheme. Any
//!   mismatch is a typed [`WireError::Handshake`] — a peer serving a
//!   different scheme is rejected before a single op crosses.
//! * **Exchange** ([`initiate_exchange`], [`respond_exchange`]): one
//!   short-lived connection per anti-entropy round. The initiator sends
//!   its digest with `want_reply`; the responder ships ranges for every
//!   origin it is ahead on, then its own digest; the initiator ships
//!   back ranges for origins *it* is ahead on and closes. Both sides
//!   feed received messages through [`Replica::receive`] — ops re-enter
//!   the engine via the guarded `WriteHandle` replay path, verdicts
//!   re-earned, never trusted off the wire.
//! * **Model-checked runner** ([`run_wire_scenario`]): the same
//!   scripted [`crate::fault::FaultPlan`]s the in-process simulator executes, replayed
//!   over real loopback sockets against durable journals — partition
//!   and drop become connection kills, crash-mid-transfer cuts the ops
//!   frame at a scripted byte and restarts the node from its journal
//!   files. The simulator is the model; this runner checks the wire
//!   implementation against the same convergence oracle.
//!
//! The byte layout is specified normatively in `docs/WIRE.md`; the
//! handshake tests assert the spec's worked example matches these
//! encoders bit for bit.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use idr_obs::{MetricsRegistry, TraceEvent, TraceHandle};
use idr_relation::exec::{ExecError, Guard};
use idr_relation::parse::render_scheme_file;
use idr_relation::rng::SplitMix64;
use idr_relation::DatabaseScheme;
use idr_store::crc32::crc32;

use crate::digest::{DigestStatus, JournalDigest, OriginDigest};
use crate::fault::CrashStep;
use crate::proto::{self, Message};
use crate::replica::Replica;
use crate::scenario::Scenario;
use crate::sim::SyncReport;

/// The wire protocol version both sides must speak.
pub const WIRE_VERSION: u32 = 1;

/// Wire frames share the WAL record header layout but may carry a whole
/// nested ops range, so the cap is larger than one WAL record's.
pub const MAX_WIRE_FRAME: usize = 1 << 26;

/// Bytes of wire-frame header: payload length then payload CRC32, both
/// little-endian `u32` — identical to the WAL record header.
pub const WIRE_HEADER_LEN: usize = 8;

/// Why a wire operation failed.
#[derive(Clone, Debug)]
pub enum WireError {
    /// A socket-level failure (connect, read, write, accept).
    Io {
        /// What was being attempted.
        operation: String,
        /// The rendered OS error.
        detail: String,
    },
    /// A read deadline passed with the peer silent.
    Timeout {
        /// What was being awaited.
        operation: String,
        /// The configured deadline in milliseconds.
        after_ms: u64,
    },
    /// A structurally bad frame: oversized length, CRC mismatch, or an
    /// unparseable header line.
    Frame {
        /// What disagreed.
        detail: String,
    },
    /// The peer's hello is incompatible (version, scheme digest, origin
    /// identity, or group size). The connection is refused before any
    /// op crosses.
    Handshake {
        /// Which field disagreed and how.
        detail: String,
    },
    /// Applying received ops through the guarded engine failed — not a
    /// transport problem; carries the engine error.
    Exec(ExecError),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io { operation, detail } => write!(f, "wire i/o ({operation}): {detail}"),
            WireError::Timeout {
                operation,
                after_ms,
            } => write!(f, "wire timeout awaiting {operation} after {after_ms} ms"),
            WireError::Frame { detail } => write!(f, "bad wire frame: {detail}"),
            WireError::Handshake { detail } => write!(f, "handshake rejected: {detail}"),
            WireError::Exec(e) => write!(f, "apply failed: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

/// The CRC32 scheme digest both sides compare during the handshake:
/// computed over the canonical rendered scheme file, so two processes
/// agree iff their schemes render identically.
pub fn scheme_digest(db: &DatabaseScheme) -> u32 {
    crc32(render_scheme_file(db).as_bytes())
}

/// The handshake announcement each side sends first.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Hello {
    /// Wire protocol version ([`WIRE_VERSION`]).
    pub version: u32,
    /// The sender's origin id.
    pub origin: usize,
    /// The replica-group size the sender is configured for.
    pub origins: usize,
    /// [`scheme_digest`] of the sender's scheme.
    pub scheme: u32,
}

impl Hello {
    /// The hello for origin `origin` in a group of `origins` over `db`.
    pub fn new(origin: usize, origins: usize, db: &DatabaseScheme) -> Hello {
        Hello {
            version: WIRE_VERSION,
            origin,
            origins,
            scheme: scheme_digest(db),
        }
    }
}

/// A decoded wire message: the handshake announcement or a protocol
/// message.
#[derive(Clone, Debug)]
pub enum WireMsg {
    /// The handshake announcement.
    Hello(Hello),
    /// An anti-entropy protocol message.
    Msg(Message),
}

impl WireMsg {
    /// Encodes the message payload: a UTF-8 header line terminated by
    /// `\n`, followed for ops pushes by the binary op-range frame.
    pub fn encode_payload(&self) -> Vec<u8> {
        match self {
            WireMsg::Hello(h) => format!(
                "hello v{} origin={} origins={} scheme={:08x}\n",
                h.version, h.origin, h.origins, h.scheme
            )
            .into_bytes(),
            WireMsg::Msg(Message::Digest { digest, want_reply }) => {
                let mut line = format!("digest want_reply={}", u8::from(*want_reply));
                for o in &digest.origins {
                    line.push_str(&format!(" {}/{:08x}", o.len, o.chain));
                }
                line.push('\n');
                line.into_bytes()
            }
            WireMsg::Msg(Message::OpsPush {
                origin,
                from,
                base_chain,
                frame,
            }) => {
                let mut out =
                    format!("ops origin={origin} from={from} base={base_chain:08x}\n").into_bytes();
                out.extend_from_slice(frame);
                out
            }
        }
    }

    /// Decodes a payload produced by [`WireMsg::encode_payload`].
    pub fn decode_payload(payload: &[u8]) -> Result<WireMsg, WireError> {
        let nl = payload
            .iter()
            .position(|&b| b == b'\n')
            .ok_or_else(|| WireError::Frame {
                detail: "missing header line terminator".to_string(),
            })?;
        let header = std::str::from_utf8(&payload[..nl]).map_err(|_| WireError::Frame {
            detail: "header line is not UTF-8".to_string(),
        })?;
        let body = &payload[nl + 1..];
        let mut words = header.split_whitespace();
        let kind = words.next().unwrap_or("");
        let bad = |detail: String| WireError::Frame { detail };
        let field = |w: Option<&str>, key: &str| -> Result<String, WireError> {
            let w = w.ok_or_else(|| bad(format!("missing {key}= field")))?;
            match w.split_once('=') {
                Some((k, v)) if k == key => Ok(v.to_string()),
                _ => Err(bad(format!("expected {key}=…, got {w:?}"))),
            }
        };
        match kind {
            "hello" => {
                let v = words.next().unwrap_or("");
                let version: u32 = v
                    .strip_prefix('v')
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| bad(format!("bad version token {v:?}")))?;
                let origin = field(words.next(), "origin")?
                    .parse()
                    .map_err(|_| bad("bad origin".to_string()))?;
                let origins = field(words.next(), "origins")?
                    .parse()
                    .map_err(|_| bad("bad origins".to_string()))?;
                let scheme = u32::from_str_radix(&field(words.next(), "scheme")?, 16)
                    .map_err(|_| bad("bad scheme digest".to_string()))?;
                Ok(WireMsg::Hello(Hello {
                    version,
                    origin,
                    origins,
                    scheme,
                }))
            }
            "digest" => {
                let want_reply = match field(words.next(), "want_reply")?.as_str() {
                    "0" => false,
                    "1" => true,
                    other => return Err(bad(format!("bad want_reply {other:?}"))),
                };
                let mut origins = Vec::new();
                for w in words {
                    let (len, chain) = w
                        .split_once('/')
                        .ok_or_else(|| bad(format!("bad origin digest {w:?}")))?;
                    origins.push(OriginDigest {
                        len: len
                            .parse()
                            .map_err(|_| bad(format!("bad digest length {len:?}")))?,
                        chain: u32::from_str_radix(chain, 16)
                            .map_err(|_| bad(format!("bad digest chain {chain:?}")))?,
                    });
                }
                Ok(WireMsg::Msg(Message::Digest {
                    digest: JournalDigest { origins },
                    want_reply,
                }))
            }
            "ops" => {
                let origin = field(words.next(), "origin")?
                    .parse()
                    .map_err(|_| bad("bad ops origin".to_string()))?;
                let from = field(words.next(), "from")?
                    .parse()
                    .map_err(|_| bad("bad ops from".to_string()))?;
                let base_chain = u32::from_str_radix(&field(words.next(), "base")?, 16)
                    .map_err(|_| bad("bad ops base chain".to_string()))?;
                Ok(WireMsg::Msg(Message::OpsPush {
                    origin,
                    from,
                    base_chain,
                    frame: body.to_vec(),
                }))
            }
            other => Err(bad(format!("unknown message kind {other:?}"))),
        }
    }

    /// Encodes the full wire frame: header (`[len][crc32]`) + payload.
    pub fn encode_frame(&self) -> Vec<u8> {
        let payload = self.encode_payload();
        let mut out = Vec::with_capacity(WIRE_HEADER_LEN + payload.len());
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc32(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }
}

fn io_err(operation: &str, e: &std::io::Error) -> WireError {
    WireError::Io {
        operation: operation.to_string(),
        detail: e.to_string(),
    }
}

/// A length-prefixed framed reader/writer over one TCP connection, with
/// a read deadline on every frame.
#[derive(Debug)]
pub struct FramedConn {
    stream: TcpStream,
    timeout: Duration,
}

impl FramedConn {
    /// Wraps `stream`, arming `timeout` as the per-read deadline.
    pub fn new(stream: TcpStream, timeout: Duration) -> Result<FramedConn, WireError> {
        stream.set_nodelay(true).map_err(|e| io_err("set nodelay", &e))?;
        stream
            .set_read_timeout(Some(timeout))
            .map_err(|e| io_err("set read timeout", &e))?;
        Ok(FramedConn { stream, timeout })
    }

    /// The underlying stream (for shutdown).
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }

    /// Sends one message as a single frame.
    pub fn send(&mut self, msg: &WireMsg) -> Result<(), WireError> {
        let frame = msg.encode_frame();
        self.stream
            .write_all(&frame)
            .map_err(|e| io_err("send frame", &e))
    }

    /// Receives the next frame. `Ok(None)` is a clean close at a frame
    /// boundary; a cut mid-frame, a deadline, or a corrupt frame is an
    /// error.
    pub fn recv(&mut self) -> Result<Option<WireMsg>, WireError> {
        let mut header = [0u8; WIRE_HEADER_LEN];
        match self.stream.read(&mut header) {
            Ok(0) => return Ok(None),
            Ok(n) => self
                .read_exact(&mut header[n..], "frame header")
                .map_err(|e| self.classify(e, "frame header"))?,
            Err(e) => return Err(self.classify(e, "frame header")),
        }
        let len = u32::from_le_bytes(header[..4].try_into().unwrap()) as usize;
        let stored_crc = u32::from_le_bytes(header[4..8].try_into().unwrap());
        if len > MAX_WIRE_FRAME {
            return Err(WireError::Frame {
                detail: format!("frame length {len} exceeds cap {MAX_WIRE_FRAME}"),
            });
        }
        let mut payload = vec![0u8; len];
        self.read_exact(&mut payload, "frame payload")
            .map_err(|e| self.classify(e, "frame payload"))?;
        let computed = crc32(&payload);
        if computed != stored_crc {
            return Err(WireError::Frame {
                detail: format!("stored crc {stored_crc:08x} != computed {computed:08x}"),
            });
        }
        WireMsg::decode_payload(&payload).map(Some)
    }

    fn read_exact(&mut self, buf: &mut [u8], what: &str) -> std::io::Result<()> {
        self.stream.read_exact(buf).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    format!("connection cut mid-{what}"),
                )
            } else {
                e
            }
        })
    }

    fn classify(&self, e: std::io::Error, operation: &str) -> WireError {
        match e.kind() {
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => WireError::Timeout {
                operation: operation.to_string(),
                after_ms: self.timeout.as_millis() as u64,
            },
            _ => io_err(operation, &e),
        }
    }
}

/// Runs the symmetric handshake: sends `mine`, reads the peer's hello,
/// and validates compatibility. Any disagreement is a typed
/// [`WireError::Handshake`] naming the field.
pub fn handshake(conn: &mut FramedConn, mine: &Hello) -> Result<Hello, WireError> {
    conn.send(&WireMsg::Hello(*mine))?;
    let theirs = match conn.recv()? {
        Some(WireMsg::Hello(h)) => h,
        Some(_) => {
            return Err(WireError::Handshake {
                detail: "peer sent a protocol message before hello".to_string(),
            })
        }
        None => {
            return Err(WireError::Handshake {
                detail: "peer closed before hello".to_string(),
            })
        }
    };
    let reject = |detail: String| Err(WireError::Handshake { detail });
    if theirs.version != mine.version {
        return reject(format!(
            "wire version mismatch: ours v{}, theirs v{}",
            mine.version, theirs.version
        ));
    }
    if theirs.scheme != mine.scheme {
        return reject(format!(
            "scheme digest mismatch: ours {:08x}, theirs {:08x}",
            mine.scheme, theirs.scheme
        ));
    }
    if theirs.origins != mine.origins {
        return reject(format!(
            "group size mismatch: ours {}, theirs {}",
            mine.origins, theirs.origins
        ));
    }
    if theirs.origin >= theirs.origins {
        return reject(format!(
            "peer origin {} out of range for group of {}",
            theirs.origin, theirs.origins
        ));
    }
    if theirs.origin == mine.origin {
        return reject(format!("peer claims our own origin id {}", mine.origin));
    }
    Ok(theirs)
}

/// Scripted misbehaviour one exchange side executes — how the wire
/// runner realises a [`FaultPlan`](crate::fault::FaultPlan) with real
/// sockets.
#[derive(Clone, Debug, Default)]
pub struct ExchangeFaults {
    /// Kill the connection right after the handshake (a partition: the
    /// link is up, the protocol never runs).
    pub kill_after_handshake: bool,
    /// Kill the connection on receiving the digest request, before
    /// processing it (a dropped message).
    pub kill_before_reply: bool,
    /// Protocol steps at which this side crashes on receipt; the first
    /// one encountered fires. An ops push is cut at a byte derived from
    /// `cut_at` first, so its surviving prefix reaches the durable
    /// journal — crash-mid-transfer.
    pub armed_crashes: Vec<CrashStep>,
    /// Raw entropy for the cut point.
    pub cut_at: u64,
}

impl ExchangeFaults {
    /// A well-behaved side.
    pub fn none() -> ExchangeFaults {
        ExchangeFaults::default()
    }
}

/// What one side of an exchange did.
#[derive(Clone, Debug, Default)]
pub struct ExchangeOutcome {
    /// Ops this side shipped in pushes.
    pub shipped: usize,
    /// Ops this side appended from received pushes.
    pub appended: u64,
    /// Protocol frames this side sent (hello excluded).
    pub frames_sent: usize,
    /// The peer's digest, when one was seen.
    pub peer_digest: Option<JournalDigest>,
    /// Whether every origin classified in-sync against the peer digest.
    pub in_sync: bool,
    /// The scripted crash step that fired on this side, if any. The
    /// caller restarts the node from its journals.
    pub crashed: Option<CrashStep>,
    /// Whether this side deliberately killed the connection.
    pub killed: bool,
}

/// Handles one received message through the replica, honouring armed
/// crash faults. Returns `false` when the exchange must stop (a crash
/// fired).
#[allow(clippy::too_many_arguments)]
fn deliver(
    msg: &Message,
    peer: usize,
    replica: &Mutex<Replica>,
    conn: &mut FramedConn,
    faults: &ExchangeFaults,
    outcome: &mut ExchangeOutcome,
    guard: &Guard,
    tracer: &TraceHandle,
) -> Result<bool, WireError> {
    let step = CrashStep::parse(msg.step()).ok().filter(|s| faults.armed_crashes.contains(s));
    if let Some(step) = step {
        // Crash on receipt: an ops push is cut at a scripted byte and
        // its surviving prefix still reaches the durable journal (the
        // WAL framing's torn-tail discipline); then the process dies.
        if let Message::OpsPush {
            origin,
            from,
            base_chain,
            frame,
        } = msg
        {
            let cut = (faults.cut_at % (frame.len() as u64 + 1)) as usize;
            let torn = Message::OpsPush {
                origin: *origin,
                from: *from,
                base_chain: *base_chain,
                frame: frame[..cut].to_vec(),
            };
            let mut r = replica.lock().unwrap();
            r.receive(peer, &torn, guard).map_err(WireError::Exec)?;
        }
        outcome.crashed = Some(step);
        let _ = conn.stream().shutdown(Shutdown::Both);
        return Ok(false);
    }
    let out = {
        let mut r = replica.lock().unwrap();
        r.receive(peer, msg, guard).map_err(WireError::Exec)?
    };
    outcome.appended += out.appended;
    if let Message::Digest { digest, .. } = msg {
        outcome.peer_digest = Some(digest.clone());
        outcome.in_sync = !out.statuses.is_empty()
            && out.statuses.iter().all(|(_, s)| *s == DigestStatus::InSync);
    }
    for (_, reply) in &out.messages {
        if let Message::OpsPush {
            origin,
            from,
            ref frame,
            ..
        } = *reply
        {
            let count = proto::frame_record_count(frame);
            outcome.shipped += count;
            let src = {
                let r = replica.lock().unwrap();
                r.id()
            };
            tracer.emit_with(|| TraceEvent::SyncOpsShipped {
                src,
                dst: peer,
                origin,
                from,
                count,
            });
        }
        conn.send(&WireMsg::Msg(reply.clone()))?;
        outcome.frames_sent += 1;
    }
    Ok(true)
}

/// Responder side of one exchange over an accepted connection:
/// handshake, then serve the initiator's digest request (pushes for
/// every origin we are ahead on, our digest last), then attach the
/// initiator's pushes until it closes.
pub fn respond_exchange(
    stream: TcpStream,
    mine: &Hello,
    replica: &Mutex<Replica>,
    faults: &ExchangeFaults,
    timeout: Duration,
    guard: &Guard,
    tracer: &TraceHandle,
) -> Result<ExchangeOutcome, WireError> {
    let mut conn = FramedConn::new(stream, timeout)?;
    let theirs = handshake(&mut conn, mine)?;
    let mut outcome = ExchangeOutcome::default();
    if faults.kill_after_handshake {
        outcome.killed = true;
        let _ = conn.stream().shutdown(Shutdown::Both);
        return Ok(outcome);
    }
    loop {
        let msg = match conn.recv() {
            Ok(Some(WireMsg::Msg(m))) => m,
            Ok(Some(WireMsg::Hello(_))) => {
                return Err(WireError::Frame {
                    detail: "unexpected second hello".to_string(),
                })
            }
            Ok(None) => break,
            // A connection cut mid-exchange is the network's business,
            // not a local failure: stop, keep what was attached.
            Err(WireError::Exec(e)) => return Err(WireError::Exec(e)),
            Err(_) => break,
        };
        if matches!(
            &msg,
            Message::Digest {
                want_reply: true,
                ..
            }
        ) && faults.kill_before_reply
        {
            outcome.killed = true;
            let _ = conn.stream().shutdown(Shutdown::Both);
            break;
        }
        if !deliver(
            &msg,
            theirs.origin,
            replica,
            &mut conn,
            faults,
            &mut outcome,
            guard,
            tracer,
        )? {
            break;
        }
    }
    Ok(outcome)
}

/// Initiator side of one exchange over a connected stream: handshake,
/// send our digest with `want_reply`, attach the responder's pushes,
/// and on its digest reply ship back every origin we are ahead on.
pub fn initiate_exchange(
    stream: TcpStream,
    mine: &Hello,
    replica: &Mutex<Replica>,
    faults: &ExchangeFaults,
    timeout: Duration,
    guard: &Guard,
    tracer: &TraceHandle,
) -> Result<ExchangeOutcome, WireError> {
    let mut conn = FramedConn::new(stream, timeout)?;
    let theirs = handshake(&mut conn, mine)?;
    let mut outcome = ExchangeOutcome::default();
    let request = {
        let r = replica.lock().unwrap();
        Message::Digest {
            digest: r.digest(),
            want_reply: true,
        }
    };
    conn.send(&WireMsg::Msg(request))?;
    outcome.frames_sent += 1;
    loop {
        let msg = match conn.recv() {
            Ok(Some(WireMsg::Msg(m))) => m,
            Ok(Some(WireMsg::Hello(_))) => {
                return Err(WireError::Frame {
                    detail: "unexpected second hello".to_string(),
                })
            }
            Ok(None) => break,
            Err(WireError::Exec(e)) => return Err(WireError::Exec(e)),
            Err(_) => break,
        };
        let is_reply = matches!(
            &msg,
            Message::Digest {
                want_reply: false,
                ..
            }
        );
        if !deliver(
            &msg,
            theirs.origin,
            replica,
            &mut conn,
            faults,
            &mut outcome,
            guard,
            tracer,
        )? {
            break;
        }
        if is_reply {
            // The reply is the responder's last frame; our pushes (if
            // any) went out in `deliver`. Close our write side so the
            // responder sees a clean end of exchange.
            let _ = conn.stream().shutdown(Shutdown::Write);
            break;
        }
    }
    Ok(outcome)
}

/// Resolves and connects to `addr` within `timeout`.
pub fn connect(addr: &str, timeout: Duration) -> Result<TcpStream, WireError> {
    let sock: SocketAddr = addr
        .to_socket_addrs()
        .map_err(|e| io_err(&format!("resolve {addr}"), &e))?
        .next()
        .ok_or_else(|| WireError::Io {
            operation: format!("resolve {addr}"),
            detail: "no addresses".to_string(),
        })?;
    TcpStream::connect_timeout(&sock, timeout).map_err(|e| io_err(&format!("connect {addr}"), &e))
}

/// Connects with the CLI retry policy: up to `retries` reconnect
/// attempts after the first failure, sleeping `backoff × attempt`
/// between tries — the socket-world reading of `--retries` /
/// `--backoff-ms`.
pub fn connect_with_retry(
    addr: &str,
    timeout: Duration,
    retries: u32,
    backoff: Duration,
) -> Result<TcpStream, WireError> {
    let mut last = None;
    for attempt in 0..=retries {
        match connect(addr, timeout) {
            Ok(s) => return Ok(s),
            Err(e) => last = Some(e),
        }
        if attempt < retries {
            std::thread::sleep(backoff * (attempt + 1));
        }
    }
    Err(last.unwrap())
}

/// Per-exchange read deadline used by the wire runner. Loopback
/// exchanges complete in microseconds; the deadline only bounds hangs.
const RUNNER_TIMEOUT: Duration = Duration::from_secs(5);

/// Runs a scripted scenario over real loopback sockets with durable
/// journals: the wire implementation under the same fault model and
/// convergence oracle as the in-process simulator.
///
/// Fault realisation differs from the simulator where the transport
/// does: partition and drop become connection kills (after the
/// handshake and before the digest reply respectively), `dup`/`delay`
/// have no wire analogue on a synchronous connection and are ignored,
/// and a crash restarts the node **from its journal files** rather
/// than from in-memory journals.
pub fn run_wire_scenario(
    s: &Scenario,
    tracer: TraceHandle,
    metrics: Option<Arc<MetricsRegistry>>,
) -> Result<SyncReport, ExecError> {
    let guard = Guard::unlimited();
    let n = s.replicas;
    let tmp = idr_store::TempDir::new("wire-run");
    let mut nodes = Vec::with_capacity(n);
    for k in 0..n {
        let dir = tmp.path().join(format!("node-{k}"));
        nodes.push(Mutex::new(Replica::open_durable(
            k, n, &s.db, &dir, false, &guard,
        )?));
    }
    let mut listeners = Vec::with_capacity(n);
    let mut addrs = Vec::with_capacity(n);
    for k in 0..n {
        let l = TcpListener::bind("127.0.0.1:0").map_err(|e| {
            ExecError::from(idr_store::StoreError::Io {
                operation: format!("bind loopback listener for node {k}"),
                path: std::path::PathBuf::new(),
                message: e.to_string(),
            })
        })?;
        addrs.push(l.local_addr().expect("listener has a local addr"));
        listeners.push(l);
    }
    let hellos: Vec<Hello> = (0..n).map(|k| Hello::new(k, n, &s.db)).collect();
    let mut rng = SplitMix64::new(s.seed);
    let mut crash_fired = vec![false; s.plan.crashes.len()];
    let round_metrics =
        metrics.map(|m| (m.counter("sync.rounds"), m.latency_histogram("sync.round_us")));
    let mut report = SyncReport {
        converged: false,
        diverged: None,
        rounds: 0,
        ops_shipped: 0,
        messages_sent: 0,
        dropped: 0,
        duplicated: 0,
        delayed: 0,
        crashes: 0,
        consistent: true,
        state_lines: Vec::new(),
        trace: Vec::new(),
    };
    let last_op_round = s.ops.iter().map(|o| o.round).max().unwrap_or(0);
    let quiet_after = s.plan.last_scripted_round().max(last_op_round);

    // Which crash points are still pending for `replica` at `step`s a
    // given exchange side can encounter.
    let pending = |fired: &[bool], round: usize, replica: usize, steps: &[CrashStep]| {
        s.plan
            .crashes
            .iter()
            .enumerate()
            .filter(|(k, c)| {
                !fired[*k] && c.replica == replica && round >= c.round && steps.contains(&c.step)
            })
            .map(|(_, c)| c.step)
            .collect::<Vec<_>>()
    };
    let mark_fired =
        |fired: &mut [bool], round: usize, replica: usize, step: CrashStep| {
            if let Some((k, _)) = s.plan.crashes.iter().enumerate().find(|(k, c)| {
                !fired[*k] && c.replica == replica && round >= c.round && c.step == step
            }) {
                fired[k] = true;
            }
        };

    for round in 0..s.max_rounds {
        report.rounds = round + 1;
        let t0 = std::time::Instant::now();

        // 1. Start-of-round crashes: the node restarts from its
        // journal files.
        for (k, &c) in s.plan.crashes.iter().enumerate() {
            if !crash_fired[k] && c.step == CrashStep::StartOfRound && round >= c.round {
                crash_fired[k] = true;
                report.crashes += 1;
                nodes[c.replica].lock().unwrap().reopen(&guard)?;
                tracer.emit_with(|| TraceEvent::SyncReplicaCrashed {
                    replica: c.replica,
                    step: Arc::from("start"),
                });
            }
        }

        // 2. Scripted client ops.
        for op in s.ops.iter().filter(|o| o.round == round) {
            nodes[op.replica]
                .lock()
                .unwrap()
                .client_op(&op.line, &guard)?;
        }

        // 3. One real-socket exchange per ordered pair. Every fault
        // decision is drawn on this thread before the sockets move, so
        // the scripted behaviour is deterministic in the seed.
        let mut delivered = 0usize;
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let blocked = s.plan.blocked(round, i, j);
                let drop_roll = rng.gen_pct(s.plan.drop_pct);
                let resp_cut = rng.next_u64();
                let init_cut = rng.next_u64();
                let resp_faults = ExchangeFaults {
                    kill_after_handshake: blocked,
                    kill_before_reply: !blocked && drop_roll,
                    armed_crashes: pending(
                        &crash_fired,
                        round,
                        j,
                        &[CrashStep::DigestRequest, CrashStep::OpsPush],
                    ),
                    cut_at: resp_cut,
                };
                let init_faults = ExchangeFaults {
                    kill_after_handshake: false,
                    kill_before_reply: false,
                    armed_crashes: pending(
                        &crash_fired,
                        round,
                        i,
                        &[CrashStep::DigestReply, CrashStep::OpsPush],
                    ),
                    cut_at: init_cut,
                };
                let Ok(stream) = connect(&addrs[j].to_string(), RUNNER_TIMEOUT) else {
                    report.dropped += 1;
                    continue;
                };
                let (resp_out, init_out) = std::thread::scope(|scope| {
                    let responder = scope.spawn(|| {
                        let (accepted, _) = listeners[j].accept().map_err(|e| {
                            io_err(&format!("accept at node {j}"), &e)
                        })?;
                        respond_exchange(
                            accepted,
                            &hellos[j],
                            &nodes[j],
                            &resp_faults,
                            RUNNER_TIMEOUT,
                            &guard,
                            &tracer,
                        )
                    });
                    let init_out = initiate_exchange(
                        stream,
                        &hellos[i],
                        &nodes[i],
                        &init_faults,
                        RUNNER_TIMEOUT,
                        &guard,
                        &tracer,
                    );
                    (responder.join().expect("responder thread"), init_out)
                });
                for (side, out) in [(j, resp_out), (i, init_out)] {
                    match out {
                        Ok(o) => {
                            report.ops_shipped += o.shipped;
                            report.messages_sent += o.frames_sent;
                            delivered += o.frames_sent;
                            if o.killed {
                                report.dropped += 1;
                            }
                            if let Some(step) = o.crashed {
                                mark_fired(&mut crash_fired, round, side, step);
                                report.crashes += 1;
                                nodes[side].lock().unwrap().reopen(&guard)?;
                                tracer.emit_with(|| TraceEvent::SyncReplicaCrashed {
                                    replica: side,
                                    step: Arc::from(step.name()),
                                });
                            }
                        }
                        Err(WireError::Exec(e)) => return Err(e),
                        Err(_) => report.dropped += 1,
                    }
                }
            }
        }

        // 4. Round trace + convergence check, mirroring the simulator.
        let digests: Vec<JournalDigest> = nodes
            .iter()
            .map(|m| m.lock().unwrap().digest())
            .collect();
        let in_sync = digests.iter().skip(1).all(|d| *d == digests[0]);
        let rendered: Vec<String> = digests
            .iter()
            .enumerate()
            .map(|(k, d)| format!("r{k}={}", d.render()))
            .collect();
        report.trace.push(format!(
            "round {round}: {} in-flight=0 {}",
            rendered.join(" "),
            if in_sync { "in-sync" } else { "syncing" }
        ));
        tracer.emit_with(|| TraceEvent::SyncRoundCompleted {
            round,
            messages: delivered,
            in_sync,
        });
        if let Some((rounds, round_us)) = &round_metrics {
            rounds.inc();
            round_us.observe_duration(t0.elapsed());
        }
        if round >= quiet_after && in_sync {
            let first = nodes[0].lock().unwrap();
            let lines = first.state_lines();
            let verdict = first.is_consistent();
            drop(first);
            let mut matched = true;
            for (k, node) in nodes.iter().enumerate().skip(1) {
                let r = node.lock().unwrap();
                if r.state_lines() != lines || r.is_consistent() != verdict {
                    report.diverged = Some(format!(
                        "digests equal but replica {k} state differs from replica 0"
                    ));
                    matched = false;
                    break;
                }
            }
            if matched {
                report.converged = true;
            }
            break;
        }
    }

    {
        let sample = nodes[0].lock().unwrap();
        report.consistent = sample.is_consistent();
        report.state_lines = sample.state_lines();
    }
    if report.diverged.is_none() {
        report.diverged = nodes.iter().enumerate().find_map(|(k, m)| {
            m.lock()
                .unwrap()
                .diverged()
                .map(|d| format!("replica {k}: {d}"))
        });
    }
    if report.converged {
        tracer.emit_with(|| TraceEvent::SyncConverged {
            rounds: report.rounds,
            ops_shipped: report.ops_shipped,
        });
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{CrashPoint, FaultPlan, Partition, SyncPolicy};
    use crate::sim::ScriptedOp;
    use idr_relation::parse::parse_scheme;

    fn db() -> DatabaseScheme {
        parse_scheme("universe: A B C\nscheme R1: A B keys A\nscheme R2: B C keys B\n").unwrap()
    }

    #[test]
    fn payloads_round_trip() {
        let msgs = [
            WireMsg::Hello(Hello::new(1, 3, &db())),
            WireMsg::Msg(Message::Digest {
                digest: JournalDigest {
                    origins: vec![
                        OriginDigest { len: 3, chain: 0x9f2a_11c0 },
                        OriginDigest::EMPTY,
                    ],
                },
                want_reply: true,
            }),
            WireMsg::Msg(Message::OpsPush {
                origin: 2,
                from: 7,
                base_chain: 0xdead_beef,
                frame: proto::encode_frame(["insert R1: A=a B=b", "delete R1: A=a B=b"]),
            }),
        ];
        for msg in &msgs {
            let payload = msg.encode_payload();
            let decoded = WireMsg::decode_payload(&payload).unwrap();
            assert_eq!(
                msg.encode_payload(),
                decoded.encode_payload(),
                "round trip must be stable"
            );
        }
    }

    #[test]
    fn frame_header_matches_wal_record_layout() {
        let msg = WireMsg::Hello(Hello::new(0, 2, &db()));
        let frame = msg.encode_frame();
        let payload = msg.encode_payload();
        assert_eq!(WIRE_HEADER_LEN, idr_store::wal::RECORD_HEADER_LEN);
        assert_eq!(
            u32::from_le_bytes(frame[..4].try_into().unwrap()) as usize,
            payload.len()
        );
        assert_eq!(
            u32::from_le_bytes(frame[4..8].try_into().unwrap()),
            crc32(&payload)
        );
        assert_eq!(&frame[8..], &payload[..]);
    }

    #[test]
    fn corrupt_frames_are_rejected() {
        assert!(matches!(
            WireMsg::decode_payload(b"bogus kind\n"),
            Err(WireError::Frame { .. })
        ));
        assert!(matches!(
            WireMsg::decode_payload(b"no newline"),
            Err(WireError::Frame { .. })
        ));
    }

    #[test]
    fn handshake_rejects_mismatched_scheme() {
        let db_a = db();
        let db_b =
            parse_scheme("universe: A B\nscheme R1: A B keys A\n").unwrap();
        assert_ne!(scheme_digest(&db_a), scheme_digest(&db_b));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut conn = FramedConn::new(stream, Duration::from_secs(5)).unwrap();
            handshake(&mut conn, &Hello::new(1, 2, &db_b))
        });
        let stream = connect(&addr.to_string(), Duration::from_secs(5)).unwrap();
        let mut conn = FramedConn::new(stream, Duration::from_secs(5)).unwrap();
        let client = handshake(&mut conn, &Hello::new(0, 2, &db_a));
        let server = server.join().unwrap();
        for side in [client, server] {
            match side {
                Err(WireError::Handshake { detail }) => {
                    assert!(detail.contains("scheme digest mismatch"), "{detail}")
                }
                other => panic!("expected handshake rejection, got {other:?}"),
            }
        }
    }

    #[test]
    fn two_nodes_converge_over_loopback() {
        let s = Scenario {
            db: db(),
            replicas: 2,
            seed: 9,
            max_rounds: 16,
            policy: SyncPolicy::default(),
            plan: FaultPlan::clean(),
            transport: crate::scenario::Transport::Wire,
            ops: vec![
                ScriptedOp {
                    round: 0,
                    replica: 0,
                    line: "insert R1: A=a B=b".to_string(),
                },
                ScriptedOp {
                    round: 0,
                    replica: 1,
                    line: "insert R2: B=b C=c".to_string(),
                },
                ScriptedOp {
                    round: 1,
                    replica: 1,
                    line: "insert R2: B=b C=zzz".to_string(),
                },
            ],
        };
        let report = run_wire_scenario(&s, TraceHandle::none(), None).unwrap();
        assert!(report.converged, "{:?}", report.trace);
        assert!(report.diverged.is_none());
        assert_eq!(report.state_lines.len(), 2);
        assert!(report.ops_shipped >= 3);
    }

    #[test]
    fn partition_crash_and_drop_still_converge_on_the_wire() {
        let plan = FaultPlan {
            drop_pct: 20,
            dup_pct: 0,
            delay_pct: 0,
            max_delay: 0,
            partitions: vec![Partition {
                from_round: 0,
                to_round: 3,
                groups: vec![vec![0], vec![1, 2]],
            }],
            crashes: vec![CrashPoint {
                round: 1,
                replica: 1,
                step: CrashStep::OpsPush,
            }],
        };
        let ops = (0..5)
            .map(|k| ScriptedOp {
                round: k % 2,
                replica: k % 3,
                line: format!("insert R1: A=a{k} B=b{k}"),
            })
            .collect();
        let s = Scenario {
            db: db(),
            replicas: 3,
            seed: 42,
            max_rounds: 48,
            policy: SyncPolicy::default(),
            plan,
            ops,
            transport: crate::scenario::Transport::Wire,
        };
        let report = run_wire_scenario(&s, TraceHandle::none(), None).unwrap();
        assert!(report.converged, "{:?}", report.trace);
        assert!(report.diverged.is_none());
        assert_eq!(report.state_lines.len(), 5);
        assert!(report.dropped > 0, "partition must kill connections");
    }
}
