//! A replica: per-origin journals plus a state materialised through the
//! guarded engine.
//!
//! # Convergence model
//!
//! Op order matters here: an insert's verdict depends on the state it
//! meets (a key-violating insert is *rejected*, and replay re-earns
//! that rejection), so two replicas applying the same op **set** in
//! different orders could disagree. Replication therefore fixes a
//! **canonical total order** over ops — sort by `(seq, origin)`, where
//! `seq` is the op's index in its origin journal — and every replica
//! materialises its state as the canonical-order replay of all ops it
//! has. Two replicas with equal journals are then byte-identical in
//! rendered state, verdict, and query answers, which is exactly what
//! the convergence oracle asserts against a never-partitioned baseline.
//!
//! Receiving ops can splice *into* the canonical order (a peer's ops
//! with low `seq` sort before our own later ops), so a replica applies
//! incrementally only when the new order extends what it already
//! applied, and otherwise rebuilds from empty through the normal
//! guarded [`Session`](idr_core::Session) path — verdicts are
//! re-earned, never trusted, the same discipline crash recovery uses.
//!
//! A crash wipes the materialised state but not the journals (the
//! durable log); [`Replica::crash`] rebuilds exactly as a restarted
//! process would.

use std::path::{Path, PathBuf};

use idr_core::{Engine, ReplayError};
use idr_relation::exec::{ExecError, FaultKind, Guard};
use idr_relation::parse::render_tuple_line;
use idr_relation::{AttrSet, DatabaseScheme, DatabaseState, SymbolTable};

use crate::digest::{DigestStatus, JournalDigest};
use crate::journal::{AttachError, Journal};
use crate::proto::{self, Message};

/// An op's position in the canonical total order: `(seq, origin)`,
/// compared lexicographically.
pub type OpId = (u64, usize);

/// What [`Replica::receive`] wants sent back, plus bookkeeping for the
/// round trace.
#[derive(Debug, Default)]
pub struct Outgoing {
    /// Messages to send, in order, as `(destination, message)`.
    pub messages: Vec<(usize, Message)>,
    /// Ops newly appended to journals by this receive.
    pub appended: u64,
    /// Per-origin digest statuses computed while classifying a digest
    /// message, as `(origin, status)` — empty for ops pushes.
    pub statuses: Vec<(usize, DigestStatus)>,
}

/// One replica of the group.
#[derive(Debug)]
pub struct Replica {
    id: usize,
    engine: Engine,
    symbols: SymbolTable,
    state: DatabaseState,
    consistent: bool,
    journals: Vec<Journal>,
    applied: Vec<OpId>,
    diverged: Option<String>,
    rebuilds: u64,
    /// When durable: the directory holding the per-origin journal
    /// segments, plus whether appends fsync.
    durable: Option<(PathBuf, bool)>,
}

impl Replica {
    /// A fresh in-memory replica `id` in a group of `n`, over `db`.
    pub fn new(id: usize, n: usize, db: &DatabaseScheme) -> Replica {
        Replica {
            id,
            engine: Engine::new(db.clone()),
            symbols: SymbolTable::new(),
            state: DatabaseState::empty(db),
            consistent: true,
            journals: (0..n).map(|_| Journal::new()).collect(),
            applied: Vec::new(),
            diverged: None,
            rebuilds: 0,
            durable: None,
        }
    }

    /// Opens a durable replica whose per-origin journals are backed by
    /// WAL-framed segments `origin-K.log` under `dir` (created if
    /// missing). Recovery re-earns the materialised state by
    /// canonical-order replay of the recovered journals — the same
    /// discipline [`Replica::crash`] exercises in memory. `sync_writes`
    /// selects whether appends fsync before acknowledging.
    pub fn open_durable(
        id: usize,
        n: usize,
        db: &DatabaseScheme,
        dir: &Path,
        sync_writes: bool,
        guard: &Guard,
    ) -> Result<Replica, ExecError> {
        let mut r = Replica::new(id, n, db);
        r.durable = Some((dir.to_path_buf(), sync_writes));
        r.load_journals(guard)?;
        Ok(r)
    }

    /// Reloads every journal from the durable directory and rebuilds
    /// the state: restart-from-disk semantics, the wire runner's
    /// process-kill crash. In-memory replicas fall back to
    /// [`Replica::crash`] (journals survive, state is rebuilt).
    pub fn reopen(&mut self, guard: &Guard) -> Result<(), ExecError> {
        if self.durable.is_some() {
            self.load_journals(guard)
        } else {
            self.crash(guard)
        }
    }

    /// (Re)opens the per-origin journal segments and rebuilds the
    /// materialised state from them.
    fn load_journals(&mut self, guard: &Guard) -> Result<(), ExecError> {
        let (dir, sync_writes) = self
            .durable
            .clone()
            .expect("load_journals requires a durable replica");
        let mut journals = Vec::with_capacity(self.journals.len());
        for k in 0..self.journals.len() {
            let path = dir.join(format!("origin-{k}.log"));
            let (j, _torn) = Journal::open_durable(&path, sync_writes)?;
            journals.push(j);
        }
        self.journals = journals;
        self.applied.clear();
        self.state = DatabaseState::empty(self.engine.scheme());
        self.consistent = true;
        self.refresh(guard)
    }

    /// This replica's id (also its origin id).
    pub fn id(&self) -> usize {
        self.id
    }

    /// Sticky divergence detail, if any chain contradiction or
    /// malformed shipped op has been observed.
    pub fn diverged(&self) -> Option<&str> {
        self.diverged.as_deref()
    }

    /// Full rebuilds performed (vs incremental suffix applications).
    pub fn rebuilds(&self) -> u64 {
        self.rebuilds
    }

    /// The replica's current digest vector.
    pub fn digest(&self) -> JournalDigest {
        JournalDigest {
            origins: self.journals.iter().map(Journal::digest).collect(),
        }
    }

    /// Total ops across all journals this replica holds.
    pub fn ops_held(&self) -> u64 {
        self.journals.iter().map(Journal::len).sum()
    }

    /// Applies one client op (`insert R1: A=a B=b` / `delete …`) at
    /// this replica: appends to its own origin journal, then refreshes
    /// the state. The local application is **provisional** — the op's
    /// final verdict is whatever canonical-order replay decides once
    /// all journals converge.
    pub fn client_op(&mut self, line: &str, guard: &Guard) -> Result<(), ExecError> {
        self.journals[self.id].append(line.to_string())?;
        self.refresh(guard)
    }

    /// Oracle hook: appends an op directly to an arbitrary origin's
    /// journal, as if replication had already delivered it. The
    /// convergence oracle uses this to build its never-partitioned
    /// baseline — one replica holding every op at its true origin, so
    /// canonical-order replay yields the state the group must converge
    /// to.
    pub fn adopt_op(&mut self, origin: usize, line: &str, guard: &Guard) -> Result<(), ExecError> {
        self.journals[origin].append(line.to_string())?;
        self.refresh(guard)
    }

    /// Handles one incoming protocol message, returning what to send
    /// back. Digest handling pushes ranges for every origin we are
    /// ahead on and (for requests) replies with our own digest; ops
    /// pushes attach, then refresh the state if anything was new.
    pub fn receive(
        &mut self,
        from: usize,
        msg: &Message,
        guard: &Guard,
    ) -> Result<Outgoing, ExecError> {
        let mut out = Outgoing::default();
        match msg {
            Message::Digest { digest, want_reply } => {
                for (origin, theirs) in digest.origins.iter().enumerate() {
                    if origin >= self.journals.len() {
                        self.mark_diverged(format!(
                            "peer {from} digests unknown origin {origin}"
                        ));
                        continue;
                    }
                    let status = self.journals[origin].classify(*theirs);
                    out.statuses.push((origin, status));
                    match status {
                        DigestStatus::Ahead => {
                            let j = &self.journals[origin];
                            out.messages.push((
                                from,
                                Message::OpsPush {
                                    origin,
                                    from: theirs.len,
                                    base_chain: theirs.chain,
                                    frame: proto::encode_frame(
                                        j.ops_from(theirs.len).iter().map(String::as_str),
                                    ),
                                },
                            ));
                        }
                        DigestStatus::Diverged => {
                            self.mark_diverged(format!(
                                "origin {origin}: peer {from} digest contradicts ours"
                            ));
                        }
                        DigestStatus::InSync | DigestStatus::Behind => {}
                    }
                }
                if *want_reply {
                    out.messages.push((
                        from,
                        Message::Digest {
                            digest: self.digest(),
                            want_reply: false,
                        },
                    ));
                }
            }
            Message::OpsPush {
                origin,
                from: range_from,
                base_chain,
                frame,
            } => {
                out.appended = self.attach_frame(*origin, *range_from, *base_chain, frame)?;
                if out.appended > 0 {
                    self.refresh(guard)?;
                }
            }
        }
        Ok(out)
    }

    /// Attaches a shipped frame to the `origin` journal, returning how
    /// many ops were appended. Gaps are tolerated (a later round
    /// re-ships); chain contradictions and undecodable frames mark the
    /// replica diverged; a durable-backing write failure is a storage
    /// fault and propagates as an error.
    fn attach_frame(
        &mut self,
        origin: usize,
        from: u64,
        base_chain: u32,
        frame: &[u8],
    ) -> Result<u64, ExecError> {
        if origin >= self.journals.len() {
            self.mark_diverged(format!("ops push for unknown origin {origin}"));
            return Ok(0);
        }
        let records = match proto::decode_frame(frame) {
            Ok((records, _torn)) => records,
            Err(detail) => {
                self.mark_diverged(format!("origin {origin}: bad frame: {detail}"));
                return Ok(0);
            }
        };
        match self.journals[origin].attach(from, base_chain, &records) {
            Ok(n) => Ok(n),
            Err(AttachError::Gap { .. }) => Ok(0),
            Err(e @ AttachError::Diverged { .. }) => {
                self.mark_diverged(format!("origin {origin}: {e}"));
                Ok(0)
            }
            Err(AttachError::Storage { detail }) => Err(ExecError::Faulted {
                kind: FaultKind::Permanent,
                operation: format!("journal attach (origin {origin}): {detail}"),
                attempts: 1,
            }),
        }
    }

    /// Simulates a crash-and-restart: the materialised state is lost,
    /// the journals (the durable log) survive, and the state is rebuilt
    /// by canonical-order replay — re-earning every verdict, exactly as
    /// crash recovery does.
    pub fn crash(&mut self, guard: &Guard) -> Result<(), ExecError> {
        self.applied.clear();
        self.state = DatabaseState::empty(self.engine.scheme());
        self.consistent = true;
        self.refresh(guard)
    }

    /// The canonical total order over every op this replica holds.
    fn canonical_order(&self) -> Vec<OpId> {
        let mut order: Vec<OpId> = Vec::with_capacity(self.ops_held() as usize);
        for (origin, j) in self.journals.iter().enumerate() {
            order.extend((0..j.len()).map(|seq| (seq, origin)));
        }
        order.sort_unstable();
        order
    }

    /// Re-materialises the state to match the journals: incremental
    /// suffix application when the new canonical order extends what is
    /// already applied, full rebuild from empty otherwise.
    fn refresh(&mut self, guard: &Guard) -> Result<(), ExecError> {
        let order = self.canonical_order();
        let extends = order.len() >= self.applied.len() && order[..self.applied.len()] == self.applied[..];
        let (base, todo_from) = if extends {
            (self.state.clone(), self.applied.len())
        } else {
            self.rebuilds += 1;
            (DatabaseState::empty(self.engine.scheme()), 0)
        };
        let (state, consistent) = {
            let Replica {
                engine,
                symbols,
                journals,
                diverged,
                ..
            } = &mut *self;
            let hub = engine.hub(&base, guard)?;
            let writer = hub.write_handle();
            for &(seq, origin) in &order[todo_from..] {
                let line = journals[origin].op(seq).to_string();
                match writer.replay_op(&line, symbols, guard) {
                    Ok(_) => {}
                    Err(ReplayError::Malformed { line, detail }) => {
                        // A malformed journal entry means the peers
                        // disagree on the op format — divergence, not a
                        // crash.
                        if diverged.is_none() {
                            *diverged =
                                Some(format!("malformed journal op {line:?}: {detail}"));
                        }
                    }
                    Err(ReplayError::Exec(e)) => return Err(e),
                }
            }
            let view = hub.read_view();
            (view.state().clone(), view.is_consistent())
        };
        self.state = state;
        self.consistent = consistent;
        self.applied = order;
        Ok(())
    }

    fn mark_diverged(&mut self, detail: String) {
        if self.diverged.is_none() {
            self.diverged = Some(detail);
        }
    }

    /// The replica's consistency verdict, re-earned by replay.
    pub fn is_consistent(&self) -> bool {
        self.consistent
    }

    /// The materialised state, rendered as sorted fixture lines — the
    /// cross-replica fingerprint (each replica interns values in its
    /// own order, so raw `Value` comparison would be meaningless).
    pub fn state_lines(&self) -> Vec<String> {
        let db = self.engine.scheme();
        let mut lines: Vec<String> = self
            .state
            .iter_all()
            .map(|(i, t)| render_tuple_line(db, &self.symbols, i, t))
            .collect();
        lines.sort();
        lines
    }

    /// Answers a total-projection probe over the current state,
    /// rendered as sorted `attr=value` lines (`None` when the state is
    /// inconsistent and the query has no defined answer).
    pub fn answer(&self, probe: AttrSet, guard: &Guard) -> Result<Option<Vec<String>>, ExecError> {
        let hub = self.engine.hub(&self.state, guard)?;
        let Some(tuples) = hub.read_view().total_projection(probe, guard)? else {
            return Ok(None);
        };
        let db = self.engine.scheme();
        let u = db.universe();
        let mut lines: Vec<String> = tuples
            .iter()
            .map(|t| {
                t.iter()
                    .map(|(a, v)| format!("{}={}", u.name(a), self.symbols.resolve(v)))
                    .collect::<Vec<_>>()
                    .join(" ")
            })
            .collect();
        lines.sort();
        lines.dedup();
        Ok(Some(lines))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idr_relation::parse::parse_scheme;

    fn db() -> DatabaseScheme {
        parse_scheme("universe: A B C\nscheme R1: A B keys A\nscheme R2: B C keys B\n").unwrap()
    }

    /// Runs one full anti-entropy exchange a→b (request, reply, pushes)
    /// with a perfect network.
    fn exchange(a: &mut Replica, b: &mut Replica, guard: &Guard) {
        let req = Message::Digest {
            digest: a.digest(),
            want_reply: true,
        };
        let out_b = b.receive(a.id(), &req, guard).unwrap();
        for (dst, msg) in out_b.messages {
            assert_eq!(dst, a.id());
            let out_a = a.receive(b.id(), &msg, guard).unwrap();
            for (dst2, msg2) in out_a.messages {
                assert_eq!(dst2, b.id());
                let out = b.receive(a.id(), &msg2, guard).unwrap();
                assert!(out.messages.is_empty());
            }
        }
    }

    #[test]
    fn two_replicas_converge_bytewise_after_exchange() {
        let db = db();
        let guard = Guard::unlimited();
        let mut a = Replica::new(0, 2, &db);
        let mut b = Replica::new(1, 2, &db);
        a.client_op("insert R1: A=a B=b", &guard).unwrap();
        b.client_op("insert R2: B=b C=c", &guard).unwrap();
        // A key-violating insert at b: journalled, rejected on replay.
        b.client_op("insert R2: B=b C=zzz", &guard).unwrap();
        assert_ne!(a.digest(), b.digest());

        exchange(&mut a, &mut b, &guard);
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.state_lines(), b.state_lines());
        assert_eq!(a.is_consistent(), b.is_consistent());
        assert!(a.diverged().is_none() && b.diverged().is_none());
        // The rejected insert converged to *rejected* on both sides.
        assert_eq!(a.state_lines().len(), 2);
    }

    #[test]
    fn crash_rebuilds_identical_state_from_journals() {
        let db = db();
        let guard = Guard::unlimited();
        let mut a = Replica::new(0, 2, &db);
        let mut b = Replica::new(1, 2, &db);
        for i in 0..4 {
            a.client_op(&format!("insert R1: A=a{i} B=b{i}"), &guard).unwrap();
            b.client_op(&format!("insert R2: B=b{i} C=c{i}"), &guard).unwrap();
        }
        exchange(&mut a, &mut b, &guard);
        let before = a.state_lines();
        a.crash(&guard).unwrap();
        assert_eq!(a.state_lines(), before);
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn interleaved_origins_rebuild_to_canonical_order() {
        let db = db();
        let guard = Guard::unlimited();
        let mut a = Replica::new(0, 2, &db);
        let mut b = Replica::new(1, 2, &db);
        // Conflicting writes to the same key at both origins: canonical
        // order (seq, origin) decides the winner identically everywhere.
        a.client_op("insert R1: A=k B=from_a", &guard).unwrap();
        b.client_op("insert R1: A=k B=from_b", &guard).unwrap();
        exchange(&mut a, &mut b, &guard);
        assert_eq!(a.state_lines(), b.state_lines());
        // (0, origin 0) sorts first, so origin 0's tuple won and the
        // other re-rejected on both replicas.
        assert_eq!(a.state_lines(), vec!["R1: A=k B=from_a".to_string()]);
        assert!(b.rebuilds() >= 1, "b spliced an earlier op and must rebuild");
    }

    #[test]
    fn durable_replica_recovers_state_and_digest_across_reopen() {
        let db = db();
        let guard = Guard::unlimited();
        let dir = idr_store::TempDir::new("replica-durable");
        let mut mem = Replica::new(1, 2, &db);
        mem.client_op("insert R2: B=b C=c", &guard).unwrap();

        let (digest, lines) = {
            let mut a = Replica::open_durable(0, 2, &db, dir.path(), false, &guard).unwrap();
            a.client_op("insert R1: A=a B=b", &guard).unwrap();
            // Receive a push from the in-memory peer so a non-own
            // origin journal also hits disk.
            let req = Message::Digest {
                digest: a.digest(),
                want_reply: true,
            };
            let out = mem.receive(0, &req, &guard).unwrap();
            for (_, msg) in out.messages {
                a.receive(1, &msg, &guard).unwrap();
            }
            assert_eq!(a.ops_held(), 2);
            (a.digest(), a.state_lines())
        };
        // A brand-new process over the same dir recovers everything.
        let b = Replica::open_durable(0, 2, &db, dir.path(), false, &guard).unwrap();
        assert_eq!(b.digest(), digest);
        assert_eq!(b.state_lines(), lines);
        assert!(b.is_consistent());
    }
}
