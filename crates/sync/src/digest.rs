//! Chained digest vectors — the summaries replicas exchange instead of
//! their logs.
//!
//! A replica summarises each origin journal it knows as an
//! [`OriginDigest`]: the journal's length and its rolling chained CRC32
//! (see [`idr_store::wal::fold_chain`]). Because every chain value
//! commits to the entire payload prefix, two equal `(len, chain)` pairs
//! imply — modulo CRC collisions — equal op histories, and a peer can
//! verify that a shipped range *extends* what it has with a single
//! `u32` compare against the range's declared base chain.

use idr_store::wal::fold_chain;

/// One origin journal summarised: how many ops it holds and the chain
/// value after folding all of them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OriginDigest {
    /// Ops in the journal.
    pub len: u64,
    /// Rolling chained CRC32 after the last op (`0` when empty).
    pub chain: u32,
}

impl OriginDigest {
    /// The digest of an empty journal.
    pub const EMPTY: OriginDigest = OriginDigest { len: 0, chain: 0 };
}

/// A replica's full summary: one [`OriginDigest`] per origin, indexed
/// by origin id. This is the entire payload of an anti-entropy digest
/// message — O(origins), independent of journal length.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JournalDigest {
    /// Per-origin digests, indexed by origin id.
    pub origins: Vec<OriginDigest>,
}

impl JournalDigest {
    /// Renders the digest compactly for round traces:
    /// `[3/9f2a11c0 0/00000000 1/5b7..]` (len/chain per origin).
    pub fn render(&self) -> String {
        let mut out = String::from("[");
        for (i, o) in self.origins.iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            out.push_str(&format!("{}/{:08x}", o.len, o.chain));
        }
        out.push(']');
        out
    }
}

/// How one origin journal relates to a peer's digest of the same
/// origin. Computed by [`Journal::classify`](crate::journal::Journal::classify);
/// per origin the relation is always exactly one of these four.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DigestStatus {
    /// Same length, same chain: the journals are identical.
    InSync,
    /// We hold a strict superset: the peer's `(len, chain)` matches our
    /// chain at its length, and we have more. We can ship the suffix.
    Ahead,
    /// The peer holds more than we do. Whether its history extends ours
    /// is verified when the shipped range's base chain is attached.
    Behind,
    /// The chains contradict at a common length. Origin journals are
    /// single-writer and append-only, so this means corruption or a
    /// protocol bug — it is surfaced, never reconciled silently.
    Diverged,
}

impl DigestStatus {
    /// Short label for traces (`in-sync`, `ahead`, `behind`,
    /// `diverged`).
    pub fn label(self) -> &'static str {
        match self {
            DigestStatus::InSync => "in-sync",
            DigestStatus::Ahead => "ahead",
            DigestStatus::Behind => "behind",
            DigestStatus::Diverged => "diverged",
        }
    }
}

/// Folds `payloads` into a digest starting from [`OriginDigest::EMPTY`]
/// — the digest a journal holding exactly those ops would report.
pub fn digest_of<'a, I: IntoIterator<Item = &'a str>>(payloads: I) -> OriginDigest {
    let mut d = OriginDigest::EMPTY;
    for p in payloads {
        d.chain = fold_chain(d.chain, p);
        d.len += 1;
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_commits_to_order_and_content() {
        let a = digest_of(["insert R1: A=a", "delete R1: A=a"]);
        let b = digest_of(["delete R1: A=a", "insert R1: A=a"]);
        let c = digest_of(["insert R1: A=a", "delete R1: A=a"]);
        assert_eq!(a, c);
        assert_eq!(a.len, b.len);
        assert_ne!(a.chain, b.chain, "order must change the chain");
    }

    #[test]
    fn render_is_compact() {
        let d = JournalDigest {
            origins: vec![OriginDigest::EMPTY, digest_of(["insert R1: A=a"])],
        };
        let s = d.render();
        assert!(s.starts_with("[0/00000000 1/"), "{s}");
    }
}
