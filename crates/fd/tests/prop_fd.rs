//! Property-based tests for FD theory: closure is a closure operator, the
//! indexed and naive implementations agree, minimal covers are equivalent
//! covers, and candidate keys are exactly the minimal superkeys.

use idr_fd::{cover::minimal_cover, keys::candidate_keys, naive::closure_naive, Fd, FdSet};
use idr_relation::{AttrSet, Attribute};
use proptest::prelude::*;

const N: usize = 8;

fn arb_attrset() -> impl Strategy<Value = AttrSet> {
    prop::collection::vec(0..N, 0..N)
        .prop_map(|ixs| AttrSet::from_iter(ixs.into_iter().map(Attribute::from_index)))
}

fn arb_fdset() -> impl Strategy<Value = FdSet> {
    prop::collection::vec((arb_attrset(), arb_attrset()), 0..10).prop_map(|pairs| {
        FdSet::from_fds(
            pairs
                .into_iter()
                .filter(|(l, _)| !l.is_empty())
                .map(|(l, r)| Fd::new(l, r)),
        )
    })
}

proptest! {
    #[test]
    fn closure_is_extensive(f in arb_fdset(), x in arb_attrset()) {
        prop_assert!(x.is_subset(f.closure(x)));
    }

    #[test]
    fn closure_is_idempotent(f in arb_fdset(), x in arb_attrset()) {
        let c = f.closure(x);
        prop_assert_eq!(f.closure(c), c);
    }

    #[test]
    fn closure_is_monotone(f in arb_fdset(), x in arb_attrset(), y in arb_attrset()) {
        let small = x & y;
        prop_assert!(f.closure(small).is_subset(f.closure(x)));
    }

    #[test]
    fn indexed_closure_matches_naive(f in arb_fdset(), x in arb_attrset()) {
        prop_assert_eq!(f.closure(x), closure_naive(&f, x));
    }

    #[test]
    fn closure_satisfies_every_fd(f in arb_fdset(), x in arb_attrset()) {
        let c = f.closure(x);
        for fd in f.fds() {
            if fd.lhs.is_subset(c) {
                prop_assert!(fd.rhs.is_subset(c));
            }
        }
    }

    #[test]
    fn minimal_cover_is_equivalent(f in arb_fdset()) {
        let m = minimal_cover(&f);
        prop_assert!(m.equivalent(&f));
        for fd in m.fds() {
            prop_assert_eq!(fd.rhs.len(), 1);
            prop_assert!(!fd.is_trivial());
        }
    }

    #[test]
    fn minimal_cover_has_no_redundant_fd(f in arb_fdset()) {
        let m = minimal_cover(&f);
        for (i, &fd) in m.fds().iter().enumerate() {
            let rest = FdSet::from_fds(
                m.fds().iter().enumerate().filter(|&(j, _)| j != i).map(|(_, &g)| g),
            );
            prop_assert!(!rest.implies(fd), "fd {i} is redundant");
        }
    }

    #[test]
    fn candidate_keys_are_exactly_minimal_superkeys(f in arb_fdset()) {
        // Work inside a fixed 6-attribute scheme so brute force stays small.
        let r = AttrSet::from_iter((0..6).map(Attribute::from_index));
        let keys = candidate_keys(&f, r);
        // Brute-force: enumerate all subsets, find minimal superkeys.
        let mut brute: Vec<AttrSet> = r
            .subsets()
            .filter(|&x| r.is_subset(f.closure(x)))
            .collect();
        let minimal: Vec<AttrSet> = brute
            .iter()
            .copied()
            .filter(|&x| {
                !brute
                    .iter()
                    .any(|&y| y.is_proper_subset(x) && r.is_subset(f.closure(y)))
            })
            .collect();
        brute = minimal;
        let mut brute_sorted = brute;
        brute_sorted.sort();
        prop_assert_eq!(keys, brute_sorted);
    }

    #[test]
    fn union_implies_both_parts(f in arb_fdset(), g in arb_fdset()) {
        let u = f.union(&g);
        prop_assert!(u.implies_all(&f));
        prop_assert!(u.implies_all(&g));
    }
}
