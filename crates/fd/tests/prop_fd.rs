//! Randomized property tests for FD theory: closure is a closure operator,
//! the indexed and naive implementations agree, minimal covers are
//! equivalent covers, and candidate keys are exactly the minimal
//! superkeys. Seeded [`SplitMix64`] loops — deterministic, offline.

use idr_fd::{cover::minimal_cover, keys::candidate_keys, naive::closure_naive, Fd, FdSet};
use idr_relation::rng::SplitMix64;
use idr_relation::{AttrSet, Attribute};

const N: usize = 8;
const CASES: usize = 256;

fn rand_attrset(rng: &mut SplitMix64) -> AttrSet {
    let n = rng.gen_range(0, N);
    AttrSet::from_iter((0..n).map(|_| Attribute::from_index(rng.gen_range(0, N))))
}

fn rand_fdset(rng: &mut SplitMix64) -> FdSet {
    let n = rng.gen_range(0, 10);
    FdSet::from_fds(
        (0..n)
            .map(|_| (rand_attrset(rng), rand_attrset(rng)))
            .filter(|(l, _)| !l.is_empty())
            .map(|(l, r)| Fd::new(l, r)),
    )
}

#[test]
fn closure_is_extensive() {
    let mut master = SplitMix64::new(0xF001);
    for case in 0..CASES {
        let mut rng = master.split();
        let f = rand_fdset(&mut rng);
        let x = rand_attrset(&mut rng);
        assert!(x.is_subset(f.closure(x)), "case {case}");
    }
}

#[test]
fn closure_is_idempotent() {
    let mut master = SplitMix64::new(0xF002);
    for case in 0..CASES {
        let mut rng = master.split();
        let f = rand_fdset(&mut rng);
        let c = f.closure(rand_attrset(&mut rng));
        assert_eq!(f.closure(c), c, "case {case}");
    }
}

#[test]
fn closure_is_monotone() {
    let mut master = SplitMix64::new(0xF003);
    for case in 0..CASES {
        let mut rng = master.split();
        let f = rand_fdset(&mut rng);
        let x = rand_attrset(&mut rng);
        let y = rand_attrset(&mut rng);
        let small = x & y;
        assert!(f.closure(small).is_subset(f.closure(x)), "case {case}");
    }
}

#[test]
fn indexed_closure_matches_naive() {
    let mut master = SplitMix64::new(0xF004);
    for case in 0..CASES {
        let mut rng = master.split();
        let f = rand_fdset(&mut rng);
        let x = rand_attrset(&mut rng);
        assert_eq!(f.closure(x), closure_naive(&f, x), "case {case}");
    }
}

#[test]
fn closure_satisfies_every_fd() {
    let mut master = SplitMix64::new(0xF005);
    for case in 0..CASES {
        let mut rng = master.split();
        let f = rand_fdset(&mut rng);
        let c = f.closure(rand_attrset(&mut rng));
        for fd in f.fds() {
            if fd.lhs.is_subset(c) {
                assert!(fd.rhs.is_subset(c), "case {case}");
            }
        }
    }
}

#[test]
fn minimal_cover_is_equivalent() {
    let mut master = SplitMix64::new(0xF006);
    for case in 0..CASES {
        let mut rng = master.split();
        let f = rand_fdset(&mut rng);
        let m = minimal_cover(&f);
        assert!(m.equivalent(&f), "case {case}");
        for fd in m.fds() {
            assert_eq!(fd.rhs.len(), 1, "case {case}");
            assert!(!fd.is_trivial(), "case {case}");
        }
    }
}

#[test]
fn minimal_cover_has_no_redundant_fd() {
    let mut master = SplitMix64::new(0xF007);
    for case in 0..CASES {
        let mut rng = master.split();
        let f = rand_fdset(&mut rng);
        let m = minimal_cover(&f);
        for (i, &fd) in m.fds().iter().enumerate() {
            let rest = FdSet::from_fds(
                m.fds()
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .map(|(_, &g)| g),
            );
            assert!(!rest.implies(fd), "case {case}: fd {i} is redundant");
        }
    }
}

#[test]
fn candidate_keys_are_exactly_minimal_superkeys() {
    let mut master = SplitMix64::new(0xF008);
    for case in 0..CASES {
        let mut rng = master.split();
        let f = rand_fdset(&mut rng);
        // Work inside a fixed 6-attribute scheme so brute force stays small.
        let r = AttrSet::from_iter((0..6).map(Attribute::from_index));
        let keys = candidate_keys(&f, r);
        // Brute-force: enumerate all subsets, find minimal superkeys.
        let brute: Vec<AttrSet> = r
            .subsets()
            .filter(|&x| r.is_subset(f.closure(x)))
            .collect();
        let mut brute_sorted: Vec<AttrSet> = brute
            .iter()
            .copied()
            .filter(|&x| {
                !brute
                    .iter()
                    .any(|&y| y.is_proper_subset(x) && r.is_subset(f.closure(y)))
            })
            .collect();
        brute_sorted.sort();
        assert_eq!(keys, brute_sorted, "case {case}");
    }
}

#[test]
fn union_implies_both_parts() {
    let mut master = SplitMix64::new(0xF009);
    for case in 0..CASES {
        let mut rng = master.split();
        let f = rand_fdset(&mut rng);
        let g = rand_fdset(&mut rng);
        let u = f.union(&g);
        assert!(u.implies_all(&f), "case {case}");
        assert!(u.implies_all(&g), "case {case}");
    }
}
