//! Candidate-key enumeration (Lucchesi–Osborn style).

use std::collections::{HashSet, VecDeque};

use idr_relation::AttrSet;

use crate::fd::FdSet;

/// Enumerates all candidate keys of scheme `r` with respect to `f`.
///
/// Uses the Lucchesi–Osborn strategy: start from one minimised superkey;
/// for each found key `K` and each fd `X→Y`, `X ∪ (K − Y)` is a superkey
/// whose minimisation may be a new key. Output is sorted for determinism.
///
/// The Lucchesi–Osborn successor rule is only complete when every fd is
/// embedded in `r`. When `f` mentions attributes outside `r`, keys of `r`
/// coincide with keys of `r` under the semantic projection `F⁺|r`, so we
/// project first ([`crate::project::project_fds`], exponential in the width
/// of `r` but exact) and then enumerate.
pub fn candidate_keys(f: &FdSet, r: AttrSet) -> Vec<AttrSet> {
    let all_embedded = f.fds().iter().all(|fd| fd.embedded_in(r));
    if !all_embedded {
        let g = crate::project::project_fds(f, r);
        return candidate_keys_embedded(&g, r);
    }
    candidate_keys_embedded(f, r)
}

/// Lucchesi–Osborn enumeration assuming every fd of `f` is embedded in `r`.
fn candidate_keys_embedded(f: &FdSet, r: AttrSet) -> Vec<AttrSet> {
    let minimize = |sk: AttrSet| -> AttrSet {
        let mut key = sk;
        loop {
            let mut shrunk = false;
            for a in key.iter() {
                let mut candidate = key;
                candidate.remove(a);
                if r.is_subset(f.closure(candidate)) {
                    key = candidate;
                    shrunk = true;
                    break;
                }
            }
            if !shrunk {
                return key;
            }
        }
    };

    // `r` itself may fail to be a superkey when `f` mentions attributes
    // outside `r` that `r` cannot reach; keys of `r` are defined by
    // K → R ∈ F⁺, so seed from `r` and check.
    if !r.is_subset(f.closure(r)) {
        return Vec::new();
    }
    let first = minimize(r);
    let mut keys: HashSet<AttrSet> = HashSet::new();
    let mut queue: VecDeque<AttrSet> = VecDeque::new();
    keys.insert(first);
    queue.push_back(first);
    while let Some(k) = queue.pop_front() {
        for fd in f.fds() {
            // Candidate superkey S = (X ∩ r) ∪ (K − Y); only meaningful
            // when X's part inside r plus the rest still reaches r.
            let s = (fd.lhs & r) | (k - fd.rhs);
            if !r.is_subset(f.closure(s)) {
                continue;
            }
            let k2 = minimize(s);
            if keys.insert(k2) {
                queue.push_back(k2);
            }
        }
    }
    let mut out: Vec<AttrSet> = keys.into_iter().collect();
    out.sort();
    out
}

/// Checks that the declared keys of a scheme are exactly its candidate keys
/// with respect to `f` — used to validate fixtures against the paper.
pub fn keys_are_exact(f: &FdSet, r: AttrSet, declared: &[AttrSet]) -> bool {
    let mut declared: Vec<AttrSet> = declared.to_vec();
    declared.sort();
    declared.dedup();
    candidate_keys(f, r) == declared
}

#[cfg(test)]
mod tests {
    use super::*;
    use idr_relation::Universe;

    #[test]
    fn single_key() {
        let u = Universe::of_chars("ABC");
        let f = FdSet::parse(&u, "A->BC");
        assert_eq!(candidate_keys(&f, u.set_of("ABC")), vec![u.set_of("A")]);
    }

    #[test]
    fn multiple_keys_cyclic_fds() {
        let u = Universe::of_chars("ABC");
        // Example 3's fd set restricted to ABC: all singletons are keys.
        let f = FdSet::parse(&u, "A->B, B->A, B->C, C->B, C->A, A->C");
        let keys = candidate_keys(&f, u.set_of("ABC"));
        assert_eq!(
            keys,
            vec![u.set_of("A"), u.set_of("B"), u.set_of("C")]
        );
    }

    #[test]
    fn composite_keys() {
        let u = Universe::of_chars("ABCD");
        // R(ABCD), F = {AB->CD, CD->AB}: keys AB and CD.
        let f = FdSet::parse(&u, "AB->CD, CD->AB");
        let keys = candidate_keys(&f, u.set_of("ABCD"));
        assert_eq!(keys.len(), 2);
        assert!(keys.contains(&u.set_of("AB")));
        assert!(keys.contains(&u.set_of("CD")));
    }

    #[test]
    fn no_fds_means_whole_scheme_is_key() {
        let u = Universe::of_chars("AB");
        let f = FdSet::new();
        assert_eq!(candidate_keys(&f, u.set_of("AB")), vec![u.set_of("AB")]);
    }

    #[test]
    fn keys_are_exact_validates() {
        let u = Universe::of_chars("ABC");
        let f = FdSet::parse(&u, "A->BC, BC->A");
        assert!(keys_are_exact(
            &f,
            u.set_of("ABC"),
            &[u.set_of("A"), u.set_of("BC")]
        ));
        assert!(!keys_are_exact(&f, u.set_of("ABC"), &[u.set_of("A")]));
    }

    #[test]
    fn example6_scheme_r1_keys() {
        // Example 6: R1(ABE) with F = {A→BE, B→AE, E→AB, …}: keys A, B, E.
        let u = Universe::of_chars("ABCDE");
        let f = FdSet::parse(&u, "A->BE, B->AE, E->AB, A->CD, B->CD, E->CD, CD->E");
        let keys = candidate_keys(&f, u.set_of("ABE"));
        assert_eq!(
            keys,
            vec![u.set_of("A"), u.set_of("B"), u.set_of("E")]
        );
    }
}
