//! Semantic projection `F⁺|R` of a dependency set onto a scheme (§2.3).

use idr_relation::exec::{ExecError, Guard};
use idr_relation::AttrSet;

use crate::fd::{Fd, FdSet};

/// Width guard: projection enumerates subsets of the scheme, so refuse
/// schemes wide enough to make that explode. Relation schemes in the
/// dependency-theory literature (and all of the paper's examples) are far
/// narrower.
pub const MAX_PROJECT_WIDTH: usize = 20;

/// Computes a cover of the projection `F⁺|R = {X→A ∈ F⁺ | XA ⊆ R}`.
///
/// For each subset `X ⊆ R` we emit `X → (X⁺ ∩ R)`; the result is a cover of
/// the projection (standard construction). Non-minimal but exact; callers
/// needing small output can post-process with
/// [`crate::cover::minimal_cover`].
///
/// # Panics
///
/// Panics if `r` is wider than [`MAX_PROJECT_WIDTH`] — projection is
/// inherently exponential in scheme width and the guard keeps misuse loud.
pub fn project_fds(f: &FdSet, r: AttrSet) -> FdSet {
    assert!(
        r.len() <= MAX_PROJECT_WIDTH,
        "project_fds: scheme too wide ({} attrs)",
        r.len()
    );
    let mut out = Vec::new();
    for x in r.subsets() {
        if x.is_empty() {
            continue;
        }
        let rhs = (f.closure(x) & r) - x;
        if !rhs.is_empty() {
            out.push(Fd::new(x, rhs));
        }
    }
    FdSet::from_fds(out)
}

/// Budgeted [`project_fds`]: enumerating the `2^|R|` subsets of `R` is
/// charged against the guard's enumeration budget, so an over-wide scheme
/// returns [`ExecError::BudgetExceeded`] instead of panicking. The
/// [`MAX_PROJECT_WIDTH`] assert does not apply here — the enumeration
/// budget (or its default backstop) is the guard.
pub fn project_fds_bounded(
    f: &FdSet,
    r: AttrSet,
    guard: &Guard,
) -> Result<FdSet, ExecError> {
    let mut out = Vec::new();
    // `try_subsets` charges the full 2^|R| enumeration up front: the cost
    // is known before any work happens, and failing early beats failing
    // after minutes of closure computation.
    for x in r.try_subsets(guard)? {
        guard.checkpoint()?;
        if x.is_empty() {
            continue;
        }
        let rhs = (f.closure(x) & r) - x;
        if !rhs.is_empty() {
            out.push(Fd::new(x, rhs));
        }
    }
    Ok(FdSet::from_fds(out))
}

/// Whether `fi` is a cover of `F⁺|Rᵢ` — the hypothesis of Lemma 4.1: if
/// some scheme's embedded dependencies fail to cover the projection, the
/// database scheme cannot be independent.
pub fn covers_projection(fi: &FdSet, f: &FdSet, r: AttrSet) -> bool {
    fi.implies_all(&project_fds(f, r))
}

#[cfg(test)]
mod tests {
    use super::*;
    use idr_relation::Universe;

    #[test]
    fn projection_captures_transitive_fds() {
        let u = Universe::of_chars("ABC");
        let f = FdSet::parse(&u, "A->B, B->C");
        let p = project_fds(&f, u.set_of("AC"));
        // A→C is in F⁺ and embedded in AC.
        assert!(p.implies(Fd::new(u.set_of("A"), u.set_of("C"))));
        // C→A is not.
        assert!(!p.implies(Fd::new(u.set_of("C"), u.set_of("A"))));
    }

    #[test]
    fn projection_onto_full_universe_is_cover() {
        let u = Universe::of_chars("ABC");
        let f = FdSet::parse(&u, "A->B, BC->A");
        let p = project_fds(&f, u.set_of("ABC"));
        assert!(p.equivalent(&f));
    }

    #[test]
    fn projection_onto_disjoint_scheme_is_empty() {
        let u = Universe::of_chars("ABCD");
        let f = FdSet::parse(&u, "A->B");
        let p = project_fds(&f, u.set_of("CD"));
        assert!(p.is_empty());
    }

    #[test]
    fn covers_projection_detects_lost_fds() {
        let u = Universe::of_chars("ABC");
        let f = FdSet::parse(&u, "A->B, B->C");
        // R = AC embeds A→C, which {A→B} does not imply.
        let fi = FdSet::parse(&u, "A->B");
        assert!(!covers_projection(&fi, &f, u.set_of("AC")));
        let fi2 = FdSet::parse(&u, "A->C");
        assert!(covers_projection(&fi2, &f, u.set_of("AC")));
    }

    #[test]
    #[should_panic(expected = "too wide")]
    fn width_guard_fires() {
        let mut u = Universe::new();
        for i in 0..25 {
            u.add(&format!("A{i}")).unwrap();
        }
        let f = FdSet::new();
        let _ = project_fds(&f, u.all());
    }
}
