//! Covers and minimal covers (§2.3).

use idr_relation::AttrSet;

use crate::fd::{Fd, FdSet};

/// Computes a *minimal cover* of `f`: singleton right-hand sides, no
/// extraneous left-hand-side attributes, no redundant dependencies.
///
/// The result is equivalent to the input (`G⁺ = F⁺`); the classic
/// three-phase algorithm is used.
pub fn minimal_cover(f: &FdSet) -> FdSet {
    // Phase 1: split right-hand sides into singletons, dropping trivial
    // parts.
    let mut fds: Vec<Fd> = Vec::new();
    for fd in f.fds() {
        for a in (fd.rhs - fd.lhs).iter() {
            fds.push(Fd::new(fd.lhs, AttrSet::singleton(a)));
        }
    }
    fds.sort();
    fds.dedup();

    // Phase 2: remove extraneous lhs attributes. An attribute B ∈ X is
    // extraneous in X→A when (X−B)⁺ still contains A (wrt the full set).
    let full = FdSet::from_fds(fds.iter().copied());
    let mut reduced: Vec<Fd> = Vec::new();
    for fd in &fds {
        let mut lhs = fd.lhs;
        loop {
            let mut shrunk = false;
            for b in lhs.iter() {
                let mut candidate = lhs;
                candidate.remove(b);
                if fd.rhs.is_subset(full.closure(candidate)) {
                    lhs = candidate;
                    shrunk = true;
                    break;
                }
            }
            if !shrunk {
                break;
            }
        }
        reduced.push(Fd::new(lhs, fd.rhs));
    }
    reduced.sort();
    reduced.dedup();

    // Phase 3: drop redundant fds.
    let mut keep: Vec<bool> = vec![true; reduced.len()];
    for i in 0..reduced.len() {
        keep[i] = false;
        let rest = FdSet::from_fds(
            reduced
                .iter()
                .zip(keep.iter())
                .filter(|&(_, &k)| k)
                .map(|(&fd, _)| fd),
        );
        if !rest.implies(reduced[i]) {
            keep[i] = true;
        }
    }
    FdSet::from_fds(
        reduced
            .iter()
            .zip(keep.iter())
            .filter(|&(_, &k)| k)
            .map(|(&fd, _)| fd),
    )
}

/// Whether `g` is a cover of `f` (`F⁺ = G⁺`).
pub fn is_cover(g: &FdSet, f: &FdSet) -> bool {
    g.equivalent(f)
}

/// Whether database scheme members `schemes` *cover-embed* `f`: some cover
/// of `f` has every dependency embedded in some scheme (§2.3).
///
/// We use the standard sufficient-and-necessary test for fd covers: `f` is
/// cover embedded iff the union over schemes of the semantically projected
/// dependencies `F⁺|Rᵢ` is a cover of `f`. (The projections are computed by
/// [`crate::project::project_fds`], exact but exponential in scheme width;
/// schemes in this domain are narrow.)
pub fn is_cover_embedding(schemes: &[AttrSet], f: &FdSet) -> bool {
    let mut union = FdSet::new();
    for &r in schemes {
        union = union.union(&crate::project::project_fds(f, r));
    }
    union.equivalent(f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use idr_relation::Universe;

    #[test]
    fn minimal_cover_is_equivalent_and_small() {
        let u = Universe::of_chars("ABCD");
        let f = FdSet::parse(&u, "A->BC, B->C, A->B, AB->C, AB->D");
        let m = minimal_cover(&f);
        assert!(m.equivalent(&f));
        // A->B, B->C, A->D suffice (AB->D reduces to A->D since A->B).
        assert_eq!(m.len(), 3);
        for fd in m.fds() {
            assert_eq!(fd.rhs.len(), 1);
            assert!(!fd.is_trivial());
        }
    }

    #[test]
    fn minimal_cover_of_empty_is_empty() {
        let m = minimal_cover(&FdSet::new());
        assert!(m.is_empty());
    }

    #[test]
    fn minimal_cover_drops_trivial() {
        let u = Universe::of_chars("AB");
        let f = FdSet::parse(&u, "AB->A");
        assert!(minimal_cover(&f).is_empty());
    }

    #[test]
    fn cover_embedding_positive() {
        let u = Universe::of_chars("ABC");
        // F = {A->B, B->C} embeds in {AB, BC}.
        let f = FdSet::parse(&u, "A->B, B->C");
        assert!(is_cover_embedding(&[u.set_of("AB"), u.set_of("BC")], &f));
    }

    #[test]
    fn cover_embedding_negative() {
        let u = Universe::of_chars("ABC");
        // AB->C cannot be embedded in two-attribute schemes.
        let f = FdSet::parse(&u, "AB->C");
        assert!(!is_cover_embedding(
            &[u.set_of("AB"), u.set_of("BC"), u.set_of("AC")],
            &f
        ));
    }

    #[test]
    fn transitive_consequence_keeps_cover_embedding() {
        let u = Universe::of_chars("ABC");
        // A->C follows from embedded A->B, B->C; scheme {AB, BC} still
        // cover-embeds {A->B, B->C, A->C}.
        let f = FdSet::parse(&u, "A->B, B->C, A->C");
        assert!(is_cover_embedding(&[u.set_of("AB"), u.set_of("BC")], &f));
    }
}
