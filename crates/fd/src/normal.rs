//! BCNF and the uniqueness condition (§2.3, §2.7).

use idr_relation::{AttrSet, DatabaseScheme};

use crate::fd::FdSet;
use crate::keydeps::KeyDeps;

/// Width guard for the exact BCNF test (subset enumeration per scheme).
pub const MAX_BCNF_WIDTH: usize = 20;

/// Whether scheme `r` is in BCNF with respect to `f`: every nontrivial
/// `X→Y ∈ F⁺` embedded in `r` has `X` a superkey of `r` (§2.3).
///
/// Exact test by subset enumeration: a violation exists iff some `X ⊂ r`
/// determines a new attribute of `r` without determining all of `r`.
pub fn is_bcnf_scheme(f: &FdSet, r: AttrSet) -> bool {
    assert!(
        r.len() <= MAX_BCNF_WIDTH,
        "is_bcnf_scheme: scheme too wide ({} attrs)",
        r.len()
    );
    for x in r.subsets() {
        if x.is_empty() {
            continue;
        }
        let cl = f.closure(x);
        let determines_new = !((cl & r) - x).is_empty();
        if determines_new && !r.is_subset(cl) {
            return false;
        }
    }
    true
}

/// Whether every scheme of a database scheme is in BCNF wrt `f`.
pub fn is_bcnf(scheme: &DatabaseScheme, f: &FdSet) -> bool {
    scheme
        .schemes()
        .iter()
        .all(|s| is_bcnf_scheme(f, s.attrs()))
}

/// The *uniqueness condition* (§2.7), which characterises independence for
/// cover-embedding BCNF database schemes with embedded key dependencies
/// \[S1]\[S2]: for all `Rᵢ ≠ Rⱼ`, the closure `(Rᵢ)⁺` computed with respect
/// to `F − Fⱼ` does not contain a key dependency embedded in `Rⱼ` — i.e.
/// there is no key `K` of `Rⱼ` and attribute `A ∈ Rⱼ − K` with
/// `KA ⊆ (Rᵢ)⁺_{F−Fⱼ}`.
///
/// Returns the first violating pair `(i, j)` or `None` when the condition
/// holds.
pub fn uniqueness_violation(scheme: &DatabaseScheme, kd: &KeyDeps) -> Option<(usize, usize)> {
    let n = scheme.len();
    for j in 0..n {
        let f_minus_j = kd.without_scheme(j);
        let rj = scheme.scheme(j);
        for i in 0..n {
            if i == j {
                continue;
            }
            let cl = f_minus_j.closure(scheme.scheme(i).attrs());
            for &k in rj.keys() {
                if k == rj.attrs() {
                    // A whole-scheme key embeds no (nontrivial) key
                    // dependency.
                    continue;
                }
                if k.is_subset(cl) && (rj.attrs() - k).intersects(cl) {
                    return Some((i, j));
                }
            }
        }
    }
    None
}

/// Whether the database scheme satisfies the uniqueness condition, i.e. is
/// independent with respect to its embedded key dependencies (for the
/// cover-embedding BCNF schemes the paper works with).
pub fn satisfies_uniqueness(scheme: &DatabaseScheme, kd: &KeyDeps) -> bool {
    uniqueness_violation(scheme, kd).is_none()
}

#[cfg(test)]
mod tests {
    use super::*;
    use idr_relation::SchemeBuilder;

    #[test]
    fn bcnf_positive() {
        let db = SchemeBuilder::new("ABC")
            .scheme("R1", "AB", ["A"])
            .scheme("R2", "BC", ["B"])
            .build()
            .unwrap();
        let kd = KeyDeps::of(&db);
        assert!(is_bcnf(&db, kd.full()));
    }

    #[test]
    fn bcnf_negative() {
        // R(ABC) with embedded fd B→C via declaring key... construct a
        // violation directly: scheme ABC whose key is A but F also has B→C
        // (from another scheme's key BC? no — craft with FdSet directly).
        let u = idr_relation::Universe::of_chars("ABC");
        let f = FdSet::parse(&u, "A->BC, B->C");
        // In R(ABC), B→C is nontrivial and B is not a superkey.
        assert!(!is_bcnf_scheme(&f, u.set_of("ABC")));
        // In R(AB) no violation.
        assert!(is_bcnf_scheme(&f, u.set_of("AB")));
    }

    #[test]
    fn uniqueness_holds_for_example1_s() {
        // Example 1's scheme S = {S1(HRCT), S2(CSG), S3(HSR)}: independent.
        let db = SchemeBuilder::new("CTHRSG")
            .scheme("S1", "HRCT", ["HR", "HT"])
            .scheme("S2", "CSG", ["CS"])
            .scheme("S3", "HSR", ["HS"])
            .build()
            .unwrap();
        let kd = KeyDeps::of(&db);
        assert!(satisfies_uniqueness(&db, &kd));
    }

    #[test]
    fn uniqueness_fails_for_example1_r() {
        // Example 1's scheme R is *not* independent.
        let db = SchemeBuilder::new("CTHRSG")
            .scheme("R1", "HRC", ["HR"])
            .scheme("R2", "HTR", ["HT", "HR"])
            .scheme("R3", "HTC", ["HT"])
            .scheme("R4", "CSG", ["CS"])
            .scheme("R5", "HSR", ["HS"])
            .build()
            .unwrap();
        let kd = KeyDeps::of(&db);
        assert!(!satisfies_uniqueness(&db, &kd));
    }

    #[test]
    fn uniqueness_fails_for_example3() {
        // Example 3: {AB, BC, AC} with all singletons keys — key-equivalent
        // but not independent.
        let db = SchemeBuilder::new("ABC")
            .scheme("R1", "AB", ["A", "B"])
            .scheme("R2", "BC", ["B", "C"])
            .scheme("R3", "AC", ["A", "C"])
            .build()
            .unwrap();
        let kd = KeyDeps::of(&db);
        assert!(!satisfies_uniqueness(&db, &kd));
    }

    #[test]
    fn trivially_independent_disjoint_schemes() {
        let db = SchemeBuilder::new("ABCD")
            .scheme("R1", "AB", ["A"])
            .scheme("R2", "CD", ["C"])
            .build()
            .unwrap();
        let kd = KeyDeps::of(&db);
        assert!(satisfies_uniqueness(&db, &kd));
    }

    #[test]
    fn uniqueness_violation_reports_pair() {
        let db = SchemeBuilder::new("ABC")
            .scheme("R1", "AB", ["A", "B"])
            .scheme("R2", "BC", ["B", "C"])
            .scheme("R3", "AC", ["A", "C"])
            .build()
            .unwrap();
        let kd = KeyDeps::of(&db);
        let (i, j) = uniqueness_violation(&db, &kd).unwrap();
        assert_ne!(i, j);
    }
}
