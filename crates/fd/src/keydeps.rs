//! Key dependencies of a database scheme (§2.3).
//!
//! The paper's standing assumption is that a cover of the fds is embedded
//! in the database scheme as key dependencies: each relation scheme `Rᵢ`
//! with candidate key `K` contributes `K → Rᵢ`. [`KeyDeps`] materialises
//! the full set `F = F₁ ∪ … ∪ Fₙ` and the per-scheme sets `Fᵢ`, which the
//! uniqueness condition (`F − Fⱼ`) and the block machinery of Sections 3–5
//! slice in every direction.

use idr_relation::{AttrSet, DatabaseScheme};

use crate::fd::{Fd, FdSet};

/// The key dependencies of a database scheme.
#[derive(Clone, Debug)]
pub struct KeyDeps {
    full: FdSet,
    per_scheme: Vec<FdSet>,
}

impl KeyDeps {
    /// Extracts the key dependencies from a database scheme's declared
    /// keys.
    pub fn of(scheme: &DatabaseScheme) -> Self {
        let per_scheme: Vec<FdSet> = scheme
            .schemes()
            .iter()
            .map(|s| {
                FdSet::from_fds(
                    s.keys()
                        .iter()
                        .map(|&k| Fd::new(k, s.attrs() - k))
                        .filter(|fd| !fd.rhs.is_empty()),
                )
            })
            .collect();
        let full = per_scheme
            .iter()
            .fold(FdSet::new(), |acc, f| acc.union(f));
        KeyDeps { full, per_scheme }
    }

    /// The full set `F = F₁ ∪ … ∪ Fₙ`.
    pub fn full(&self) -> &FdSet {
        &self.full
    }

    /// The key dependencies `Fᵢ` embedded in scheme `i`.
    pub fn of_scheme(&self, i: usize) -> &FdSet {
        &self.per_scheme[i]
    }

    /// `F − Fⱼ`: the full set minus scheme `j`'s dependencies — the
    /// quantity the uniqueness condition closes under.
    pub fn without_scheme(&self, j: usize) -> FdSet {
        self.full.minus(&self.per_scheme[j])
    }

    /// The key dependencies embedded in a *subset* of the schemes (by
    /// index) — `G` in Lemma 3.8 and the per-block dependency sets of
    /// Sections 4–5.
    pub fn for_subset(&self, indices: &[usize]) -> FdSet {
        indices
            .iter()
            .fold(FdSet::new(), |acc, &i| acc.union(&self.per_scheme[i]))
    }

    /// The closure `Rᵢ⁺` of scheme `i`'s attributes wrt the full set — the
    /// quantity KEP partitions on.
    pub fn scheme_closure(&self, scheme: &DatabaseScheme, i: usize) -> AttrSet {
        self.full.closure(scheme.scheme(i).attrs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idr_relation::SchemeBuilder;

    fn example3() -> DatabaseScheme {
        SchemeBuilder::new("ABC")
            .scheme("R1", "AB", ["A", "B"])
            .scheme("R2", "BC", ["B", "C"])
            .scheme("R3", "AC", ["A", "C"])
            .build()
            .unwrap()
    }

    #[test]
    fn full_set_matches_paper_example_3() {
        let db = example3();
        let kd = KeyDeps::of(&db);
        let u = db.universe();
        // F = {A→B, B→A, B→C, C→B, C→A, A→C}.
        let expected = FdSet::parse(u, "A->B, B->A, B->C, C->B, C->A, A->C");
        assert!(kd.full().equivalent(&expected));
        assert_eq!(kd.full().len(), 6);
    }

    #[test]
    fn per_scheme_sets() {
        let db = example3();
        let kd = KeyDeps::of(&db);
        let u = db.universe();
        assert!(kd.of_scheme(0).equivalent(&FdSet::parse(u, "A->B, B->A")));
        assert_eq!(kd.of_scheme(0).len(), 2);
    }

    #[test]
    fn without_scheme_removes_only_that_scheme() {
        let db = example3();
        let kd = KeyDeps::of(&db);
        let u = db.universe();
        let f = kd.without_scheme(0);
        assert_eq!(f.len(), 4);
        assert!(!f.implies(Fd::new(u.set_of("A"), u.set_of("B"))) || f.len() == 4);
        // A→B is still *implied* (A→C→B) but not syntactically present.
        assert!(f.implies(Fd::new(u.set_of("A"), u.set_of("B"))));
    }

    #[test]
    fn subset_and_closures() {
        let db = example3();
        let kd = KeyDeps::of(&db);
        let u = db.universe();
        let g = kd.for_subset(&[0, 1]);
        assert_eq!(g.len(), 4);
        assert_eq!(kd.scheme_closure(&db, 0), u.set_of("ABC"));
    }

    #[test]
    fn whole_scheme_key_contributes_nothing() {
        // A scheme whose only key is the whole scheme embeds only trivial
        // key dependencies.
        let db = SchemeBuilder::new("AB")
            .scheme("R1", "AB", ["AB"])
            .build()
            .unwrap();
        let kd = KeyDeps::of(&db);
        assert!(kd.full().is_empty());
    }
}
