//! Naive reference implementations kept for differential testing and for
//! the data-structure ablation benchmark (DESIGN.md §7.1).

use std::collections::BTreeSet;

use idr_relation::{AttrSet, Attribute};

use crate::fd::FdSet;

/// Textbook quadratic attribute closure: scan all fds until a full pass
/// adds nothing. Semantically identical to [`FdSet::closure`].
pub fn closure_naive(fds: &FdSet, x: AttrSet) -> AttrSet {
    let mut closure = x;
    loop {
        let mut changed = false;
        for fd in fds.fds() {
            if fd.lhs.is_subset(closure) && !fd.rhs.is_subset(closure) {
                closure |= fd.rhs;
                changed = true;
            }
        }
        if !changed {
            return closure;
        }
    }
}

/// The same quadratic closure over `BTreeSet<Attribute>` instead of the
/// bitset — the "what if we had used ordinary collections" ablation arm.
pub fn closure_btreeset(fds: &FdSet, x: &BTreeSet<Attribute>) -> BTreeSet<Attribute> {
    let mut closure = x.clone();
    loop {
        let mut changed = false;
        for fd in fds.fds() {
            if fd.lhs.iter().all(|a| closure.contains(&a)) {
                for a in fd.rhs.iter() {
                    changed |= closure.insert(a);
                }
            }
        }
        if !changed {
            return closure;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idr_relation::Universe;

    #[test]
    fn naive_matches_indexed() {
        let u = Universe::of_chars("ABCDEF");
        let f = FdSet::parse(&u, "A->B, BC->D, D->E, AE->F");
        for start in ["A", "AC", "BC", "F", ""] {
            let x = u.set_of(start);
            assert_eq!(closure_naive(&f, x), f.closure(x), "start {start}");
        }
    }

    #[test]
    fn btreeset_matches_bitset() {
        let u = Universe::of_chars("ABCD");
        let f = FdSet::parse(&u, "A->B, B->C, C->D");
        let x: BTreeSet<Attribute> = u.set_of("A").iter().collect();
        let c = closure_btreeset(&f, &x);
        let expected: BTreeSet<Attribute> = f.closure(u.set_of("A")).iter().collect();
        assert_eq!(c, expected);
    }
}
