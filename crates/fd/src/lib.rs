//! Functional-dependency theory (§2.3 of Chan & Hernández, PODS 1988).
//!
//! This crate provides the constraint substrate of the reproduction:
//!
//! * [`Fd`] / [`FdSet`] — functional dependencies `X → Y` over a universe,
//!   with an indexed attribute-closure algorithm ([`FdSet::closure`]) plus
//!   a naive reference implementation ([`naive::closure_naive`]) kept for
//!   differential testing and for the ablation benchmark in DESIGN.md §7.
//! * Implication, cover equivalence and minimal covers ([`cover`]).
//! * Projection `F⁺|R` of a dependency set onto a relation scheme
//!   ([`project::project_fds`]).
//! * Candidate-key enumeration within a scheme ([`keys::candidate_keys`]).
//! * *Key dependencies* of a database scheme ([`keydeps::KeyDeps`]) — the
//!   constraint language the whole paper works in: each scheme `Rᵢ` with
//!   key `K` contributes `K → Rᵢ`.
//! * BCNF and the *uniqueness condition* characterising Sagiv-independence
//!   for cover-embedding BCNF schemes with key dependencies ([`normal`]).


#![warn(missing_docs)]
pub mod cover;
mod fd;
pub mod keydeps;
pub mod keys;
pub mod naive;
pub mod normal;
pub mod project;

pub use fd::{Fd, FdParseError, FdSet};
pub use keydeps::KeyDeps;
pub use project::project_fds_bounded;
