use std::fmt;

use idr_relation::{AttrSet, Universe};

/// A functional dependency `X → Y` (§2.3).
///
/// Both sides are attribute sets; `Y` need not be disjoint from `X`.
/// Trivial dependencies (`Y ⊆ X`) are permitted but normalised away by
/// [`FdSet`] consumers that care.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fd {
    /// Left-hand side `X`.
    pub lhs: AttrSet,
    /// Right-hand side `Y`.
    pub rhs: AttrSet,
}

impl Fd {
    /// Creates `X → Y`.
    pub fn new(lhs: AttrSet, rhs: AttrSet) -> Self {
        Fd { lhs, rhs }
    }

    /// Whether the dependency is trivial (`Y ⊆ X`).
    pub fn is_trivial(&self) -> bool {
        self.rhs.is_subset(self.lhs)
    }

    /// The set of attributes mentioned by the dependency.
    pub fn attrs(&self) -> AttrSet {
        self.lhs | self.rhs
    }

    /// Whether `XY ⊆ R`, i.e. the fd is *embedded* in scheme `R` (§2.3).
    pub fn embedded_in(&self, r: AttrSet) -> bool {
        self.attrs().is_subset(r)
    }

    /// Renders the fd in the paper's notation, e.g. `AB→C`.
    pub fn render(&self, universe: &Universe) -> String {
        format!(
            "{}→{}",
            universe.render(self.lhs),
            universe.render(self.rhs)
        )
    }
}

impl fmt::Debug for Fd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}→{:?}", self.lhs, self.rhs)
    }
}

/// A malformed functional-dependency specification (see
/// [`FdSet::try_parse`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FdParseError {
    /// The offending fragment of the input, trimmed.
    pub fragment: String,
    /// Why it was rejected.
    pub reason: String,
}

impl fmt::Display for FdParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed fd {:?}: {}", self.fragment, self.reason)
    }
}

impl std::error::Error for FdParseError {}

/// The canonical single-character universe `A`–`Z` used by the [`FromStr`]
/// impls — attribute `A` has index 0, `B` index 1, and so on. Parsing
/// against a bespoke universe goes through [`FdSet::try_parse`].
fn canonical_universe() -> Universe {
    Universe::of_chars("ABCDEFGHIJKLMNOPQRSTUVWXYZ")
}

impl std::str::FromStr for Fd {
    type Err = FdParseError;

    /// Parses one fd in the paper's notation (`"AB->C"`) over the
    /// canonical alphabetical universe `A`–`Z` (attribute `A` = index 0).
    /// Use [`FdSet::try_parse`] to parse against a specific [`Universe`].
    ///
    /// ```
    /// use idr_fd::Fd;
    ///
    /// let fd: Fd = "AB->C".parse().unwrap();
    /// assert_eq!(fd.lhs.len(), 2);
    /// assert!("A->B, B->C".parse::<Fd>().is_err()); // one fd only
    /// ```
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let set = FdSet::try_parse(&canonical_universe(), s)?;
        match set.fds() {
            [fd] => Ok(*fd),
            fds => Err(FdParseError {
                fragment: s.trim().to_string(),
                reason: format!("expected exactly one fd, found {}", fds.len()),
            }),
        }
    }
}

impl std::str::FromStr for FdSet {
    type Err = FdParseError;

    /// Parses a comma-separated fd list (`"A->B, BC->D"`) over the
    /// canonical alphabetical universe `A`–`Z` (attribute `A` = index 0).
    /// Use [`FdSet::try_parse`] to parse against a specific [`Universe`].
    ///
    /// ```
    /// use idr_fd::FdSet;
    ///
    /// let f: FdSet = "A->B, B->C".parse().unwrap();
    /// assert_eq!(f.len(), 2);
    /// assert!("A=>B".parse::<FdSet>().is_err());
    /// ```
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        FdSet::try_parse(&canonical_universe(), s)
    }
}

/// A finite set of functional dependencies with an indexed closure
/// algorithm.
///
/// The closure of an attribute set ([`FdSet::closure`]) is the single most
/// executed operation in the reproduction — KEP, Algorithm 6 and the
/// splitness test are all closure fixpoints — so it uses the classic
/// counter-based algorithm (Beeri–Bernstein): each fd keeps a count of
/// unsatisfied left-hand-side attributes, and an attribute→fd index drives
/// the worklist.
///
/// # Examples
///
/// ```
/// use idr_relation::Universe;
/// use idr_fd::{Fd, FdSet};
///
/// let u = Universe::of_chars("ABC");
/// let f = FdSet::from_fds([
///     Fd::new(u.set_of("A"), u.set_of("B")),
///     Fd::new(u.set_of("B"), u.set_of("C")),
/// ]);
/// assert_eq!(f.closure(u.set_of("A")), u.set_of("ABC"));
/// assert!(f.implies(Fd::new(u.set_of("A"), u.set_of("C"))));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FdSet {
    fds: Vec<Fd>,
}

impl FdSet {
    /// The empty dependency set.
    pub fn new() -> Self {
        FdSet::default()
    }

    /// Builds a set from an iterator of fds (deduplicating).
    pub fn from_fds<I: IntoIterator<Item = Fd>>(fds: I) -> Self {
        let mut v: Vec<Fd> = fds.into_iter().collect();
        v.sort();
        v.dedup();
        FdSet { fds: v }
    }

    /// Parses fds in the paper's notation: `"A->BC, BC->D"` over a
    /// single-character universe. Panics on malformed input (fixture use);
    /// external input goes through [`FdSet::try_parse`].
    pub fn parse(universe: &Universe, spec: &str) -> Self {
        Self::try_parse(universe, spec).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`FdSet::parse`] for external input: returns a typed
    /// [`FdParseError`] naming the offending fragment instead of
    /// panicking.
    ///
    /// # Examples
    ///
    /// ```
    /// use idr_relation::Universe;
    /// use idr_fd::FdSet;
    ///
    /// let u = Universe::of_chars("ABC");
    /// assert!(FdSet::try_parse(&u, "A->B, B->C").is_ok());
    /// assert!(FdSet::try_parse(&u, "A=>B").is_err());
    /// assert!(FdSet::try_parse(&u, "A->Z").is_err());
    /// ```
    pub fn try_parse(universe: &Universe, spec: &str) -> Result<Self, FdParseError> {
        let mut fds = Vec::new();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (l, r) = part.split_once("->").ok_or_else(|| FdParseError {
                fragment: part.to_string(),
                reason: "expected `LHS->RHS`".to_string(),
            })?;
            let side = |s: &str| -> Result<AttrSet, FdParseError> {
                let s = s.trim();
                if s.is_empty() {
                    return Err(FdParseError {
                        fragment: part.to_string(),
                        reason: "empty attribute set".to_string(),
                    });
                }
                universe.try_set_of(s).map_err(|unknown| FdParseError {
                    fragment: part.to_string(),
                    reason: format!("unknown attribute {unknown:?}"),
                })
            };
            fds.push(Fd::new(side(l)?, side(r)?));
        }
        Ok(FdSet::from_fds(fds))
    }

    /// Adds a dependency (keeping the set deduplicated and sorted).
    pub fn add(&mut self, fd: Fd) {
        if let Err(pos) = self.fds.binary_search(&fd) {
            self.fds.insert(pos, fd);
        }
    }

    /// The dependencies, sorted.
    pub fn fds(&self) -> &[Fd] {
        &self.fds
    }

    /// Number of dependencies.
    pub fn len(&self) -> usize {
        self.fds.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.fds.is_empty()
    }

    /// Union of two dependency sets.
    pub fn union(&self, other: &FdSet) -> FdSet {
        FdSet::from_fds(self.fds.iter().chain(other.fds.iter()).copied())
    }

    /// The set difference `self − other` (syntactic, on normalised fds) —
    /// the `F − Fj` operation of the uniqueness condition (§2.7).
    pub fn minus(&self, other: &FdSet) -> FdSet {
        FdSet::from_fds(
            self.fds
                .iter()
                .copied()
                .filter(|fd| other.fds.binary_search(fd).is_err()),
        )
    }

    /// The attribute closure `X⁺` with respect to this set (§2.3).
    pub fn closure(&self, x: AttrSet) -> AttrSet {
        // Counter-based worklist. For the small fd-set sizes the paper's
        // algorithms see, the setup cost dominates; keep allocations to two
        // small vectors.
        let n = self.fds.len();
        let mut remaining: Vec<u32> = Vec::with_capacity(n);
        let mut closure = x;
        let mut queue: Vec<usize> = Vec::new();
        for (i, fd) in self.fds.iter().enumerate() {
            let missing = (fd.lhs - x).len() as u32;
            remaining.push(missing);
            if missing == 0 {
                queue.push(i);
            }
        }
        // Attribute → fds whose lhs mention it.
        let mut by_attr: Vec<(u32, u32)> = Vec::new();
        for (i, fd) in self.fds.iter().enumerate() {
            for a in fd.lhs.iter() {
                by_attr.push((a.index() as u32, i as u32));
            }
        }
        by_attr.sort_unstable();
        let fds_of = |a: usize| {
            let lo = by_attr.partition_point(|&(b, _)| (b as usize) < a);
            let hi = by_attr.partition_point(|&(b, _)| (b as usize) <= a);
            by_attr[lo..hi].iter().map(|&(_, i)| i as usize)
        };
        while let Some(i) = queue.pop() {
            let fd = self.fds[i];
            let new = fd.rhs - closure;
            if new.is_empty() {
                continue;
            }
            closure |= new;
            for a in new.iter() {
                for j in fds_of(a.index()) {
                    if remaining[j] > 0 {
                        remaining[j] -= 1;
                        if remaining[j] == 0 {
                            queue.push(j);
                        }
                    }
                }
            }
        }
        closure
    }

    /// Whether this set logically implies `fd` (`fd ∈ F⁺`).
    pub fn implies(&self, fd: Fd) -> bool {
        fd.rhs.is_subset(self.closure(fd.lhs))
    }

    /// Whether this set implies every fd in `other`.
    pub fn implies_all(&self, other: &FdSet) -> bool {
        other.fds.iter().all(|&fd| self.implies(fd))
    }

    /// Cover equivalence: `F⁺ = G⁺` (§2.3).
    pub fn equivalent(&self, other: &FdSet) -> bool {
        self.implies_all(other) && other.implies_all(self)
    }

    /// Whether `x` is a superkey of scheme `r` under this set
    /// (`x → r ∈ F⁺`).
    pub fn is_superkey(&self, x: AttrSet, r: AttrSet) -> bool {
        r.is_subset(self.closure(x))
    }

    /// Whether `x` is a (candidate) key of `r`: a superkey no proper subset
    /// of which is a superkey (§2.3).
    pub fn is_key(&self, x: AttrSet, r: AttrSet) -> bool {
        if !x.is_subset(r) || !self.is_superkey(x, r) {
            return false;
        }
        x.iter().all(|a| {
            let mut smaller = x;
            smaller.remove(a);
            !self.is_superkey(smaller, r)
        })
    }

    /// Restricts to the dependencies *embedded* in `r` (syntactically —
    /// this is `F|R`, not the semantic projection `F⁺|R`; see
    /// [`crate::project::project_fds`] for the latter).
    pub fn embedded_in(&self, r: AttrSet) -> FdSet {
        FdSet::from_fds(self.fds.iter().copied().filter(|fd| fd.embedded_in(r)))
    }

    /// Renders the set in the paper's notation.
    pub fn render(&self, universe: &Universe) -> String {
        let parts: Vec<String> = self.fds.iter().map(|fd| fd.render(universe)).collect();
        format!("{{{}}}", parts.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_str_uses_canonical_universe() {
        let fd: Fd = " AB -> C ".parse().unwrap();
        let u = canonical_universe();
        assert_eq!(fd.lhs, u.set_of("AB"));
        assert_eq!(fd.rhs, u.set_of("C"));
        // Errors reuse FdParseError verbatim.
        let err = "A=>B".parse::<Fd>().unwrap_err();
        assert!(err.reason.contains("LHS->RHS"), "{err}");
        let err = "A->B, B->C".parse::<Fd>().unwrap_err();
        assert!(err.reason.contains("exactly one"), "{err}");
        let set: FdSet = "A->B, B->C".parse().unwrap();
        assert_eq!(set.len(), 2);
        assert_eq!(set, FdSet::parse(&u, "A->B, B->C"));
        assert!("a->b".parse::<FdSet>().is_err());
    }

    #[test]
    fn closure_basic_chain() {
        let u = Universe::of_chars("ABCD");
        let f = FdSet::parse(&u, "A->B, B->C, C->D");
        assert_eq!(f.closure(u.set_of("A")), u.set_of("ABCD"));
        assert_eq!(f.closure(u.set_of("B")), u.set_of("BCD"));
        assert_eq!(f.closure(u.set_of("D")), u.set_of("D"));
    }

    #[test]
    fn closure_requires_full_lhs() {
        let u = Universe::of_chars("ABC");
        let f = FdSet::parse(&u, "AB->C");
        assert_eq!(f.closure(u.set_of("A")), u.set_of("A"));
        assert_eq!(f.closure(u.set_of("AB")), u.set_of("ABC"));
    }

    #[test]
    fn closure_cascades_through_composite_lhs() {
        let u = Universe::of_chars("ABCDE");
        let f = FdSet::parse(&u, "A->B, A->C, BC->D, D->E");
        assert_eq!(f.closure(u.set_of("A")), u.set_of("ABCDE"));
    }

    #[test]
    fn implies_and_equivalence() {
        let u = Universe::of_chars("ABC");
        let f = FdSet::parse(&u, "A->B, B->C");
        let g = FdSet::parse(&u, "A->BC, B->C");
        assert!(f.implies(Fd::new(u.set_of("A"), u.set_of("C"))));
        assert!(!f.implies(Fd::new(u.set_of("B"), u.set_of("A"))));
        assert!(f.equivalent(&g));
        let h = FdSet::parse(&u, "A->B");
        assert!(!f.equivalent(&h));
    }

    #[test]
    fn key_tests() {
        let u = Universe::of_chars("ABC");
        let f = FdSet::parse(&u, "AB->C");
        let r = u.set_of("ABC");
        assert!(f.is_superkey(u.set_of("AB"), r));
        assert!(f.is_key(u.set_of("AB"), r));
        assert!(f.is_superkey(u.set_of("ABC"), r));
        assert!(!f.is_key(u.set_of("ABC"), r));
        assert!(!f.is_key(u.set_of("A"), r));
    }

    #[test]
    fn minus_removes_exact_fds() {
        let u = Universe::of_chars("ABC");
        let f = FdSet::parse(&u, "A->B, B->C");
        let g = FdSet::parse(&u, "B->C");
        let d = f.minus(&g);
        assert_eq!(d.len(), 1);
        assert_eq!(d.fds()[0], Fd::new(u.set_of("A"), u.set_of("B")));
    }

    #[test]
    fn embedded_filters_syntactically() {
        let u = Universe::of_chars("ABC");
        let f = FdSet::parse(&u, "A->B, B->C, A->C");
        let e = f.embedded_in(u.set_of("AB"));
        assert_eq!(e.len(), 1);
    }

    #[test]
    fn parse_rejects_garbage() {
        let u = Universe::of_chars("AB");
        let result = std::panic::catch_unwind(|| FdSet::parse(&u, "A=B"));
        assert!(result.is_err());
    }

    #[test]
    fn trivial_fd_detection() {
        let u = Universe::of_chars("AB");
        assert!(Fd::new(u.set_of("AB"), u.set_of("A")).is_trivial());
        assert!(!Fd::new(u.set_of("A"), u.set_of("B")).is_trivial());
    }
}
