//! The typed error taxonomy of the durability layer.
//!
//! Recovery distinguishes two failure shapes the WAL format makes
//! observable: a **torn tail** (the file ends mid-record — the expected
//! aftermath of a crash during an append; tolerated by truncation) and
//! **corruption** (a structurally complete record whose checksum does
//! not match — a storage fault; surfaced as [`StoreError::Corrupt`] and
//! never silently repaired). Everything that crosses into the engine is
//! mapped onto [`ExecError::Faulted`] with a permanent fault kind, so
//! callers see storage failures through the same taxonomy as every other
//! fault.

use std::fmt;
use std::path::PathBuf;

use idr_relation::exec::{ExecError, FaultKind};

/// A failure in the durability layer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreError {
    /// An operating-system I/O failure (open, read, write, fsync,
    /// rename, …).
    Io {
        /// What the store was doing (`"append wal record"`, …).
        operation: String,
        /// The file or directory involved.
        path: PathBuf,
        /// The rendered OS error.
        message: String,
    },
    /// A structurally complete WAL record whose CRC32 does not match its
    /// payload: storage corruption, distinct from a crash-torn tail.
    Corrupt {
        /// The WAL file.
        path: PathBuf,
        /// Byte offset of the bad record's header.
        offset: u64,
        /// What disagreed (stored vs computed checksum, oversized
        /// length, …).
        detail: String,
    },
    /// A data-dir file that does not parse (scheme, snapshot header,
    /// state lines, WAL payload).
    Format {
        /// The offending file.
        path: PathBuf,
        /// The parse error.
        detail: String,
    },
    /// Replaying the WAL through the engine failed (a malformed op
    /// sequence, or an engine error that is not a consistency verdict).
    Replay {
        /// What went wrong.
        detail: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { operation, path, message } => {
                write!(f, "io error during {operation} on {}: {message}", path.display())
            }
            StoreError::Corrupt { path, offset, detail } => {
                write!(f, "corrupt wal record in {} at offset {offset}: {detail}", path.display())
            }
            StoreError::Format { path, detail } => {
                write!(f, "malformed store file {}: {detail}", path.display())
            }
            StoreError::Replay { detail } => write!(f, "wal replay failed: {detail}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl StoreError {
    /// Wraps an OS error with the operation and path it interrupted.
    pub fn io(operation: &str, path: &std::path::Path, err: std::io::Error) -> Self {
        StoreError::Io {
            operation: operation.to_string(),
            path: path.to_path_buf(),
            message: err.to_string(),
        }
    }
}

impl From<StoreError> for ExecError {
    /// Storage failures surface to the engine as permanent faults: a
    /// retry without operator intervention will hit the same disk state.
    fn from(e: StoreError) -> ExecError {
        ExecError::Faulted {
            kind: FaultKind::Permanent,
            operation: format!("durability: {e}"),
            attempts: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_and_maps_to_exec_error() {
        let e = StoreError::Corrupt {
            path: PathBuf::from("/data/wal-0.log"),
            offset: 16,
            detail: "stored crc 1 != computed 2".to_string(),
        };
        assert!(e.to_string().contains("offset 16"));
        match ExecError::from(e) {
            ExecError::Faulted { kind: FaultKind::Permanent, operation, attempts: 1 } => {
                assert!(operation.contains("durability"), "{operation}");
            }
            other => panic!("unexpected mapping: {other:?}"),
        }
    }
}
