//! `idr-store` — durable state for the independence-reducible engine.
//!
//! The paper reduces maintenance to a stream of small insert/delete
//! steps (Theorems 4.1/4.2); this crate makes that stream survive
//! process death. Three pieces, all dependency-free:
//!
//! * **WAL** ([`wal`]): an append-only log of session ops — one text
//!   line per record in the CLI's fixture syntax, framed as
//!   `[len][crc32][payload]` with a vendored [`crc32`](crc32::crc32).
//!   Appends fsync before the engine mutates memory (write-ahead), so
//!   the log never lags the state.
//! * **Snapshots** ([`snapshot`]): the full state in the state-file
//!   format, installed by `write temp + fsync + rename` and paired with
//!   an epoch-numbered WAL; rotation compacts old logs.
//! * **Recovery** ([`recover`](mod@recover)): loads the latest snapshot,
//!   truncates a crash-torn final WAL record (a checksum-mismatched
//!   *complete* record is instead a typed [`StoreError::Corrupt`]),
//!   drops aborted ops, and replays the rest through the normal guarded
//!   [`WriteHandle`](idr_core::WriteHandle) path — the recovered state
//!   *re-earns* its consistency verdict rather than trusting the log.
//!
//! [`SharedStore`] wraps a [`Store`] as the engine's owned
//! [`DurabilitySink`](idr_core::DurabilitySink): hand one to
//! [`Engine::hub_with`](idr_core::Engine::hub_with) and every mutation
//! from every [`WriteHandle`](idr_core::WriteHandle) is committed to
//! the log before memory changes, with the engine's rollback-on-`Err`
//! paths mirrored by abort markers. Concurrent writers' appends are
//! coalesced by [`GroupWal`] into one framed batch and **one fsync**
//! (group commit). The bare [`Store`] still implements the legacy
//! single-threaded [`Durability`](idr_core::durability::Durability)
//! hook for the deprecated `Session` shim.
//!
//! # Examples
//!
//! Initialise a data dir, mutate durably through a hub, "crash" (drop
//! everything), recover, and observe the same state:
//!
//! ```
//! use std::sync::Arc;
//! use idr_core::Engine;
//! use idr_relation::exec::Guard;
//! use idr_relation::parse::{parse_scheme, parse_tuple_line};
//! use idr_store::{recover, SharedStore, Store};
//!
//! let db = parse_scheme(
//!     "universe: A B C D\n\
//!      scheme R1: A B keys A\n\
//!      scheme R2: C D keys C\n",
//! )
//! .unwrap();
//! let dir = idr_store::tempdir::TempDir::new("doc-example");
//!
//! let store = Arc::new(SharedStore::new(Store::init(dir.path(), &db).unwrap()));
//! let engine = Engine::new(db.clone());
//! let guard = Guard::unlimited();
//! {
//!     let symbols = store.symbols();
//!     let (rel, t) = parse_tuple_line(
//!         "R1: A=a B=b",
//!         &db,
//!         &mut symbols.lock().unwrap(),
//!     )
//!     .unwrap();
//!     let state = idr_relation::DatabaseState::empty(&db);
//!     let hub = engine.hub_with(&state, &guard, store.clone()).unwrap();
//!     assert!(hub.write_handle().insert(rel, t, &guard).unwrap());
//! }
//! drop(store); // simulate process death
//!
//! let recovered = recover::recover(dir.path()).unwrap();
//! assert!(recovered.consistent);
//! assert_eq!(recovered.state.total_tuples(), 1);
//! assert_eq!(recovered.stats.replayed, 1);
//! ```

#![warn(missing_docs)]

pub mod crc32;
pub mod error;
pub mod group;
pub mod journal;
pub mod recover;
pub mod snapshot;
pub mod store;
pub mod tempdir;
pub mod wal;

pub use error::StoreError;
pub use group::{GroupWal, SharedStore};
pub use journal::{JournalFile, JournalRecovery};
pub use recover::{recover, recover_with, Recovered, RecoveryStats};
pub use store::Store;
pub use tempdir::TempDir;
pub use wal::{SegmentDigest, WalScan, WalWriter};
