//! A minimal scratch-directory helper (the workspace is hermetic — no
//! `tempfile` crate). Used by this crate's tests, `tests/durability.rs`
//! and the oracle's crash-point fuzzer, which needs a real data
//! directory per simulated crash.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static COUNTER: AtomicU64 = AtomicU64::new(0);

/// A directory under the OS temp dir, removed (best effort) on drop.
/// Names combine the label, the process id and a process-wide counter,
/// so concurrent tests never collide.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Creates `"$TMPDIR/idr-<label>-<pid>-<n>"`.
    ///
    /// # Panics
    ///
    /// Panics if the directory cannot be created — these are test
    /// scratch dirs, and a broken temp filesystem should fail loudly.
    pub fn new(label: &str) -> TempDir {
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!(
            "idr-{label}-{}-{n}",
            std::process::id()
        ));
        std::fs::create_dir_all(&path)
            .unwrap_or_else(|e| panic!("cannot create temp dir {}: {e}", path.display()));
        TempDir { path }
    }

    /// The directory's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_dirs_and_cleanup_on_drop() {
        let a = TempDir::new("t");
        let b = TempDir::new("t");
        assert_ne!(a.path(), b.path());
        assert!(a.path().is_dir());
        let kept = a.path().to_path_buf();
        drop(a);
        assert!(!kept.exists());
        assert!(b.path().is_dir());
    }
}
