//! Vendored CRC32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) —
//! the checksum guarding every WAL record. Table-driven, one 1 KiB
//! `const` table built at compile time; no dependencies, matching the
//! workspace's hermetic-build constraint.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// The byte-indexed remainder table, built at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// The CRC32 of `bytes` (init `0xFFFF_FFFF`, final xor `0xFFFF_FFFF` —
/// the standard zlib/PNG/Ethernet parameterisation).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = u32::MAX;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Known-answer vectors from the CRC catalogue (CRC-32/ISO-HDLC).
    #[test]
    fn known_answer_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn detects_single_bit_flips() {
        let payload = b"insert R1: A=a B=b";
        let reference = crc32(payload);
        let mut copy = payload.to_vec();
        for byte in 0..copy.len() {
            for bit in 0..8 {
                copy[byte] ^= 1 << bit;
                assert_ne!(crc32(&copy), reference, "flip at {byte}:{bit} undetected");
                copy[byte] ^= 1 << bit;
            }
        }
    }
}
