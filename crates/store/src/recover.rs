//! Crash recovery: latest valid snapshot + WAL tail, replayed through
//! the normal guarded [`WriteHandle`](idr_core::WriteHandle) path.
//!
//! Recovery never trusts the log's word for a verdict: every surviving
//! op is re-executed through the same engine code that ran it the first
//! time, so the recovered state **re-earns** its consistency verdict
//! (Honeyman's weak-instance consistency, the invariant the paper's
//! maintenance theorems preserve). The sequence:
//!
//! 1. parse `scheme.idr`;
//! 2. load `snapshot.state` (epoch `N`) — the atomic-rename install
//!    guarantees it is either the old or the new complete snapshot;
//! 3. scan `wal-N.log`: a torn final record (crash mid-append) is
//!    truncated and counted; a checksum-mismatched *complete* record is
//!    a typed [`StoreError::Corrupt`] — corruption is surfaced, never
//!    repaired silently;
//! 4. drop each op record immediately followed by an `abort` marker
//!    (the engine rolled that op back before the crash);
//! 5. replay the survivors through `Engine::hub` + a `WriteHandle`
//!    under an unlimited guard — rejected inserts re-reject
//!    deterministically, re-deriving the same state and verdict the
//!    process held before it died. The WAL's record order is the
//!    committed op order even when the log was written by concurrent
//!    writers under group commit: per-block order is preserved by the
//!    per-block write lanes, and cross-block ops commute (Theorem 4.2),
//!    so this serial replay reproduces the concurrent final state.

use std::path::Path;
use std::sync::Arc;

use idr_core::{Engine, ReplayError, ReplayOutcome};
use idr_obs::{MetricsRegistry, TraceEvent, TraceHandle};
use idr_relation::exec::Guard;
use idr_relation::parse::parse_scheme;
use idr_relation::{DatabaseState, SymbolTable};

use crate::error::StoreError;
use crate::snapshot::{self, SCHEME_FILE};
use crate::store::{Store, ABORT_PAYLOAD};
use crate::wal::{self, WalWriter};

/// What recovery found and did, for logs and the `recovery_replayed`
/// trace event.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// The snapshot epoch recovery started from.
    pub epoch: u64,
    /// Tuples loaded from the snapshot.
    pub snapshot_tuples: usize,
    /// Complete, checksum-valid records found in the WAL.
    pub wal_records: usize,
    /// Bytes of torn final record truncated from the WAL.
    pub torn_bytes: u64,
    /// Ops replayed through the session (after abort filtering).
    pub replayed: usize,
    /// Op records skipped because an `abort` marker followed them.
    pub aborted: usize,
    /// Replayed inserts the engine rejected (again) as inconsistent.
    pub rejected: usize,
}

/// A recovered data dir: the store (positioned to append), the replayed
/// state, its re-earned consistency verdict, and the recovery stats.
#[derive(Debug)]
pub struct Recovered {
    /// The store, open at the recovered epoch with the torn tail (if
    /// any) truncated.
    pub store: Store,
    /// The state after snapshot + WAL replay.
    pub state: DatabaseState,
    /// The replayed state's consistency verdict, re-earned through the
    /// guarded session path.
    pub consistent: bool,
    /// What recovery found and did.
    pub stats: RecoveryStats,
}

/// Recovers `dir` silently (no tracing). See [`recover_with`].
pub fn recover(dir: &Path) -> Result<Recovered, StoreError> {
    recover_with(dir, TraceHandle::none(), None)
}

/// Recovers `dir`, emitting a `recovery_replayed` event and `store.*`
/// recovery metrics, and attaching `tracer`/`metrics` to the returned
/// store.
pub fn recover_with(
    dir: &Path,
    tracer: TraceHandle,
    metrics: Option<Arc<MetricsRegistry>>,
) -> Result<Recovered, StoreError> {
    let scheme_path = dir.join(SCHEME_FILE);
    let db = parse_scheme(&wal::read_file(&scheme_path, "read scheme file")?).map_err(|e| {
        StoreError::Format {
            path: scheme_path,
            detail: e,
        }
    })?;
    let mut symbols = SymbolTable::new();
    let (epoch, snap_state) = snapshot::load_snapshot(dir, &db, &mut symbols)?;
    let wal_path = snapshot::wal_path(dir, epoch);
    let scan = wal::scan_file(&wal_path)?;

    // Abort filtering: an `abort` marker cancels the op logged right
    // before it (the engine appends it only after rolling memory back).
    let mut stats = RecoveryStats {
        epoch,
        snapshot_tuples: snap_state.total_tuples(),
        wal_records: scan.records.len(),
        torn_bytes: scan.torn_bytes,
        ..RecoveryStats::default()
    };
    let mut pending: Vec<&str> = Vec::with_capacity(scan.records.len());
    for record in &scan.records {
        if record == ABORT_PAYLOAD {
            if pending.pop().is_none() {
                return Err(StoreError::Replay {
                    detail: format!(
                        "abort marker with no preceding op in {}",
                        wal_path.display()
                    ),
                });
            }
            stats.aborted += 1;
        } else {
            pending.push(record);
        }
    }

    // Replay through the normal guarded write pipeline.
    let engine = Engine::new(db.clone());
    let guard = Guard::unlimited();
    let (state, consistent) = {
        let hub = engine.hub(&snap_state, &guard).map_err(|e| {
            StoreError::Replay {
                detail: format!("cannot bind a hub to the snapshot state: {e}"),
            }
        })?;
        let writer = hub.write_handle();
        for line in pending {
            // The shared replay entry re-earns each op's verdict: a
            // rejected insert re-rejects (including inserts into a block
            // an earlier replayed op already poisoned) — the
            // deterministic re-run of what the op did originally.
            match writer.replay_op(line, &mut symbols, &guard) {
                Ok(ReplayOutcome::Rejected) => stats.rejected += 1,
                Ok(_) => {}
                Err(ReplayError::Malformed { detail, .. }) => {
                    return Err(StoreError::Replay {
                        detail: format!("bad wal record {line:?}: {detail}"),
                    })
                }
                Err(ReplayError::Exec(e)) => {
                    return Err(StoreError::Replay {
                        detail: format!("replaying {line:?} failed: {e}"),
                    })
                }
            }
            stats.replayed += 1;
        }
        let view = hub.read_view();
        (view.state().clone(), view.is_consistent())
    };

    // Truncate the torn tail and open for appends; sweep stale WALs
    // left by a crash between snapshot rename and compaction.
    let writer = WalWriter::open_at(&wal_path, scan.valid_len, true)?;
    sweep_stale_wals(dir, epoch);

    tracer.emit_with(|| TraceEvent::RecoveryReplayed {
        epoch,
        records: stats.wal_records,
        replayed: stats.replayed,
        aborted: stats.aborted,
        torn_bytes: stats.torn_bytes as usize,
    });
    if let Some(m) = &metrics {
        m.counter("store.recoveries").inc();
        m.counter("store.recovered_records").add(stats.wal_records as u64);
        m.counter("store.recovered_aborts").add(stats.aborted as u64);
        if stats.torn_bytes > 0 {
            m.counter("store.torn_tails_truncated").inc();
        }
        m.gauge("store.epoch").set(epoch);
    }

    let store = Store::from_recovery(
        dir.to_path_buf(),
        db,
        symbols,
        writer,
        epoch,
        stats.wal_records as u64,
        stats.replayed as u64,
    )
    .with_observability(tracer, metrics);
    Ok(Recovered {
        store,
        state,
        consistent,
        stats,
    })
}

/// Deletes `wal-K.log` for every `K != epoch` (best effort): stale logs
/// a crash prevented the rotation from compacting. Their ops are all in
/// the current snapshot, so they are dead weight.
fn sweep_stale_wals(dir: &Path, epoch: u64) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(num) = name.strip_prefix("wal-").and_then(|r| r.strip_suffix(".log")) {
            if num.parse::<u64>().map(|k| k != epoch).unwrap_or(false) {
                let _ = std::fs::remove_file(entry.path());
            }
        }
    }
}
