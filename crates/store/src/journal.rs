//! Durable backing for replication journals: one WAL-framed segment
//! file per origin.
//!
//! The sync layer keeps one append-only op journal per origin (see
//! `idr-sync`). This module gives each of those journals a disk file in
//! the store's WAL record framing (`[len][crc32][payload]`,
//! [`crate::wal`]), so a replica that restarts recovers every op it had
//! durably appended and nothing else:
//!
//! * opening scans the file with the same torn-tail discipline as crash
//!   recovery — a write cut mid-record truncates to the last complete
//!   record, while a complete record with a bad CRC is surfaced as
//!   [`StoreError::Corrupt`];
//! * recovery reports the chained CRC32 of the surviving records
//!   ([`crate::wal::chain_of`]), which is exactly the digest value the
//!   sync layer advertises to peers — the chain is *recomputed from the
//!   payloads*, never trusted from a header, so a journal that round-
//!   trips through disk digests identically to one that never did;
//! * appends come in two flavours: [`JournalFile::append`] (one record,
//!   one fsync when sync is on) for single client ops, and
//!   [`JournalFile::append_batch`] (N records, one fsync) for attaching
//!   a shipped range — replicated appends are group-committed by
//!   construction.

use std::path::{Path, PathBuf};

use crate::error::StoreError;
use crate::wal::{self, chain_of, WalWriter};

/// What opening a journal file recovered.
#[derive(Debug)]
pub struct JournalRecovery {
    /// The open, append-ready file positioned after the last complete
    /// record.
    pub file: JournalFile,
    /// The recovered op payloads, in append order.
    pub records: Vec<String>,
    /// The chained CRC32 over `records` (seed 0) — the origin digest a
    /// journal holding exactly these ops reports.
    pub chain: u32,
    /// Bytes of torn tail discarded (a crash mid-append), 0 normally.
    pub torn_bytes: u64,
}

/// One origin's durable journal segment.
#[derive(Debug)]
pub struct JournalFile {
    writer: WalWriter,
    path: PathBuf,
}

impl JournalFile {
    /// Opens (or creates) the journal at `path`, recovering its
    /// records. A torn tail is truncated, exactly as WAL recovery does;
    /// corruption in a complete record is an error, not data loss.
    pub fn open(path: &Path, sync: bool) -> Result<JournalRecovery, StoreError> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).map_err(|e| StoreError::Io {
                    operation: "create journal dir".to_string(),
                    path: parent.to_path_buf(),
                    message: e.to_string(),
                })?;
            }
        }
        let (records, torn_bytes, writer) = if path.exists() {
            let scan = wal::scan_file(path)?;
            let writer = WalWriter::open_at(path, scan.valid_len, sync)?;
            (scan.records, scan.torn_bytes, writer)
        } else {
            (Vec::new(), 0, WalWriter::create(path, sync)?)
        };
        let chain = chain_of(0, records.iter().map(String::as_str));
        Ok(JournalRecovery {
            file: JournalFile {
                writer,
                path: path.to_path_buf(),
            },
            records,
            chain,
            torn_bytes,
        })
    }

    /// The file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one op durably (fsyncs when sync is on).
    pub fn append(&mut self, op: &str) -> Result<(), StoreError> {
        self.writer.append(op)?;
        Ok(())
    }

    /// Appends a range of ops with a single fsync at the end — the
    /// group-commit path for attaching a shipped journal suffix.
    pub fn append_batch<'a, I: IntoIterator<Item = &'a str>>(
        &mut self,
        ops: I,
    ) -> Result<(), StoreError> {
        let mut any = false;
        for op in ops {
            self.writer.append_unsynced(op)?;
            any = true;
        }
        if any {
            self.writer.sync_now()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tempdir::TempDir;

    #[test]
    fn round_trips_records_and_chain() {
        let dir = TempDir::new("journal-file");
        let path = dir.path().join("sync/origin-0.log");
        let ops = ["insert R1: A=a B=b", "delete R1: A=a B=b"];
        {
            let mut rec = JournalFile::open(&path, true).unwrap();
            assert!(rec.records.is_empty());
            assert_eq!(rec.chain, 0);
            rec.file.append(ops[0]).unwrap();
            rec.file.append(ops[1]).unwrap();
        }
        let rec = JournalFile::open(&path, true).unwrap();
        assert_eq!(rec.records, ops);
        assert_eq!(rec.chain, chain_of(0, ops.iter().copied()));
        assert_eq!(rec.torn_bytes, 0);
    }

    #[test]
    fn batch_append_recovers_and_torn_tail_truncates() {
        let dir = TempDir::new("journal-batch");
        let path = dir.path().join("origin-1.log");
        {
            let mut rec = JournalFile::open(&path, false).unwrap();
            rec.file.append_batch(["a", "b", "c"]).unwrap();
        }
        // Tear the tail mid-record: recovery keeps the complete prefix.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let rec = JournalFile::open(&path, false).unwrap();
        assert_eq!(rec.records, ["a", "b"]);
        assert!(rec.torn_bytes > 0);
        assert_eq!(rec.chain, chain_of(0, ["a", "b"]));
        // The truncated file appends cleanly after the surviving prefix.
        let mut rec = JournalFile::open(&path, false).unwrap();
        rec.file.append("c2").unwrap();
        let rec = JournalFile::open(&path, false).unwrap();
        assert_eq!(rec.records, ["a", "b", "c2"]);
    }
}
