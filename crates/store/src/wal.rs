//! The append-only write-ahead log.
//!
//! A WAL file is a sequence of length-prefixed, checksummed records:
//!
//! ```text
//! [payload length: u32 LE] [crc32(payload): u32 LE] [payload bytes]
//! ```
//!
//! Payloads are single text lines in the CLI's fixture syntax
//! (`insert R1: A=a B=b`, `delete R2: C=c D=d`, `abort`), so a WAL is
//! inspectable with nothing but `strings`. The framing makes two failure
//! shapes distinguishable when scanning:
//!
//! * the file ends before a record completes → a **torn tail**, the
//!   expected aftermath of a crash mid-append; the scan reports the
//!   valid prefix length and recovery truncates to it;
//! * a complete record whose checksum mismatches → **corruption**,
//!   reported as a typed [`StoreError::Corrupt`] and never repaired
//!   silently.

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use crate::crc32::crc32;
use crate::error::StoreError;

/// Upper bound on one record's payload. Real records are one state line
/// (tens of bytes); a length field beyond this is corruption, not a
/// plausible record, and the scanner says so instead of allocating it.
pub const MAX_RECORD_LEN: u32 = 1 << 20;

/// Bytes of framing preceding every payload (length + checksum).
pub const RECORD_HEADER_LEN: usize = 8;

/// Frames `payload` as one record (header + bytes), ready to append.
pub fn encode_record(payload: &str) -> Vec<u8> {
    let bytes = payload.as_bytes();
    let mut out = Vec::with_capacity(RECORD_HEADER_LEN + bytes.len());
    out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(bytes).to_le_bytes());
    out.extend_from_slice(bytes);
    out
}

/// One WAL segment summarised for digest-based anti-entropy: its epoch,
/// its record count, and the chained rolling CRC32 of its payloads
/// (seeded with the previous segment's chain, so equal chains at equal
/// record counts imply — modulo CRC collisions — equal op histories).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SegmentDigest {
    /// The snapshot epoch this segment's WAL is paired with.
    pub epoch: u64,
    /// Records in the segment.
    pub records: u64,
    /// The chain value after folding every payload of this segment (and,
    /// transitively, of every earlier segment) into the rolling CRC.
    pub chain: u32,
}

/// Folds one record payload into a rolling chain value: the CRC32 of the
/// previous chain's little-endian bytes followed by the payload. Chained
/// folding commits each value to the entire payload prefix, which is what
/// lets anti-entropy verify a range extension with one `u32` compare.
pub fn fold_chain(chain: u32, payload: &str) -> u32 {
    let mut bytes = Vec::with_capacity(4 + payload.len());
    bytes.extend_from_slice(&chain.to_le_bytes());
    bytes.extend_from_slice(payload.as_bytes());
    crc32(&bytes)
}

/// The chain value of a whole payload sequence, folded from `seed`.
pub fn chain_of<'a, I: IntoIterator<Item = &'a str>>(seed: u32, payloads: I) -> u32 {
    payloads.into_iter().fold(seed, fold_chain)
}

/// The result of scanning a WAL file.
#[derive(Clone, Debug, Default)]
pub struct WalScan {
    /// The decoded payloads of every complete, checksum-valid record, in
    /// append order.
    pub records: Vec<String>,
    /// Length of the valid prefix: the scan position after the last
    /// complete record.
    pub valid_len: u64,
    /// Bytes past the valid prefix that do not form a complete record —
    /// nonzero exactly when the file has a torn tail.
    pub torn_bytes: u64,
}

/// Scans `bytes` (the contents of a WAL file at `path`; `path` is used
/// only for error context). Complete records with bad checksums are
/// corruption errors; an incomplete final record is reported as a torn
/// tail, not an error.
pub fn scan_bytes(bytes: &[u8], path: &Path) -> Result<WalScan, StoreError> {
    let mut scan = WalScan::default();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let remaining = bytes.len() - pos;
        if remaining < RECORD_HEADER_LEN {
            scan.torn_bytes = remaining as u64;
            break;
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap());
        let stored_crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
        if len > MAX_RECORD_LEN {
            return Err(StoreError::Corrupt {
                path: path.to_path_buf(),
                offset: pos as u64,
                detail: format!("record length {len} exceeds the {MAX_RECORD_LEN}-byte cap"),
            });
        }
        let total = RECORD_HEADER_LEN + len as usize;
        if remaining < total {
            scan.torn_bytes = remaining as u64;
            break;
        }
        let payload = &bytes[pos + RECORD_HEADER_LEN..pos + total];
        let computed = crc32(payload);
        if computed != stored_crc {
            return Err(StoreError::Corrupt {
                path: path.to_path_buf(),
                offset: pos as u64,
                detail: format!("stored crc {stored_crc:#010x} != computed {computed:#010x}"),
            });
        }
        let text = std::str::from_utf8(payload).map_err(|e| StoreError::Corrupt {
            path: path.to_path_buf(),
            offset: pos as u64,
            detail: format!("payload is not utf-8 despite a valid checksum: {e}"),
        })?;
        scan.records.push(text.to_string());
        pos += total;
        scan.valid_len = pos as u64;
    }
    Ok(scan)
}

/// Reads and scans the WAL file at `path`. A missing file scans as
/// empty (a fresh epoch whose first append never happened).
pub fn scan_file(path: &Path) -> Result<WalScan, StoreError> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(WalScan::default()),
        Err(e) => return Err(StoreError::io("read wal", path, e)),
    };
    scan_bytes(&bytes, path)
}

/// An open WAL file positioned for appends.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    path: PathBuf,
    /// fsync after every append (write-ahead commit point). Disabled
    /// only by tests that simulate crashes in-process.
    sync: bool,
}

impl WalWriter {
    /// Creates a new, empty WAL file (truncating any previous one).
    pub fn create(path: &Path, sync: bool) -> Result<Self, StoreError> {
        let file = File::create(path).map_err(|e| StoreError::io("create wal", path, e))?;
        if sync {
            file.sync_all().map_err(|e| StoreError::io("sync new wal", path, e))?;
        }
        Ok(WalWriter { file, path: path.to_path_buf(), sync })
    }

    /// Opens an existing WAL for appends after recovery, truncating the
    /// torn tail (if any) at `valid_len` first. A missing file is
    /// created empty.
    pub fn open_at(path: &Path, valid_len: u64, sync: bool) -> Result<Self, StoreError> {
        let file = OpenOptions::new()
            .create(true)
            .truncate(false)
            .read(true)
            .write(true)
            .open(path)
            .map_err(|e| StoreError::io("open wal", path, e))?;
        file.set_len(valid_len)
            .map_err(|e| StoreError::io("truncate torn wal tail", path, e))?;
        let mut w = WalWriter { file, path: path.to_path_buf(), sync };
        if sync {
            w.file
                .sync_all()
                .map_err(|e| StoreError::io("sync truncated wal", path, e))?;
        }
        use std::io::Seek;
        w.file
            .seek(std::io::SeekFrom::End(0))
            .map_err(|e| StoreError::io("seek wal end", path, e))?;
        Ok(w)
    }

    /// Appends one record and (when `sync`) fsyncs — the commit point
    /// the engine relies on before mutating memory. Returns the framed
    /// record's size in bytes.
    pub fn append(&mut self, payload: &str) -> Result<usize, StoreError> {
        let bytes = self.append_unsynced(payload)?;
        self.sync_now()?;
        Ok(bytes)
    }

    /// Appends one record *without* syncing — the group-commit building
    /// block: a leader appends a whole batch unsynced, then pays one
    /// [`sync_now`](WalWriter::sync_now) for all of it. Returns the
    /// framed record's size in bytes.
    pub fn append_unsynced(&mut self, payload: &str) -> Result<usize, StoreError> {
        let record = encode_record(payload);
        self.file
            .write_all(&record)
            .map_err(|e| StoreError::io("append wal record", &self.path, e))?;
        Ok(record.len())
    }

    /// Makes every append so far durable (when the sync policy is on;
    /// a no-op otherwise). Returns how long the fsync syscall took —
    /// measured here, at the syscall, so the group-commit layer can
    /// histogram raw device latency — or `None` when the sync policy is
    /// off and no fsync was issued.
    pub fn sync_now(&mut self) -> Result<Option<std::time::Duration>, StoreError> {
        if !self.sync {
            return Ok(None);
        }
        let t0 = std::time::Instant::now();
        self.file
            .sync_data()
            .map_err(|e| StoreError::io("sync wal append", &self.path, e))?;
        Ok(Some(t0.elapsed()))
    }

    /// Whether appends fsync (the commit guarantee).
    pub fn sync_enabled(&self) -> bool {
        self.sync
    }

    /// The file this writer appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Changes the fsync-per-append policy (see [`Store::with_sync`]).
    ///
    /// [`Store::with_sync`]: crate::Store::with_sync
    pub fn set_sync(&mut self, sync: bool) {
        self.sync = sync;
    }

    /// Re-reads the file and returns its current byte length.
    pub fn len(&self) -> Result<u64, StoreError> {
        self.file
            .metadata()
            .map(|m| m.len())
            .map_err(|e| StoreError::io("stat wal", &self.path, e))
    }

    /// Whether no record has been appended yet.
    pub fn is_empty(&self) -> Result<bool, StoreError> {
        Ok(self.len()? == 0)
    }
}

/// Reads a whole file, mapping I/O failures to [`StoreError::Io`].
pub fn read_file(path: &Path, what: &str) -> Result<String, StoreError> {
    let mut s = String::new();
    File::open(path)
        .and_then(|mut f| f.read_to_string(&mut s))
        .map_err(|e| StoreError::io(what, path, e))?;
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tempdir::TempDir;

    #[test]
    fn append_then_scan_round_trips() {
        let dir = TempDir::new("wal-roundtrip");
        let path = dir.path().join("wal-0.log");
        let mut w = WalWriter::create(&path, true).unwrap();
        for payload in ["insert R1: A=a B=b", "abort", "delete R1: A=a B=b"] {
            w.append(payload).unwrap();
        }
        let scan = scan_file(&path).unwrap();
        assert_eq!(
            scan.records,
            vec!["insert R1: A=a B=b", "abort", "delete R1: A=a B=b"]
        );
        assert_eq!(scan.torn_bytes, 0);
        assert_eq!(scan.valid_len, w.len().unwrap());
    }

    #[test]
    fn every_truncation_is_a_clean_prefix_or_a_torn_tail() {
        let payloads = ["insert R1: A=a B=b", "delete R2: C=c D=d", "abort"];
        let mut bytes = Vec::new();
        let mut boundaries = vec![0u64];
        for p in payloads {
            bytes.extend_from_slice(&encode_record(p));
            boundaries.push(bytes.len() as u64);
        }
        let path = Path::new("synthetic.log");
        for cut in 0..=bytes.len() {
            let scan = scan_bytes(&bytes[..cut], path).unwrap();
            let complete = boundaries.iter().filter(|&&b| b <= cut as u64).count() - 1;
            assert_eq!(scan.records.len(), complete, "cut {cut}");
            assert_eq!(scan.valid_len, boundaries[complete], "cut {cut}");
            assert_eq!(scan.torn_bytes, cut as u64 - boundaries[complete], "cut {cut}");
            assert_eq!(
                scan.records,
                payloads[..complete].to_vec(),
                "cut {cut}"
            );
        }
    }

    #[test]
    fn corrupt_payload_is_a_typed_error_not_a_torn_tail() {
        let mut bytes = encode_record("insert R1: A=a B=b");
        let flip = RECORD_HEADER_LEN + 3;
        bytes[flip] ^= 0x40;
        let err = scan_bytes(&bytes, Path::new("bad.log")).unwrap_err();
        match err {
            StoreError::Corrupt { offset, detail, .. } => {
                assert_eq!(offset, 0);
                assert!(detail.contains("crc"), "{detail}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn oversized_length_field_is_corruption() {
        let mut bytes = encode_record("x");
        bytes[..4].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = scan_bytes(&bytes, Path::new("bad.log")).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { .. }), "{err:?}");
    }

    #[test]
    fn open_at_truncates_the_torn_tail() {
        let dir = TempDir::new("wal-torn");
        let path = dir.path().join("wal-0.log");
        let mut w = WalWriter::create(&path, false).unwrap();
        w.append("insert R1: A=a B=b").unwrap();
        let valid = w.len().unwrap();
        drop(w);
        // Simulate a crash mid-append: half a record after the valid one.
        let mut bytes = std::fs::read(&path).unwrap();
        let torn = encode_record("delete R1: A=a B=b");
        bytes.extend_from_slice(&torn[..torn.len() / 2]);
        std::fs::write(&path, &bytes).unwrap();

        let scan = scan_file(&path).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert!(scan.torn_bytes > 0);
        let mut w = WalWriter::open_at(&path, scan.valid_len, false).unwrap();
        assert_eq!(w.len().unwrap(), valid);
        w.append("abort").unwrap();
        let rescan = scan_file(&path).unwrap();
        assert_eq!(rescan.records, vec!["insert R1: A=a B=b", "abort"]);
        assert_eq!(rescan.torn_bytes, 0);
    }
}
