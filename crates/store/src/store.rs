//! The [`Store`]: a data directory plus an open WAL, implementing the
//! engine's [`Durability`] hook.
//!
//! A store owns the canonical [`SymbolTable`] for its data dir (behind
//! an `Arc<Mutex<…>>` so callers can keep interning while a session
//! borrows the store as its durability sink) and renders every logged op
//! through it, in the same fixture syntax the CLI parses. Snapshot
//! cadence is opt-in: with [`with_snapshot_every`](Store::with_snapshot_every)
//! set, every `n`-th completed op cuts a snapshot and rotates the WAL to
//! the next epoch.

use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use idr_core::durability::{DurableOp, Durability};
use idr_obs::{MetricsRegistry, TraceEvent, TraceHandle};
use idr_relation::exec::ExecError;
use idr_relation::parse::{render_scheme_file, render_tuple_line};
use idr_relation::{DatabaseScheme, DatabaseState, SymbolTable, Tuple};

use crate::error::StoreError;
use crate::group::GroupWal;
use crate::snapshot::{self, SCHEME_FILE};
use crate::wal::{self, SegmentDigest, WalWriter};

/// The WAL payload marking the immediately preceding op as rolled back.
pub const ABORT_PAYLOAD: &str = "abort";

/// An initialised data directory with an open write-ahead log.
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    db: DatabaseScheme,
    symbols: Arc<Mutex<SymbolTable>>,
    wal: Arc<GroupWal>,
    epoch: u64,
    wal_records: u64,
    ops_since_snapshot: u64,
    snapshot_every: Option<u64>,
    sync: bool,
    tracer: TraceHandle,
    metrics: Option<Arc<MetricsRegistry>>,
}

impl Store {
    /// Initialises `dir` as a fresh data directory: writes the scheme
    /// file, an empty epoch-0 snapshot and an empty `wal-0.log`. Errors
    /// if `dir` already holds a store.
    pub fn init(dir: &Path, db: &DatabaseScheme) -> Result<Store, StoreError> {
        std::fs::create_dir_all(dir).map_err(|e| StoreError::io("create data dir", dir, e))?;
        let scheme_path = dir.join(SCHEME_FILE);
        if scheme_path.exists() {
            return Err(StoreError::Format {
                path: scheme_path,
                detail: "data dir is already initialised (scheme.idr exists)".to_string(),
            });
        }
        std::fs::write(&scheme_path, render_scheme_file(db))
            .map_err(|e| StoreError::io("write scheme file", &scheme_path, e))?;
        let symbols = SymbolTable::new();
        snapshot::write_snapshot(dir, 0, db, &DatabaseState::empty(db), &symbols, true)?;
        let wal = WalWriter::create(&snapshot::wal_path(dir, 0), true)?;
        snapshot::fsync_dir(dir)?;
        Ok(Store {
            dir: dir.to_path_buf(),
            db: db.clone(),
            symbols: Arc::new(Mutex::new(symbols)),
            wal: Arc::new(GroupWal::new(wal)),
            epoch: 0,
            wal_records: 0,
            ops_since_snapshot: 0,
            snapshot_every: None,
            sync: true,
            tracer: TraceHandle::none(),
            metrics: None,
        })
    }

    /// Used by recovery to assemble a store positioned at the end of the
    /// (truncated) WAL.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_recovery(
        dir: PathBuf,
        db: DatabaseScheme,
        symbols: SymbolTable,
        wal: WalWriter,
        epoch: u64,
        wal_records: u64,
        ops_since_snapshot: u64,
    ) -> Store {
        Store {
            dir,
            db,
            symbols: Arc::new(Mutex::new(symbols)),
            wal: Arc::new(GroupWal::new(wal)),
            epoch,
            wal_records,
            ops_since_snapshot,
            snapshot_every: None,
            sync: true,
            tracer: TraceHandle::none(),
            metrics: None,
        }
    }

    /// Cuts a snapshot after every `n` completed ops (rotating the WAL).
    /// `None` (the default) disables automatic snapshots; call
    /// [`snapshot`](Store::snapshot) manually.
    pub fn with_snapshot_every(mut self, n: Option<u64>) -> Self {
        self.snapshot_every = n.filter(|&n| n > 0);
        self
    }

    /// Whether appends and snapshots fsync before returning (the commit
    /// guarantee; on by default). The in-process crash fuzzer disables
    /// it — simulated crashes truncate files rather than lose caches —
    /// to keep tens of thousands of recoveries fast.
    pub fn with_sync(mut self, sync: bool) -> Self {
        self.sync = sync;
        self.wal.set_sync(sync);
        self
    }

    /// Attaches a trace sink and metrics registry: appends emit
    /// `wal_appended`, snapshots `snapshot_written`, and counters under
    /// `store.*` track log and snapshot activity.
    pub fn with_observability(
        mut self,
        tracer: TraceHandle,
        metrics: Option<Arc<MetricsRegistry>>,
    ) -> Self {
        self.tracer = tracer;
        self.metrics = metrics;
        self
    }

    /// The scheme this data dir was initialised with.
    pub fn scheme(&self) -> &DatabaseScheme {
        &self.db
    }

    /// The canonical symbol table for this data dir. Every tuple handed
    /// to a durable session must be interned through it (the CLI and
    /// the fuzzer lock it around `parse_tuple_line`).
    pub fn symbols(&self) -> Arc<Mutex<SymbolTable>> {
        Arc::clone(&self.symbols)
    }

    /// The data directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The current snapshot epoch (`wal-<epoch>.log` is the open WAL).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Records in the open WAL (ops + abort markers).
    pub fn wal_records(&self) -> u64 {
        self.wal_records
    }

    /// Summarises every retained WAL segment as a chained digest vector:
    /// one [`SegmentDigest`] per `wal-<epoch>.log` still on disk, in
    /// epoch order, each segment's rolling CRC chained from the previous
    /// segment's. Two stores whose final chain values agree (at equal
    /// record counts) hold — modulo CRC collisions — the same retained
    /// op history; replication's anti-entropy compares exactly this
    /// shape per origin journal.
    ///
    /// Compacted epochs are absent by design (their ops live in the
    /// snapshot); the digest covers what a peer could still ship.
    pub fn wal_digest(&self) -> Result<Vec<SegmentDigest>, StoreError> {
        let mut epochs: Vec<u64> = Vec::new();
        let entries = std::fs::read_dir(&self.dir)
            .map_err(|e| StoreError::io("list data dir", &self.dir, e))?;
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(num) = name.strip_prefix("wal-").and_then(|r| r.strip_suffix(".log")) {
                if let Ok(epoch) = num.parse::<u64>() {
                    epochs.push(epoch);
                }
            }
        }
        epochs.sort_unstable();
        let mut digests = Vec::with_capacity(epochs.len());
        let mut chain = 0u32;
        for epoch in epochs {
            let scan = wal::scan_file(&snapshot::wal_path(&self.dir, epoch))?;
            chain = wal::chain_of(chain, scan.records.iter().map(String::as_str));
            digests.push(SegmentDigest {
                epoch,
                records: scan.records.len() as u64,
                chain,
            });
        }
        Ok(digests)
    }

    /// Cuts an epoch-`e+1` snapshot of `state` and rotates the WAL: the
    /// snapshot is installed by atomic rename, a fresh empty WAL is
    /// created for the new epoch, and the old epoch's WAL is deleted
    /// (compaction). A crash between those steps is safe — recovery
    /// reads the snapshot's epoch and treats its missing WAL as empty.
    pub fn snapshot(&mut self, state: &DatabaseState) -> Result<(), StoreError> {
        let next = self.epoch + 1;
        let tuples = {
            let symbols = self.lock_symbols();
            snapshot::write_snapshot(&self.dir, next, &self.db, state, &symbols, self.sync)?
        };
        let old_wal = snapshot::wal_path(&self.dir, self.epoch);
        self.wal
            .swap_writer(WalWriter::create(&snapshot::wal_path(&self.dir, next), self.sync)?);
        if self.sync {
            snapshot::fsync_dir(&self.dir)?;
        }
        // Compaction. Best effort: a leftover old WAL is ignored by
        // recovery (it reads only the snapshot's epoch) and removed on
        // the next rotation — but the skip is surfaced, not swallowed.
        if let Err(e) = std::fs::remove_file(&old_wal) {
            if e.kind() != std::io::ErrorKind::NotFound {
                self.tracer.emit_with(|| TraceEvent::CompactionSkipped {
                    path: Arc::from(old_wal.display().to_string().as_str()),
                    error: Arc::from(e.to_string().as_str()),
                });
                if let Some(m) = &self.metrics {
                    m.counter("store.compactions_skipped").inc();
                }
            }
        }
        self.epoch = next;
        self.wal_records = 0;
        self.ops_since_snapshot = 0;
        self.tracer
            .emit_with(|| TraceEvent::SnapshotWritten { epoch: next, tuples });
        if let Some(m) = &self.metrics {
            m.counter("store.snapshots").inc();
            m.gauge("store.epoch").set(next);
        }
        Ok(())
    }

    /// Locks the symbol table, recovering from a poisoned lock (the
    /// table is plain data; a panicked inter-thread user cannot leave it
    /// logically half-written for our purposes).
    fn lock_symbols(&self) -> std::sync::MutexGuard<'_, SymbolTable> {
        self.symbols
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Renders `op` as a WAL payload (`insert R1: A=a B=b`). Fails if a
    /// tuple value was not interned through this store's table.
    pub(crate) fn render_op(&self, op: DurableOp<'_>) -> Result<(&'static str, String), StoreError> {
        let (verb, rel, t): (&'static str, usize, &Tuple) = match op {
            DurableOp::Insert { rel, t } => ("insert", rel, t),
            DurableOp::Delete { rel, t } => ("delete", rel, t),
        };
        let symbols = self.lock_symbols();
        for (_, v) in t.iter() {
            if v.index() >= symbols.len() {
                return Err(StoreError::Replay {
                    detail: format!(
                        "tuple value #{} is not interned in the store's symbol table; \
                         intern through Store::symbols()",
                        v.index()
                    ),
                });
            }
        }
        Ok((verb, format!("{verb} {}", render_tuple_line(&self.db, &symbols, rel, t))))
    }

    /// Appends one payload, updating counters and emitting the
    /// `wal_appended` event.
    fn append(&mut self, verb: &'static str, payload: &str) -> Result<(), StoreError> {
        let bytes = self.wal.append(payload)?;
        self.note_append(verb, bytes);
        Ok(())
    }

    /// Bookkeeping for one appended record: the record counter, the
    /// `wal_appended` event and the `store.wal_*` metrics. Split from
    /// [`append`](Store::append) so [`crate::SharedStore`] can run the
    /// group-commit append *outside* the store lock and account for it
    /// afterwards.
    pub(crate) fn note_append(&mut self, verb: &'static str, bytes: usize) {
        self.wal_records += 1;
        self.tracer.emit_with(|| TraceEvent::WalAppended {
            verb: std::sync::Arc::from(verb),
            bytes,
        });
        if let Some(m) = &self.metrics {
            m.counter("store.wal_appends").inc();
            m.counter("store.wal_bytes").add(bytes as u64);
        }
    }

    /// Counts one abort marker.
    pub(crate) fn note_abort(&mut self) {
        if let Some(m) = &self.metrics {
            m.counter("store.aborts").inc();
        }
    }

    /// Counts one completed op against the snapshot cadence and reports
    /// whether a snapshot is now due.
    pub(crate) fn snapshot_due(&mut self) -> bool {
        self.ops_since_snapshot += 1;
        self.snapshot_every
            .is_some_and(|n| self.ops_since_snapshot >= n)
    }

    /// The group-commit WAL shared with [`crate::SharedStore`].
    pub(crate) fn group_wal(&self) -> Arc<GroupWal> {
        Arc::clone(&self.wal)
    }

    /// The attached trace sink.
    pub(crate) fn tracer(&self) -> TraceHandle {
        self.tracer.clone()
    }

    /// The attached metrics registry.
    pub(crate) fn metrics(&self) -> Option<Arc<MetricsRegistry>> {
        self.metrics.clone()
    }
}

impl Durability for Store {
    fn log_op(&mut self, op: DurableOp<'_>) -> Result<(), ExecError> {
        let (verb, payload) = self.render_op(op)?;
        self.append(verb, &payload)?;
        Ok(())
    }

    fn log_abort(&mut self) -> Result<(), ExecError> {
        self.append("abort", ABORT_PAYLOAD)?;
        self.note_abort();
        Ok(())
    }

    fn op_finished(&mut self, state: &DatabaseState) -> Result<(), ExecError> {
        if self.snapshot_due() {
            self.snapshot(state)?;
        }
        Ok(())
    }
}
