//! Snapshots: the full state rendered in the CLI's state-file format,
//! installed atomically and paired with an epoch-numbered WAL.
//!
//! ## Data-dir layout
//!
//! ```text
//! scheme.idr      — the scheme, written once at init (render_scheme_file)
//! snapshot.state  — "epoch: N" header + state lines (render_state_file)
//! wal-N.log       — ops since the epoch-N snapshot
//! ```
//!
//! A snapshot at epoch `N` is paired with `wal-N.log`; cutting a new one
//! writes `snapshot.tmp`, fsyncs it, renames it over `snapshot.state`
//! (atomic on POSIX), fsyncs the directory, creates the next epoch's
//! empty WAL and deletes stale ones. A crash at *any* point leaves
//! either the old pair or the new pair loadable: the rename is the
//! commit point, and a missing `wal-N.log` (crash between rename and
//! create) reads as an empty log.

use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};

use idr_relation::parse::{parse_state, render_state_file};
use idr_relation::{DatabaseScheme, DatabaseState, SymbolTable};

use crate::error::StoreError;

/// The scheme file, written once at init.
pub const SCHEME_FILE: &str = "scheme.idr";
/// The current snapshot.
pub const SNAPSHOT_FILE: &str = "snapshot.state";
/// Scratch name the next snapshot is staged under before the rename.
pub const SNAPSHOT_TMP: &str = "snapshot.tmp";

/// The WAL paired with the epoch-`epoch` snapshot.
pub fn wal_path(dir: &Path, epoch: u64) -> PathBuf {
    dir.join(format!("wal-{epoch}.log"))
}

/// fsyncs a directory so a just-renamed entry survives power loss.
pub fn fsync_dir(dir: &Path) -> Result<(), StoreError> {
    File::open(dir)
        .and_then(|f| f.sync_all())
        .map_err(|e| StoreError::io("fsync data dir", dir, e))
}

/// Writes the epoch-`epoch` snapshot of `state` atomically: temp file,
/// fsync, rename over [`SNAPSHOT_FILE`], fsync dir. Returns the tuple
/// count written. Does **not** touch any WAL — rotation is the caller's
/// (the [`Store`](crate::Store)'s) job, after the rename commits.
pub fn write_snapshot(
    dir: &Path,
    epoch: u64,
    db: &DatabaseScheme,
    state: &DatabaseState,
    symbols: &SymbolTable,
    sync: bool,
) -> Result<usize, StoreError> {
    let tmp = dir.join(SNAPSHOT_TMP);
    let body = format!(
        "# idr-store snapshot\nepoch: {epoch}\n{}",
        render_state_file(db, state, symbols)
    );
    let mut f = File::create(&tmp).map_err(|e| StoreError::io("create snapshot tmp", &tmp, e))?;
    f.write_all(body.as_bytes())
        .map_err(|e| StoreError::io("write snapshot tmp", &tmp, e))?;
    if sync {
        f.sync_all()
            .map_err(|e| StoreError::io("sync snapshot tmp", &tmp, e))?;
    }
    drop(f);
    let dest = dir.join(SNAPSHOT_FILE);
    std::fs::rename(&tmp, &dest).map_err(|e| StoreError::io("rename snapshot", &dest, e))?;
    if sync {
        fsync_dir(dir)?;
    }
    Ok(state.total_tuples())
}

/// Loads [`SNAPSHOT_FILE`]: returns its epoch and the state, interning
/// values into `symbols`.
pub fn load_snapshot(
    dir: &Path,
    db: &DatabaseScheme,
    symbols: &mut SymbolTable,
) -> Result<(u64, DatabaseState), StoreError> {
    let path = dir.join(SNAPSHOT_FILE);
    let text = crate::wal::read_file(&path, "read snapshot")?;
    let mut epoch: Option<u64> = None;
    let mut body = String::new();
    for line in text.lines() {
        if let Some(rest) = line.trim().strip_prefix("epoch:") {
            if epoch.is_some() {
                return Err(StoreError::Format {
                    path,
                    detail: "duplicate epoch header".to_string(),
                });
            }
            epoch = Some(rest.trim().parse().map_err(|e| StoreError::Format {
                path: path.clone(),
                detail: format!("bad epoch {rest:?}: {e}"),
            })?);
        } else {
            body.push_str(line);
            body.push('\n');
        }
    }
    let epoch = epoch.ok_or_else(|| StoreError::Format {
        path: path.clone(),
        detail: "missing 'epoch: N' header".to_string(),
    })?;
    let state = parse_state(&body, db, symbols).map_err(|e| StoreError::Format {
        path: path.clone(),
        detail: e,
    })?;
    Ok((epoch, state))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tempdir::TempDir;
    use idr_relation::parse::parse_scheme;

    fn scheme() -> DatabaseScheme {
        parse_scheme("universe: A B C D\nscheme R1: A B keys A\nscheme R2: C D keys C\n").unwrap()
    }

    #[test]
    fn snapshot_round_trips_state_and_epoch() {
        let dir = TempDir::new("snap");
        let db = scheme();
        let mut sym = SymbolTable::new();
        let state =
            parse_state("R1: A=a B=b\nR2: C=c D=d\n", &db, &mut sym).unwrap();
        let written = write_snapshot(dir.path(), 7, &db, &state, &sym, true).unwrap();
        assert_eq!(written, 2);
        assert!(!dir.path().join(SNAPSHOT_TMP).exists());

        let mut sym2 = SymbolTable::new();
        let (epoch, back) = load_snapshot(dir.path(), &db, &mut sym2).unwrap();
        assert_eq!(epoch, 7);
        assert_eq!(
            render_state_file(&db, &back, &sym2),
            render_state_file(&db, &state, &sym)
        );
    }

    #[test]
    fn missing_epoch_header_is_a_format_error() {
        let dir = TempDir::new("snap-noepoch");
        std::fs::write(dir.path().join(SNAPSHOT_FILE), "R1: A=a B=b\n").unwrap();
        let db = scheme();
        let mut sym = SymbolTable::new();
        let err = load_snapshot(dir.path(), &db, &mut sym).unwrap_err();
        assert!(matches!(err, StoreError::Format { .. }), "{err:?}");
    }

    #[test]
    fn a_new_snapshot_replaces_the_old_one_atomically() {
        let dir = TempDir::new("snap-replace");
        let db = scheme();
        let mut sym = SymbolTable::new();
        let s1 = parse_state("R1: A=a B=b\n", &db, &mut sym).unwrap();
        let s2 = parse_state("R2: C=c D=d\n", &db, &mut sym).unwrap();
        write_snapshot(dir.path(), 0, &db, &s1, &sym, true).unwrap();
        write_snapshot(dir.path(), 1, &db, &s2, &sym, true).unwrap();
        let mut sym2 = SymbolTable::new();
        let (epoch, back) = load_snapshot(dir.path(), &db, &mut sym2).unwrap();
        assert_eq!(epoch, 1);
        assert_eq!(back.total_tuples(), 1);
        assert_eq!(back.relation(1).len(), 1);
    }
}
