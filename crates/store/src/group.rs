//! Group commit: coalescing concurrent writers' WAL appends into one
//! framed batch and one fsync.
//!
//! [`GroupWal`] wraps the open [`WalWriter`] behind a leader/follower
//! protocol. Every append enqueues its payload and then either
//!
//! * finds its record already durable (a concurrent leader's batch
//!   carried it) and returns, or
//! * becomes the **leader**: it optionally sleeps for the commit window,
//!   drains the whole pending queue, writes the batch and pays **one**
//!   fsync for all of it — while followers whose records ride in the
//!   batch block on a condvar until the leader publishes durability.
//!
//! The queue assigns sequence numbers in arrival order and the leader
//! writes the drained batch in that order, so the on-disk record order
//! equals enqueue order — per-writer (and therefore per-block) WAL order
//! is preserved, which is what keeps serial replay of the log equal to
//! the concurrent execution (Theorem 4.2).
//!
//! With a zero window and a single caller, every append is its own
//! leader and its own batch: byte-for-byte the classic one-fsync-per-op
//! WAL. Under concurrency batching emerges naturally even at window
//! zero, because appends arriving while the leader is inside `fsync`
//! pile up for the next batch.
//!
//! A failed batch write/fsync is **sticky**: the error is broadcast to
//! every waiter and every later append — a WAL that may have lost a
//! committed-ack'd record must not accept new ops.
//!
//! [`SharedStore`] layers the rest of the store contract on top: it
//! implements the engine's [`DurabilitySink`] (the `&self`, many-writer
//! shape) by rendering ops under a short store lock, appending
//! through the group WAL *without* holding the store lock, and cutting
//! quiesced snapshots when the cadence says one is due.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use idr_core::durability::{DurabilitySink, DurableOp};
use idr_obs::timeline::{self, Phase};
use idr_obs::{Counter, Histogram, MetricsRegistry, TraceEvent, TraceHandle};
use idr_relation::exec::ExecError;
use idr_relation::DatabaseState;

use crate::error::StoreError;
use crate::store::{Store, ABORT_PAYLOAD};
use crate::wal::WalWriter;

/// The append queue the leader drains. Sequence numbers are assigned at
/// enqueue; `durable_seq` advances only when a batch's fsync returns.
#[derive(Debug, Default)]
struct Queue {
    pending: VecDeque<String>,
    /// Seq of the most recently enqueued record (first record is 1).
    next_seq: u64,
    /// Seq of the last record drained into a batch.
    taken_seq: u64,
    /// Seq of the last record known durable.
    durable_seq: u64,
    /// A leader is currently writing a batch.
    leader_active: bool,
    /// Sticky batch failure: set once, broadcast to every waiter and
    /// every later append.
    failed: Option<StoreError>,
}

/// Pre-resolved handles for every metric the commit path touches. The
/// registry's name lookup (a map lock) happens once, when grouping is
/// enabled — the leader's per-batch bookkeeping is then pure atomics,
/// so a concurrent registry snapshot can never stall a commit.
#[derive(Debug)]
struct GroupMetrics {
    batches: Arc<Counter>,
    ops: Arc<Counter>,
    fsyncs: Arc<Counter>,
    commit_us: Arc<Histogram>,
    /// Records per committed batch, on a 1-2-5 count scale.
    batch_size: Arc<Histogram>,
    /// Raw fsync syscall latency per batch.
    fsync_us: Arc<Histogram>,
}

impl GroupMetrics {
    fn new(m: &MetricsRegistry) -> GroupMetrics {
        GroupMetrics {
            batches: m.counter("store.group_batches"),
            ops: m.counter("store.group_ops"),
            fsyncs: m.counter("store.fsyncs"),
            commit_us: m.latency_histogram("store.group_commit_us"),
            batch_size: m.histogram("store.batch_size", &[1, 2, 5, 10, 20, 50, 100, 200, 500]),
            fsync_us: m.latency_histogram("store.fsync_us"),
        }
    }
}

/// Grouping configuration + observability, settable after construction.
#[derive(Debug, Default)]
struct GroupCfg {
    /// How long a leader lingers before draining the queue, to let
    /// concurrent appends pile into its batch. Zero: drain immediately.
    window: Duration,
    /// Emit `group_committed` events and `store.group_*` metrics. Off
    /// for the single-writer legacy path so its event stream is
    /// unchanged.
    grouping: bool,
    tracer: TraceHandle,
    metrics: Option<Arc<GroupMetrics>>,
}

/// The group-commit WAL: an open [`WalWriter`] behind the
/// leader/follower batching protocol (see the module docs).
#[derive(Debug)]
pub struct GroupWal {
    writer: Mutex<WalWriter>,
    queue: Mutex<Queue>,
    cond: Condvar,
    cfg: Mutex<GroupCfg>,
    batches: AtomicU64,
    fsyncs: AtomicU64,
}

fn relock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl GroupWal {
    /// Wraps an open writer. Grouping starts disabled (every append is
    /// its own batch — classic per-op commit); [`SharedStore::new`]
    /// enables it.
    pub fn new(writer: WalWriter) -> GroupWal {
        GroupWal {
            writer: Mutex::new(writer),
            queue: Mutex::new(Queue::default()),
            cond: Condvar::new(),
            cfg: Mutex::new(GroupCfg::default()),
            batches: AtomicU64::new(0),
            fsyncs: AtomicU64::new(0),
        }
    }

    /// Turns on group observability (events + metrics) and sets the
    /// commit window.
    pub(crate) fn enable_grouping(
        &self,
        window: Duration,
        tracer: TraceHandle,
        metrics: Option<Arc<MetricsRegistry>>,
    ) {
        *relock(&self.cfg) = GroupCfg {
            window,
            grouping: true,
            tracer,
            metrics: metrics.map(|m| Arc::new(GroupMetrics::new(&m))),
        };
    }

    /// Changes the commit window (leader linger time).
    pub fn set_window(&self, window: Duration) {
        relock(&self.cfg).window = window;
    }

    /// Changes the fsync-per-batch policy on the underlying writer.
    pub(crate) fn set_sync(&self, sync: bool) {
        relock(&self.writer).set_sync(sync);
    }

    /// Swaps in a fresh writer (snapshot rotation). The caller must have
    /// quiesced appends — the store only rotates from a safe point with
    /// no op in flight.
    pub(crate) fn swap_writer(&self, new: WalWriter) {
        let q = relock(&self.queue);
        debug_assert!(
            q.pending.is_empty() && !q.leader_active,
            "WAL rotation with appends in flight"
        );
        drop(q);
        *relock(&self.writer) = new;
    }

    /// Batches committed so far (each batch = one commit barrier, one
    /// fsync when the sync policy is on).
    pub fn batches(&self) -> u64 {
        self.batches.load(Ordering::Relaxed)
    }

    /// fsyncs actually issued for batches (0 when the sync policy is
    /// off; then [`batches`](GroupWal::batches) still counts barriers).
    pub fn fsyncs(&self) -> u64 {
        self.fsyncs.load(Ordering::Relaxed)
    }

    /// Appends one payload through the group-commit protocol and returns
    /// once it is durable (or the sync policy is off and it is written).
    /// Returns the framed record's size in bytes.
    ///
    /// Record order on disk equals the arrival order of `append` calls,
    /// so callers that serialize their own ops (the per-block write
    /// lanes) keep their WAL order.
    pub fn append(&self, payload: &str) -> Result<usize, StoreError> {
        let framed = crate::wal::RECORD_HEADER_LEN + payload.len();
        let mut q = relock(&self.queue);
        if let Some(e) = &q.failed {
            return Err(e.clone());
        }
        q.next_seq += 1;
        let my_seq = q.next_seq;
        q.pending.push_back(payload.to_string());
        // The op's record is queued for the commit writer: wal-append
        // is done from the op's point of view; what follows is waiting.
        timeline::stamp_current(Phase::WalAppend);
        self.commit_from(q, my_seq, framed)
    }

    /// Appends `payloads` as one contiguous run through the group-commit
    /// protocol and returns once the *last* of them is durable. All
    /// records are enqueued under a single queue lock, so no concurrent
    /// writer's record can interleave between them and the whole run
    /// rides one commit barrier — one write pass, one fsync — no matter
    /// how large the batch is. Returns the total framed size in bytes.
    pub fn append_batch(&self, payloads: &[String]) -> Result<usize, StoreError> {
        if payloads.is_empty() {
            return Ok(0);
        }
        let framed = payloads
            .iter()
            .map(|p| crate::wal::RECORD_HEADER_LEN + p.len())
            .sum();
        let mut q = relock(&self.queue);
        if let Some(e) = &q.failed {
            return Err(e.clone());
        }
        for p in payloads {
            q.next_seq += 1;
            q.pending.push_back(p.clone());
        }
        let my_seq = q.next_seq;
        timeline::stamp_current(Phase::WalAppend);
        // Waiting on the last record's seq covers the whole run: the
        // queue is drained in seq order, so a batch that carries the
        // last record carried (or followed) every earlier one.
        self.commit_from(q, my_seq, framed)
    }

    /// The shared tail of [`append`](GroupWal::append) and
    /// [`append_batch`](GroupWal::append_batch): wait until `my_seq` is
    /// durable (a concurrent leader's batch carried it) or become the
    /// leader and commit everything pending.
    fn commit_from<'a>(
        &'a self,
        mut q: MutexGuard<'a, Queue>,
        my_seq: u64,
        framed: usize,
    ) -> Result<usize, StoreError> {
        loop {
            if let Some(e) = &q.failed {
                return Err(e.clone());
            }
            if q.durable_seq >= my_seq {
                // Follower whose record rode a leader's batch: the wait
                // and the durability point collapse into this wakeup.
                timeline::stamp_current(Phase::BatchWait);
                timeline::stamp_current(Phase::Fsync);
                return Ok(framed);
            }
            if !q.leader_active {
                q.leader_active = true;
                break;
            }
            q = self
                .cond
                .wait(q)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        // Leader. Linger for the window so concurrent appends can pile
        // into this batch, then drain everything pending.
        let window = relock(&self.cfg).window;
        if !window.is_zero() {
            drop(q);
            std::thread::sleep(window);
            q = relock(&self.queue);
        }
        let batch: Vec<String> = q.pending.drain(..).collect();
        let batch_end = q.taken_seq + batch.len() as u64;
        q.taken_seq = batch_end;
        drop(q);
        // Leader's batch-wait = its linger + drain; the write + fsync
        // that follow are accounted to the fsync phase.
        timeline::stamp_current(Phase::BatchWait);

        // One write pass + one fsync for the whole batch, outside the
        // queue lock so followers can keep enqueuing for the next batch.
        let t0 = Instant::now();
        let wrote: Result<(usize, Option<Duration>), StoreError> = (|| {
            let mut w = relock(&self.writer);
            let mut bytes = 0usize;
            for p in &batch {
                bytes += w.append_unsynced(p)?;
            }
            let fsync = w.sync_now()?;
            Ok((bytes, fsync))
        })();

        let mut q = relock(&self.queue);
        q.leader_active = false;
        let out = match wrote {
            Ok((bytes, fsync)) => {
                q.durable_seq = batch_end;
                timeline::stamp_current(Phase::Fsync);
                self.batches.fetch_add(1, Ordering::Relaxed);
                if fsync.is_some() {
                    self.fsyncs.fetch_add(1, Ordering::Relaxed);
                }
                let cfg = relock(&self.cfg);
                if cfg.grouping {
                    let ops = batch.len();
                    cfg.tracer
                        .emit_with(|| TraceEvent::GroupCommitted { ops, bytes });
                    if let Some(m) = &cfg.metrics {
                        m.batches.inc();
                        m.ops.add(ops as u64);
                        m.batch_size.observe(ops as u64);
                        if let Some(d) = fsync {
                            m.fsyncs.inc();
                            m.fsync_us.observe_duration(d);
                        }
                        m.commit_us.observe_duration(t0.elapsed());
                    }
                }
                Ok(framed)
            }
            Err(e) => {
                // Sticky: a batch that may have half-landed must fail
                // every rider and every later append.
                q.failed = Some(e.clone());
                Err(e)
            }
        };
        drop(q);
        self.cond.notify_all();
        out
    }
}

/// A [`Store`] shared by concurrent writers: the engine's owned
/// [`DurabilitySink`], with group-commit WAL appends.
///
/// The store proper (symbol table, counters, snapshot rotation) sits
/// behind a mutex that is only held for short render/bookkeeping
/// sections; the WAL append — the slow, fsyncing part — goes through the
/// lock-free-to-enqueue [`GroupWal`], so writers on different blocks
/// overlap their commits into shared batches.
///
/// ```
/// use std::sync::Arc;
/// use idr_core::Engine;
/// use idr_relation::exec::Guard;
/// use idr_relation::parse::{parse_scheme, parse_tuple_line};
/// use idr_store::{SharedStore, Store};
///
/// let db = parse_scheme(
///     "universe: A B C D\n\
///      scheme R1: A B keys A\n\
///      scheme R2: C D keys C\n",
/// )
/// .unwrap();
/// let dir = idr_store::tempdir::TempDir::new("shared-doc");
/// let shared = Arc::new(SharedStore::new(Store::init(dir.path(), &db).unwrap()));
///
/// let engine = Engine::new(db.clone());
/// let guard = Guard::unlimited();
/// let state = idr_relation::DatabaseState::empty(&db);
/// let hub = engine.hub_with(&state, &guard, shared.clone()).unwrap();
/// let symbols = shared.symbols();
/// let (rel, t) = parse_tuple_line("R1: A=a B=b", &db, &mut symbols.lock().unwrap()).unwrap();
/// assert!(hub.write_handle().insert(rel, t, &guard).unwrap());
/// assert_eq!(shared.lock().wal_records(), 1);
/// ```
#[derive(Debug)]
pub struct SharedStore {
    inner: Mutex<Store>,
    wal: Arc<GroupWal>,
    /// Pre-resolved `store.commit_us` handle: the per-op commit path
    /// must not pay a registry name lookup.
    commit_us: Option<Arc<Histogram>>,
}

impl SharedStore {
    /// Wraps a store for concurrent use, enabling group commit with a
    /// zero window (batching still emerges under concurrency; see
    /// [`with_group_window`](SharedStore::with_group_window)).
    pub fn new(store: Store) -> SharedStore {
        let wal = store.group_wal();
        wal.enable_grouping(Duration::ZERO, store.tracer(), store.metrics());
        let commit_us = store
            .metrics()
            .map(|m| m.latency_histogram("store.commit_us"));
        SharedStore {
            inner: Mutex::new(store),
            wal,
            commit_us,
        }
    }

    /// Sets the group-commit window: how long a commit leader lingers to
    /// let concurrent writers join its batch. Zero (the default) trades
    /// no latency; a few hundred microseconds buys bigger batches under
    /// load.
    pub fn with_group_window(self, window: Duration) -> Self {
        self.wal.set_window(window);
        self
    }

    /// Locks the underlying store (snapshot cutting, counters, epoch —
    /// the bookkeeping surface). Never held across an append.
    pub fn lock(&self) -> MutexGuard<'_, Store> {
        relock(&self.inner)
    }

    /// The canonical symbol table of the data dir (see
    /// [`Store::symbols`]).
    pub fn symbols(&self) -> Arc<Mutex<idr_relation::SymbolTable>> {
        self.lock().symbols()
    }

    /// The group WAL, for batch/fsync counters.
    pub fn group_wal(&self) -> Arc<GroupWal> {
        Arc::clone(&self.wal)
    }
}

impl DurabilitySink for SharedStore {
    fn log_op(&self, op: DurableOp<'_>) -> Result<(), ExecError> {
        let t0 = Instant::now();
        let (verb, payload) = self.lock().render_op(op)?;
        // The slow part — batched write + fsync — runs with the store
        // lock *released*, so concurrent renders/bookkeeping proceed.
        let bytes = self.wal.append(&payload)?;
        let mut store = self.lock();
        store.note_append(verb, bytes);
        if let Some(h) = &self.commit_us {
            h.observe_duration(t0.elapsed());
        }
        Ok(())
    }

    fn log_ops(&self, ops: &[DurableOp<'_>]) -> Result<(), ExecError> {
        if ops.is_empty() {
            return Ok(());
        }
        let t0 = Instant::now();
        let mut verbs = Vec::with_capacity(ops.len());
        let mut payloads = Vec::with_capacity(ops.len());
        {
            // One store lock for all the renders, released before the
            // slow batched write + fsync.
            let store = self.lock();
            for &op in ops {
                let (verb, payload) = store.render_op(op)?;
                verbs.push(verb);
                payloads.push(payload);
            }
        }
        self.wal.append_batch(&payloads)?;
        let mut store = self.lock();
        for (verb, payload) in verbs.iter().zip(&payloads) {
            store.note_append(verb, crate::wal::RECORD_HEADER_LEN + payload.len());
        }
        if let Some(h) = &self.commit_us {
            h.observe_duration(t0.elapsed());
        }
        Ok(())
    }

    fn log_abort(&self) -> Result<(), ExecError> {
        let bytes = self.wal.append(ABORT_PAYLOAD)?;
        let mut store = self.lock();
        store.note_append("abort", bytes);
        store.note_abort();
        Ok(())
    }

    fn op_finished(&self) -> Result<bool, ExecError> {
        Ok(self.lock().snapshot_due())
    }

    fn write_snapshot(&self, state: &DatabaseState) -> Result<(), ExecError> {
        self.lock().snapshot(state)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tempdir::TempDir;
    use crate::wal;

    fn writer(dir: &TempDir, sync: bool) -> WalWriter {
        WalWriter::create(&dir.path().join("wal-0.log"), sync).unwrap()
    }

    #[test]
    fn single_threaded_zero_window_is_one_batch_per_op() {
        let dir = TempDir::new("group-serial");
        let g = GroupWal::new(writer(&dir, false));
        for i in 0..5 {
            g.append(&format!("insert R1: A=a{i} B=b")).unwrap();
        }
        assert_eq!(g.batches(), 5, "no concurrency, no batching");
        let scan = wal::scan_file(&dir.path().join("wal-0.log")).unwrap();
        assert_eq!(scan.records.len(), 5);
        assert_eq!(scan.records[3], "insert R1: A=a3 B=b");
    }

    #[test]
    fn concurrent_appends_all_land_in_arrival_order_with_fewer_batches() {
        let dir = TempDir::new("group-concurrent");
        let g = Arc::new(GroupWal::new(writer(&dir, false)));
        g.set_window(Duration::from_micros(300));
        const WRITERS: usize = 4;
        const EACH: usize = 25;
        std::thread::scope(|s| {
            for w in 0..WRITERS {
                let g = Arc::clone(&g);
                s.spawn(move || {
                    for i in 0..EACH {
                        g.append(&format!("insert R{w}: A=w{w}i{i} B=b")).unwrap();
                    }
                });
            }
        });
        let scan = wal::scan_file(&dir.path().join("wal-0.log")).unwrap();
        assert_eq!(scan.records.len(), WRITERS * EACH, "no record lost");
        // Per-writer order is preserved even though batches interleave.
        for w in 0..WRITERS {
            let mine: Vec<&String> = scan
                .records
                .iter()
                .filter(|r| r.contains(&format!("A=w{w}i")))
                .collect();
            assert_eq!(mine.len(), EACH);
            for (i, r) in mine.iter().enumerate() {
                assert!(r.contains(&format!("A=w{w}i{i} ")), "writer {w} out of order: {r}");
            }
        }
        assert!(
            g.batches() <= (WRITERS * EACH) as u64,
            "batches never exceed appends"
        );
    }

    #[test]
    fn append_batch_is_one_barrier_and_preserves_order() {
        let dir = TempDir::new("group-batch");
        let g = GroupWal::new(writer(&dir, false));
        let payloads: Vec<String> = (0..50)
            .map(|i| format!("insert R1: A=a{i} B=b"))
            .collect();
        g.append_batch(&payloads).unwrap();
        assert_eq!(g.batches(), 1, "a whole batch rides one commit barrier");
        g.append("insert R1: A=tail B=b").unwrap();
        let scan = wal::scan_file(&dir.path().join("wal-0.log")).unwrap();
        assert_eq!(scan.records.len(), 51);
        for (i, r) in scan.records[..50].iter().enumerate() {
            assert_eq!(r, &format!("insert R1: A=a{i} B=b"), "batch order kept");
        }
        assert_eq!(scan.records[50], "insert R1: A=tail B=b");
    }

    #[test]
    fn append_batch_interleaves_whole_against_concurrent_appends() {
        // A batch enqueued under one queue lock is contiguous on disk no
        // matter how many single appends race with it.
        let dir = TempDir::new("group-batch-race");
        let g = Arc::new(GroupWal::new(writer(&dir, false)));
        g.set_window(Duration::from_micros(200));
        std::thread::scope(|s| {
            let gb = Arc::clone(&g);
            s.spawn(move || {
                for b in 0..20 {
                    let batch: Vec<String> =
                        (0..10).map(|i| format!("insert R1: A=b{b}x{i} B=b")).collect();
                    gb.append_batch(&batch).unwrap();
                }
            });
            let ga = Arc::clone(&g);
            s.spawn(move || {
                for i in 0..50 {
                    ga.append(&format!("insert R2: C=s{i} D=d")).unwrap();
                }
            });
        });
        let scan = wal::scan_file(&dir.path().join("wal-0.log")).unwrap();
        assert_eq!(scan.records.len(), 20 * 10 + 50, "no record lost");
        // Each batch's 10 records are contiguous and in order.
        for b in 0..20 {
            let pos: Vec<usize> = scan
                .records
                .iter()
                .enumerate()
                .filter(|(_, r)| r.contains(&format!("A=b{b}x")))
                .map(|(i, _)| i)
                .collect();
            assert_eq!(pos.len(), 10);
            for w in pos.windows(2) {
                assert_eq!(w[1], w[0] + 1, "batch {b} torn apart on disk");
            }
        }
    }

    #[test]
    fn batch_failure_is_sticky_and_broadcast() {
        let dir = TempDir::new("group-fail");
        let g = GroupWal::new(writer(&dir, false));
        g.append("insert R1: A=a B=b").unwrap();
        // Poison the queue the way a failed batch would.
        relock(&g.queue).failed = Some(StoreError::Replay {
            detail: "injected batch failure".to_string(),
        });
        let err = g.append("insert R1: A=a2 B=b").unwrap_err();
        assert!(matches!(err, StoreError::Replay { .. }), "{err:?}");
        // Still failing: no recovery without reopening the store.
        assert!(g.append("abort").is_err());
    }
}
