//! Algorithm 6 — recognition of independence-reducible database schemes
//! (§5.2).
//!
//! Step 1 computes the key-equivalent partition via KEP; step 3 tests
//! whether the induced database scheme `D = {∪KE₁, …, ∪KEₙ}` is
//! independent with respect to the (merged) embedded key dependencies. By
//! Corollary 4.1 `D` is cover-embedding BCNF, so independence is exactly
//! the uniqueness condition of \[S1]\[S2] (§2.7). Corollary 5.1 and
//! Theorem 5.1 prove the algorithm accepts *exactly* the
//! independence-reducible schemes.

use idr_fd::{Fd, FdSet, KeyDeps};
use idr_relation::{AttrSet, DatabaseScheme};

use crate::kep::{self, Partition};

/// The structure witnessing that a scheme is independence-reducible: the
/// key-equivalent partition and, per block, the union attribute set, the
/// embedded keys, and the merged embedded key dependencies (the embedded
/// cover of Algorithm 6's output).
#[derive(Clone, Debug)]
pub struct IrScheme {
    /// The independence-reducible partition `T = {T₁, …, Tₖ}` (scheme
    /// indices, canonical order).
    pub partition: Partition,
    /// For each block, `Dⱼ = ∪Tⱼ`.
    pub block_attrs: Vec<AttrSet>,
    /// For each block, the keys embedded in its member schemes
    /// (deduplicated). Each is a candidate key of the block union
    /// (key-equivalence preserves minimality).
    pub block_keys: Vec<Vec<AttrSet>>,
    /// For each block, its embedded key dependencies `Fⱼ`.
    pub block_fds: Vec<FdSet>,
    /// Scheme index → block index.
    pub block_of: Vec<usize>,
}

impl IrScheme {
    fn build(scheme: &DatabaseScheme, kd: &KeyDeps, partition: Partition) -> Self {
        let block_attrs: Vec<AttrSet> = partition
            .iter()
            .map(|b| scheme.union_of(b))
            .collect();
        let block_keys: Vec<Vec<AttrSet>> = partition
            .iter()
            .map(|b| {
                let mut ks: Vec<AttrSet> = b
                    .iter()
                    .flat_map(|&i| scheme.scheme(i).keys().iter().copied())
                    .collect();
                ks.sort();
                ks.dedup();
                ks
            })
            .collect();
        let block_fds: Vec<FdSet> = partition.iter().map(|b| kd.for_subset(b)).collect();
        let block_of = kep::block_of(&partition);
        IrScheme {
            partition,
            block_attrs,
            block_keys,
            block_fds,
            block_of,
        }
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.partition.len()
    }

    /// Whether the partition is empty (empty database scheme).
    pub fn is_empty(&self) -> bool {
        self.partition.is_empty()
    }

    /// The merged key dependencies of every block — a cover of the
    /// scheme's embedded key dependencies.
    pub fn merged_fds(&self) -> FdSet {
        self.block_fds
            .iter()
            .fold(FdSet::new(), |acc, f| acc.union(f))
    }
}

/// Why Algorithm 6 rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// The induced scheme `D` is not independent: the uniqueness condition
    /// fails for blocks `(i, j)`.
    NotIndependent {
        /// Block whose closure contains the other's key dependency.
        block_i: usize,
        /// Block whose key dependency is violated.
        block_j: usize,
    },
}

/// Outcome of Algorithm 6.
#[derive(Clone, Debug)]
pub enum Recognition {
    /// The scheme is independence-reducible; the witness carries the
    /// partition and embedded cover.
    Accepted(IrScheme),
    /// The scheme is not independence-reducible.
    Rejected(RejectReason),
}

impl Recognition {
    /// The verdict as a trace record — what
    /// [`Engine::with_observability`](crate::engine::Engine::with_observability)
    /// emits when a tracer is attached.
    pub fn trace_event(&self) -> idr_obs::TraceEvent {
        idr_obs::TraceEvent::RecognitionDone {
            accepted: self.is_accepted(),
            blocks: match self {
                Recognition::Accepted(ir) => ir.len(),
                Recognition::Rejected(_) => 0,
            },
        }
    }

    /// The witness, when accepted.
    pub fn accepted(self) -> Option<IrScheme> {
        match self {
            Recognition::Accepted(ir) => Some(ir),
            Recognition::Rejected(_) => None,
        }
    }

    /// Whether the scheme was accepted.
    pub fn is_accepted(&self) -> bool {
        matches!(self, Recognition::Accepted(_))
    }
}

/// Algorithm 6: recognises exactly the independence-reducible database
/// schemes (Corollaries 5.1/5.4, Theorem 5.1).
///
/// # Examples
///
/// ```
/// use idr_relation::SchemeBuilder;
/// use idr_fd::KeyDeps;
/// use idr_core::recognition::recognize;
///
/// // Example 11 of the paper: two key-equivalent blocks.
/// let db = SchemeBuilder::new("ABCDEFG")
///     .scheme("R1", "AB", ["A", "B"])
///     .scheme("R2", "BC", ["B", "C"])
///     .scheme("R3", "AC", ["A", "C"])
///     .scheme("R4", "AD", ["A"])
///     .scheme("R5", "DEF", ["D"])
///     .scheme("R6", "DEG", ["D"])
///     .build()
///     .unwrap();
/// let kd = KeyDeps::of(&db);
/// let ir = recognize(&db, &kd).accepted().unwrap();
/// assert_eq!(ir.partition, vec![vec![0, 1, 2, 3], vec![4, 5]]);
/// ```
pub fn recognize(scheme: &DatabaseScheme, kd: &KeyDeps) -> Recognition {
    // Step (1): key-equivalent partition.
    let partition = kep::key_equivalent_partition(scheme, kd);
    let ir = IrScheme::build(scheme, kd, partition);

    // Step (3): test D = {∪KE₁, …, ∪KEₙ} for independence via the
    // uniqueness condition, with block keys standing in for scheme keys.
    if let Some((i, j)) = block_uniqueness_violation(&ir) {
        return Recognition::Rejected(RejectReason::NotIndependent {
            block_i: i,
            block_j: j,
        });
    }
    Recognition::Accepted(ir)
}

/// The uniqueness condition on the induced scheme `D`: for blocks `i ≠ j`,
/// `(Dᵢ)⁺` wrt `F − Fⱼ` must not contain a key dependency embedded in
/// `Dⱼ` (a key `K` of block `j` together with some `A ∈ Dⱼ − K`).
fn block_uniqueness_violation(ir: &IrScheme) -> Option<(usize, usize)> {
    let n = ir.len();
    let full = ir.merged_fds();
    for j in 0..n {
        let f_minus_j = full.minus(&ir.block_fds[j]);
        for i in 0..n {
            if i == j {
                continue;
            }
            let cl = f_minus_j.closure(ir.block_attrs[i]);
            for &k in &ir.block_keys[j] {
                if k == ir.block_attrs[j] {
                    continue;
                }
                if k.is_subset(cl) && (ir.block_attrs[j] - k).intersects(cl) {
                    return Some((i, j));
                }
            }
        }
    }
    None
}

/// Convenience: whether the scheme is independence-reducible.
pub fn is_independence_reducible(scheme: &DatabaseScheme, kd: &KeyDeps) -> bool {
    recognize(scheme, kd).is_accepted()
}

/// Sanity check used by tests and by [`mod@crate::classify`]: verifies that a
/// claimed partition is an independence-reducible partition per the
/// *definition* in §4 — every block key-equivalent, and the induced scheme
/// independent (uniqueness condition over blocks).
pub fn is_ir_partition(scheme: &DatabaseScheme, kd: &KeyDeps, partition: &Partition) -> bool {
    let covered: usize = partition.iter().map(Vec::len).sum();
    if covered != scheme.len() {
        return false;
    }
    if !partition
        .iter()
        .all(|b| crate::key_equiv::is_key_equivalent(scheme, kd, b))
    {
        return false;
    }
    let ir = IrScheme::build(scheme, kd, partition.clone());
    block_uniqueness_violation(&ir).is_none()
}

/// Brute-force definitional decision of independence-reducibility: tries
/// *every* partition of the scheme set (Bell-number many; guarded to ≤ 8
/// schemes) against [`is_ir_partition`]. Exists to test Theorem 5.1's
/// "exactly": Algorithm 6 accepts iff *some* partition works — in
/// particular, when Algorithm 6 rejects, no partition at all may satisfy
/// the definition.
pub fn is_independence_reducible_bruteforce(scheme: &DatabaseScheme, kd: &KeyDeps) -> bool {
    let n = scheme.len();
    assert!(n <= 8, "brute-force recogniser: too many schemes ({n})");
    // Enumerate set partitions via restricted growth strings.
    fn rec(
        scheme: &DatabaseScheme,
        kd: &KeyDeps,
        assign: &mut Vec<usize>,
        max_block: usize,
        i: usize,
        n: usize,
    ) -> bool {
        if i == n {
            let blocks = max_block + 1;
            let mut partition: Partition = vec![Vec::new(); blocks];
            for (s, &b) in assign.iter().enumerate() {
                partition[b].push(s);
            }
            return is_ir_partition(scheme, kd, &partition);
        }
        for b in 0..=(max_block + 1).min(i) {
            assign.push(b);
            if rec(scheme, kd, assign, max_block.max(b), i + 1, n) {
                return true;
            }
            assign.pop();
        }
        false
    }
    if n == 0 {
        return true;
    }
    let mut assign = vec![0usize];
    rec(scheme, kd, &mut assign, 0, 1, n)
}

/// The induced database scheme `D` of an accepted recognition, as a real
/// [`DatabaseScheme`] (block unions with block keys). Useful for feeding
/// `D` back into scheme-level analyses (e.g. Lemma 4.2 experiments).
pub fn induced_scheme(scheme: &DatabaseScheme, ir: &IrScheme) -> DatabaseScheme {
    let schemes: Vec<idr_relation::RelationScheme> = ir
        .partition
        .iter()
        .enumerate()
        .map(|(b, _)| {
            let keys = if ir.block_keys[b].is_empty() {
                // A block whose members all have whole-scheme keys: the
                // union itself is the only key dependency source.
                vec![ir.block_attrs[b]]
            } else {
                ir.block_keys[b].clone()
            };
            idr_relation::RelationScheme::new(format!("D{b}"), ir.block_attrs[b], keys)
                .expect("block keys are embedded by construction")
        })
        .collect();
    DatabaseScheme::new(scheme.universe().clone(), schemes)
        .expect("blocks cover the universe")
}

/// Key dependencies as explicit fds for one block — `Fⱼ` with every key
/// mapped to the full block union (equivalent by key-equivalence).
pub fn block_key_fds(ir: &IrScheme, b: usize) -> FdSet {
    FdSet::from_fds(
        ir.block_keys[b]
            .iter()
            .map(|&k| Fd::new(k, ir.block_attrs[b] - k))
            .filter(|fd| !fd.rhs.is_empty()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use idr_fd::normal;
    use idr_relation::SchemeBuilder;

    fn example1_r() -> DatabaseScheme {
        SchemeBuilder::new("CTHRSG")
            .scheme("R1", "HRC", ["HR"])
            .scheme("R2", "HTR", ["HT", "HR"])
            .scheme("R3", "HTC", ["HT"])
            .scheme("R4", "CSG", ["CS"])
            .scheme("R5", "HSR", ["HS"])
            .build()
            .unwrap()
    }

    #[test]
    fn example1_r_is_accepted() {
        // Example 1's punchline: R is neither independent nor γ-acyclic,
        // yet it is independence-reducible (in fact ctm).
        let db = example1_r();
        let kd = KeyDeps::of(&db);
        let rec = recognize(&db, &kd);
        let ir = rec.accepted().expect("Example 1 R must be accepted");
        // {R1, R2, R3} merge into one block (their closures coincide);
        // R4 and R5 are singleton blocks.
        assert_eq!(ir.partition, vec![vec![0, 1, 2], vec![3], vec![4]]);
        assert!(is_ir_partition(&db, &kd, &ir.partition));
    }

    #[test]
    fn example11_is_accepted() {
        let db = SchemeBuilder::new("ABCDEFG")
            .scheme("R1", "AB", ["A", "B"])
            .scheme("R2", "BC", ["B", "C"])
            .scheme("R3", "AC", ["A", "C"])
            .scheme("R4", "AD", ["A"])
            .scheme("R5", "DEF", ["D"])
            .scheme("R6", "DEG", ["D"])
            .build()
            .unwrap();
        let kd = KeyDeps::of(&db);
        let ir = recognize(&db, &kd).accepted().unwrap();
        assert_eq!(ir.partition, vec![vec![0, 1, 2, 3], vec![4, 5]]);
        assert_eq!(ir.block_attrs[0], db.universe().set_of("ABCD"));
        assert_eq!(ir.block_attrs[1], db.universe().set_of("DEFG"));
    }

    #[test]
    fn example2_scheme_is_rejected() {
        // Example 2: {AB, BC, AC} with F = {A→C, B→C} is not even
        // algebraic-maintainable; Algorithm 6 must reject it.
        // Keys: R1(AB): AB; R2(BC): B; R3(AC): A.
        let db = SchemeBuilder::new("ABC")
            .scheme("R1", "AB", ["AB"])
            .scheme("R2", "BC", ["B"])
            .scheme("R3", "AC", ["A"])
            .build()
            .unwrap();
        let kd = KeyDeps::of(&db);
        let rec = recognize(&db, &kd);
        assert!(!rec.is_accepted());
    }

    #[test]
    fn independent_scheme_is_accepted_with_singleton_blocks() {
        // Theorem 5.3: independent schemes are accepted.
        let db = SchemeBuilder::new("CTHRSG")
            .scheme("S1", "HRCT", ["HR", "HT"])
            .scheme("S2", "CSG", ["CS"])
            .scheme("S3", "HSR", ["HS"])
            .build()
            .unwrap();
        let kd = KeyDeps::of(&db);
        let ir = recognize(&db, &kd).accepted().unwrap();
        assert_eq!(ir.partition.len(), 3);
    }

    #[test]
    fn key_equivalent_scheme_is_accepted_as_single_block() {
        let db = SchemeBuilder::new("ABC")
            .scheme("R1", "AB", ["A", "B"])
            .scheme("R2", "BC", ["B", "C"])
            .scheme("R3", "AC", ["A", "C"])
            .build()
            .unwrap();
        let kd = KeyDeps::of(&db);
        let ir = recognize(&db, &kd).accepted().unwrap();
        assert_eq!(ir.len(), 1);
    }

    #[test]
    fn induced_scheme_is_bcnf_and_independent() {
        // Corollary 4.1 on Example 11's induced D.
        let db = SchemeBuilder::new("ABCDEFG")
            .scheme("R1", "AB", ["A", "B"])
            .scheme("R2", "BC", ["B", "C"])
            .scheme("R3", "AC", ["A", "C"])
            .scheme("R4", "AD", ["A"])
            .scheme("R5", "DEF", ["D"])
            .scheme("R6", "DEG", ["D"])
            .build()
            .unwrap();
        let kd = KeyDeps::of(&db);
        let ir = recognize(&db, &kd).accepted().unwrap();
        let d = induced_scheme(&db, &ir);
        let kd_d = KeyDeps::of(&d);
        assert!(normal::is_bcnf(&d, kd_d.full()));
        assert!(normal::satisfies_uniqueness(&d, &kd_d));
    }

    #[test]
    fn theorem_5_1_no_partition_saves_rejected_schemes() {
        // Example 2 and Example 13 are rejected; brute force confirms no
        // partition whatsoever satisfies the definition.
        let ex2 = SchemeBuilder::new("ABC")
            .scheme("R1", "AB", ["AB"])
            .scheme("R2", "BC", ["B"])
            .scheme("R3", "AC", ["A"])
            .build()
            .unwrap();
        let kd = KeyDeps::of(&ex2);
        assert!(!recognize(&ex2, &kd).is_accepted());
        assert!(!is_independence_reducible_bruteforce(&ex2, &kd));

        let ex13 = SchemeBuilder::new("ABCDEF")
            .scheme("R1", "AB", ["AB"])
            .scheme("R2", "CD", ["CD"])
            .scheme("R3", "ABC", ["AB"])
            .scheme("R4", "ABD", ["AB"])
            .scheme("R5", "CDE", ["CD", "E"])
            .scheme("R6", "EA", ["E"])
            .scheme("R7", "EF", ["E"])
            .scheme("R8", "FB", ["F"])
            .build()
            .unwrap();
        let kd = KeyDeps::of(&ex13);
        assert!(!recognize(&ex13, &kd).is_accepted());
        assert!(!is_independence_reducible_bruteforce(&ex13, &kd));
    }

    #[test]
    fn rejection_reports_block_pair() {
        let db = SchemeBuilder::new("ABC")
            .scheme("R1", "AB", ["AB"])
            .scheme("R2", "BC", ["B"])
            .scheme("R3", "AC", ["A"])
            .build()
            .unwrap();
        let kd = KeyDeps::of(&db);
        match recognize(&db, &kd) {
            Recognition::Rejected(RejectReason::NotIndependent { block_i, block_j }) => {
                assert_ne!(block_i, block_j);
            }
            Recognition::Accepted(_) => panic!("must reject"),
        }
    }
}
