//! Independence-reducible database schemes — the primary contribution of
//! Chan & Hernández, *Independence-reducible Database Schemes*, PODS 1988.
//!
//! Given a database scheme `R` with a cover of the functional dependencies
//! embedded as key dependencies, this crate implements every definition
//! and algorithm of Sections 3–5 of the paper:
//!
//! | Paper | Here |
//! |---|---|
//! | key-equivalence (§3) | [`key_equiv::is_key_equivalent`] |
//! | Algorithm 1 (rep. instance) | [`rep::KeRep::build`] |
//! | Algorithm 2 (algebraic maintenance) | [`maintain::algorithm2`] |
//! | Algorithm 3 (scheme closure) | [`key_equiv::algorithm3_closure`] |
//! | splitness + Lemma 3.8 | [`split`] |
//! | Algorithm 4 (tuple extension) | [`maintain::algorithm4`] |
//! | Algorithm 5 (ctm maintenance) | [`maintain::algorithm5`] |
//! | KEP (§5.1) | [`kep::key_equivalent_partition`] |
//! | Algorithm 6 (recognition) | [`recognition::recognize`] |
//! | boundedness expressions (Cor 3.1(b), Thm 4.1) | [`query`] |
//! | augmentation AUG (Thm 4.3) | [`augment`] |
//! | ctm characterisation (Cor 3.3, Thm 5.5) | [`mod@classify`] |
//! | baselines: independence, γ-acyclic BCNF | [`baselines`] |
//! | Theorem 3.4's adversarial construction | [`ctm_witness`] |
//!
//! The generic chase (`idr-chase`) is used as the semantic oracle in the
//! test suites; the algorithms here never call it on the fast path.
//!
//! Every hot entry point takes a [`exec::Guard`] and meters its work
//! against the guard's [`exec::Budget`], returning a typed
//! [`exec::ExecError`] instead of panicking or looping past its limits;
//! see [`exec`] for the failure model.
//!
//! The recommended entry point is [`engine::Engine`]: build it once from
//! a scheme and it caches recognition, classification and the Theorem 4.1
//! projection expressions. Bind it to a state with [`engine::Engine::hub`]
//! and serve many clients at once through the split
//! [`serving::WriteHandle`] / [`serving::ReadView`] API — per-block
//! serialized writes (Theorem 4.2 block independence makes cross-block
//! ops commute) and epoch-stamped snapshot reads. The pre-0.7
//! single-threaded [`engine::Session`] facade remains as a deprecated
//! compatibility shim over one hub.


#![warn(missing_docs)]
pub mod algebraic;
pub mod augment;
pub mod baselines;
pub mod classify;
pub mod ctm_witness;
pub mod durability;
pub mod engine;
pub mod exec;
pub mod kep;
pub mod key_equiv;
pub mod maintain;
pub mod query;
pub mod recognition;
pub mod replay;
pub mod semantic;
pub mod rep;
pub mod serving;
pub mod split;

pub use classify::{classify, Classification};
pub use durability::{Durability, DurabilitySink, DurableOp};
pub use engine::{Engine, Observability, Session};
pub use replay::{ReplayError, ReplayOutcome};
pub use serving::{BatchOp, Hub, ReadView, Snapshot, WriteHandle};
pub use exec::{
    Budget, CancelToken, ExecError, Fault, FaultInjector, FaultKind, FaultPlan, Guard,
    GuardSnapshot, RepAccess, Resource, RetryPolicy, StateAccess,
};
pub use kep::key_equivalent_partition;
pub use maintain::{MaintenanceOutcome, StateIndex};
pub use recognition::{recognize, IrScheme, Recognition, RejectReason};
pub use rep::KeRep;
