//! KEP — the key-equivalent partition (§5.1).
//!
//! `[Rᵢ] = {Rⱼ ∈ R | Rᵢ⁺ = Rⱼ⁺}` groups schemes with equal closures; KEP
//! refines recursively, recomputing closures within each group against the
//! group's own embedded key dependencies, until every group is
//! key-equivalent. Lemmas 5.1/5.2 show the result is *the* (unique)
//! key-equivalent partition: every key-equivalent subset of `R` lands
//! inside a single block.

use std::collections::HashMap;

use idr_fd::KeyDeps;
use idr_relation::{AttrSet, DatabaseScheme};

/// A partition of the scheme indices `0..n`. Blocks and their members are
/// sorted, so the output is canonical.
pub type Partition = Vec<Vec<usize>>;

/// A partition's shape as a trace record — emitted by
/// [`Engine::with_observability`](crate::engine::Engine::with_observability)
/// when Algorithm 6 accepted.
pub fn trace_event(partition: &Partition) -> idr_obs::TraceEvent {
    idr_obs::TraceEvent::KepComputed {
        blocks: partition.len(),
        largest: partition.iter().map(Vec::len).max().unwrap_or(0),
    }
}

/// Computes the key-equivalent partition of the database scheme via the
/// recursive function KEP of §5.1.
///
/// # Examples
///
/// ```
/// use idr_relation::SchemeBuilder;
/// use idr_fd::KeyDeps;
/// use idr_core::kep::key_equivalent_partition;
///
/// // Example 3: the all-keys triangle is one key-equivalent block.
/// let db = SchemeBuilder::new("ABC")
///     .scheme("R1", "AB", ["A", "B"])
///     .scheme("R2", "BC", ["B", "C"])
///     .scheme("R3", "AC", ["A", "C"])
///     .build()
///     .unwrap();
/// let kd = KeyDeps::of(&db);
/// assert_eq!(key_equivalent_partition(&db, &kd), vec![vec![0, 1, 2]]);
/// ```
pub fn key_equivalent_partition(scheme: &DatabaseScheme, kd: &KeyDeps) -> Partition {
    let all: Vec<usize> = (0..scheme.len()).collect();
    let mut out = Vec::new();
    kep(scheme, kd, &all, &mut out);
    out.sort();
    out
}

fn kep(scheme: &DatabaseScheme, kd: &KeyDeps, subset: &[usize], out: &mut Partition) {
    // Statement (2): group by closure, computed wrt the key dependencies
    // embedded in the *current* subset.
    let fds = kd.for_subset(subset);
    let mut groups: HashMap<AttrSet, Vec<usize>> = HashMap::new();
    for &i in subset {
        let cl = fds.closure(scheme.scheme(i).attrs());
        groups.entry(cl).or_default().push(i);
    }
    if groups.len() == 1 {
        // part = {R}: the subset is key-equivalent (all closures equal ⇒
        // every closure contains every member ⇒ equals the union).
        let mut block = subset.to_vec();
        block.sort_unstable();
        out.push(block);
        return;
    }
    let mut parts: Vec<Vec<usize>> = groups.into_values().collect();
    parts.sort();
    for p in parts {
        kep(scheme, kd, &p, out);
    }
}

/// Maps each scheme index to its block index in a partition.
pub fn block_of(partition: &Partition) -> Vec<usize> {
    let n: usize = partition.iter().map(Vec::len).sum();
    let mut out = vec![usize::MAX; n];
    for (b, block) in partition.iter().enumerate() {
        for &i in block {
            out[i] = b;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key_equiv::is_key_equivalent;
    use idr_relation::SchemeBuilder;

    /// Example 13: R = {R1(AB), R2(CD), R3(ABC), R4(ABD), R5(CDE), R6(EA),
    /// R7(EF), R8(FB)} with F = {AB→C, AB→D, CD→E, E→CD, E→A, E→F, F→B}.
    /// KEP returns {{R8}, {R1, R3, R4}, {R2, R5, R6, R7}}.
    fn example13() -> DatabaseScheme {
        SchemeBuilder::new("ABCDEF")
            .scheme("R1", "AB", ["AB"])
            .scheme("R2", "CD", ["CD"])
            .scheme("R3", "ABC", ["AB"])
            .scheme("R4", "ABD", ["AB"])
            .scheme("R5", "CDE", ["CD", "E"])
            .scheme("R6", "EA", ["E"])
            .scheme("R7", "EF", ["E"])
            .scheme("R8", "FB", ["F"])
            .build()
            .unwrap()
    }

    #[test]
    fn example13_partition() {
        let db = example13();
        let kd = KeyDeps::of(&db);
        let part = key_equivalent_partition(&db, &kd);
        // Blocks (0-based): {R1,R3,R4} = {0,2,3}; {R2,R5,R6,R7} = {1,4,5,6};
        // {R8} = {7}.
        assert_eq!(part, vec![vec![0, 2, 3], vec![1, 4, 5, 6], vec![7]]);
    }

    #[test]
    fn blocks_are_key_equivalent() {
        let db = example13();
        let kd = KeyDeps::of(&db);
        for block in key_equivalent_partition(&db, &kd) {
            assert!(is_key_equivalent(&db, &kd, &block), "block {block:?}");
        }
    }

    #[test]
    fn key_equivalent_scheme_is_one_block() {
        let db = SchemeBuilder::new("ABC")
            .scheme("R1", "AB", ["A", "B"])
            .scheme("R2", "BC", ["B", "C"])
            .scheme("R3", "AC", ["A", "C"])
            .build()
            .unwrap();
        let kd = KeyDeps::of(&db);
        assert_eq!(
            key_equivalent_partition(&db, &kd),
            vec![vec![0, 1, 2]]
        );
    }

    #[test]
    fn independent_schemes_are_singleton_blocks() {
        let db = SchemeBuilder::new("ABCD")
            .scheme("R1", "AB", ["A"])
            .scheme("R2", "CD", ["C"])
            .build()
            .unwrap();
        let kd = KeyDeps::of(&db);
        assert_eq!(
            key_equivalent_partition(&db, &kd),
            vec![vec![0], vec![1]]
        );
    }

    #[test]
    fn example11_partition() {
        // Example 11: F = {A→B, B→A, B→C, C→B, C→A, A→C, A→D, D→EFG};
        // two blocks {R1..R4} and {R5, R6}.
        let db = SchemeBuilder::new("ABCDEFG")
            .scheme("R1", "AB", ["A", "B"])
            .scheme("R2", "BC", ["B", "C"])
            .scheme("R3", "AC", ["A", "C"])
            .scheme("R4", "AD", ["A"])
            .scheme("R5", "DEF", ["D"])
            .scheme("R6", "DEG", ["D"])
            .build()
            .unwrap();
        let kd = KeyDeps::of(&db);
        let part = key_equivalent_partition(&db, &kd);
        assert_eq!(part, vec![vec![0, 1, 2, 3], vec![4, 5]]);
    }

    #[test]
    fn block_of_inverts_partition() {
        let part: Partition = vec![vec![0, 2], vec![1]];
        assert_eq!(block_of(&part), vec![0, 1, 0]);
    }
}
