//! Theorem 3.2's literal construction: algebraic maintenance *without* a
//! materialised representative instance.
//!
//! The paper proves key-equivalent schemes algebraic-maintainable by
//! exhibiting, for a key value `t[K]`, the family of single-tuple
//! conjunctive selections `σ_{K='k'}(E_j)` over the joins `E_j` of
//! lossless subsets covering `K`; the *greatest* nonempty one (the one
//! whose subset union contains all others') returns the unique total
//! tuple of the representative instance containing `'k'` (by Lemma 3.2(c)
//! and Corollary 3.1(b)). Feeding those tuples to Algorithm 2's join loop
//! decides the maintenance problem with expressions whose number and size
//! depend only on `R` and `F`.
//!
//! [`algorithm2_algebraic`] implements exactly that; the differential
//! tests check it agrees with the `KeRep`-based [`crate::maintain::algorithm2`]
//! and with the chase. It is slower per insert (it evaluates joins over
//! base relations) but needs no auxiliary structure — the trade-off the
//! paper's "incremental via predetermined relational expressions" phrase
//! describes.

use idr_fd::KeyDeps;
use idr_relation::algebra::Expr;
use idr_relation::exec::{ExecError, Guard};
use idr_relation::{AttrSet, DatabaseScheme, DatabaseState, Tuple};

use crate::maintain::{MaintenanceOutcome, MaintenanceStats};
use crate::query::all_lossless_covers;

/// The precompiled selection plan for one key: the lossless-cover joins
/// `E_1, …, E_m` covering `K`, each paired with its output attribute set
/// (used to pick the greatest nonempty selection).
#[derive(Clone, Debug)]
pub struct KeyPlan {
    /// The key `K`.
    pub key: AttrSet,
    /// `(join expression, union of its subset)` per lossless cover of `K`.
    pub covers: Vec<(Expr, AttrSet)>,
}

/// The full plan for a key-equivalent block: one [`KeyPlan`] per key
/// embedded in the block. Its size depends only on `R` and `F` —
/// the "predetermined" part of Theorem 3.2.
#[derive(Clone, Debug)]
pub struct AlgebraicPlan {
    block: Vec<usize>,
    plans: Vec<KeyPlan>,
}

impl AlgebraicPlan {
    /// Compiles the plan for a key-equivalent block. The lossless-cover
    /// enumerations are charged against `guard`'s enumeration budget.
    pub fn compile(
        scheme: &DatabaseScheme,
        kd: &KeyDeps,
        block: &[usize],
        guard: &Guard,
    ) -> Result<Self, ExecError> {
        let family: Vec<AttrSet> = block.iter().map(|&i| scheme.scheme(i).attrs()).collect();
        let fds = kd.for_subset(block);
        let mut keys: Vec<AttrSet> = block
            .iter()
            .flat_map(|&i| scheme.scheme(i).keys().iter().copied())
            .collect();
        keys.sort();
        keys.dedup();
        let mut plans = Vec::with_capacity(keys.len());
        for &k in &keys {
            let covers = all_lossless_covers(&family, &fds, k, guard)?
                .into_iter()
                .map(|members| {
                    let indices: Vec<usize> = members.iter().map(|&m| block[m]).collect();
                    let union = members
                        .iter()
                        .fold(AttrSet::empty(), |acc, &m| acc | family[m]);
                    (Expr::sequential(&indices), union)
                })
                .collect();
            plans.push(KeyPlan { key: k, covers });
        }
        Ok(AlgebraicPlan {
            block: block.to_vec(),
            plans,
        })
    }

    /// The plans, for inspection.
    pub fn plans(&self) -> &[KeyPlan] {
        &self.plans
    }

    fn plan_for(&self, k: AttrSet) -> Option<&KeyPlan> {
        self.plans.iter().find(|p| p.key == k)
    }

    /// Retrieves the unique representative-instance tuple agreeing with
    /// `probe` on key `k` — via `σ_{K=probe[K]}(E_j)`, greatest nonempty
    /// `E_j`. Returns `None` when no expression matches (the key value is
    /// unknown to the state).
    fn lookup(
        &self,
        scheme: &DatabaseScheme,
        state: &DatabaseState,
        k: AttrSet,
        probe: &Tuple,
        stats: &mut MaintenanceStats,
        guard: &Guard,
    ) -> Result<Option<Tuple>, ExecError> {
        let Some(plan) = self.plan_for(k) else {
            return Ok(None);
        };
        let formula: Vec<_> = k.iter().map(|a| (a, probe.value(a))).collect();
        let mut best: Option<(Tuple, AttrSet)> = None;
        for (expr, union) in &plan.covers {
            stats.lookups += 1;
            guard.lookup()?;
            let selected = expr
                .clone()
                .select(formula.clone())
                .eval(scheme, state)
                .expect("plan expressions are well-formed");
            debug_assert!(
                selected.len() <= 1,
                "σ_K=k over a lossless join must be single-tuple on a consistent state"
            );
            let first = selected.iter().next().cloned();
            if let Some(t) = first {
                let better = match &best {
                    None => true,
                    Some((_, u)) => u.is_subset(*union) && *u != *union,
                };
                if better {
                    best = Some((t, *union));
                }
            }
        }
        Ok(best.map(|(t, _)| t))
    }
}

/// Algorithm 2 driven by the Theorem 3.2 expression plan instead of a
/// materialised representative instance. Every selection is charged
/// against `guard`.
pub fn algorithm2_algebraic(
    scheme: &DatabaseScheme,
    plan: &AlgebraicPlan,
    state: &DatabaseState,
    si: usize,
    t: &Tuple,
    guard: &Guard,
) -> Result<(MaintenanceOutcome, MaintenanceStats), ExecError> {
    let mut stats = MaintenanceStats::default();
    let mut closure = scheme.scheme(si).attrs();
    let mut q = t.clone();
    let mut processed: Vec<AttrSet> = Vec::new();
    let mut unprocessed: Vec<AttrSet> = scheme.scheme(si).keys().to_vec();
    let block_keys: Vec<AttrSet> = plan.plans.iter().map(|p| p.key).collect();

    while let Some(k) = unprocessed.pop() {
        stats.keys_processed += 1;
        let v: Tuple = match plan.lookup(scheme, state, k, &q, &mut stats, guard)? {
            Some(p) => p,
            None => q.project(k),
        };
        let c = v.attrs();
        match q.join(&v) {
            Some(joined) => q = joined,
            None => return Ok((MaintenanceOutcome::Inconsistent, stats)),
        }
        closure |= c;
        processed.push(k);
        for &nk in &block_keys {
            if nk.is_subset(closure) && !processed.contains(&nk) && !unprocessed.contains(&nk) {
                unprocessed.push(nk);
            }
        }
    }
    // The paper's construction retrieves per-key maximal tuples; joining
    // them can under-approximate the merged representative-instance tuple
    // only when a key value is entirely absent from the state, in which
    // case nothing constrains it anyway.
    let _ = plan.block.len();
    Ok((MaintenanceOutcome::Consistent(q), stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maintain::algorithm2;
    use crate::recognition::recognize;
    use crate::rep::KeRep;
    use idr_relation::SchemeBuilder;
    use idr_workload::states::{generate, WorkloadConfig};

    fn example4() -> DatabaseScheme {
        SchemeBuilder::new("ABCDE")
            .scheme("R1", "AB", ["A"])
            .scheme("R2", "AC", ["A"])
            .scheme("R3", "AE", ["A", "E"])
            .scheme("R4", "EB", ["E"])
            .scheme("R5", "EC", ["E"])
            .scheme("R6", "BCD", ["BC", "D"])
            .scheme("R7", "DA", ["D", "A"])
            .build()
            .unwrap()
    }

    #[test]
    fn plan_sizes_depend_only_on_the_scheme() {
        let db = example4();
        let kd = KeyDeps::of(&db);
        let block: Vec<usize> = (0..db.len()).collect();
        let plan = AlgebraicPlan::compile(&db, &kd, &block, &Guard::unlimited()).unwrap();
        // Keys A, E, BC, D: four plans, each with at least one cover.
        assert_eq!(plan.plans().len(), 4);
        for p in plan.plans() {
            assert!(!p.covers.is_empty(), "key {:?} has no cover", p.key);
        }
    }

    #[test]
    fn algebraic_engine_matches_rep_engine() {
        for (db, seeds) in [
            (example4(), 0..6u64),
            (
                SchemeBuilder::new("ABC")
                    .scheme("S1", "AB", ["A", "B"])
                    .scheme("S2", "BC", ["B", "C"])
                    .scheme("S3", "AC", ["A", "C"])
                    .build()
                    .unwrap(),
                0..6u64,
            ),
        ] {
            let kd = KeyDeps::of(&db);
            let ir = recognize(&db, &kd).accepted().unwrap();
            assert_eq!(ir.len(), 1);
            let block = ir.partition[0].clone();
            let g = Guard::unlimited();
            let rp = idr_relation::exec::RetryPolicy::none();
            let plan = AlgebraicPlan::compile(&db, &kd, &block, &g).unwrap();
            for seed in seeds {
                let mut sym = idr_relation::SymbolTable::new();
                let w = generate(
                    &db,
                    &mut sym,
                    WorkloadConfig {
                        entities: 15,
                        fragment_pct: 55,
                        inserts: 12,
                        corrupt_pct: 40,
                        seed,
                    },
                );
                let keys: Vec<AttrSet> = ir.block_keys[0].clone();
                let rep = KeRep::build(
                    &keys,
                    w.state.iter_all().map(|(_, t)| t.clone()),
                    &g,
                )
                .unwrap();
                for (i, t) in &w.inserts {
                    let (via_rep, _) = algorithm2(&db, &rep, *i, t, &g, &rp).unwrap();
                    let (via_alg, _) =
                        algorithm2_algebraic(&db, &plan, &w.state, *i, t, &g).unwrap();
                    assert_eq!(
                        via_rep.is_consistent(),
                        via_alg.is_consistent(),
                        "engines disagree on {t:?} into {i} (seed {seed})"
                    );
                }
            }
        }
    }

    #[test]
    fn example7_selection_returns_the_paper_tuple() {
        // Example 7: σ_{A='a'}(R1 ⋈ R2 ⋈ (R4 ⋈ R5)) returns <a, b, c, e1>.
        let db = example4();
        let kd = KeyDeps::of(&db);
        let block: Vec<usize> = (0..db.len()).collect();
        let plan = AlgebraicPlan::compile(&db, &kd, &block, &Guard::unlimited()).unwrap();
        let mut sym = idr_relation::SymbolTable::new();
        let state = idr_relation::state_of(
            &db,
            &mut sym,
            &[
                ("R1", &[("A", "a"), ("B", "b")]),
                ("R2", &[("A", "a"), ("C", "c")]),
                ("R4", &[("E", "e1"), ("B", "b")]),
                ("R5", &[("E", "e1"), ("C", "c")]),
            ],
        )
        .unwrap();
        let u = db.universe();
        let probe = Tuple::from_pairs([(u.attr_of("A"), sym.intern("a"))]);
        let mut stats = MaintenanceStats::default();
        let got = plan
            .lookup(&db, &state, u.set_of("A"), &probe, &mut stats, &Guard::unlimited())
            .unwrap()
            .expect("the greatest nonempty selection");
        assert_eq!(got.attrs(), u.set_of("ABCE"));
        assert_eq!(got.value(u.attr_of("E")), sym.intern("e1"));
    }
}
