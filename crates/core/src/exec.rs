//! Budgeted, fault-injectable execution for the maintenance layer.
//!
//! The primitives — [`Budget`], [`Guard`], [`ExecError`], [`RetryPolicy`]
//! — live in `idr_relation::exec` (re-exported here) so that every crate
//! in the workspace meters against the same counters. This module adds
//! the pieces specific to maintenance:
//!
//! * [`RepAccess`] / [`StateAccess`] — traits abstracting the
//!   single-tuple selections Algorithms 2 and 4/5 issue against a block's
//!   representative instance ([`KeRep`]) or raw state
//!   ([`StateIndex`](crate::maintain::StateIndex)). A selection may fail
//!   with a [`Fault`], modelling a flaky storage backend; the in-memory
//!   implementations never do.
//! * [`FaultInjector`] — a deterministic wrapper implementing both traits
//!   that fails chosen selections, for testing the retry path without a
//!   real flaky backend.
//!
//! The maintainers in [`crate::maintain`] are generic over
//! these traits: production code passes the concrete in-memory stores,
//! tests pass a [`FaultInjector`] around them and assert that transient
//! faults are retried to the fault-free answer while permanent faults
//! surface as [`ExecError::Faulted`].

use std::sync::atomic::{AtomicU64, Ordering};

use idr_relation::rng::SplitMix64;
use idr_relation::{AttrSet, Tuple};

pub use idr_relation::exec::{
    Budget, CancelToken, ExecError, Fault, FaultKind, Guard, GuardSnapshot, Resource,
    RetryPolicy, DEFAULT_MAX_ENUMERATION,
};

use crate::rep::KeRep;

/// Single-tuple selection against a block's representative instance — the
/// access path of Algorithm 2. Implemented infallibly by [`KeRep`]; a
/// storage-backed implementation may return [`Fault`]s, which the bounded
/// maintainers run through their [`RetryPolicy`].
pub trait RepAccess {
    /// The block's embedded keys.
    fn keys(&self) -> &[AttrSet];

    /// The unique tuple agreeing with `probe` on key `k`, if any
    /// (uniqueness is Lemma 3.2(c)).
    fn select(&self, k: AttrSet, probe: &Tuple) -> Result<Option<Tuple>, Fault>;
}

impl RepAccess for KeRep {
    fn keys(&self) -> &[AttrSet] {
        KeRep::keys(self)
    }

    fn select(&self, k: AttrSet, probe: &Tuple) -> Result<Option<Tuple>, Fault> {
        Ok(self.lookup(k, probe).cloned())
    }
}

/// Single-tuple selection against a block substate — the `σ_Φ(π_X(Sᵢ))`
/// access path of Algorithms 4 and 5. Implemented infallibly by
/// [`StateIndex`](crate::maintain::StateIndex).
pub trait StateAccess {
    /// `(database-scheme index, attrs, keys)` per member scheme.
    fn members(&self) -> &[(usize, AttrSet, Vec<AttrSet>)];

    /// The unique tuple of member `pos` agreeing with `probe` on the
    /// member's `kpos`-th key, if any.
    fn select(&self, pos: usize, kpos: usize, probe: &Tuple) -> Result<Option<Tuple>, Fault>;
}

/// When a [`FaultInjector`] fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultPlan {
    /// Fail calls `n, n+1, …, n+times−1` (1-based call numbering). With
    /// `times = 1` and a transient kind, a retry immediately succeeds —
    /// the retried result must equal the fault-free one.
    Nth {
        /// First failing call (1-based).
        n: u64,
        /// Number of consecutive failing calls.
        times: u64,
        /// Transient or permanent.
        kind: FaultKind,
    },
    /// Fail each call independently with probability `pct`/100, derived
    /// deterministically from `seed` and the call number — reproducible
    /// "flaky backend" runs.
    Seeded {
        /// Stream seed.
        seed: u64,
        /// Per-call failure probability in percent.
        pct: u32,
        /// Transient or permanent.
        kind: FaultKind,
    },
}

impl FaultPlan {
    /// Fails only the `n`-th call (transient or permanent).
    pub fn nth(n: u64, kind: FaultKind) -> Self {
        FaultPlan::Nth { n, times: 1, kind }
    }

    fn fires(&self, call: u64) -> Option<FaultKind> {
        match *self {
            FaultPlan::Nth { n, times, kind } => {
                (call >= n && call - n < times).then_some(kind)
            }
            FaultPlan::Seeded { seed, pct, kind } => {
                // One independent draw per call number: mix the call index
                // into the seed, then take the generator's first output.
                let mut r = SplitMix64::new(seed ^ call.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                r.gen_pct(pct).then_some(kind)
            }
        }
    }
}

/// Wraps a [`RepAccess`] or [`StateAccess`] implementation and injects
/// faults per a [`FaultPlan`]. Call numbering is shared across both trait
/// surfaces and increments on every `select`, including failed ones — so
/// a retried selection is a *new* call and (under [`FaultPlan::Nth`] with
/// `times = 1`) succeeds.
#[derive(Debug)]
pub struct FaultInjector<'a, S> {
    inner: &'a S,
    plan: FaultPlan,
    calls: AtomicU64,
    faults: AtomicU64,
}

impl<'a, S> FaultInjector<'a, S> {
    /// Wraps `inner` with the given plan.
    pub fn new(inner: &'a S, plan: FaultPlan) -> Self {
        FaultInjector {
            inner,
            plan,
            calls: AtomicU64::new(0),
            faults: AtomicU64::new(0),
        }
    }

    /// Total `select` calls observed (including faulted ones).
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// Number of faults injected so far.
    pub fn faults_injected(&self) -> u64 {
        self.faults.load(Ordering::Relaxed)
    }

    fn check(&self, operation: &str) -> Result<(), Fault> {
        let call = self.calls.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(kind) = self.plan.fires(call) {
            self.faults.fetch_add(1, Ordering::Relaxed);
            return Err(Fault {
                kind,
                operation: format!("{operation} (call #{call})"),
            });
        }
        Ok(())
    }
}

impl<S: RepAccess> RepAccess for FaultInjector<'_, S> {
    fn keys(&self) -> &[AttrSet] {
        self.inner.keys()
    }

    fn select(&self, k: AttrSet, probe: &Tuple) -> Result<Option<Tuple>, Fault> {
        self.check("representative-instance selection")?;
        self.inner.select(k, probe)
    }
}

impl<S: StateAccess> StateAccess for FaultInjector<'_, S> {
    fn members(&self) -> &[(usize, AttrSet, Vec<AttrSet>)] {
        self.inner.members()
    }

    fn select(&self, pos: usize, kpos: usize, probe: &Tuple) -> Result<Option<Tuple>, Fault> {
        self.check("state selection")?;
        self.inner.select(pos, kpos, probe)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idr_relation::{SymbolTable, Universe};

    #[test]
    fn nth_plan_fires_exactly_once() {
        let plan = FaultPlan::nth(3, FaultKind::Transient);
        let fired: Vec<u64> = (1..=6).filter(|&c| plan.fires(c).is_some()).collect();
        assert_eq!(fired, vec![3]);
    }

    #[test]
    fn seeded_plan_is_deterministic() {
        let plan = FaultPlan::Seeded {
            seed: 7,
            pct: 50,
            kind: FaultKind::Transient,
        };
        let a: Vec<bool> = (1..=32).map(|c| plan.fires(c).is_some()).collect();
        let b: Vec<bool> = (1..=32).map(|c| plan.fires(c).is_some()).collect();
        assert_eq!(a, b);
        assert!(a.iter().any(|&x| x) && a.iter().any(|&x| !x));
    }

    #[test]
    fn injector_counts_and_faults() {
        let u = Universe::of_chars("AB");
        let mut s = SymbolTable::new();
        let rep = KeRep::build(
            &[u.set_of("A")],
            [Tuple::from_pairs([
                (u.attr_of("A"), s.intern("a")),
                (u.attr_of("B"), s.intern("b")),
            ])],
            &idr_relation::exec::Guard::unlimited(),
        )
        .unwrap();
        let inj = FaultInjector::new(&rep, FaultPlan::nth(2, FaultKind::Permanent));
        let probe = Tuple::from_pairs([(u.attr_of("A"), s.intern("a"))]);
        assert!(RepAccess::select(&inj, u.set_of("A"), &probe).is_ok());
        let err = RepAccess::select(&inj, u.set_of("A"), &probe).unwrap_err();
        assert_eq!(err.kind, FaultKind::Permanent);
        assert!(RepAccess::select(&inj, u.set_of("A"), &probe).is_ok());
        assert_eq!(inj.calls(), 3);
        assert_eq!(inj.faults_injected(), 1);
    }
}
