//! The durability hook the engine calls around every mutation.
//!
//! The paper's maintenance theorems (4.1/4.2) reduce state evolution to a
//! sequence of small insert/delete steps, which is exactly the shape of a
//! write-ahead log. This module defines the *interface* the
//! [`Session`](crate::Session) mutation paths call; the implementation —
//! an append-only checksummed WAL with snapshots and crash recovery —
//! lives in `idr-store`, keeping this crate free of filesystem concerns.
//!
//! ## Contract
//!
//! The session upholds write-ahead ordering: [`Durability::log_op`] is
//! called **before** any in-memory mutation. If the op later fails with a
//! typed error (a guard trip mid-chase), the session rolls its memory
//! back and calls [`Durability::log_abort`], so the log and memory agree
//! again: a recovery replaying the log skips aborted records. Ops that
//! complete with a verdict — accepted *or* rejected inserts, present or
//! absent deletes — are left in the log as-is; replaying them through the
//! same guarded session path re-earns the same verdict deterministically.
//!
//! After every completed op the session calls
//! [`Durability::op_finished`] with the post-op state, giving the
//! implementation a safe point to cut a snapshot and truncate the log.
//!
//! ## Two trait shapes
//!
//! [`Durability`] is the original single-writer hook: `&mut self`
//! methods, borrowed by one [`Session`](crate::Session) at a time. The
//! concurrent serving layer ([`Hub`](crate::Hub) /
//! [`WriteHandle`](crate::WriteHandle)) instead *owns* its sink as an
//! `Arc<dyn DurabilitySink>`: `&self` methods callable from many writer
//! threads at once, with the implementation free to coalesce concurrent
//! appends into one fsync (group commit — `idr_store::SharedStore`).
//! Snapshot cutting splits in two under concurrency: the sink only
//! *reports* that a snapshot is due ([`DurabilitySink::op_finished`]),
//! and the hub quiesces every block before handing over a consistent
//! state ([`DurabilitySink::write_snapshot`]).

use idr_relation::exec::ExecError;
use idr_relation::{DatabaseState, Tuple};

/// One loggable session mutation, borrowed from the caller at the
/// write-ahead point (before the in-memory state changes).
#[derive(Clone, Copy, Debug)]
pub enum DurableOp<'a> {
    /// [`Session::insert`](crate::Session::insert) of `t` into relation
    /// `rel` — logged whether the insert ends up accepted or rejected;
    /// replay re-derives the verdict.
    Insert {
        /// Target relation index.
        rel: usize,
        /// The tuple being inserted.
        t: &'a Tuple,
    },
    /// [`Session::delete`](crate::Session::delete) of `t` from relation
    /// `rel`.
    Delete {
        /// Target relation index.
        rel: usize,
        /// The tuple being deleted.
        t: &'a Tuple,
    },
}

/// A write-ahead durability sink for session mutations. Implemented by
/// `idr_store::Store`; the engine only sees this trait, so the core crate
/// stays independent of the storage layer.
///
/// Errors are surfaced as [`ExecError`] (storage failures map to
/// [`ExecError::Faulted`]); a failed `log_op` aborts the mutation before
/// memory changes, keeping log and memory in agreement.
pub trait Durability: std::fmt::Debug {
    /// Appends the intent record for `op`. Called before the session
    /// mutates in-memory state; on `Err` the mutation is not attempted.
    fn log_op(&mut self, op: DurableOp<'_>) -> Result<(), ExecError>;

    /// Marks the most recently logged op as rolled back. Called when the
    /// mutation failed with a typed error after `log_op` (the session has
    /// already restored its in-memory state).
    fn log_abort(&mut self) -> Result<(), ExecError>;

    /// Called after every op that reached a verdict, with the post-op
    /// state. Implementations use this to cut periodic snapshots and
    /// compact the log.
    fn op_finished(&mut self, state: &DatabaseState) -> Result<(), ExecError>;
}

/// A write-ahead durability sink shared by concurrent writers: the same
/// log/abort contract as [`Durability`], but through `&self` so many
/// [`WriteHandle`](crate::WriteHandle)s can log at once. Implementations
/// serialise (or group-commit) internally; `idr_store::SharedStore` is
/// the canonical one.
///
/// The write pipeline calls [`log_op`](DurabilitySink::log_op) while
/// holding the target block's write lock, so the log order of any one
/// block equals its apply order — which, per Theorem 4.2 block
/// independence, makes a serial replay of the whole log reproduce the
/// concurrent final state.
pub trait DurabilitySink: std::fmt::Debug + Send + Sync {
    /// Appends (and makes durable) the intent record for `op`. Called
    /// before the in-memory mutation, under the target block's write
    /// lock; on `Err` the mutation is not attempted.
    fn log_op(&self, op: DurableOp<'_>) -> Result<(), ExecError>;

    /// Appends (and makes durable) the intent records for a whole batch
    /// of ops, in order, as one durability unit. The batch write path
    /// ([`WriteHandle::apply_batch`](crate::WriteHandle::apply_batch))
    /// calls this once per batch while holding every involved block's
    /// write lock, *after* chase verdicts are known and *before* any
    /// in-memory state mutation — so a failed batch logs nothing and a
    /// logged batch always applies, keeping log == memory without abort
    /// markers.
    ///
    /// The default implementation loops [`log_op`](DurabilitySink::log_op)
    /// (N commit barriers); `idr_store::SharedStore` overrides it to ride
    /// the whole batch on one group-commit barrier — one write pass, one
    /// fsync.
    fn log_ops(&self, ops: &[DurableOp<'_>]) -> Result<(), ExecError> {
        for &op in ops {
            self.log_op(op)?;
        }
        Ok(())
    }

    /// Marks this writer's most recently logged op as rolled back.
    /// Called under the same block lock as the `log_op` it cancels, so
    /// the abort marker lands before any later op of the same block.
    fn log_abort(&self) -> Result<(), ExecError>;

    /// Called after every op that reached a verdict. Returns `true` when
    /// the sink wants a snapshot — the caller then quiesces every block
    /// and calls [`write_snapshot`](DurabilitySink::write_snapshot) with
    /// the resulting consistent state.
    fn op_finished(&self) -> Result<bool, ExecError>;

    /// Cuts a snapshot of `state` and rotates the log. Only called with
    /// a quiesced, consistent cut (no in-flight `log_op` anywhere).
    fn write_snapshot(&self, state: &DatabaseState) -> Result<(), ExecError>;
}
