//! Replaying logged op lines through a [`Session`] or a
//! [`WriteHandle`] — the shared entry point for crash recovery and
//! replication.
//!
//! Both the durability layer (WAL replay after a crash) and the
//! replication layer (applying op ranges shipped from a peer replica)
//! re-execute the same canonical text records: one line per op in the
//! fixture syntax (`insert R1: A=a B=b`, `delete R2: C=c D=d`). The
//! invariant they share is that a replayed op **re-earns its verdict**
//! through the normal guarded session path — a rejected insert
//! re-rejects deterministically, a delete of an absent tuple reports
//! absence — instead of trusting whatever the log's producer concluded.
//! This module centralises that discipline so the two layers cannot
//! drift.

use idr_relation::exec::{ExecError, Guard};
use idr_relation::parse::parse_tuple_line;
use idr_relation::{SymbolTable, Tuple};

use crate::engine::Session;
use crate::serving::WriteHandle;

/// What a replayed op did, mirroring the `Ok` shapes of
/// [`Session::insert`] / [`Session::delete`] plus the re-rejection case
/// recovery tolerates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplayOutcome {
    /// An insert was accepted and applied.
    Accepted,
    /// An insert was rejected (either `Ok(false)` or an
    /// [`ExecError::Inconsistent`] from a block already poisoned by an
    /// earlier replayed op) — the deterministic re-run of what the op did
    /// originally.
    Rejected,
    /// A delete removed a present tuple.
    Removed,
    /// A delete found its tuple absent.
    Absent,
}

impl ReplayOutcome {
    /// Whether the op mutated the state.
    pub fn mutated(self) -> bool {
        matches!(self, ReplayOutcome::Accepted | ReplayOutcome::Removed)
    }
}

/// Why a replay stopped.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReplayError {
    /// The line is not a well-formed op record (unknown verb, bad tuple
    /// syntax, wrong relation arity). The log producer and consumer
    /// disagree on the format — nothing was applied.
    Malformed {
        /// The offending line.
        line: String,
        /// What failed to parse.
        detail: String,
    },
    /// The engine failed with a typed error that is not a consistency
    /// verdict (guard trip, fault). The session rolled the op back.
    Exec(ExecError),
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::Malformed { line, detail } => {
                write!(f, "malformed op record {line:?}: {detail}")
            }
            ReplayError::Exec(e) => write!(f, "replay failed: {e}"),
        }
    }
}

impl std::error::Error for ReplayError {}

/// Whether an op line is an insert, plus its parsed target.
enum ParsedOp {
    Insert(usize, Tuple),
    Delete(usize, Tuple),
}

/// Parses `insert R1: A=a B=b` / `delete R1: A=a B=b` into a typed op,
/// interning values through `symbols` — the one format both the session
/// shim and the concurrent write pipeline replay.
fn parse_op_line(
    line: &str,
    db: &idr_relation::DatabaseScheme,
    symbols: &mut SymbolTable,
) -> Result<ParsedOp, ReplayError> {
    let (verb, rest) = line.split_once(' ').ok_or_else(|| ReplayError::Malformed {
        line: line.to_string(),
        detail: "expected 'insert <tuple>' or 'delete <tuple>'".to_string(),
    })?;
    let (rel, t) = parse_tuple_line(rest, db, symbols).map_err(|detail| ReplayError::Malformed {
        line: line.to_string(),
        detail,
    })?;
    match verb {
        "insert" => Ok(ParsedOp::Insert(rel, t)),
        "delete" => Ok(ParsedOp::Delete(rel, t)),
        other => Err(ReplayError::Malformed {
            line: line.to_string(),
            detail: format!("unknown verb {other:?}"),
        }),
    }
}

/// Maps an insert result to its replay outcome (re-rejection included).
fn insert_outcome(r: Result<bool, ExecError>) -> Result<ReplayOutcome, ReplayError> {
    match r {
        Ok(true) => Ok(ReplayOutcome::Accepted),
        Ok(false) | Err(ExecError::Inconsistent { .. }) => Ok(ReplayOutcome::Rejected),
        Err(e) => Err(ReplayError::Exec(e)),
    }
}

/// Maps a delete result to its replay outcome.
fn delete_outcome(r: Result<bool, ExecError>) -> Result<ReplayOutcome, ReplayError> {
    match r {
        Ok(true) => Ok(ReplayOutcome::Removed),
        Ok(false) => Ok(ReplayOutcome::Absent),
        Err(e) => Err(ReplayError::Exec(e)),
    }
}

impl WriteHandle<'_> {
    /// Replays one logged op line through the concurrent write pipeline,
    /// re-earning its verdict — the [`Session::replay_op`] contract for
    /// `WriteHandle` (see that method for the outcome mapping).
    pub fn replay_op(
        &self,
        line: &str,
        symbols: &mut SymbolTable,
        guard: &Guard,
    ) -> Result<ReplayOutcome, ReplayError> {
        let db = self.engine().scheme().clone();
        match parse_op_line(line, &db, symbols)? {
            ParsedOp::Insert(rel, t) => insert_outcome(self.insert(rel, t, guard)),
            ParsedOp::Delete(rel, t) => delete_outcome(self.delete(rel, &t, guard)),
        }
    }
}

impl Session<'_> {
    /// Replays one logged op line (`insert R1: A=a B=b` /
    /// `delete R1: A=a B=b`) through this session, re-earning its
    /// verdict. Tuple values are interned through `symbols`, which must
    /// be the table the session's state was built with.
    ///
    /// An insert into a block an earlier replayed op already poisoned
    /// reports [`ReplayOutcome::Rejected`] (the deterministic re-run of
    /// the original rejection); any other [`ExecError`] is surfaced as
    /// [`ReplayError::Exec`] with the session rolled back.
    pub fn replay_op(
        &mut self,
        line: &str,
        symbols: &mut SymbolTable,
        guard: &Guard,
    ) -> Result<ReplayOutcome, ReplayError> {
        let db = self.engine().scheme().clone();
        match parse_op_line(line, &db, symbols)? {
            ParsedOp::Insert(rel, t) => insert_outcome(self.insert(rel, t, guard)),
            ParsedOp::Delete(rel, t) => delete_outcome(self.delete(rel, &t, guard)),
        }
    }
}

#[cfg(test)]
mod tests {
    // Half of these pin the legacy Session shim's replay path.
    #![allow(deprecated)]

    use super::*;
    use crate::engine::Engine;
    use idr_relation::parse::parse_scheme;
    use idr_relation::DatabaseState;

    fn engine() -> Engine {
        let db = parse_scheme(
            "universe: A B C\nscheme R1: A B keys A\nscheme R2: B C keys B\n",
        )
        .unwrap();
        Engine::new(db)
    }

    #[test]
    fn replay_re_earns_each_verdict() {
        let engine = engine();
        let guard = Guard::unlimited();
        let mut symbols = SymbolTable::new();
        let db = engine.scheme().clone();
        let mut s = engine
            .session(&DatabaseState::empty(&db), &guard)
            .unwrap();
        assert_eq!(
            s.replay_op("insert R1: A=a B=b", &mut symbols, &guard).unwrap(),
            ReplayOutcome::Accepted
        );
        // A key-violating second tuple re-rejects.
        assert_eq!(
            s.replay_op("insert R1: A=a B=z", &mut symbols, &guard).unwrap(),
            ReplayOutcome::Rejected
        );
        assert_eq!(
            s.replay_op("delete R1: A=a B=b", &mut symbols, &guard).unwrap(),
            ReplayOutcome::Removed
        );
        assert_eq!(
            s.replay_op("delete R1: A=a B=b", &mut symbols, &guard).unwrap(),
            ReplayOutcome::Absent
        );
        assert_eq!(s.state().total_tuples(), 0);
    }

    #[test]
    fn write_handle_replay_matches_the_session_shim() {
        let engine = engine();
        let guard = Guard::unlimited();
        let mut symbols = SymbolTable::new();
        let db = engine.scheme().clone();
        let hub = engine.hub(&DatabaseState::empty(&db), &guard).unwrap();
        let w = hub.write_handle();
        for (line, want) in [
            ("insert R1: A=a B=b", ReplayOutcome::Accepted),
            ("insert R1: A=a B=z", ReplayOutcome::Rejected),
            ("delete R1: A=a B=b", ReplayOutcome::Removed),
            ("delete R1: A=a B=b", ReplayOutcome::Absent),
        ] {
            assert_eq!(w.replay_op(line, &mut symbols, &guard).unwrap(), want, "{line}");
        }
        assert_eq!(hub.read_view().state().total_tuples(), 0);
        let err = w
            .replay_op("upsert R1: A=a B=b", &mut symbols, &guard)
            .unwrap_err();
        assert!(matches!(err, ReplayError::Malformed { .. }), "{err}");
    }

    #[test]
    fn malformed_lines_are_typed_errors() {
        let engine = engine();
        let guard = Guard::unlimited();
        let mut symbols = SymbolTable::new();
        let db = engine.scheme().clone();
        let mut s = engine
            .session(&DatabaseState::empty(&db), &guard)
            .unwrap();
        for bad in ["frobnicate", "upsert R1: A=a B=b", "insert R9: A=a"] {
            let err = s.replay_op(bad, &mut symbols, &guard).unwrap_err();
            assert!(matches!(err, ReplayError::Malformed { .. }), "{bad}: {err}");
        }
    }
}
