//! Executable Theorem 3.4: constructing the adversarial instances of
//! Lemma 3.7 that defeat any constant-time maintenance algorithm on a
//! *split* key-equivalent scheme.
//!
//! Given a key `K` split in some `Sᵢ⁺`, the proof builds:
//!
//! * `t1` on `U_l = ∪S_l`, where `S_l` is a partial closure computation
//!   covering `K` whose schemes all avoid `K` — its projections `s_l`
//!   assemble a total tuple on `K` out of fragments;
//! * `t2` on `U_q`, agreeing with `t1` exactly on `K`, fragmented over a
//!   chain `S_q1, …, S_qp` leading from a scheme that *contains* `K` to a
//!   scheme `S_q(p+1)` that shares a non-`K` attribute with `U_l`;
//! * the probe tuple `u = t2[S_q(p+1)]`.
//!
//! Then `s_l ∪ s'_q` is consistent, `s'_q ∪ {u}` is consistent, but
//! `s_l ∪ s'_q ∪ {u}` is inconsistent — and the only values linking `u` to
//! `s_l` are `t1[K]`-fragments scattered across relations, which can be
//! duplicated arbitrarily ([`NonCtmWitness::inflate`]) so that no bounded
//! number of single-tuple selections can tell the instances apart.

use idr_fd::KeyDeps;
use idr_relation::{AttrSet, DatabaseScheme, DatabaseState, SymbolTable, Tuple};

use crate::split::split_keys;

/// The adversarial instance of Theorem 3.4.
#[derive(Clone, Debug)]
pub struct NonCtmWitness {
    /// The split key `K`.
    pub key: AttrSet,
    /// Scheme indices of `S_l` (the fragment assembly avoiding `K`).
    pub s_l: Vec<usize>,
    /// Scheme indices of the `t2` chain `S_q1, …, S_qp` (may be empty).
    pub s_q_prefix: Vec<usize>,
    /// Scheme index of `S_q(p+1)` — where the probe `u` is inserted.
    pub probe_scheme: usize,
    /// The consistent base state `s = s_l ∪ s'_q`.
    pub state: DatabaseState,
    /// The probe tuple `u`; inserting it into `probe_scheme` makes the
    /// state inconsistent.
    pub probe: Tuple,
}

/// Builds a non-ctm witness for a *split* key-equivalent subset of the
/// scheme, or `None` if the subset is split-free (Theorem 3.3 then says a
/// witness cannot exist).
pub fn non_ctm_witness(
    scheme: &DatabaseScheme,
    kd: &KeyDeps,
    block: &[usize],
    symbols: &mut SymbolTable,
) -> Option<NonCtmWitness> {
    let splits = split_keys(scheme, kd, block);
    let split = splits.first()?;
    let k = split.key;
    let seed = split.split_in[0];

    // S_l: grow a closure from `seed` through schemes avoiding K until K
    // is covered (the partial computation witnessing the split).
    let w: Vec<usize> = block
        .iter()
        .copied()
        .filter(|&p| !k.is_subset(scheme.scheme(p).attrs()))
        .collect();
    let mut s_l = vec![seed];
    let mut u_l = scheme.scheme(seed).attrs();
    while !k.is_subset(u_l) {
        let next = w.iter().copied().find(|&z| {
            !s_l.contains(&z)
                && !scheme.scheme(z).attrs().is_subset(u_l)
                && scheme.scheme(z).keys().iter().any(|key| key.is_subset(u_l))
        })?;
        s_l.push(next);
        u_l |= scheme.scheme(next).attrs();
    }

    // The t2 chain: start from a scheme containing K and grow by keys
    // until a scheme intersects U_l − K.
    let start_q = block
        .iter()
        .copied()
        .find(|&q| k.is_subset(scheme.scheme(q).attrs()))?;
    let mut chain = vec![start_q];
    let mut u_q = scheme.scheme(start_q).attrs();
    let outside = u_l - k;
    let probe_scheme = loop {
        if let Some(&last) = chain.last() {
            if scheme.scheme(last).attrs().intersects(outside) {
                break last;
            }
        }
        let next = block.iter().copied().find(|&z| {
            !chain.contains(&z)
                && !scheme.scheme(z).attrs().is_subset(u_q)
                && scheme.scheme(z).keys().iter().any(|key| key.is_subset(u_q))
        })?;
        chain.push(next);
        u_q |= scheme.scheme(next).attrs();
    };
    let s_q_prefix: Vec<usize> = chain
        .iter()
        .copied()
        .filter(|&z| z != probe_scheme)
        .collect();

    // t1: unique constants on U_l. t2: t1 on K, unique elsewhere on U_q.
    let u = scheme.universe();
    let t1 = Tuple::from_pairs(
        u_l.iter()
            .map(|a| (a, symbols.fresh(&format!("t1.{}", u.name(a))))),
    );
    let t2 = Tuple::from_pairs(u_q.iter().map(|a| {
        let v = if k.contains(a) {
            t1.value(a)
        } else {
            symbols.fresh(&format!("t2.{}", u.name(a)))
        };
        (a, v)
    }));

    // Assemble the state: s_l = t1-fragments, s'_q = t2-fragments over the
    // chain prefix.
    let mut state = DatabaseState::empty(scheme);
    for &i in &s_l {
        let _ = state.insert(i, t1.project(scheme.scheme(i).attrs()));
    }
    for &i in &s_q_prefix {
        let _ = state.insert(i, t2.project(scheme.scheme(i).attrs()));
    }
    let probe = t2.project(scheme.scheme(probe_scheme).attrs());
    Some(NonCtmWitness {
        key: k,
        s_l,
        s_q_prefix,
        probe_scheme,
        state,
        probe,
    })
}

impl NonCtmWitness {
    /// Lemma 3.7's inflation: for every scheme of `S_l` that holds a
    /// nonempty fragment of `K`, add `n` extra tuples agreeing with `t1`
    /// on `K ∩ S_h` but fresh elsewhere. The inflated state stays
    /// consistent, the probe still refutes it, and any maintenance
    /// algorithm restricted to selections on `K`-fragments must now sift
    /// through `n + 1` candidates — the state-size dependence of
    /// Theorem 3.4.
    pub fn inflate(
        &self,
        scheme: &DatabaseScheme,
        symbols: &mut SymbolTable,
        n: usize,
    ) -> DatabaseState {
        let mut state = self.state.clone();
        let t1_frag = |state: &DatabaseState, i: usize| -> Option<Tuple> {
            state.relation(i).iter().next().cloned()
        };
        for &i in &self.s_l {
            let attrs = scheme.scheme(i).attrs();
            let kh = attrs & self.key;
            if kh.is_empty() || kh == attrs {
                continue;
            }
            let Some(base) = t1_frag(&self.state, i) else {
                continue;
            };
            for _ in 0..n {
                let t = Tuple::from_pairs(attrs.iter().map(|a| {
                    let v = if kh.contains(a) {
                        base.value(a)
                    } else {
                        symbols.fresh(&format!("pad.{}", scheme.universe().name(a)))
                    };
                    (a, v)
                }));
                let _ = state.insert(i, t);
            }
        }
        state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idr_relation::exec::Guard;
    use idr_relation::SchemeBuilder;

    fn example4() -> DatabaseScheme {
        SchemeBuilder::new("ABCDE")
            .scheme("R1", "AB", ["A"])
            .scheme("R2", "AC", ["A"])
            .scheme("R3", "AE", ["A", "E"])
            .scheme("R4", "EB", ["E"])
            .scheme("R5", "EC", ["E"])
            .scheme("R6", "BCD", ["BC", "D"])
            .scheme("R7", "DA", ["D", "A"])
            .build()
            .unwrap()
    }

    #[test]
    fn witness_exists_and_refutes_via_chase() {
        let db = example4();
        let kd = KeyDeps::of(&db);
        let block: Vec<usize> = (0..db.len()).collect();
        let mut sym = SymbolTable::new();
        let w = non_ctm_witness(&db, &kd, &block, &mut sym).expect("Example 4 splits");
        assert_eq!(w.key, db.universe().set_of("BC"));
        // Lemma 3.7(a): the base state is consistent.
        assert!(idr_chase::is_consistent(&db, &w.state, kd.full(), &Guard::unlimited()).unwrap());
        // Lemma 3.7(c): adding the probe refutes it.
        let mut bad = w.state.clone();
        bad.insert(w.probe_scheme, w.probe.clone()).unwrap();
        assert!(!idr_chase::is_consistent(&db, &bad, kd.full(), &Guard::unlimited()).unwrap());
        // Lemma 3.7(b): the probe alone with the t2 fragments is fine.
        let mut partial = DatabaseState::empty(&db);
        for &i in &w.s_q_prefix {
            for t in w.state.relation(i).iter() {
                partial.insert(i, t.clone()).unwrap();
            }
        }
        partial.insert(w.probe_scheme, w.probe.clone()).unwrap();
        assert!(idr_chase::is_consistent(&db, &partial, kd.full(), &Guard::unlimited()).unwrap());
    }

    #[test]
    fn inflation_preserves_the_verdicts() {
        let db = example4();
        let kd = KeyDeps::of(&db);
        let block: Vec<usize> = (0..db.len()).collect();
        let mut sym = SymbolTable::new();
        let w = non_ctm_witness(&db, &kd, &block, &mut sym).unwrap();
        for n in [1usize, 5, 20] {
            let inflated = w.inflate(&db, &mut sym, n);
            assert!(
                inflated.total_tuples() > w.state.total_tuples(),
                "inflation must add tuples"
            );
            assert!(
                idr_chase::is_consistent(&db, &inflated, kd.full(), &Guard::unlimited()).unwrap(),
                "n={n}"
            );
            let mut bad = inflated.clone();
            bad.insert(w.probe_scheme, w.probe.clone()).unwrap();
            assert!(
                !idr_chase::is_consistent(&db, &bad, kd.full(), &Guard::unlimited()).unwrap(),
                "n={n}"
            );
        }
    }

    #[test]
    fn split_free_schemes_have_no_witness() {
        let db = SchemeBuilder::new("ABC")
            .scheme("S1", "AB", ["A", "B"])
            .scheme("S2", "BC", ["B", "C"])
            .scheme("S3", "AC", ["A", "C"])
            .build()
            .unwrap();
        let kd = KeyDeps::of(&db);
        let mut sym = SymbolTable::new();
        assert!(non_ctm_witness(&db, &kd, &[0, 1, 2], &mut sym).is_none());
    }

    #[test]
    fn algorithm2_still_decides_the_witness_correctly() {
        // Algebraic maintainability saves the day: Algorithm 2 (with its
        // representative instance) rejects the probe even on inflated
        // states.
        use crate::maintain::algorithm2;
        use crate::rep::KeRep;
        let db = example4();
        let kd = KeyDeps::of(&db);
        let block: Vec<usize> = (0..db.len()).collect();
        let mut sym = SymbolTable::new();
        let w = non_ctm_witness(&db, &kd, &block, &mut sym).unwrap();
        let inflated = w.inflate(&db, &mut sym, 10);
        let keys: Vec<AttrSet> = db
            .schemes()
            .iter()
            .flat_map(|s| s.keys().iter().copied())
            .collect();
        let g = idr_relation::exec::Guard::unlimited();
        let rep = KeRep::build(&keys, inflated.iter_all().map(|(_, t)| t.clone()), &g).unwrap();
        let (outcome, _) = algorithm2(
            &db,
            &rep,
            w.probe_scheme,
            &w.probe,
            &g,
            &idr_relation::exec::RetryPolicy::none(),
        )
        .unwrap();
        assert!(!outcome.is_consistent());
    }
}

#[cfg(test)]
mod algorithm5_unsoundness {
    use super::*;
    use crate::maintain::{algorithm5, StateIndex};
    use idr_relation::SchemeBuilder;

    /// Why Algorithm 5 *requires* split-freeness: on the split witness it
    /// wrongly accepts the probe (its key-directed lookups never reach the
    /// fragment assembly), while the chase — and Algorithm 2 — reject it.
    /// This is the operational content of Theorem 3.4.
    #[test]
    fn algorithm5_is_unsound_on_split_schemes() {
        let db = SchemeBuilder::new("ABCDE")
            .scheme("R1", "AB", ["A"])
            .scheme("R2", "AC", ["A"])
            .scheme("R3", "AE", ["A", "E"])
            .scheme("R4", "EB", ["E"])
            .scheme("R5", "EC", ["E"])
            .scheme("R6", "BCD", ["BC", "D"])
            .scheme("R7", "DA", ["D", "A"])
            .build()
            .unwrap();
        let kd = KeyDeps::of(&db);
        let block: Vec<usize> = (0..db.len()).collect();
        let mut sym = SymbolTable::new();
        let w = non_ctm_witness(&db, &kd, &block, &mut sym).unwrap();
        let idx = StateIndex::build(&db, &block, &w.state).unwrap();
        let (outcome, _) = algorithm5(
            &db,
            &idx,
            w.probe_scheme,
            &w.probe,
            &idr_relation::exec::Guard::unlimited(),
            &idr_relation::exec::RetryPolicy::none(),
        )
        .unwrap();
        // The chase says "inconsistent" (verified in the other tests);
        // Algorithm 5 says "consistent" — unsound exactly because key BC
        // is split: the assembled BC value is invisible to key-directed
        // extension from the probe.
        assert!(
            outcome.is_consistent(),
            "if this starts failing, the witness no longer demonstrates \
             Algorithm 5's reliance on split-freeness"
        );
    }
}
